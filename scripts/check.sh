#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#
#   1. release build of the whole workspace (binaries included)
#   2. the root-package test suite (integration, fuzz-differential,
#      property, hermeticity)
#   3. a 30-second `citroen-analyze --smoke` fuzz campaign: random modules
#      x random pass sequences through the verifier, the translation-
#      validation sanitizer, and the interpreter differential
#   4. a 30-second `citroen-analyze oracle` soundness campaign: 500 module
#      x sequence trials executing every CannotFire precondition verdict
#      (plus the pass-interaction graph derivation over the suite)
#
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== citroen-analyze --smoke (30s budget)"
timeout 30 ./target/release/citroen-analyze --smoke

echo "== citroen-analyze oracle (500 soundness trials, 30s budget)"
timeout 30 ./target/release/citroen-analyze oracle > /dev/null

echo "== tier-1 gate passed"
