#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#
#   1. release build of the whole workspace (binaries included)
#   2. the root-package test suite (integration, fuzz-differential,
#      property, hermeticity)
#   3. a 30-second `citroen-analyze --smoke` fuzz campaign: random modules
#      x random pass sequences through the verifier, the translation-
#      validation sanitizer, and the interpreter differential
#   4. a 30-second `citroen-analyze oracle` soundness campaign: 500 module
#      x sequence trials executing every CannotFire precondition verdict
#      (plus the pass-interaction graph derivation over the suite)
#   5. the telemetry gate: a traced tuning run must export a well-formed
#      trace whose `iteration` spans are >=90% covered by their
#      compile/measure/fit/acquire children (`citroen-trace check`), and
#      the disabled-path overhead must stay within the pinned budget
#      (`micro --telemetry-gate`)
#   6. the streaming gate: the same tuning run streamed as JSONL must pass
#      `check`, render a monotone convergence curve (`curve`), export
#      flamegraph stacks (`flame`), match a fresh baseline of itself
#      (`regress` exit 0), and keep the marginal streaming overhead within
#      the pinned budget (`micro --stream-gate`)
#   7. the batch gate: two q=4 batched tuning runs with the same seed must
#      be bit-identical, and the q=4 wall clock must beat q=1 by the
#      pinned floor (3x on >=4 worker threads, 1.5x below that)
#      (`micro --batch-gate`)
#   8. the subsumption gate: a >=100-trial `citroen-analyze subsume` smoke
#      campaign replaying the canonicalizer's drop decisions (every
#      predicted drop executed and checked as a behavioural no-op, exit 1
#      on any violation), then a q=4 batched tuning run with
#      subsume-collapse on and the S1-S8 sanitizer armed end to end
#      (CITROEN_SANITIZE=1)
#   9. the alias gate: a 50-state `citroen-analyze alias-oracle --smoke`
#      soundness campaign (every same-block No/Must alias verdict checked
#      against concrete access addresses), a `mine-edges --smoke` mining +
#      executed-drop promotion pass, and the shipped suite compiled at -O3
#      with the full S1-S11 sanitizer armed (`validate`, which includes
#      the alias-aware S9-S11 rules) — all exit 1 on any finding
#  10. the serve gate: `citroen-serve bench` spawns the multi-tenant
#      daemon and replays a concurrent job mix over stdio — two jobs run
#      concurrently plus a same-seed replay; results must be bit-identical
#      to standalone runs at the same seeds, the replay must hit the shared
#      cross-tenant compile cache, a third job is cancelled mid-run, and
#      the daemon must drain gracefully (exit 0 only if all hold)
#
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== citroen-analyze --smoke (30s budget)"
timeout 30 ./target/release/citroen-analyze --smoke

echo "== citroen-analyze oracle (500 soundness trials, 30s budget)"
timeout 30 ./target/release/citroen-analyze oracle > /dev/null

echo "== telemetry: traced run + trace structure + overhead gate"
# micro lives in the citroen-bench member package, not the root package.
cargo build --release -q -p citroen-bench --bin micro
trace_file="$(mktemp)"
trap 'rm -f "$trace_file"' EXIT
timeout 60 ./target/release/citroen-trace record --budget 10 --out "$trace_file"
timeout 30 ./target/release/citroen-trace check "$trace_file"
timeout 120 ./target/release/micro --telemetry-gate

echo "== streaming: JSONL trace + curve/flame + regression self-check + overhead gate"
stream_file="$(mktemp)"
baseline_file="$(mktemp)"
trap 'rm -f "$trace_file" "$stream_file" "$baseline_file"' EXIT
timeout 60 ./target/release/citroen-trace record --budget 10 --stream-out "$stream_file"
timeout 30 ./target/release/citroen-trace check "$stream_file"
timeout 30 ./target/release/citroen-trace curve "$stream_file"
timeout 30 ./target/release/citroen-trace flame "$stream_file" > /dev/null
timeout 30 ./target/release/citroen-trace baseline "$stream_file" --out "$baseline_file"
timeout 30 ./target/release/citroen-trace regress "$stream_file" --baseline "$baseline_file"
timeout 300 ./target/release/micro --stream-gate

echo "== batched loop: determinism + wall-clock speedup gate"
timeout 300 ./target/release/micro --batch-gate

echo "== subsumption: drop-soundness campaign + sanitized collapsed run"
timeout 60 ./target/release/citroen-analyze subsume --modules 10 --seqs 10
CITROEN_SANITIZE=1 timeout 120 ./target/release/citroen-trace record \
    --bench telecom_gsm --budget 6 --batch 4 --subsume --seed 9 > /dev/null

echo "== alias: soundness smoke + edge mining + sanitized -O3 suite (S1-S11)"
timeout 60 ./target/release/citroen-analyze alias-oracle --smoke
timeout 120 ./target/release/citroen-analyze mine-edges --smoke > /dev/null
CITROEN_SANITIZE=1 timeout 120 ./target/release/citroen-analyze validate

echo "== serve: concurrent daemon determinism + cross-tenant reuse + cancel/drain"
timeout 300 ./target/release/citroen-serve bench

echo "== observability: metrics overhead gate + daemon smoke + SLO gate"
timeout 300 ./target/release/micro --metrics-gate
timeout 300 ./target/release/citroen-serve smoke

echo "== tier-1 gate passed"
