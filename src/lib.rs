//! Facade crate re-exporting the CITROEN workspace public API.
pub mod fuzz;
pub mod mine;

pub use citroen_analyze as analyze;
pub use citroen_bo as bo;
pub use citroen_core as core;
pub use citroen_gp as gp;
pub use citroen_ir as ir;
pub use citroen_passes as passes;
pub use citroen_rt as rt;
pub use citroen_sim as sim;
pub use citroen_telemetry as telemetry;
pub use citroen_suite as suite;
pub use citroen_synthetic as synthetic;
pub use citroen_tuners as tuners;
