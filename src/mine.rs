//! Empirical subsumption-edge mining with fuzz-gated promotion.
//!
//! The static work matrix ([`work_model`](citroen_passes::oracle::work_model))
//! proves `(p, q)` edges — "`q` cannot fire immediately after `p`" — from
//! declared masks. Mining goes the other way round: trace real compilations
//! (the shipped suite × random pass sequences, each pass instrumented with a
//! fingerprint + statistics probe), record every adjacent pair, and treat
//! pairs where `q` was a no-op in *every* observation as candidate edges.
//!
//! An empirical candidate is a hypothesis, not a theorem, so promotion is
//! gated: candidates already implied by the static matrix are set aside
//! (nothing new), and each remaining edge must survive an executed-drop fuzz
//! campaign — the same no-op theorem check `citroen-analyze subsume` runs —
//! on generated modules: random prefix pipeline, then `p`, then `q`, where
//! `q` must leave the fingerprint unchanged and record zero statistics every
//! time. Surviving edges are reported as promoted; any counterexample
//! refutes the edge with the trial that broke it.
//!
//! Promoted edges are exactly the shape the sequence canonicalizer could
//! consume as extra drop rules; they are reported (not auto-installed) so a
//! human can decide whether to encode the underlying fact as a `fires_on`/
//! `clears` mask, which the static matrix then proves for free.

use citroen_ir::module::Module;
use citroen_passes::oracle::work_model;
use citroen_passes::{PassId, PassManager, Registry};
use citroen_rt::rng::{Rng, SeedableRng, StdRng};
use citroen_suite::generator::generate;

/// Mining + promotion knobs.
#[derive(Debug, Clone)]
pub struct MineConfig {
    /// Random sequences traced per corpus module during mining.
    pub mine_seqs: usize,
    /// Length of each traced sequence.
    pub mine_len: usize,
    /// Minimum no-op observations before a pair becomes a candidate.
    pub min_observations: usize,
    /// Executed-drop trials per candidate edge during promotion.
    pub promote_trials: usize,
    /// Deterministic seed for both phases.
    pub seed: u64,
}

impl Default for MineConfig {
    fn default() -> MineConfig {
        MineConfig {
            mine_seqs: 40,
            mine_len: 8,
            min_observations: 3,
            promote_trials: 500,
            seed: 0xED6E5,
        }
    }
}

impl MineConfig {
    /// The small deterministic budget behind `mine-edges --smoke`.
    pub fn smoke() -> MineConfig {
        MineConfig { mine_seqs: 8, mine_len: 6, min_observations: 2, promote_trials: 40, seed: 7 }
    }
}

/// One mined adjacency hypothesis.
#[derive(Debug, Clone)]
pub struct MinedEdge {
    /// The leading pass.
    pub p: PassId,
    /// The pass observed to never fire immediately after `p`.
    pub q: PassId,
    /// How many traced adjacencies supported the hypothesis.
    pub observations: usize,
}

/// A candidate refuted during promotion.
#[derive(Debug, Clone)]
pub struct RefutedEdge {
    /// The refuted hypothesis.
    pub edge: MinedEdge,
    /// What the counterexample trial observed.
    pub detail: String,
    /// Seed of the generated module that refuted it.
    pub module_seed: u64,
}

/// Mining + promotion outcome.
#[derive(Debug, Clone, Default)]
pub struct MineReport {
    /// Adjacent-pair observations traced in total.
    pub adjacencies: u64,
    /// Distinct ordered pairs observed at least once.
    pub pairs_seen: usize,
    /// Candidates discarded because the static matrix already proves them.
    pub statically_implied: Vec<MinedEdge>,
    /// Candidates that survived every executed-drop trial.
    pub promoted: Vec<MinedEdge>,
    /// Candidates refuted by a counterexample.
    pub refuted: Vec<RefutedEdge>,
    /// Executed-drop trials run during promotion.
    pub drop_trials: u64,
}

/// Did this pass provably change nothing? The same observable the subsume
/// harness treats as the no-op theorem: unchanged print fingerprint and an
/// empty statistics delta.
fn runs_as_noop(reg: &Registry, m: &mut Module, id: PassId) -> bool {
    let before = citroen_ir::print::fingerprint(m);
    let mut stats = citroen_passes::Stats::new();
    reg.pass(id).run(m, &mut stats);
    citroen_ir::print::fingerprint(m) == before && stats.is_empty()
}

/// Phase 1: trace the shipped suite under random sequences and collect
/// adjacency statistics. Returns `(supported, report)` where `supported`
/// holds every pair whose every observation was a no-op.
fn mine_candidates(
    reg: &Registry,
    cfg: &MineConfig,
    rng: &mut StdRng,
    report: &mut MineReport,
    progress: &mut impl FnMut(&str),
) -> Vec<MinedEdge> {
    use std::collections::HashMap;
    // (p, q) -> (observations, q fired at least once)
    let mut obs: HashMap<(u16, u16), (usize, bool)> = HashMap::new();
    let corpus: Vec<(String, Module)> = citroen_suite::cbench()
        .into_iter()
        .chain(citroen_suite::spec())
        .map(|b| (b.name.to_string(), b.link()))
        .collect();
    for (name, m) in &corpus {
        progress(&format!("mining {name} ({} seqs)", cfg.mine_seqs));
        for _ in 0..cfg.mine_seqs {
            let seq: Vec<PassId> =
                (0..cfg.mine_len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
            let mut cur = m.clone();
            let mut prev: Option<PassId> = None;
            for &id in &seq {
                let fired = !runs_as_noop(reg, &mut cur, id);
                if let Some(p) = prev {
                    report.adjacencies += 1;
                    let e = obs.entry((p.0, id.0)).or_insert((0, false));
                    e.0 += 1;
                    e.1 |= fired;
                }
                prev = Some(id);
            }
        }
    }
    report.pairs_seen = obs.len();
    let mut out: Vec<MinedEdge> = obs
        .into_iter()
        .filter(|&(_, (n, fired))| !fired && n >= cfg.min_observations)
        .map(|((p, q), (n, _))| MinedEdge { p: PassId(p), q: PassId(q), observations: n })
        .collect();
    out.sort_by_key(|e| (e.p.0, e.q.0));
    out
}

/// Phase 2: executed-drop promotion. A candidate `(p, q)` survives iff on
/// every trial — generated module, random prefix pipeline, then `p` — the
/// subsequent `q` is a no-op.
fn promote(
    reg: &Registry,
    pm: &PassManager<'_>,
    edge: &MinedEdge,
    cfg: &MineConfig,
    rng: &mut StdRng,
    report: &mut MineReport,
) -> Result<(), RefutedEdge> {
    for _ in 0..cfg.promote_trials {
        report.drop_trials += 1;
        let module_seed: u64 = rng.gen();
        let gen_cfg = crate::fuzz::varied_config(rng);
        let module = generate(module_seed, &gen_cfg);
        let prefix_len = rng.gen_range(0..=4);
        let mut seq: Vec<PassId> =
            (0..prefix_len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
        seq.push(edge.p);
        let Ok(res) = pm.compile_result(&module, &seq) else { continue };
        let mut cur = res.module;
        if !runs_as_noop(reg, &mut cur, edge.q) {
            return Err(RefutedEdge {
                edge: edge.clone(),
                detail: format!(
                    "'{}' fired after [{}] on a generated module",
                    reg.pass(edge.q).name(),
                    reg.seq_to_string(&seq)
                ),
                module_seed,
            });
        }
    }
    Ok(())
}

/// Run both phases. `progress` receives one line per corpus module and per
/// promoted/refuted edge.
pub fn run_mine_campaign(cfg: &MineConfig, mut progress: impl FnMut(&str)) -> MineReport {
    let reg = Registry::full();
    let mut pm = PassManager::new(&reg);
    pm.verify_each = false;
    pm.sanitize = false;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = MineReport::default();

    let candidates = mine_candidates(&reg, cfg, &mut rng, &mut report, &mut progress);

    // Static exclusion: the matrix already proves these, so executing them
    // again would only re-derive the subsume campaign.
    let static_pairs = work_model(&reg).subsumed_pairs();
    let (novel, implied): (Vec<_>, Vec<_>) = candidates
        .into_iter()
        .partition(|e| !static_pairs.contains(&(e.p.0 as usize, e.q.0 as usize)));
    report.statically_implied = implied;

    for edge in novel {
        let label = format!(
            "{} -> {} ({} obs)",
            reg.pass(edge.p).name(),
            reg.pass(edge.q).name(),
            edge.observations
        );
        match promote(&reg, &pm, &edge, cfg, &mut rng, &mut report) {
            Ok(()) => {
                progress(&format!("promoted {label} after {} trials", cfg.promote_trials));
                report.promoted.push(edge);
            }
            Err(refuted) => {
                progress(&format!("refuted {label}: {}", refuted.detail));
                report.refuted.push(refuted);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mine_finds_and_gates_candidates() {
        let cfg = MineConfig::smoke();
        let report = run_mine_campaign(&cfg, |_| {});
        assert!(report.adjacencies > 0, "tracing must observe adjacencies");
        assert!(report.pairs_seen > 0);
        // Statically-implied edges exist in any traced corpus of this size
        // (idempotent pass repeated adjacently is the degenerate case).
        assert!(
            !report.statically_implied.is_empty(),
            "expected some mined pairs to be statically implied"
        );
        // Every promoted edge went through the executed-drop gate.
        if !report.promoted.is_empty() {
            assert!(report.drop_trials >= cfg.promote_trials as u64);
        }
        // No candidate may be both promoted and refuted.
        for p in &report.promoted {
            assert!(
                !report.refuted.iter().any(|r| r.edge.p == p.p && r.edge.q == p.q),
                "edge both promoted and refuted"
            );
        }
    }

    #[test]
    fn refutation_is_possible() {
        // A fabricated candidate that is certainly false — instcombine
        // after dce (dce never exhausts algebraic rewrites) — must be
        // refuted by the executed-drop gate, proving the gate has teeth.
        let reg = Registry::full();
        let mut pm = PassManager::new(&reg);
        pm.verify_each = false;
        pm.sanitize = false;
        let p = reg.by_name("dce").expect("registered");
        let q = reg.by_name("instcombine").expect("registered");
        let edge = MinedEdge { p, q, observations: 1 };
        let cfg = MineConfig { promote_trials: 60, seed: 3, ..MineConfig::smoke() };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut report = MineReport::default();
        let res = promote(&reg, &pm, &edge, &cfg, &mut rng, &mut report);
        assert!(res.is_err(), "instcombine-after-dce must fire on some generated module");
    }
}
