//! `citroen-serve`: CITROEN-as-a-service — a multi-tenant tuning daemon.
//!
//! * **serve** (default): accept tuning jobs as newline-delimited JSON on
//!   stdio (or a Unix socket with `--socket`), run up to `--max-concurrent`
//!   sessions concurrently, and share the compile cache, the once-loaded
//!   interaction graph, and the transfer corpus across tenants. EOF or a
//!   `shutdown` request drains gracefully.
//! * **bench**: client mode for the determinism/throughput gate — spawns
//!   `citroen-serve serve` as a subprocess, replays a concurrent job mix
//!   over its stdio, cancels one job mid-run, and asserts every completed
//!   job's trace digest is bit-identical to a standalone in-process run at
//!   the same seed, with cross-tenant cache hits observed.
//!
//! Protocol and shared-state invariants: DESIGN.md §11.

use citroen_rt::json::Value;
use citroen_serve::{job_citroen_config, job_task, JobSpec, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};

const USAGE: &str = "\
citroen-serve — multi-tenant CITROEN tuning daemon

USAGE:
    citroen-serve [serve] [--socket PATH] [--max-concurrent N] [--max-budget N]
                  [--cache-cap N] [--trace-dir DIR] [--graph FILE]
    citroen-serve bench [--budget N] [--max-concurrent N]

MODES:
    serve            read newline-delimited JSON requests on stdin, write
                     replies on stdout (default). With --socket, listen on a
                     Unix socket and serve connections sequentially instead.
    bench            spawn a daemon subprocess and run the determinism /
                     throughput gate against it (exit 0 iff it holds)

OPTIONS:
    --socket PATH        listen on a Unix socket instead of stdio
    --max-concurrent N   concurrent tuning sessions        [default: 2]
    --max-budget N       per-job measurement budget cap    [default: 200]
    --cache-cap N        shared compile-cache entries      [default: 4096]
    --trace-dir DIR      per-job JSONL telemetry streams (live-tailable
                         with `citroen-trace tail DIR/<job>.jsonl`)
    --graph FILE         persisted `citroen-analyze oracle --json` graph,
                         loaded once and shared with every session
    --budget N           bench mode: per-job budget        [default: 8]
";

fn die(msg: &str) -> ! {
    eprintln!("citroen-serve: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn parse_num(args: &mut std::iter::Peekable<std::env::Args>, flag: &str) -> u64 {
    let v = args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
    v.parse().unwrap_or_else(|_| die(&format!("{flag}: bad number '{v}'")))
}

fn main() {
    let mut args = std::env::args().peekable();
    args.next(); // argv[0]

    let mut cfg = ServeConfig::default();
    let mut socket: Option<String> = None;
    let mut bench = false;
    let mut budget = 8usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "serve" => {}
            "bench" => bench = true,
            "--socket" => {
                socket = Some(args.next().unwrap_or_else(|| die("--socket needs a path")))
            }
            "--max-concurrent" => {
                cfg.max_concurrent = parse_num(&mut args, "--max-concurrent").max(1) as usize
            }
            "--max-budget" => cfg.max_budget = parse_num(&mut args, "--max-budget") as usize,
            "--cache-cap" => cfg.cache_cap = parse_num(&mut args, "--cache-cap") as usize,
            "--trace-dir" => {
                cfg.trace_dir = Some(args.next().unwrap_or_else(|| die("--trace-dir needs a dir")))
            }
            "--graph" => {
                cfg.graph_path = Some(args.next().unwrap_or_else(|| die("--graph needs a file")))
            }
            "--budget" => budget = parse_num(&mut args, "--budget") as usize,
            other => die(&format!("unknown argument '{other}'")),
        }
    }

    if bench {
        run_bench(cfg, budget);
        return;
    }
    let server = Server::new(cfg);
    match socket {
        None => {
            let stdin = std::io::stdin();
            let summary = server.serve(stdin.lock(), std::io::stdout());
            eprintln!(
                "citroen-serve: drained — {} done, {} failed, {} cancelled, {} rejected",
                summary.done, summary.failed, summary.cancelled, summary.rejected
            );
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| die(&format!("cannot bind '{path}': {e}")));
            eprintln!("citroen-serve: listening on {path} (connections served sequentially)");
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("citroen-serve: accept failed: {e}");
                        continue;
                    }
                };
                let reader = match stream.try_clone() {
                    Ok(s) => BufReader::new(s),
                    Err(e) => {
                        eprintln!("citroen-serve: clone failed: {e}");
                        continue;
                    }
                };
                let summary = server.serve(reader, stream);
                eprintln!(
                    "citroen-serve: connection drained — {} done, {} failed, {} cancelled",
                    summary.done, summary.failed, summary.cancelled
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// bench mode: the determinism / throughput gate
// ---------------------------------------------------------------------------

fn spec(id: &str, seed: u64, budget: usize) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        bench: "telecom_gsm".to_string(),
        budget,
        seed,
        seq_len: 16,
        batch: 1,
        oracle_prune: false,
        subsume: false,
        warm: 0,
        timeout_ms: 0,
    }
}

fn submit_line(s: &JobSpec) -> String {
    format!(
        "{{\"type\":\"submit\",\"job\":{{\"id\":\"{}\",\"bench\":\"{}\",\"budget\":{},\"seed\":{}}}}}\n",
        s.id, s.bench, s.budget, s.seed
    )
}

fn run_bench(cfg: ServeConfig, budget: usize) {
    let t0 = std::time::Instant::now();
    let exe = std::env::current_exe().unwrap_or_else(|e| die(&format!("no current_exe: {e}")));
    let mut child = std::process::Command::new(&exe)
        .args([
            "serve",
            "--max-concurrent",
            &cfg.max_concurrent.to_string(),
            "--max-budget",
            &cfg.max_budget.to_string(),
            "--cache-cap",
            &cfg.cache_cap.to_string(),
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| die(&format!("cannot spawn daemon: {e}")));
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    // Job mix: `victim` (long) starts first and is cancelled once seen
    // running; `a`/`b` run concurrently; `c` replays `a`'s spec after it, so
    // its compiles can only be served by cross-tenant cache hits.
    let victim = spec("victim", 7, cfg.max_budget);
    let a = spec("a", 5, budget);
    let b = spec("b", 6, budget);
    let c = spec("c", 5, budget);
    for s in [&victim, &a, &b] {
        stdin.write_all(submit_line(s).as_bytes()).expect("daemon stdin");
    }
    stdin.flush().expect("daemon stdin");

    let mut replies: Vec<Value> = Vec::new();
    let mut cancelled = false;
    let mut submitted_c = false;
    let mut failures: Vec<String> = Vec::new();
    for line in stdout.lines() {
        let line = line.expect("daemon stdout");
        let v = Value::parse(&line)
            .unwrap_or_else(|e| die(&format!("unparseable daemon reply '{line}': {e}")));
        let ty = v.get("type").and_then(Value::as_str).unwrap_or("").to_string();
        let id = v.get("id").and_then(Value::as_str).unwrap_or("").to_string();
        let state = v.get("state").and_then(Value::as_str).unwrap_or("").to_string();
        replies.push(v);
        match ty.as_str() {
            // Cancel the long job as soon as it reports running (a genuine
            // mid-run cancel, observed at an iteration boundary).
            "job" if id == "victim" && state == "running" && !cancelled => {
                cancelled = true;
                stdin
                    .write_all(b"{\"type\":\"cancel\",\"id\":\"victim\"}\n")
                    .expect("daemon stdin");
                stdin.flush().expect("daemon stdin");
            }
            // Once the replayed spec's original is done, submit the replay
            // (guaranteed to run strictly after it), then start the drain.
            "result" if id == "a" && !submitted_c => {
                submitted_c = true;
                stdin.write_all(submit_line(&c).as_bytes()).expect("daemon stdin");
                stdin.write_all(b"{\"type\":\"stats\"}\n").expect("daemon stdin");
                stdin.write_all(b"{\"type\":\"shutdown\"}\n").expect("daemon stdin");
                stdin.flush().expect("daemon stdin");
            }
            "bye" => break,
            _ => {}
        }
    }
    drop(stdin);
    let status = child.wait().expect("daemon exit status");
    let wall = t0.elapsed();
    if !status.success() {
        failures.push(format!("daemon exited with {status}"));
    }

    let result_of = |id: &str| -> Option<&Value> {
        replies.iter().find(|r| {
            r.get("type").and_then(Value::as_str) == Some("result")
                && r.get("id").and_then(Value::as_str) == Some(id)
        })
    };
    let field = |id: &str, key: &str| -> u64 {
        result_of(id).and_then(|r| r.get(key)).and_then(Value::as_u64).unwrap_or(0)
    };

    // 1. Bit-identity: every completed job equals its standalone run.
    for s in [&a, &b, &c] {
        let mut task = match job_task(s) {
            Some(t) => t,
            None => {
                failures.push(format!("job {}: unknown bench", s.id));
                continue;
            }
        };
        let (trace, _) =
            citroen::core::run_citroen(&mut task, s.budget, &job_citroen_config(s));
        let want = citroen::core::trace_digest(&trace);
        let got = field(&s.id, "digest");
        if got != want {
            failures.push(format!("job {}: digest {got:#x} != standalone {want:#x}", s.id));
        } else {
            println!("bench: job {} bit-identical to standalone (digest {got:#x})", s.id);
        }
    }
    // 2. Cross-tenant reuse: the replay compiled strictly less than the
    //    original it shadows.
    let (ca, cc) = (field("a", "compiles"), field("c", "compiles"));
    if cc >= ca {
        failures.push(format!("no cross-tenant reuse: replay compiled {cc} vs original {ca}"));
    } else {
        println!("bench: cross-tenant reuse — replay compiled {cc} vs original {ca}");
    }
    // 3. The cancelled job terminated early without poisoning the drain.
    match result_of("victim").map(|r| {
        (
            r.get("exit").and_then(Value::as_str).unwrap_or("").to_string(),
            r.get("measurements").and_then(Value::as_u64).unwrap_or(0),
        )
    }) {
        Some((exit, meas)) if exit == "cancelled" && meas < cfg.max_budget as u64 => {
            println!("bench: victim cancelled mid-run after {meas} measurements");
        }
        other => failures.push(format!("victim not cancelled mid-run: {other:?}")),
    }
    // 4. Graceful drain: exactly one bye, all four jobs reached a terminal
    //    result.
    let byes =
        replies.iter().filter(|r| r.get("type").and_then(Value::as_str) == Some("bye")).count();
    if byes != 1 {
        failures.push(format!("expected exactly one bye reply, saw {byes}"));
    }
    for id in ["a", "b", "c", "victim"] {
        if result_of(id).is_none() {
            failures.push(format!("job {id} never reached a terminal result"));
        }
    }

    println!(
        "bench: 4 jobs (3 done, 1 cancelled) over {} session threads in {:.2}s",
        cfg.max_concurrent,
        wall.as_secs_f64()
    );
    if failures.is_empty() {
        println!("bench: determinism/throughput gate passed");
    } else {
        for f in &failures {
            eprintln!("bench FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
