//! `citroen-serve`: CITROEN-as-a-service — a multi-tenant tuning daemon.
//!
//! * **serve** (default): accept tuning jobs as newline-delimited JSON on
//!   stdio (or a Unix socket with `--socket`), run up to `--max-concurrent`
//!   sessions concurrently, and share the compile cache, the once-loaded
//!   interaction graph, and the transfer corpus across tenants. EOF or a
//!   `shutdown` request drains gracefully.
//! * **bench**: client mode for the determinism/throughput gate — spawns
//!   `citroen-serve serve` as a subprocess, replays a concurrent job mix
//!   over its stdio, cancels one job mid-run, and asserts every completed
//!   job's trace digest is bit-identical to a standalone in-process run at
//!   the same seed, with cross-tenant cache hits observed.
//!
//! Protocol and shared-state invariants: DESIGN.md §11.

use citroen_rt::json::Value;
use citroen_serve::{job_citroen_config, job_task, JobSpec, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};

const USAGE: &str = "\
citroen-serve — multi-tenant CITROEN tuning daemon

USAGE:
    citroen-serve [serve] [--socket PATH] [--max-concurrent N] [--max-budget N]
                  [--cache-cap N] [--trace-dir DIR] [--graph FILE]
                  [--no-metrics] [--metrics-window-ms N] [--slo-queue-ms X]
                  [--slo-run-ms X] [--slo-compile-us X] [--slo-hit-ratio X]
    citroen-serve bench [--budget N] [--max-concurrent N]
    citroen-serve smoke

MODES:
    serve            read newline-delimited JSON requests on stdin, write
                     replies on stdout (default). With --socket, listen on a
                     Unix socket and serve connections sequentially instead.
    bench            spawn a daemon subprocess and run the determinism /
                     throughput gate against it (exit 0 iff it holds)
    smoke            end-to-end observability check: spawn a socket daemon,
                     submit a job, poll the `metrics` verb, and require
                     `citroen-trace top --once` to report healthy
                     (exit 0 iff everything held)

OPTIONS:
    --socket PATH        listen on a Unix socket instead of stdio
    --max-concurrent N   concurrent tuning sessions        [default: 2]
    --max-budget N       per-job measurement budget cap    [default: 200]
    --cache-cap N        shared compile-cache entries      [default: 4096]
    --trace-dir DIR      per-job JSONL telemetry streams (live-tailable
                         with `citroen-trace tail DIR/<job>.jsonl`)
    --graph FILE         persisted `citroen-analyze oracle --json` graph,
                         loaded once and shared with every session
    --budget N           bench mode: per-job budget        [default: 8]

OBSERVABILITY OPTIONS (serve / smoke):
    --no-metrics          disable the metrics/profiling/SLO plane
                          (the `metrics` verb then returns an error)
    --metrics-window-ms N metrics window width, ms        [default: 10000]
    --slo-queue-ms X      queue-wait EWMA ceiling, ms     [default: 60000]
    --slo-run-ms X        run-wall EWMA ceiling, ms      [default: 300000]
    --slo-compile-us X    compile-span EWMA ceiling, us [default: 5000000]
    --slo-hit-ratio X     cache hit-ratio EWMA floor (0 disables)
                                                               [default: 0]
";

fn die(msg: &str) -> ! {
    eprintln!("citroen-serve: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn parse_num(args: &mut std::iter::Peekable<std::env::Args>, flag: &str) -> u64 {
    let v = args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
    v.parse().unwrap_or_else(|_| die(&format!("{flag}: bad number '{v}'")))
}

fn parse_f64(args: &mut std::iter::Peekable<std::env::Args>, flag: &str) -> f64 {
    let v = args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
    v.parse().unwrap_or_else(|_| die(&format!("{flag}: bad number '{v}'")))
}

fn main() {
    let mut args = std::env::args().peekable();
    args.next(); // argv[0]

    let mut cfg = ServeConfig::default();
    let mut socket: Option<String> = None;
    let mut bench = false;
    let mut smoke = false;
    let mut budget = 8usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "serve" => {}
            "bench" => bench = true,
            "smoke" => smoke = true,
            "--socket" => {
                socket = Some(args.next().unwrap_or_else(|| die("--socket needs a path")))
            }
            "--max-concurrent" => {
                cfg.max_concurrent = parse_num(&mut args, "--max-concurrent").max(1) as usize
            }
            "--max-budget" => cfg.max_budget = parse_num(&mut args, "--max-budget") as usize,
            "--cache-cap" => cfg.cache_cap = parse_num(&mut args, "--cache-cap") as usize,
            "--trace-dir" => {
                cfg.trace_dir = Some(args.next().unwrap_or_else(|| die("--trace-dir needs a dir")))
            }
            "--graph" => {
                cfg.graph_path = Some(args.next().unwrap_or_else(|| die("--graph needs a file")))
            }
            "--budget" => budget = parse_num(&mut args, "--budget") as usize,
            "--no-metrics" => cfg.metrics = false,
            "--metrics-window-ms" => {
                cfg.metrics_window_ms = parse_num(&mut args, "--metrics-window-ms").max(1)
            }
            "--slo-queue-ms" => cfg.slo_queue_ms = parse_f64(&mut args, "--slo-queue-ms"),
            "--slo-run-ms" => cfg.slo_run_ms = parse_f64(&mut args, "--slo-run-ms"),
            "--slo-compile-us" => cfg.slo_compile_us = parse_f64(&mut args, "--slo-compile-us"),
            "--slo-hit-ratio" => cfg.slo_hit_ratio = parse_f64(&mut args, "--slo-hit-ratio"),
            other => die(&format!("unknown argument '{other}'")),
        }
    }

    if bench {
        run_bench(cfg, budget);
        return;
    }
    if smoke {
        run_smoke(cfg);
        return;
    }
    let server = Server::new(cfg);
    match socket {
        None => {
            let stdin = std::io::stdin();
            let summary = server.serve(stdin.lock(), std::io::stdout());
            eprintln!(
                "citroen-serve: drained — {} done, {} failed, {} cancelled, {} rejected",
                summary.done, summary.failed, summary.cancelled, summary.rejected
            );
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| die(&format!("cannot bind '{path}': {e}")));
            eprintln!("citroen-serve: listening on {path} (connections served sequentially)");
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("citroen-serve: accept failed: {e}");
                        continue;
                    }
                };
                let reader = match stream.try_clone() {
                    Ok(s) => BufReader::new(s),
                    Err(e) => {
                        eprintln!("citroen-serve: clone failed: {e}");
                        continue;
                    }
                };
                let summary = server.serve(reader, stream);
                eprintln!(
                    "citroen-serve: connection drained — {} done, {} failed, {} cancelled",
                    summary.done, summary.failed, summary.cancelled
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// bench mode: the determinism / throughput gate
// ---------------------------------------------------------------------------

fn spec(id: &str, seed: u64, budget: usize) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        bench: "telecom_gsm".to_string(),
        tenant: "telecom_gsm".to_string(),
        budget,
        seed,
        seq_len: 16,
        batch: 1,
        oracle_prune: false,
        subsume: false,
        warm: 0,
        timeout_ms: 0,
    }
}

fn submit_line(s: &JobSpec) -> String {
    format!(
        "{{\"type\":\"submit\",\"job\":{{\"id\":\"{}\",\"bench\":\"{}\",\"budget\":{},\"seed\":{}}}}}\n",
        s.id, s.bench, s.budget, s.seed
    )
}

fn run_bench(cfg: ServeConfig, budget: usize) {
    let t0 = std::time::Instant::now();
    let exe = std::env::current_exe().unwrap_or_else(|e| die(&format!("no current_exe: {e}")));
    let mut child = std::process::Command::new(&exe)
        .args([
            "serve",
            "--max-concurrent",
            &cfg.max_concurrent.to_string(),
            "--max-budget",
            &cfg.max_budget.to_string(),
            "--cache-cap",
            &cfg.cache_cap.to_string(),
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| die(&format!("cannot spawn daemon: {e}")));
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    // Job mix: `victim` (long) starts first and is cancelled once seen
    // running; `a`/`b` run concurrently; `c` replays `a`'s spec after it, so
    // its compiles can only be served by cross-tenant cache hits.
    let victim = spec("victim", 7, cfg.max_budget);
    let a = spec("a", 5, budget);
    let b = spec("b", 6, budget);
    let c = spec("c", 5, budget);
    for s in [&victim, &a, &b] {
        stdin.write_all(submit_line(s).as_bytes()).expect("daemon stdin");
    }
    stdin.flush().expect("daemon stdin");

    let mut replies: Vec<Value> = Vec::new();
    let mut cancelled = false;
    let mut submitted_c = false;
    let mut failures: Vec<String> = Vec::new();
    for line in stdout.lines() {
        let line = line.expect("daemon stdout");
        let v = Value::parse(&line)
            .unwrap_or_else(|e| die(&format!("unparseable daemon reply '{line}': {e}")));
        let ty = v.get("type").and_then(Value::as_str).unwrap_or("").to_string();
        let id = v.get("id").and_then(Value::as_str).unwrap_or("").to_string();
        let state = v.get("state").and_then(Value::as_str).unwrap_or("").to_string();
        replies.push(v);
        match ty.as_str() {
            // Cancel the long job as soon as it reports running (a genuine
            // mid-run cancel, observed at an iteration boundary).
            "job" if id == "victim" && state == "running" && !cancelled => {
                cancelled = true;
                stdin
                    .write_all(b"{\"type\":\"cancel\",\"id\":\"victim\"}\n")
                    .expect("daemon stdin");
                stdin.flush().expect("daemon stdin");
            }
            // Once the replayed spec's original is done, submit the replay
            // (guaranteed to run strictly after it), then start the drain.
            "result" if id == "a" && !submitted_c => {
                submitted_c = true;
                stdin.write_all(submit_line(&c).as_bytes()).expect("daemon stdin");
                stdin.write_all(b"{\"type\":\"stats\"}\n").expect("daemon stdin");
                stdin.write_all(b"{\"type\":\"shutdown\"}\n").expect("daemon stdin");
                stdin.flush().expect("daemon stdin");
            }
            "bye" => break,
            _ => {}
        }
    }
    drop(stdin);
    let status = child.wait().expect("daemon exit status");
    let wall = t0.elapsed();
    if !status.success() {
        failures.push(format!("daemon exited with {status}"));
    }

    let result_of = |id: &str| -> Option<&Value> {
        replies.iter().find(|r| {
            r.get("type").and_then(Value::as_str) == Some("result")
                && r.get("id").and_then(Value::as_str) == Some(id)
        })
    };
    let field = |id: &str, key: &str| -> u64 {
        result_of(id).and_then(|r| r.get(key)).and_then(Value::as_u64).unwrap_or(0)
    };

    // 1. Bit-identity: every completed job equals its standalone run.
    for s in [&a, &b, &c] {
        let mut task = match job_task(s) {
            Some(t) => t,
            None => {
                failures.push(format!("job {}: unknown bench", s.id));
                continue;
            }
        };
        let (trace, _) =
            citroen::core::run_citroen(&mut task, s.budget, &job_citroen_config(s));
        let want = citroen::core::trace_digest(&trace);
        let got = field(&s.id, "digest");
        if got != want {
            failures.push(format!("job {}: digest {got:#x} != standalone {want:#x}", s.id));
        } else {
            println!("bench: job {} bit-identical to standalone (digest {got:#x})", s.id);
        }
    }
    // 2. Cross-tenant reuse: the replay compiled strictly less than the
    //    original it shadows.
    let (ca, cc) = (field("a", "compiles"), field("c", "compiles"));
    if cc >= ca {
        failures.push(format!("no cross-tenant reuse: replay compiled {cc} vs original {ca}"));
    } else {
        println!("bench: cross-tenant reuse — replay compiled {cc} vs original {ca}");
    }
    // 3. The cancelled job terminated early without poisoning the drain.
    match result_of("victim").map(|r| {
        (
            r.get("exit").and_then(Value::as_str).unwrap_or("").to_string(),
            r.get("measurements").and_then(Value::as_u64).unwrap_or(0),
        )
    }) {
        Some((exit, meas)) if exit == "cancelled" && meas < cfg.max_budget as u64 => {
            println!("bench: victim cancelled mid-run after {meas} measurements");
        }
        other => failures.push(format!("victim not cancelled mid-run: {other:?}")),
    }
    // 4. Graceful drain: exactly one bye, all four jobs reached a terminal
    //    result.
    let byes =
        replies.iter().filter(|r| r.get("type").and_then(Value::as_str) == Some("bye")).count();
    if byes != 1 {
        failures.push(format!("expected exactly one bye reply, saw {byes}"));
    }
    for id in ["a", "b", "c", "victim"] {
        if result_of(id).is_none() {
            failures.push(format!("job {id} never reached a terminal result"));
        }
    }

    println!(
        "bench: 4 jobs (3 done, 1 cancelled) over {} session threads in {:.2}s",
        cfg.max_concurrent,
        wall.as_secs_f64()
    );
    if failures.is_empty() {
        println!("bench: determinism/throughput gate passed");
    } else {
        for f in &failures {
            eprintln!("bench FAILURE: {f}");
        }
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// smoke mode: the end-to-end observability gate
// ---------------------------------------------------------------------------

/// Spawn a socket daemon, run one job through it, poll the `metrics` verb,
/// and require the `citroen-trace top --once` SLO gate to pass — the
/// check.sh stage that proves the observability plane is wired end to end.
fn run_smoke(cfg: ServeConfig) {
    let exe = std::env::current_exe().unwrap_or_else(|e| die(&format!("no current_exe: {e}")));
    let sock = std::env::temp_dir().join(format!("citroen-smoke-{}.sock", std::process::id()));
    let sock_s = sock.to_string_lossy().into_owned();
    let _ = std::fs::remove_file(&sock);

    let mut child = std::process::Command::new(&exe)
        .args([
            "serve",
            "--socket",
            &sock_s,
            "--max-concurrent",
            "2",
            "--metrics-window-ms",
            &cfg.metrics_window_ms.to_string(),
            "--slo-queue-ms",
            &cfg.slo_queue_ms.to_string(),
            "--slo-run-ms",
            &cfg.slo_run_ms.to_string(),
            "--slo-compile-us",
            &cfg.slo_compile_us.to_string(),
            "--slo-hit-ratio",
            &cfg.slo_hit_ratio.to_string(),
        ])
        .spawn()
        .unwrap_or_else(|e| die(&format!("cannot spawn daemon: {e}")));
    let kill_child = |child: &mut std::process::Child| {
        let _ = child.kill();
        let _ = child.wait();
        let _ = std::fs::remove_file(&sock);
    };

    // The daemon binds the socket before accepting; wait for the file.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !sock.exists() {
        if std::time::Instant::now() > deadline {
            kill_child(&mut child);
            die("smoke: daemon socket never appeared");
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let mut failures: Vec<String> = Vec::new();

    // Connection 1: submit one small job, await its result, then poll
    // metrics on the same connection and check the lifecycle landed.
    {
        let stream = std::os::unix::net::UnixStream::connect(&sock)
            .unwrap_or_else(|e| die(&format!("smoke: cannot connect '{sock_s}': {e}")));
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(120)))
            .expect("socket read timeout");
        let mut writer = stream.try_clone().expect("socket clone");
        let mut reader = BufReader::new(stream);
        let job = spec("smoke", 3, 4);
        writer.write_all(submit_line(&job).as_bytes()).expect("daemon socket");
        writer.flush().expect("daemon socket");

        let mut got_result = false;
        let mut got_metrics = false;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => {
                    failures.push(format!("socket read failed: {e}"));
                    break;
                }
            }
            let Ok(v) = Value::parse(line.trim()) else { continue };
            match v.get("type").and_then(Value::as_str).unwrap_or("") {
                "result" => {
                    got_result = true;
                    let exit = v.get("exit").and_then(Value::as_str).unwrap_or("");
                    if exit != "completed" {
                        failures.push(format!("job exited '{exit}', expected 'completed'"));
                    }
                    writer.write_all(b"{\"type\":\"metrics\"}\n").expect("daemon socket");
                    writer.flush().expect("daemon socket");
                }
                "metrics" => {
                    got_metrics = true;
                    let health = v.get("health").and_then(Value::as_str).unwrap_or("");
                    if health != "ok" {
                        failures.push(format!("daemon health '{health}', expected 'ok'"));
                    }
                    let done = v
                        .get("global")
                        .and_then(|g| g.get("counters"))
                        .and_then(|c| c.get("jobs.done"))
                        .and_then(|c| c.get("total"))
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                    if done < 1 {
                        failures.push(format!("metrics report {done} jobs done, expected >= 1"));
                    } else {
                        println!("smoke: metrics healthy — {done} job(s) done");
                    }
                    break;
                }
                "error" => {
                    failures.push(format!("daemon error reply: {}", line.trim()));
                    break;
                }
                _ => {}
            }
        }
        if !got_result {
            failures.push("never saw a result reply".to_string());
        }
        if !got_metrics {
            failures.push("never saw a metrics reply".to_string());
        }
    } // connection dropped: the daemon drains it and accepts the next one

    // Connection 2: the CI SLO gate — `citroen-trace top --once` must
    // render a frame and exit 0 (healthy).
    let trace_exe = exe
        .parent()
        .map(|d| d.join("citroen-trace"))
        .filter(|p| p.exists())
        .unwrap_or_else(|| die("smoke: citroen-trace not found next to citroen-serve"));
    match std::process::Command::new(&trace_exe)
        .args(["top", "--once", "--socket", &sock_s])
        .status()
    {
        Ok(st) if st.success() => println!("smoke: citroen-trace top --once healthy (exit 0)"),
        Ok(st) => failures.push(format!("citroen-trace top --once exited {st}")),
        Err(e) => failures.push(format!("cannot run citroen-trace: {e}")),
    }

    kill_child(&mut child);
    if failures.is_empty() {
        println!("smoke: observability gate passed");
    } else {
        for f in &failures {
            eprintln!("smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
