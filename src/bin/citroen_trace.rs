//! `citroen-trace`: capture and analyse telemetry traces of the tuning stack.
//!
//! Capture: **record** runs a small CITROEN tuning run with a telemetry sink
//! installed — in-memory (`--out`, pretty JSON) or streaming (`--stream-out`,
//! JSONL through [`telemetry::StreamSink`]). Every analysis mode accepts
//! both formats (sniffed by the leading `{"t":...}` record tag).
//!
//! Analysis: **show** (self/total breakdown, hottest spans, counters,
//! histograms), **check** (structural assertions — the tier-1 telemetry
//! gate), **diff** (per-name time and counter deltas between two traces),
//! **tail** (render a live/partial JSONL stream, torn lines tolerated),
//! **flame** (collapsed stacks for standard flamegraph tools), **curve**
//! (per-run convergence table from the tuner's `progress` events).
//!
//! Regression tracking: **baseline** persists a compact per-span-name/counter
//! summary of a trace; **regress** compares a new trace against it with
//! percentage deltas and exits 1 past the threshold — the repo's
//! perf-regression gate.
//!
//! Exits non-zero on parse failures or failed checks.

use citroen::core::{run_citroen, CitroenConfig, Task, TaskConfig};
use citroen::telemetry::{self, Trace};
use citroen_passes::Registry;
use citroen_rt::json::Value;
use citroen_sim::Platform;

const USAGE: &str = "\
citroen-trace — telemetry capture and trace analysis

USAGE:
    citroen-trace record [--out FILE | --stream-out FILE [--stream-cap N]]
                         [--bench NAME] [--budget N] [--seq-len N] [--seed S]
                         [--oracle] [--subsume] [--batch Q]
    citroen-trace show FILE [--top N] [--json]
    citroen-trace check FILE [--min-coverage F]
    citroen-trace diff OLD NEW
    citroen-trace tail FILE
    citroen-trace flame FILE
    citroen-trace curve FILE
    citroen-trace baseline FILE [--out FILE]
    citroen-trace regress FILE --baseline FILE [--threshold PCT]
                          [--span-floor-ms MS] [--counter-floor N]
    citroen-trace top --socket PATH [--once | --count N] [--interval-ms MS]

MODES:
    record           run a traced tuning run; write pretty JSON (--out /
                     stdout) or stream JSONL records live (--stream-out)
    show             breakdown table + hottest spans + counters + histograms
                     (--json: machine-readable summary, exit codes unchanged)
    check            assert expected span kinds and iteration coverage
    diff             per-name time deltas and counter deltas between traces
    tail             render a live/partial JSONL stream (torn lines skipped;
                     rotated FILE.1/FILE.2 generations followed oldest-first)
    flame            collapsed flame stacks ('a;b;c <self_ns>' per line)
    curve            convergence table from the tuner's progress events;
                     exits 1 if the best-so-far column is not monotone
    baseline         persist a per-span-name/counter summary for regress
    regress          compare a trace against a stored baseline; exits 1 when
                     any tracked time or counter grew past the threshold
    top              poll a citroen-serve socket's `metrics` verb and render
                     per-tenant rates/quantiles/health; exits 1 when the
                     daemon reports health degraded (--once is the CI SLO
                     gate: one poll, exit 0 healthy / 1 degraded)

RECORD OPTIONS:
    --bench NAME     benchmark to tune            [default: telecom_gsm]
    --budget N       runtime-measurement budget   [default: 12]
    --seq-len N      pass-sequence length         [default: 16]
    --seed S         tuner seed                   [default: 1]
    --oracle         enable oracle pruning (canonicalizer counters)
    --subsume        enable work-class subsumption collapse
    --batch Q        batched measurement lookahead        [default: 1]
    --stream-cap N   rotate the JSONL stream at ~N bytes per file, keeping
                     FILE.1 and FILE.2 (disk bounded at ~3 caps)

REGRESS OPTIONS:
    --threshold PCT      max tolerated increase, percent        [default: 25]
    --span-floor-ms MS   ignore span names whose baseline total is under
                         MS milliseconds (too noisy to gate on)  [default: 1]
    --counter-floor N    ignore counters whose baseline is under N
                                                                [default: 10]

TOP OPTIONS:
    --socket PATH        the daemon's --socket path (required)
    --once               poll once; exit 0 healthy / 1 degraded
    --count N            poll N times, exit per the last verdict
    --interval-ms MS     delay between polls             [default: 1000]
";

fn die(msg: &str) -> ! {
    eprintln!("citroen-trace: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn parse_num(args: &mut std::env::Args, flag: &str) -> u64 {
    let v = args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
    v.parse().unwrap_or_else(|_| die(&format!("{flag}: bad number '{v}'")))
}

fn load(path: &str) -> Trace {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read '{path}': {e}")));
    Trace::parse_any(&text).unwrap_or_else(|e| die(&format!("'{path}': {e}")))
}

/// Nanoseconds → fixed-width human milliseconds.
fn ms(ns: u64) -> String {
    format!("{:10.3}ms", ns as f64 / 1e6)
}

fn main() {
    let mut args = std::env::args();
    args.next(); // argv[0]
    match args.next().as_deref() {
        Some("record") => record(args),
        Some("show") => show(args),
        Some("check") => check(args),
        Some("diff") => diff(args),
        Some("tail") => tail(args),
        Some("flame") => flame(args),
        Some("curve") => curve(args),
        Some("baseline") => baseline(args),
        Some("regress") => regress(args),
        Some("top") => top(args),
        Some(other) => die(&format!("unknown mode '{other}'")),
        None => die("missing mode"),
    }
}

// ---------------------------------------------------------------------------
// record
// ---------------------------------------------------------------------------

fn record(mut args: std::env::Args) {
    let (mut out, mut bench) = (None::<String>, "telecom_gsm".to_string());
    let mut stream_out = None::<String>;
    let mut stream_cap = None::<u64>;
    let (mut budget, mut seq_len, mut seed) = (12usize, 16usize, 1u64);
    let (mut oracle, mut subsume, mut batch) = (false, false, 1usize);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().unwrap_or_else(|| die("--out needs a file"))),
            "--stream-out" => {
                stream_out = Some(args.next().unwrap_or_else(|| die("--stream-out needs a file")))
            }
            "--stream-cap" => stream_cap = Some(parse_num(&mut args, "--stream-cap")),
            "--bench" => bench = args.next().unwrap_or_else(|| die("--bench needs a name")),
            "--budget" => budget = parse_num(&mut args, "--budget") as usize,
            "--seq-len" => seq_len = parse_num(&mut args, "--seq-len") as usize,
            "--seed" => seed = parse_num(&mut args, "--seed"),
            "--oracle" => oracle = true,
            "--subsume" => subsume = true,
            "--batch" => batch = parse_num(&mut args, "--batch") as usize,
            other => die(&format!("record: unknown argument '{other}'")),
        }
    }
    if out.is_some() && stream_out.is_some() {
        die("record: --out and --stream-out are mutually exclusive");
    }
    if stream_cap.is_some() && stream_out.is_none() {
        die("record: --stream-cap only applies with --stream-out");
    }
    let b = citroen_suite::all_benchmarks()
        .into_iter()
        .find(|b| b.name == bench)
        .unwrap_or_else(|| {
            let names: Vec<&str> =
                citroen_suite::all_benchmarks().iter().map(|b| b.name).collect();
            die(&format!("unknown benchmark '{bench}'; have: {}", names.join(", ")))
        });

    match &stream_out {
        Some(path) => match stream_cap {
            Some(cap) => telemetry::enable_stream_capped(path, cap)
                .unwrap_or_else(|e| die(&format!("cannot stream to '{path}': {e}"))),
            None => telemetry::enable_stream(path)
                .unwrap_or_else(|e| die(&format!("cannot stream to '{path}': {e}"))),
        },
        None => telemetry::enable(),
    }
    let mut task = Task::new(
        b,
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len, seed, ..Default::default() },
    );
    let cfg = CitroenConfig {
        candidates: 24,
        init_random: 6,
        oracle_prune: oracle,
        subsume_collapse: subsume,
        batch,
        seed,
        ..Default::default()
    };
    let (trace, _) = run_citroen(&mut task, budget, &cfg);

    if let Some(path) = &stream_out {
        // Dropping the sink joins the writer thread and flushes the file.
        drop(telemetry::disable());
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read back '{path}': {e}")));
        let telem = Trace::parse_jsonl(&text)
            .unwrap_or_else(|e| die(&format!("streamed trace '{path}': {e}")));
        eprintln!(
            "[record] {bench}: best {:.3e}s over {} measurements; streamed {} lines \
             ({} spans, {} events) to {path}",
            trace.best(),
            task.measurements,
            text.lines().count(),
            telem.spans.len(),
            telem.events.len()
        );
        return;
    }

    let telem = telemetry::take_trace().expect("memory sink must yield a trace");
    telemetry::disable();

    eprintln!(
        "[record] {bench}: best {:.3e}s over {} measurements, {} spans, {} counters",
        trace.best(),
        task.measurements,
        telem.spans.len(),
        telem.counters.len()
    );
    let text = telem.emit_pretty();
    match out {
        Some(path) => std::fs::write(&path, text)
            .unwrap_or_else(|e| die(&format!("cannot write '{path}': {e}"))),
        None => println!("{text}"),
    }
}

// ---------------------------------------------------------------------------
// show
// ---------------------------------------------------------------------------

fn show(mut args: std::env::Args) {
    let mut file = None::<String>;
    let mut top = 10usize;
    let mut json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => top = parse_num(&mut args, "--top") as usize,
            "--json" => json = true,
            other if file.is_none() => file = Some(other.to_string()),
            other => die(&format!("show: unexpected argument '{other}'")),
        }
    }
    let t = load(&file.unwrap_or_else(|| die("show needs a trace file")));
    if json {
        println!("{}", show_json(&t, top).emit_pretty());
        return;
    }

    let rows = t.aggregate();
    let wall: u64 = t.spans.iter().filter(|s| s.parent == 0).map(|s| s.dur_ns).sum();
    println!("== span breakdown (self time, descending; wall = root spans) ==");
    println!("{:<28} {:>7} {:>12} {:>12} {:>7}", "name", "count", "total", "self", "self%");
    for r in &rows {
        let pct = if wall > 0 { 100.0 * r.self_ns as f64 / wall as f64 } else { 0.0 };
        println!("{:<28} {:>7} {} {} {:>6.1}%", r.name, r.count, ms(r.total_ns), ms(r.self_ns), pct);
    }

    println!("\n== hottest {top} spans ==");
    for s in t.hottest(top) {
        println!("{:<28} {}  (id {}, thread {}, +{})", s.name, ms(s.dur_ns), s.id, s.thread, ms(s.start_ns));
    }

    // Sanitizer-scheduling and canonicalizer effectiveness, surfaced ahead
    // of the raw counter dump: how often the S1–S11 re-analysis actually ran
    // vs. was provably skippable, and how many passes the subsumption matrix
    // dropped before compilation.
    let san_runs = t.counters.get("citroen.sanitize.runs").copied().unwrap_or(0);
    let san_skips = t.counters.get("citroen.sanitize.skips").copied().unwrap_or(0);
    let subsume_dropped = t.counters.get("canon.subsume_dropped").copied().unwrap_or(0);
    if san_runs + san_skips + subsume_dropped > 0 {
        println!("\n== sanitizer / canonicalizer ==");
        println!("{:<32} {san_runs}", "citroen.sanitize.runs");
        println!("{:<32} {san_skips}", "citroen.sanitize.skips");
        if san_runs + san_skips > 0 {
            let rate = 100.0 * san_skips as f64 / (san_runs + san_skips) as f64;
            println!("{:<32} {rate:.1}%", "sanitize skip rate");
        }
        println!("{:<32} {subsume_dropped}", "canon.subsume_dropped");
    }

    if !t.counters.is_empty() {
        println!("\n== counters ==");
        for (k, v) in &t.counters {
            println!("{k:<32} {v}");
        }
    }
    if !t.hists.is_empty() {
        println!("\n== histograms ==");
        println!("{:<24} {:>8} {:>12} {:>10} {:>10} {:>10}", "name", "count", "mean", "p50", "p99", "max");
        for (k, h) in &t.hists {
            println!(
                "{k:<24} {:>8} {:>12.1} {:>10} {:>10} {:>10}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            );
        }
    }
    if let Some(cov) = t.coverage("iteration", &["compile", "measure", "fit", "acquire", "batch"]) {
        println!("\niteration coverage by compile/measure/fit/acquire/batch: {:.1}%", cov * 100.0);
    }
}

/// The machine-readable `show` summary, mirroring `citroen-analyze --json`:
/// a `mode`-tagged object with the same information as the text tables.
/// Fractional values travel as `f64::to_bits` (`*_bits`), matching the serve
/// protocol convention.
fn show_json(t: &Trace, top: usize) -> Value {
    let wall: u64 = t.spans.iter().filter(|s| s.parent == 0).map(|s| s.dur_ns).sum();
    let spans = Value::Arr(
        t.aggregate()
            .into_iter()
            .map(|r| {
                Value::Obj(vec![
                    ("name".into(), Value::str(r.name)),
                    ("count".into(), Value::U64(r.count)),
                    ("total_ns".into(), Value::U64(r.total_ns)),
                    ("self_ns".into(), Value::U64(r.self_ns)),
                ])
            })
            .collect(),
    );
    let hottest = Value::Arr(
        t.hottest(top)
            .into_iter()
            .map(|s| {
                Value::Obj(vec![
                    ("name".into(), Value::str(s.name.clone())),
                    ("dur_ns".into(), Value::U64(s.dur_ns)),
                    ("id".into(), Value::U64(s.id)),
                    ("thread".into(), Value::U64(s.thread)),
                    ("start_ns".into(), Value::U64(s.start_ns)),
                ])
            })
            .collect(),
    );
    let counters =
        Value::Obj(t.counters.iter().map(|(k, v)| (k.clone(), Value::U64(*v))).collect());
    let hists = Value::Obj(
        t.hists
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Obj(vec![
                        ("count".into(), Value::U64(h.count)),
                        ("mean_bits".into(), Value::U64(h.mean().to_bits())),
                        ("p50".into(), Value::U64(h.quantile(0.5))),
                        ("p99".into(), Value::U64(h.quantile(0.99))),
                        ("max".into(), Value::U64(h.max)),
                    ]),
                )
            })
            .collect(),
    );
    // The sanitize/subsume effectiveness table from the text output.
    let get = |k: &str| t.counters.get(k).copied().unwrap_or(0);
    let sanitize = Value::Obj(vec![
        ("runs".into(), Value::U64(get("citroen.sanitize.runs"))),
        ("skips".into(), Value::U64(get("citroen.sanitize.skips"))),
        ("subsume_dropped".into(), Value::U64(get("canon.subsume_dropped"))),
    ]);
    let mut fields = vec![
        ("mode".into(), Value::str("show")),
        ("wall_ns".into(), Value::U64(wall)),
        ("spans".into(), spans),
        ("hottest".into(), hottest),
        ("sanitize".into(), sanitize),
        ("counters".into(), counters),
        ("histograms".into(), hists),
    ];
    if let Some(cov) =
        t.coverage("iteration", &["compile", "measure", "fit", "acquire", "batch"])
    {
        fields.push(("iteration_coverage_bits".into(), Value::U64(cov.to_bits())));
    }
    Value::Obj(fields)
}

// ---------------------------------------------------------------------------
// check
// ---------------------------------------------------------------------------

fn check(mut args: std::env::Args) {
    let mut file = None::<String>;
    let mut min_cov = 0.9f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-coverage" => {
                let v = args.next().unwrap_or_else(|| die("--min-coverage needs a value"));
                min_cov = v.parse().unwrap_or_else(|_| die("--min-coverage: bad number"));
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => die(&format!("check: unexpected argument '{other}'")),
        }
    }
    let t = load(&file.unwrap_or_else(|| die("check needs a trace file")));

    let mut failed = false;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failed = true;
    };

    // The span kinds a traced tuning run must produce.
    for required in ["citroen.run", "init", "iteration", "compile", "measure", "fit", "acquire", "gp.fit", "sim.execute"] {
        if !t.spans.iter().any(|s| s.name == required) {
            fail(format!("required span kind '{required}' missing"));
        }
    }
    // And the counters the hot paths bump.
    for required in ["task.compilations", "task.measurements", "citroen.iterations", "gp.predict.calls", "acq.evals"] {
        if !t.counters.contains_key(required) {
            fail(format!("required counter '{required}' missing"));
        }
    }
    match t.coverage("iteration", &["compile", "measure", "fit", "acquire", "batch"]) {
        Some(cov) => {
            println!("iteration coverage: {:.1}% (floor {:.0}%)", cov * 100.0, min_cov * 100.0);
            if cov < min_cov {
                fail(format!(
                    "iteration spans only {:.1}% covered by compile/measure/fit/acquire/batch (need {:.0}%)",
                    cov * 100.0,
                    min_cov * 100.0
                ));
            }
        }
        None => fail("no 'iteration' spans to check coverage on".into()),
    }
    // Parent links must resolve (0 or a recorded span id).
    let ids: std::collections::HashSet<u64> = t.spans.iter().map(|s| s.id).collect();
    let dangling = t.spans.iter().filter(|s| s.parent != 0 && !ids.contains(&s.parent)).count();
    if dangling > 0 {
        fail(format!("{dangling} spans have dangling parent ids"));
    }

    if failed {
        std::process::exit(1);
    }
    println!("trace OK: {} spans, {} counters, {} histograms", t.spans.len(), t.counters.len(), t.hists.len());
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

fn diff(mut args: std::env::Args) {
    let old = args.next().unwrap_or_else(|| die("diff needs OLD and NEW trace files"));
    let new = args.next().unwrap_or_else(|| die("diff needs OLD and NEW trace files"));
    if let Some(extra) = args.next() {
        die(&format!("diff: unexpected argument '{extra}'"));
    }
    let (a, b) = (load(&old), load(&new));

    let into_map = |t: &Trace| -> std::collections::BTreeMap<String, (u64, u64, u64)> {
        t.aggregate().into_iter().map(|r| (r.name, (r.count, r.total_ns, r.self_ns))).collect()
    };
    let (ra, rb) = (into_map(&a), into_map(&b));
    let names: std::collections::BTreeSet<&String> = ra.keys().chain(rb.keys()).collect();

    println!("== span time deltas (new - old, by self time) ==");
    println!("{:<28} {:>14} {:>14} {:>14}", "name", "old self", "new self", "delta");
    let mut rows: Vec<(&String, u64, u64)> = names
        .iter()
        .map(|n| {
            let sa = ra.get(*n).map(|r| r.2).unwrap_or(0);
            let sb = rb.get(*n).map(|r| r.2).unwrap_or(0);
            (*n, sa, sb)
        })
        .collect();
    rows.sort_by_key(|(_, sa, sb)| std::cmp::Reverse(sa.abs_diff(*sb)));
    for (n, sa, sb) in rows {
        let delta = sb as i128 - sa as i128;
        println!("{n:<28} {} {} {:>+13.3}ms", ms(sa), ms(sb), delta as f64 / 1e6);
    }

    println!("\n== counter deltas (new - old) ==");
    let keys: std::collections::BTreeSet<&String> = a.counters.keys().chain(b.counters.keys()).collect();
    for k in keys {
        let va = a.counters.get(k).copied().unwrap_or(0);
        let vb = b.counters.get(k).copied().unwrap_or(0);
        if va != vb {
            println!("{k:<32} {va:>12} -> {vb:<12} ({:+})", vb as i128 - va as i128);
        } else {
            println!("{k:<32} {va:>12} (unchanged)");
        }
    }
}

// ---------------------------------------------------------------------------
// tail
// ---------------------------------------------------------------------------

/// Render a live/partial JSONL stream: the writer may be mid-line and the
/// run may still be going, so parse lossily and summarise what's there.
///
/// `--stream-cap` writers rotate the stream as `FILE.2` (oldest), `FILE.1`,
/// `FILE` (live); tail follows the whole chain oldest-first so the summary
/// covers the full run, not just the most recent generation.
fn tail(mut args: std::env::Args) {
    let file = args.next().unwrap_or_else(|| die("tail needs a trace file"));
    if let Some(extra) = args.next() {
        die(&format!("tail: unexpected argument '{extra}'"));
    }
    let mut t = Trace::default();
    let mut skipped = 0usize;
    let mut generations = 0usize;
    for gen in [format!("{file}.2"), format!("{file}.1"), file.clone()] {
        let text = match std::fs::read_to_string(&gen) {
            Ok(text) => text,
            // Rotated generations are optional; only the live file must exist.
            Err(_) if gen != file => continue,
            Err(e) => die(&format!("cannot read '{gen}': {e}")),
        };
        generations += 1;
        let (part, part_skipped) = Trace::parse_jsonl_lossy(&text);
        skipped += part_skipped;
        t.spans.extend(part.spans);
        t.events.extend(part.events);
        for (name, v) in part.counters {
            *t.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in part.hists {
            t.hists.entry(name).or_default().merge(&h);
        }
    }

    println!(
        "{}{}: {} spans, {} events, {} counters, {} histograms{}",
        file,
        if generations > 1 { format!(" (+{} rotated)", generations - 1) } else { String::new() },
        t.spans.len(),
        t.events.len(),
        t.counters.len(),
        t.hists.len(),
        if skipped > 0 { format!(" ({skipped} unparseable lines skipped)") } else { String::new() }
    );
    println!("\n== span breakdown (self time, descending) ==");
    println!("{:<28} {:>7} {:>12} {:>12}", "name", "count", "total", "self");
    for r in t.aggregate() {
        println!("{:<28} {:>7} {} {}", r.name, r.count, ms(r.total_ns), ms(r.self_ns));
    }
    let progress: Vec<_> = t.events.iter().filter(|e| e.name == "progress").collect();
    if let Some(last) = progress.last() {
        println!("\n== last {} progress events (of {}) ==", progress.len().min(5), progress.len());
        for e in progress.iter().rev().take(5).rev() {
            println!(
                "iter {:>4}  meas {:>4}  compiles {:>5}  best {}",
                e.field("iter").unwrap_or(0),
                e.field("measurements").unwrap_or(0),
                e.field("compilations").unwrap_or(0),
                ms(e.field("best_ns").unwrap_or(0)),
            );
        }
        let _ = last;
    }
}

// ---------------------------------------------------------------------------
// flame
// ---------------------------------------------------------------------------

/// Collapsed-stack output: one `name;name;name <self_ns>` line per distinct
/// stack — the input format standard flamegraph renderers consume.
fn flame(mut args: std::env::Args) {
    let file = args.next().unwrap_or_else(|| die("flame needs a trace file"));
    if let Some(extra) = args.next() {
        die(&format!("flame: unexpected argument '{extra}'"));
    }
    let t = load(&file);
    if t.spans.is_empty() {
        die(&format!("'{file}' contains no spans"));
    }
    for (stack, self_ns) in t.flame_stacks() {
        if self_ns > 0 {
            println!("{stack} {self_ns}");
        }
    }
}

// ---------------------------------------------------------------------------
// curve
// ---------------------------------------------------------------------------

/// Convergence table from the tuner's `progress` events. Self-checking: the
/// best-so-far column must be non-increasing (it tracks a running minimum),
/// so a violation means the event stream is corrupt — exit 1.
fn curve(mut args: std::env::Args) {
    let file = args.next().unwrap_or_else(|| die("curve needs a trace file"));
    if let Some(extra) = args.next() {
        die(&format!("curve: unexpected argument '{extra}'"));
    }
    let t = load(&file);
    let o3_ns = t
        .events
        .iter()
        .find(|e| e.name == "run.meta")
        .and_then(|e| e.field("o3_ns"))
        .filter(|&v| v > 0);
    let progress: Vec<_> = t.events.iter().filter(|e| e.name == "progress").collect();
    if progress.is_empty() {
        eprintln!("citroen-trace: '{file}' has no progress events (not a traced tuning run?)");
        std::process::exit(1);
    }

    println!(
        "{:>5} {:>5} {:>8} {:>6} {:>7} {:>12} {:>12} {:>8}",
        "iter", "meas", "compile", "cache", "dropped", "last", "best", "speedup"
    );
    let mut prev_best = u64::MAX;
    let mut monotone = true;
    for e in &progress {
        let best = e.field("best_ns").unwrap_or(0);
        if best > prev_best {
            monotone = false;
        }
        if best > 0 {
            prev_best = best;
        }
        let speedup = match (o3_ns, best) {
            (Some(o3), b) if b > 0 => format!("{:>7.3}x", o3 as f64 / b as f64),
            _ => format!("{:>8}", "-"),
        };
        println!(
            "{:>5} {:>5} {:>8} {:>6} {:>7} {} {} {}",
            e.field("iter").unwrap_or(0),
            e.field("measurements").unwrap_or(0),
            e.field("compilations").unwrap_or(0),
            e.field("cache_hits").unwrap_or(0),
            e.field("coverage_dropped").unwrap_or(0),
            ms(e.field("last_ns").unwrap_or(0)),
            ms(best),
            speedup
        );
    }
    if !monotone {
        eprintln!("FAIL: best-so-far column is not monotone non-increasing");
        std::process::exit(1);
    }
    println!("\n{} progress events; best-so-far column monotone OK", progress.len());
}

// ---------------------------------------------------------------------------
// baseline / regress
// ---------------------------------------------------------------------------

/// Serialise the regression-tracking summary of a trace: per-span-name
/// aggregates plus counter totals. Deliberately excludes wall-clock-free
/// quantities only (counts *and* times are kept — `regress` decides what's
/// stable enough to compare).
fn summary_json(t: &Trace) -> Value {
    let names = Value::Arr(
        t.aggregate()
            .into_iter()
            .map(|r| {
                Value::Obj(vec![
                    ("name".into(), Value::str(r.name)),
                    ("count".into(), Value::U64(r.count)),
                    ("total_ns".into(), Value::U64(r.total_ns)),
                    ("self_ns".into(), Value::U64(r.self_ns)),
                ])
            })
            .collect(),
    );
    let counters = Value::Obj(
        t.counters.iter().map(|(k, v)| (k.clone(), Value::U64(*v))).collect(),
    );
    Value::Obj(vec![
        ("version".into(), Value::U64(1)),
        ("names".into(), names),
        ("counters".into(), counters),
    ])
}

fn baseline(mut args: std::env::Args) {
    let mut file = None::<String>;
    let mut out = None::<String>;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().unwrap_or_else(|| die("--out needs a file"))),
            other if file.is_none() => file = Some(other.to_string()),
            other => die(&format!("baseline: unexpected argument '{other}'")),
        }
    }
    let t = load(&file.unwrap_or_else(|| die("baseline needs a trace file")));
    let text = summary_json(&t).emit_pretty();
    match out {
        Some(path) => {
            std::fs::write(&path, &text)
                .unwrap_or_else(|e| die(&format!("cannot write '{path}': {e}")));
            eprintln!("[baseline] wrote {} span names, {} counters to {path}",
                t.aggregate().len(), t.counters.len());
        }
        None => println!("{text}"),
    }
}

/// Default time floor below which a span name is too noisy to gate on
/// (1 ms), and the default counter floor below which relative deltas are
/// meaningless. Overridable with `--span-floor-ms` / `--counter-floor`.
const REGRESS_MIN_NS: u64 = 1_000_000;
const REGRESS_MIN_COUNT: u64 = 10;

fn regress(mut args: std::env::Args) {
    let mut file = None::<String>;
    let mut base_path = None::<String>;
    let mut threshold = 25.0f64;
    let mut span_floor_ns = REGRESS_MIN_NS;
    let mut counter_floor = REGRESS_MIN_COUNT;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                base_path = Some(args.next().unwrap_or_else(|| die("--baseline needs a file")))
            }
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| die("--threshold needs a value"));
                threshold = v.parse().unwrap_or_else(|_| die("--threshold: bad number"));
            }
            "--span-floor-ms" => {
                let v = args.next().unwrap_or_else(|| die("--span-floor-ms needs a value"));
                let ms: f64 = v.parse().unwrap_or_else(|_| die("--span-floor-ms: bad number"));
                if !(ms >= 0.0) {
                    die("--span-floor-ms: must be non-negative");
                }
                span_floor_ns = (ms * 1e6) as u64;
            }
            "--counter-floor" => counter_floor = parse_num(&mut args, "--counter-floor"),
            other if file.is_none() => file = Some(other.to_string()),
            other => die(&format!("regress: unexpected argument '{other}'")),
        }
    }
    let t = load(&file.unwrap_or_else(|| die("regress needs a trace file")));
    let base_path = base_path.unwrap_or_else(|| die("regress needs --baseline FILE"));
    let base_text = std::fs::read_to_string(&base_path)
        .unwrap_or_else(|e| die(&format!("cannot read '{base_path}': {e}")));
    let base = Value::parse(&base_text)
        .unwrap_or_else(|e| die(&format!("'{base_path}': {e}")));
    if base.get("version").and_then(Value::as_u64) != Some(1) {
        die(&format!("'{base_path}' is not a version-1 baseline summary"));
    }

    let new_names: std::collections::BTreeMap<String, u64> =
        t.aggregate().into_iter().map(|r| (r.name, r.total_ns)).collect();
    let mut breaches: Vec<String> = Vec::new();
    let pct = |old: u64, new: u64| -> f64 { 100.0 * (new as f64 - old as f64) / old as f64 };

    println!("== regress vs {base_path} (threshold +{threshold:.0}%) ==");
    println!("{:<28} {:>14} {:>14} {:>8}", "span name (total)", "baseline", "current", "delta");
    for entry in base.get("names").and_then(Value::as_arr).unwrap_or(&[]) {
        let (Some(name), Some(old)) = (
            entry.get("name").and_then(Value::as_str),
            entry.get("total_ns").and_then(Value::as_u64),
        ) else {
            die(&format!("'{base_path}': malformed names entry"));
        };
        if old < span_floor_ns {
            continue; // too small to gate on
        }
        let new = new_names.get(name).copied().unwrap_or(0);
        let delta = pct(old, new);
        let mark = if delta > threshold { " <-- REGRESSION" } else { "" };
        println!("{name:<28} {} {} {delta:>+7.1}%{mark}", ms(old), ms(new));
        if delta > threshold {
            breaches.push(format!("span '{name}' total time {delta:+.1}%"));
        }
    }
    println!("\n{:<28} {:>14} {:>14} {:>8}", "counter", "baseline", "current", "delta");
    if let Some(Value::Obj(pairs)) = base.get("counters") {
        for (name, v) in pairs {
            let old = v
                .as_u64()
                .unwrap_or_else(|| die(&format!("'{base_path}': counter '{name}' not integer")));
            if old < counter_floor {
                continue;
            }
            let new = t.counters.get(name).copied().unwrap_or(0);
            let delta = pct(old, new);
            let mark = if delta > threshold { " <-- REGRESSION" } else { "" };
            println!("{name:<28} {old:>14} {new:>14} {delta:>+7.1}%{mark}");
            if delta > threshold {
                breaches.push(format!("counter '{name}' {delta:+.1}%"));
            }
        }
    }

    if breaches.is_empty() {
        println!("\nregress OK: nothing grew more than {threshold:.0}%");
    } else {
        eprintln!("\nFAIL: {} regression(s) past +{threshold:.0}%:", breaches.len());
        for b in &breaches {
            eprintln!("  - {b}");
        }
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// top
// ---------------------------------------------------------------------------

/// Lenient field accessors for rendering daemon replies: missing fields
/// render as 0 / "" instead of aborting, so `top` degrades gracefully
/// against older daemons.
fn ju(v: &Value, k: &str) -> u64 {
    v.get(k).and_then(Value::as_u64).unwrap_or(0)
}

fn js<'a>(v: &'a Value, k: &str) -> &'a str {
    v.get(k).and_then(Value::as_str).unwrap_or("")
}

/// Live dashboard over a running daemon's `metrics` verb. The exit code is
/// the last poll's health verdict, which makes `--once` a CI SLO gate: one
/// poll, exit 0 healthy / 1 degraded.
fn top(mut args: std::env::Args) {
    let mut socket = None::<String>;
    let mut count: Option<u64> = None; // None = poll forever
    let mut interval_ms = 1000u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(args.next().unwrap_or_else(|| die("--socket needs a path")))
            }
            "--once" => count = Some(1),
            "--count" => count = Some(parse_num(&mut args, "--count").max(1)),
            "--interval-ms" => interval_ms = parse_num(&mut args, "--interval-ms"),
            other => die(&format!("top: unexpected argument '{other}'")),
        }
    }
    let socket = socket.unwrap_or_else(|| die("top needs --socket PATH"));

    let mut healthy;
    let mut polls = 0u64;
    loop {
        healthy = render_top(&poll_metrics(&socket));
        polls += 1;
        if matches!(count, Some(n) if polls >= n) {
            break;
        }
        println!();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    std::process::exit(if healthy { 0 } else { 1 });
}

/// One `metrics` poll: connect to the daemon socket, send the verb,
/// half-close the write side (the daemon serves the connection until EOF),
/// and read replies until the metrics line arrives.
fn poll_metrics(socket: &str) -> Value {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::os::unix::net::UnixStream::connect(socket)
        .unwrap_or_else(|e| die(&format!("top: cannot connect to '{socket}': {e}")));
    stream
        .write_all(b"{\"type\":\"metrics\"}\n")
        .and_then(|_| stream.shutdown(std::net::Shutdown::Write))
        .unwrap_or_else(|e| die(&format!("top: cannot write to '{socket}': {e}")));
    for line in BufReader::new(stream).lines() {
        let line = line.unwrap_or_else(|e| die(&format!("top: read from '{socket}': {e}")));
        let Ok(v) = Value::parse(&line) else { continue };
        match js(&v, "type").to_string().as_str() {
            "metrics" => return v,
            "error" => {
                die(&format!("top: daemon error: {} ({})", js(&v, "msg"), js(&v, "code")))
            }
            _ => {} // job/status chatter from the connection drain
        }
    }
    die(&format!("top: '{socket}' closed without a metrics reply"))
}

/// Render one dashboard frame from a `metrics` reply; returns `true` when
/// the daemon reports `health: ok`.
fn render_top(v: &Value) -> bool {
    let health = js(v, "health");
    println!(
        "citroen-serve: up {:.1}s  health {health}  (window {}ms x {})",
        ju(v, "uptime_ms") as f64 / 1e3,
        ju(v, "window_ms"),
        ju(v, "windows")
    );

    if let Some(slo) = v.get("slo").and_then(Value::as_arr) {
        println!("\n== SLO sentinels ==");
        println!(
            "{:<28} {:>6} {:>12} {:>12} {:>9} {:>9}",
            "name", "kind", "ewma", "threshold", "breached", "breaches"
        );
        for s in slo {
            println!(
                "{:<28} {:>6} {:>12} {:>12} {:>9} {:>9}",
                js(s, "name"),
                js(s, "kind"),
                js(s, "ewma"),
                js(s, "threshold"),
                if ju(s, "breached") != 0 { "YES" } else { "no" },
                ju(s, "breaches")
            );
        }
    }

    if let Some(g) = v.get("global") {
        if let Some(Value::Obj(counters)) = g.get("counters") {
            if !counters.is_empty() {
                println!("\n== global counters ==");
                println!(
                    "{:<24} {:>10} {:>10}  windows (oldest-first)",
                    "name", "total", "rate/s"
                );
                for (name, c) in counters {
                    let win: Vec<String> = c
                        .get("win")
                        .and_then(Value::as_arr)
                        .unwrap_or(&[])
                        .iter()
                        .map(|w| w.as_u64().unwrap_or(0).to_string())
                        .collect();
                    println!(
                        "{name:<24} {:>10} {:>10}  [{}]",
                        ju(c, "total"),
                        js(c, "rate"),
                        win.join(" ")
                    );
                }
            }
        }
        if let Some(Value::Obj(gauges)) = g.get("gauges") {
            if !gauges.is_empty() {
                println!("\n== gauges ==");
                for (name, val) in gauges {
                    println!("{name:<24} {}", val.as_u64().unwrap_or(0));
                }
            }
        }
        if let Some(Value::Obj(hists)) = g.get("hists") {
            if !hists.is_empty() {
                println!("\n== global latency (all-time | recent windows) ==");
                println!(
                    "{:<24} {:>8} {:>8} {:>8} {:>8}  {:>8} {:>8}",
                    "name", "count", "p50", "p90", "p99", "r.count", "r.p99"
                );
                for (name, h) in hists {
                    let r = h.get("recent");
                    println!(
                        "{name:<24} {:>8} {:>8} {:>8} {:>8}  {:>8} {:>8}",
                        ju(h, "count"),
                        ju(h, "p50"),
                        ju(h, "p90"),
                        ju(h, "p99"),
                        r.map(|r| ju(r, "count")).unwrap_or(0),
                        r.map(|r| ju(r, "p99")).unwrap_or(0),
                    );
                }
            }
        }
    }

    if let Some(Value::Obj(tenants)) = v.get("tenants") {
        if !tenants.is_empty() {
            println!("\n== tenants ==");
            println!(
                "{:<20} {:>9} {:>7} {:>7} {:>7} {:>9}",
                "tenant", "health", "done", "failed", "cancel", "compiles"
            );
            for (name, t) in tenants {
                let c = t.get("counters");
                let total =
                    |key: &str| c.and_then(|c| c.get(key)).map(|x| ju(x, "total")).unwrap_or(0);
                println!(
                    "{name:<20} {:>9} {:>7} {:>7} {:>7} {:>9}",
                    js(t, "health"),
                    total("jobs.done"),
                    total("jobs.failed"),
                    total("jobs.cancelled"),
                    total("compiles")
                );
            }
        }
    }

    if let Some(recent) = v.get("recent").and_then(Value::as_arr) {
        if !recent.is_empty() {
            println!("\n== recent jobs (newest first) ==");
            println!(
                "{:<12} {:<16} {:>10} {:>9} {:>9} {:>9}",
                "id", "tenant", "exit", "queue_ms", "run_ms", "compiles"
            );
            for j in recent.iter().take(10) {
                println!(
                    "{:<12} {:<16} {:>10} {:>9} {:>9} {:>9}",
                    js(j, "id"),
                    js(j, "tenant"),
                    js(j, "exit"),
                    ju(j, "queue_ms"),
                    ju(j, "run_ms"),
                    ju(j, "compiles")
                );
            }
        }
    }

    health == "ok"
}
