//! `citroen-trace`: capture and analyse telemetry traces of the tuning stack.
//!
//! Four modes:
//!
//! * **record**: run a small CITROEN tuning run with the in-memory telemetry
//!   sink installed and write the exported trace JSON.
//! * **show**: render a trace — per-span-name self/total breakdown table,
//!   the top-N hottest individual spans, counter totals, and histogram
//!   summaries.
//! * **check**: structural assertions on a trace (the tier-1 telemetry
//!   gate): the expected span kinds exist, and the `iteration` spans are
//!   ≥90% covered by their compile/measure/fit/acquire children.
//! * **diff**: compare two traces — per-name time deltas and counter deltas,
//!   for before/after comparisons of optimisation work.
//!
//! Exits non-zero on parse failures or failed checks.

use citroen::core::{run_citroen, CitroenConfig, Task, TaskConfig};
use citroen::telemetry::{self, Trace};
use citroen_passes::Registry;
use citroen_sim::Platform;

const USAGE: &str = "\
citroen-trace — telemetry capture and trace analysis

USAGE:
    citroen-trace record [--out FILE] [--bench NAME] [--budget N]
                         [--seq-len N] [--seed S] [--oracle]
    citroen-trace show FILE [--top N]
    citroen-trace check FILE [--min-coverage F]
    citroen-trace diff OLD NEW

MODES:
    record           run a traced tuning run, write the trace JSON
                     (stdout unless --out)
    show             breakdown table + hottest spans + counters + histograms
    check            assert expected span kinds and iteration coverage
    diff             per-name time deltas and counter deltas between traces

RECORD OPTIONS:
    --bench NAME     benchmark to tune            [default: telecom_gsm]
    --budget N       runtime-measurement budget   [default: 12]
    --seq-len N      pass-sequence length         [default: 16]
    --seed S         tuner seed                   [default: 1]
    --oracle         enable oracle pruning (canonicalizer counters)
";

fn die(msg: &str) -> ! {
    eprintln!("citroen-trace: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn parse_num(args: &mut std::env::Args, flag: &str) -> u64 {
    let v = args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
    v.parse().unwrap_or_else(|_| die(&format!("{flag}: bad number '{v}'")))
}

fn load(path: &str) -> Trace {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read '{path}': {e}")));
    Trace::parse(&text).unwrap_or_else(|e| die(&format!("'{path}': {e}")))
}

/// Nanoseconds → fixed-width human milliseconds.
fn ms(ns: u64) -> String {
    format!("{:10.3}ms", ns as f64 / 1e6)
}

fn main() {
    let mut args = std::env::args();
    args.next(); // argv[0]
    match args.next().as_deref() {
        Some("record") => record(args),
        Some("show") => show(args),
        Some("check") => check(args),
        Some("diff") => diff(args),
        Some(other) => die(&format!("unknown mode '{other}'")),
        None => die("missing mode"),
    }
}

// ---------------------------------------------------------------------------
// record
// ---------------------------------------------------------------------------

fn record(mut args: std::env::Args) {
    let (mut out, mut bench) = (None::<String>, "telecom_gsm".to_string());
    let (mut budget, mut seq_len, mut seed) = (12usize, 16usize, 1u64);
    let mut oracle = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().unwrap_or_else(|| die("--out needs a file"))),
            "--bench" => bench = args.next().unwrap_or_else(|| die("--bench needs a name")),
            "--budget" => budget = parse_num(&mut args, "--budget") as usize,
            "--seq-len" => seq_len = parse_num(&mut args, "--seq-len") as usize,
            "--seed" => seed = parse_num(&mut args, "--seed"),
            "--oracle" => oracle = true,
            other => die(&format!("record: unknown argument '{other}'")),
        }
    }
    let b = citroen_suite::all_benchmarks()
        .into_iter()
        .find(|b| b.name == bench)
        .unwrap_or_else(|| {
            let names: Vec<&str> =
                citroen_suite::all_benchmarks().iter().map(|b| b.name).collect();
            die(&format!("unknown benchmark '{bench}'; have: {}", names.join(", ")))
        });

    telemetry::enable();
    let mut task = Task::new(
        b,
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len, seed, ..Default::default() },
    );
    let cfg = CitroenConfig {
        candidates: 24,
        init_random: 6,
        oracle_prune: oracle,
        seed,
        ..Default::default()
    };
    let (trace, _) = run_citroen(&mut task, budget, &cfg);
    let telem = telemetry::take_trace().expect("memory sink must yield a trace");
    telemetry::disable();

    eprintln!(
        "[record] {bench}: best {:.3e}s over {} measurements, {} spans, {} counters",
        trace.best(),
        task.measurements,
        telem.spans.len(),
        telem.counters.len()
    );
    let text = telem.emit_pretty();
    match out {
        Some(path) => std::fs::write(&path, text)
            .unwrap_or_else(|e| die(&format!("cannot write '{path}': {e}"))),
        None => println!("{text}"),
    }
}

// ---------------------------------------------------------------------------
// show
// ---------------------------------------------------------------------------

fn show(mut args: std::env::Args) {
    let mut file = None::<String>;
    let mut top = 10usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => top = parse_num(&mut args, "--top") as usize,
            other if file.is_none() => file = Some(other.to_string()),
            other => die(&format!("show: unexpected argument '{other}'")),
        }
    }
    let t = load(&file.unwrap_or_else(|| die("show needs a trace file")));

    let rows = t.aggregate();
    let wall: u64 = t.spans.iter().filter(|s| s.parent == 0).map(|s| s.dur_ns).sum();
    println!("== span breakdown (self time, descending; wall = root spans) ==");
    println!("{:<28} {:>7} {:>12} {:>12} {:>7}", "name", "count", "total", "self", "self%");
    for r in &rows {
        let pct = if wall > 0 { 100.0 * r.self_ns as f64 / wall as f64 } else { 0.0 };
        println!("{:<28} {:>7} {} {} {:>6.1}%", r.name, r.count, ms(r.total_ns), ms(r.self_ns), pct);
    }

    println!("\n== hottest {top} spans ==");
    for s in t.hottest(top) {
        println!("{:<28} {}  (id {}, thread {}, +{})", s.name, ms(s.dur_ns), s.id, s.thread, ms(s.start_ns));
    }

    if !t.counters.is_empty() {
        println!("\n== counters ==");
        for (k, v) in &t.counters {
            println!("{k:<32} {v}");
        }
    }
    if !t.hists.is_empty() {
        println!("\n== histograms ==");
        println!("{:<24} {:>8} {:>12} {:>10} {:>10} {:>10}", "name", "count", "mean", "p50", "p99", "max");
        for (k, h) in &t.hists {
            println!(
                "{k:<24} {:>8} {:>12.1} {:>10} {:>10} {:>10}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            );
        }
    }
    if let Some(cov) = t.coverage("iteration", &["compile", "measure", "fit", "acquire"]) {
        println!("\niteration coverage by compile/measure/fit/acquire: {:.1}%", cov * 100.0);
    }
}

// ---------------------------------------------------------------------------
// check
// ---------------------------------------------------------------------------

fn check(mut args: std::env::Args) {
    let mut file = None::<String>;
    let mut min_cov = 0.9f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-coverage" => {
                let v = args.next().unwrap_or_else(|| die("--min-coverage needs a value"));
                min_cov = v.parse().unwrap_or_else(|_| die("--min-coverage: bad number"));
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => die(&format!("check: unexpected argument '{other}'")),
        }
    }
    let t = load(&file.unwrap_or_else(|| die("check needs a trace file")));

    let mut failed = false;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failed = true;
    };

    // The span kinds a traced tuning run must produce.
    for required in ["citroen.run", "init", "iteration", "compile", "measure", "fit", "acquire", "gp.fit", "sim.execute"] {
        if !t.spans.iter().any(|s| s.name == required) {
            fail(format!("required span kind '{required}' missing"));
        }
    }
    // And the counters the hot paths bump.
    for required in ["task.compilations", "task.measurements", "citroen.iterations", "gp.predict.calls", "acq.evals"] {
        if !t.counters.contains_key(required) {
            fail(format!("required counter '{required}' missing"));
        }
    }
    match t.coverage("iteration", &["compile", "measure", "fit", "acquire"]) {
        Some(cov) => {
            println!("iteration coverage: {:.1}% (floor {:.0}%)", cov * 100.0, min_cov * 100.0);
            if cov < min_cov {
                fail(format!(
                    "iteration spans only {:.1}% covered by compile/measure/fit/acquire (need {:.0}%)",
                    cov * 100.0,
                    min_cov * 100.0
                ));
            }
        }
        None => fail("no 'iteration' spans to check coverage on".into()),
    }
    // Parent links must resolve (0 or a recorded span id).
    let ids: std::collections::HashSet<u64> = t.spans.iter().map(|s| s.id).collect();
    let dangling = t.spans.iter().filter(|s| s.parent != 0 && !ids.contains(&s.parent)).count();
    if dangling > 0 {
        fail(format!("{dangling} spans have dangling parent ids"));
    }

    if failed {
        std::process::exit(1);
    }
    println!("trace OK: {} spans, {} counters, {} histograms", t.spans.len(), t.counters.len(), t.hists.len());
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

fn diff(mut args: std::env::Args) {
    let old = args.next().unwrap_or_else(|| die("diff needs OLD and NEW trace files"));
    let new = args.next().unwrap_or_else(|| die("diff needs OLD and NEW trace files"));
    if let Some(extra) = args.next() {
        die(&format!("diff: unexpected argument '{extra}'"));
    }
    let (a, b) = (load(&old), load(&new));

    let into_map = |t: &Trace| -> std::collections::BTreeMap<String, (u64, u64, u64)> {
        t.aggregate().into_iter().map(|r| (r.name, (r.count, r.total_ns, r.self_ns))).collect()
    };
    let (ra, rb) = (into_map(&a), into_map(&b));
    let names: std::collections::BTreeSet<&String> = ra.keys().chain(rb.keys()).collect();

    println!("== span time deltas (new - old, by self time) ==");
    println!("{:<28} {:>14} {:>14} {:>14}", "name", "old self", "new self", "delta");
    let mut rows: Vec<(&String, u64, u64)> = names
        .iter()
        .map(|n| {
            let sa = ra.get(*n).map(|r| r.2).unwrap_or(0);
            let sb = rb.get(*n).map(|r| r.2).unwrap_or(0);
            (*n, sa, sb)
        })
        .collect();
    rows.sort_by_key(|(_, sa, sb)| std::cmp::Reverse(sa.abs_diff(*sb)));
    for (n, sa, sb) in rows {
        let delta = sb as i128 - sa as i128;
        println!("{n:<28} {} {} {:>+13.3}ms", ms(sa), ms(sb), delta as f64 / 1e6);
    }

    println!("\n== counter deltas (new - old) ==");
    let keys: std::collections::BTreeSet<&String> = a.counters.keys().chain(b.counters.keys()).collect();
    for k in keys {
        let va = a.counters.get(k).copied().unwrap_or(0);
        let vb = b.counters.get(k).copied().unwrap_or(0);
        if va != vb {
            println!("{k:<32} {va:>12} -> {vb:<12} ({:+})", vb as i128 - va as i128);
        } else {
            println!("{k:<32} {va:>12} (unchanged)");
        }
    }
}
