//! `citroen-analyze`: the static-analysis and translation-validation front
//! end. Three modes:
//!
//! * **lint** (`--lint`): run the dataflow lint suite over the shipped
//!   benchmark suite (optionally after `-O3`), or over a single IR file with
//!   `--ir FILE`, and print diagnostics.
//! * **oracle** (`oracle`): soundness-fuzz the per-pass precondition oracle
//!   (every `CannotFire` verdict is executed and must change nothing), then
//!   derive the static pass-interaction graph over the shipped suite and
//!   emit it as JSON on stdout.
//! * **subsume** (`subsume`): soundness-fuzz the work-class subsumption
//!   matrix — replay random sequences simulating the canonicalizer's
//!   absent-work dataflow and execute every predicted drop, which must be a
//!   behavioural no-op.
//! * **validate** (`validate`): run the shipped benchmark suite through the
//!   `-O3` pipeline with the per-pass translation-validation sanitizer armed
//!   (S1–S8, value-level included) and report any contradiction.
//! * **fuzz** (default, `--smoke` for the 30-second tier-1 budget): random
//!   generated modules × random pass sequences through the verifier, the
//!   sanitizer, and an interpreter differential, delta-debugging any failure
//!   down to a minimal pass sequence + module reproducer.
//!
//! Exits non-zero iff a failure, an oracle violation, or (in lint mode) any
//! diagnostic was found.

use citroen::fuzz::{run_campaign, run_oracle_campaign, run_subsumption_campaign, FuzzConfig};
use citroen_analyze::{filter_severity, lint_module, Severity};
use citroen_passes::manager::{o3_pipeline, PassManager, Registry};

const USAGE: &str = "\
citroen-analyze — dataflow lints, precondition oracle + fuzzing

USAGE:
    citroen-analyze [--smoke | --modules N --seqs N --max-len N --seed S]
    citroen-analyze oracle [--smoke] [--modules N --seqs N --max-len N --seed S]
    citroen-analyze subsume [--smoke] [--modules N --seqs N --max-len N --seed S]
    citroen-analyze validate
    citroen-analyze --lint [--o3] [--errors-only] [--ir FILE]

MODES:
    (default)        fuzz campaign (20 modules x 10 sequences)
    oracle           soundness-fuzz pass preconditions (25 x 20 = 500 trials),
                     then emit the pass-interaction graph as JSON on stdout
    subsume          soundness-fuzz the work-class subsumption matrix
                     (25 x 20 = 500 trials): every drop the sequence
                     canonicalizer would take is executed and must change
                     nothing
    validate         run the shipped suite through -O3 with the S1-S8
                     translation-validation sanitizer armed
    --smoke          tiny deterministic campaign (tier-1 gate, <30s)
    --lint           lint the shipped benchmark suite
    --o3             lint after the -O3 pipeline instead of the source IR
    --errors-only    only report Error-severity lints
    --ir FILE        lint a single IR file instead of the suite

FUZZ OPTIONS:
    --modules N      number of generated modules        [default: 20]
    --seqs N         pass sequences per module          [default: 10]
    --max-len N      maximum sequence length            [default: 16]
    --seed S         campaign seed                      [default: 0xC17B0E]
";

fn parse_num(args: &mut std::iter::Peekable<std::env::Args>, flag: &str) -> u64 {
    let v = args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    parsed.unwrap_or_else(|_| die(&format!("{flag}: bad number '{v}'")))
}

fn die(msg: &str) -> ! {
    eprintln!("citroen-analyze: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().peekable();
    args.next(); // argv[0]

    let mut cfg = FuzzConfig::default();
    let (mut lint, mut o3, mut errors_only, mut smoke) = (false, false, false, false);
    let (mut oracle, mut with_lying, mut explicit_size) = (false, false, false);
    let (mut subsume, mut validate, mut with_broken) = (false, false, false);
    let mut ir_file: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "oracle" => oracle = true,
            "subsume" => subsume = true,
            "validate" => validate = true,
            "--lint" => lint = true,
            "--o3" => o3 = true,
            "--errors-only" => errors_only = true,
            "--smoke" => smoke = true,
            "--ir" => {
                ir_file = Some(args.next().unwrap_or_else(|| die("--ir needs a file path")))
            }
            // Test-only: spike the registry with the deliberately lying pass
            // to prove the soundness campaign catches it (hence not in USAGE).
            "--with-lying" => with_lying = true,
            // Test-only: append the miscompiling unroll to the -O3 pipeline
            // so `validate` demonstrates value-level localisation.
            "--with-broken" => with_broken = true,
            "--modules" => {
                cfg.modules = parse_num(&mut args, "--modules") as usize;
                explicit_size = true;
            }
            "--seqs" => {
                cfg.seqs_per_module = parse_num(&mut args, "--seqs") as usize;
                explicit_size = true;
            }
            "--max-len" => cfg.max_seq_len = parse_num(&mut args, "--max-len") as usize,
            "--seed" => cfg.seed = parse_num(&mut args, "--seed"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    if smoke {
        cfg = FuzzConfig::smoke();
    }

    if lint {
        match ir_file {
            Some(path) => std::process::exit(lint_file(&path, errors_only)),
            None => std::process::exit(lint_suite(o3, errors_only)),
        }
    }
    if oracle || subsume {
        if !smoke && !explicit_size {
            // The tentpole's acceptance bar: ≥500 executed module × sequence
            // soundness trials per default run.
            cfg.modules = 25;
            cfg.seqs_per_module = 20;
        }
        if subsume {
            std::process::exit(subsume_mode(&cfg, with_lying));
        }
        std::process::exit(oracle_mode(&cfg, smoke, with_lying));
    }
    if validate {
        std::process::exit(validate_mode(with_broken));
    }
    std::process::exit(fuzz(&cfg));
}

/// Lint every benchmark in the cBench- and SPEC-like suites (linked form),
/// returning a non-zero exit code iff any diagnostic is produced.
fn lint_suite(after_o3: bool, errors_only: bool) -> i32 {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let o3 = o3_pipeline(&reg);
    let mut total = 0usize;
    for bench in citroen_suite::cbench().into_iter().chain(citroen_suite::spec()) {
        let mut m = bench.link();
        if after_o3 {
            m = pm.compile(&m, &o3).module;
        }
        let mut diags = lint_module(&m);
        if errors_only {
            diags = filter_severity(diags, Severity::Error);
        }
        for d in &diags {
            println!("{}: {d}", bench.name);
        }
        total += diags.len();
    }
    let stage = if after_o3 { "after -O3" } else { "on source IR" };
    println!("citroen-analyze: {total} diagnostic(s) {stage}");
    i32::from(total > 0)
}

/// Lint a single parseable IR file (e.g. a fuzz-reduced reproducer),
/// returning a non-zero exit code iff any diagnostic is produced.
fn lint_file(path: &str, errors_only: bool) -> i32 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("--ir {path}: {e}")));
    let m = citroen_ir::parse::parse_module(&text)
        .unwrap_or_else(|e| die(&format!("--ir {path}: parse error: {e}")));
    let mut diags = lint_module(&m);
    if errors_only {
        diags = filter_severity(diags, Severity::Error);
    }
    for d in &diags {
        println!("{path}: {d}");
    }
    println!("citroen-analyze: {} diagnostic(s) in {path}", diags.len());
    i32::from(!diags.is_empty())
}

/// Oracle mode: soundness-fuzz every registered precondition, then derive
/// the pass-interaction graph over the shipped suite. Progress and the
/// campaign summary go to stderr; the graph JSON is stdout, so
/// `citroen-analyze oracle > graph.json` does the expected thing.
fn oracle_mode(cfg: &FuzzConfig, smoke: bool, with_lying: bool) -> i32 {
    let reg = if with_lying {
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::LyingPrecondition));
        Registry::from_passes(passes)
    } else {
        Registry::full()
    };

    eprintln!(
        "citroen-analyze oracle: {} modules x {} sequences (max len {}, seed {:#x})",
        cfg.modules, cfg.seqs_per_module, cfg.max_seq_len, cfg.seed
    );
    let report = run_oracle_campaign(cfg, &reg, |line| eprintln!("{line}"));
    for v in &report.violations {
        eprintln!("\n=== oracle violation: {} (module seed {:#x}) ===", v.pass, v.module_seed);
        eprintln!("detail:           {}", v.detail);
        eprintln!("sequence:         {}", v.seq);
        eprintln!("reduced sequence: {}", v.reduced_seq);
        eprintln!("reduced module:\n{}", v.reduced_ir);
    }
    eprintln!(
        "citroen-analyze oracle: {} trial(s), {} cannot-fire verdict(s) executed \
         ({} verdicts total), {} violation(s)",
        report.trials,
        report.checked_cannot_fire,
        report.verdicts,
        report.violations.len()
    );

    // Interaction graph over the shipped suite (linked benchmarks). The
    // smoke budget keeps the corpus small so the tier-1 gate stays <30s.
    let benches = citroen_suite::cbench();
    let corpus: Vec<_> = benches
        .iter()
        .take(if smoke { 2 } else { benches.len() })
        .map(|b| b.link())
        .collect();
    let graph = citroen_passes::oracle::derive_graph(&reg, &corpus);
    eprintln!(
        "citroen-analyze oracle: interaction graph over {} module(s): {} enables, {} disables",
        graph.modules,
        graph.enables.len(),
        graph.disables.len()
    );
    println!("{}", graph.to_json());

    i32::from(!report.violations.is_empty())
}

/// Subsume mode: print every statically claimed subsumption edge, then
/// soundness-fuzz the whole work-class model by replaying random sequences
/// and executing every drop the canonicalizer would have taken.
fn subsume_mode(cfg: &FuzzConfig, with_lying: bool) -> i32 {
    let reg = if with_lying {
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::LyingSubsumption));
        Registry::from_passes(passes)
    } else {
        Registry::full()
    };

    let model = citroen_passes::oracle::work_model(&reg);
    let names = reg.names();
    let pairs = model.subsumed_pairs();
    eprintln!("citroen-analyze subsume: {} claimed edge(s) (p subsumes q):", pairs.len());
    for &(p, q) in &pairs {
        eprintln!("    {} -> {}", names[p], names[q]);
    }
    eprintln!(
        "citroen-analyze subsume: {} modules x {} sequences (max len {}, seed {:#x})",
        cfg.modules, cfg.seqs_per_module, cfg.max_seq_len, cfg.seed
    );
    let report = run_subsumption_campaign(cfg, &reg, |line| eprintln!("{line}"));
    for v in &report.violations {
        eprintln!(
            "\n=== subsumption violation: {} (module seed {:#x}) ===",
            v.pass, v.module_seed
        );
        eprintln!("detail:           {}", v.detail);
        eprintln!("sequence:         {}", v.seq);
        eprintln!("reduced sequence: {}", v.reduced_seq);
        eprintln!("reduced module:\n{}", v.reduced_ir);
    }
    eprintln!(
        "citroen-analyze subsume: {} trial(s), {} predicted drop(s) executed \
         ({} positions simulated), {} violation(s)",
        report.trials,
        report.checked_drops,
        report.positions,
        report.violations.len()
    );
    i32::from(!report.violations.is_empty())
}

/// Validate mode: compile every shipped benchmark with `-O3` under the
/// armed sanitizer; each pass's pre/post facts are cross-checked at both
/// function (S1–S5) and value (S6–S8) granularity, so a structurally valid
/// miscompile is localised to the offending pass and value.
fn validate_mode(with_broken: bool) -> i32 {
    let reg = if with_broken {
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::BrokenUnroll));
        Registry::from_passes(passes)
    } else {
        Registry::full()
    };
    let mut pm = PassManager::new(&reg);
    pm.sanitize = true;
    let mut seq = o3_pipeline(&reg);
    if with_broken {
        // Prepend: the miscompile needs the source IR's store-then-ret loop
        // exits, which -O3 itself rewrites away.
        seq.insert(0, reg.by_name("broken-unroll").expect("spiked registry"));
    }

    let mut modules: Vec<(String, citroen_ir::Module)> = citroen_suite::cbench()
        .into_iter()
        .chain(citroen_suite::spec())
        .map(|b| (b.name.to_string(), b.link()))
        .collect();
    if with_broken {
        // The shipped suite never has the exact trigger shape, so add the
        // module that does — the run should end with the miscompile pinned
        // to the pass and the dangling value id.
        modules.push(("victim_computed".to_string(), citroen_passes::testing::victim_module_computed()));
    }

    let mut dirty = 0usize;
    for (name, m) in &modules {
        let bench = name.as_str();
        match pm.compile_result(m, &seq) {
            Ok(_) => println!("citroen-analyze validate: {bench}: ok"),
            Err(citroen_passes::manager::CompileError::Sanitize { pass, violations }) => {
                dirty += 1;
                for v in &violations {
                    let at = v
                        .value
                        .map(|id| format!(" (value %{id})"))
                        .unwrap_or_default();
                    println!("citroen-analyze validate: {bench}: pass '{pass}': {v}{at}");
                }
            }
            Err(citroen_passes::manager::CompileError::Verify { pass, errors }) => {
                dirty += 1;
                for e in &errors {
                    println!("citroen-analyze validate: {bench}: pass '{pass}': verifier: {e}");
                }
            }
        }
    }
    println!(
        "citroen-analyze validate: {dirty} miscompiled benchmark(s) under -O3 with the \
         sanitizer armed"
    );
    i32::from(dirty > 0)
}

fn fuzz(cfg: &FuzzConfig) -> i32 {
    println!(
        "citroen-analyze: fuzzing {} modules x {} sequences (max len {}, seed {:#x})",
        cfg.modules, cfg.seqs_per_module, cfg.max_seq_len, cfg.seed
    );
    let report = run_campaign(cfg, |line| println!("{line}"));
    for f in &report.failures {
        println!("\n=== {} failure (module seed {:#x}) ===", f.kind, f.module_seed);
        println!("sequence:         {}", f.seq);
        println!("reduced sequence: {}", f.reduced_seq);
        println!("reduced module:\n{}", f.reduced_ir);
    }
    println!(
        "citroen-analyze: {} trial(s), {} failure(s)",
        report.trials,
        report.failures.len()
    );
    i32::from(!report.failures.is_empty())
}
