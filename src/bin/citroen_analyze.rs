//! `citroen-analyze`: the static-analysis and translation-validation front
//! end. Three modes:
//!
//! * **lint** (`--lint`): run the dataflow lint suite over the shipped
//!   benchmark suite (optionally after `-O3`), or over a single IR file with
//!   `--ir FILE`, and print diagnostics.
//! * **oracle** (`oracle`): soundness-fuzz the per-pass precondition oracle
//!   (every `CannotFire` verdict is executed and must change nothing), then
//!   derive the static pass-interaction graph over the shipped suite and
//!   emit it as JSON on stdout.
//! * **subsume** (`subsume`): soundness-fuzz the work-class subsumption
//!   matrix — replay random sequences simulating the canonicalizer's
//!   absent-work dataflow and execute every predicted drop, which must be a
//!   behavioural no-op.
//! * **validate** (`validate`): run the shipped benchmark suite through the
//!   `-O3` pipeline with the per-pass translation-validation sanitizer armed
//!   (S1–S11, value-level and alias-aware included) and report any
//!   contradiction.
//! * **mine-edges** (`mine-edges`): trace the shipped suite under random
//!   pipelines, mine adjacent-pair no-op hypotheses, exclude those the
//!   static work matrix already proves, and promote the rest only after an
//!   executed-drop fuzz campaign (the `subsume` theorem check) fails to
//!   refute them.
//! * **alias-oracle** (`alias-oracle`): soundness-fuzz the alias analysis —
//!   every same-block `No`/`Must` answer on generated modules (raw and after
//!   random pipelines) is checked against a concrete interpretation that
//!   records every dynamic access address; violating modules are reduced.
//! * **fuzz** (default, `--smoke` for the 30-second tier-1 budget): random
//!   generated modules × random pass sequences through the verifier, the
//!   sanitizer, and an interpreter differential, delta-debugging any failure
//!   down to a minimal pass sequence + module reproducer.
//!
//! Exits non-zero iff a failure, an oracle violation, or (in lint mode) any
//! diagnostic was found.

use citroen::fuzz::{
    run_alias_campaign, run_campaign, run_oracle_campaign, run_subsumption_campaign, FuzzConfig,
};
use citroen::mine::{run_mine_campaign, MineConfig};
use citroen_analyze::{filter_severity, lint_module, Severity};
use citroen_passes::manager::{o3_pipeline, PassManager, Registry};
use citroen_rt::json::Value;

const USAGE: &str = "\
citroen-analyze — dataflow lints, precondition oracle + fuzzing

USAGE:
    citroen-analyze [--smoke | --modules N --seqs N --max-len N --seed S]
    citroen-analyze oracle [--smoke] [--modules N --seqs N --max-len N --seed S]
    citroen-analyze subsume [--smoke] [--modules N --seqs N --max-len N --seed S]
    citroen-analyze alias-oracle [--smoke] [--modules N --seqs N --max-len N --seed S]
    citroen-analyze mine-edges [--smoke] [--seed S]
    citroen-analyze validate
    citroen-analyze --lint [--o3] [--errors-only] [--json] [--ir FILE]

MODES:
    (default)        fuzz campaign (20 modules x 10 sequences)
    oracle           soundness-fuzz pass preconditions (25 x 20 = 500 trials),
                     then emit the pass-interaction graph as JSON on stdout
    subsume          soundness-fuzz the work-class subsumption matrix
                     (25 x 20 = 500 trials): every drop the sequence
                     canonicalizer would take is executed and must change
                     nothing
    alias-oracle     soundness-fuzz the alias analysis: 200 generated
                     modules, each checked raw and after random pipelines
                     against concrete access addresses
    mine-edges       mine candidate subsumption edges from traced suite
                     runs; promote each novel edge only after 500
                     executed-drop trials fail to refute it
    validate         run the shipped suite through -O3 with the S1-S11
                     translation-validation sanitizer armed
    --smoke          tiny deterministic campaign (tier-1 gate, <30s)
    --lint           lint the shipped benchmark suite
    --o3             lint after the -O3 pipeline instead of the source IR
    --errors-only    only report Error-severity lints
    --json           emit lint findings / the oracle report as one JSON
                     document on stdout (exit codes unchanged)
    --ir FILE        lint a single IR file instead of the suite

FUZZ OPTIONS:
    --modules N      number of generated modules        [default: 20]
    --seqs N         pass sequences per module          [default: 10]
    --max-len N      maximum sequence length            [default: 16]
    --seed S         campaign seed                      [default: 0xC17B0E]
";

fn parse_num(args: &mut std::iter::Peekable<std::env::Args>, flag: &str) -> u64 {
    let v = args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    parsed.unwrap_or_else(|_| die(&format!("{flag}: bad number '{v}'")))
}

fn die(msg: &str) -> ! {
    eprintln!("citroen-analyze: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().peekable();
    args.next(); // argv[0]

    let mut cfg = FuzzConfig::default();
    let (mut lint, mut o3, mut errors_only, mut smoke) = (false, false, false, false);
    let (mut oracle, mut with_lying, mut explicit_size) = (false, false, false);
    let (mut subsume, mut validate, mut with_broken) = (false, false, false);
    let mut alias_oracle = false;
    let mut mine_edges = false;
    let mut json = false;
    let mut ir_file: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "oracle" => oracle = true,
            "subsume" => subsume = true,
            "validate" => validate = true,
            "alias-oracle" => alias_oracle = true,
            "mine-edges" => mine_edges = true,
            "--lint" => lint = true,
            "--o3" => o3 = true,
            "--errors-only" => errors_only = true,
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--ir" => {
                ir_file = Some(args.next().unwrap_or_else(|| die("--ir needs a file path")))
            }
            // Test-only: spike the registry with the deliberately lying pass
            // to prove the soundness campaign catches it (hence not in USAGE).
            "--with-lying" => with_lying = true,
            // Test-only: append the miscompiling unroll to the -O3 pipeline
            // so `validate` demonstrates value-level localisation.
            "--with-broken" => with_broken = true,
            "--modules" => {
                cfg.modules = parse_num(&mut args, "--modules") as usize;
                explicit_size = true;
            }
            "--seqs" => {
                cfg.seqs_per_module = parse_num(&mut args, "--seqs") as usize;
                explicit_size = true;
            }
            "--max-len" => cfg.max_seq_len = parse_num(&mut args, "--max-len") as usize,
            "--seed" => cfg.seed = parse_num(&mut args, "--seed"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    if smoke {
        cfg = FuzzConfig::smoke();
    }

    if lint {
        match ir_file {
            Some(path) => std::process::exit(lint_file(&path, errors_only, json)),
            None => std::process::exit(lint_suite(o3, errors_only, json)),
        }
    }
    if oracle || subsume {
        if !smoke && !explicit_size {
            // The tentpole's acceptance bar: ≥500 executed module × sequence
            // soundness trials per default run.
            cfg.modules = 25;
            cfg.seqs_per_module = 20;
        }
        if subsume {
            std::process::exit(subsume_mode(&cfg, with_lying));
        }
        std::process::exit(oracle_mode(&cfg, smoke, with_lying, json));
    }
    if mine_edges {
        let mut mcfg = if smoke { MineConfig::smoke() } else { MineConfig::default() };
        if cfg.seed != FuzzConfig::default().seed {
            mcfg.seed = cfg.seed;
        }
        std::process::exit(mine_edges_mode(&mcfg));
    }
    if alias_oracle {
        if smoke {
            // check.sh stage 9 budget: 25 modules x (raw + 1 pipeline) = 50
            // checked states.
            cfg.modules = 25;
            cfg.seqs_per_module = 1;
        } else if !explicit_size {
            cfg.modules = 200;
            cfg.seqs_per_module = 2;
        }
        std::process::exit(alias_oracle_mode(&cfg));
    }
    if validate {
        std::process::exit(validate_mode(with_broken));
    }
    std::process::exit(fuzz(&cfg));
}

/// One lint finding as a JSON object (`--json` mode). `origin` is the
/// benchmark name or file path the finding came from.
fn diag_value(origin: &str, d: &citroen_analyze::Diagnostic) -> Value {
    let mut obj = vec![
        ("origin".into(), Value::str(origin)),
        ("code".into(), Value::str(d.code)),
        (
            "severity".into(),
            Value::str(if d.severity == Severity::Error { "error" } else { "warning" }),
        ),
        ("func".into(), Value::str(&d.func)),
    ];
    if let Some(b) = d.block {
        obj.push(("block".into(), Value::U64(u64::from(b))));
    }
    obj.push(("msg".into(), Value::str(&d.msg)));
    Value::Obj(obj)
}

/// Lint every benchmark in the cBench- and SPEC-like suites (linked form),
/// returning a non-zero exit code iff any diagnostic is produced.
fn lint_suite(after_o3: bool, errors_only: bool, json: bool) -> i32 {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let o3 = o3_pipeline(&reg);
    let mut total = 0usize;
    let mut findings = Vec::new();
    for bench in citroen_suite::cbench().into_iter().chain(citroen_suite::spec()) {
        let mut m = bench.link();
        if after_o3 {
            m = pm.compile(&m, &o3).module;
        }
        let mut diags = lint_module(&m);
        if errors_only {
            diags = filter_severity(diags, Severity::Error);
        }
        for d in &diags {
            if json {
                findings.push(diag_value(bench.name, d));
            } else {
                println!("{}: {d}", bench.name);
            }
        }
        total += diags.len();
    }
    let stage = if after_o3 { "after -O3" } else { "on source IR" };
    if json {
        let doc = Value::Obj(vec![
            ("mode".into(), Value::str("lint")),
            ("stage".into(), Value::str(stage)),
            ("diagnostics".into(), Value::Arr(findings)),
            ("total".into(), Value::U64(total as u64)),
        ]);
        println!("{}", doc.emit_pretty());
    } else {
        println!("citroen-analyze: {total} diagnostic(s) {stage}");
    }
    i32::from(total > 0)
}

/// Lint a single parseable IR file (e.g. a fuzz-reduced reproducer),
/// returning a non-zero exit code iff any diagnostic is produced.
fn lint_file(path: &str, errors_only: bool, json: bool) -> i32 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("--ir {path}: {e}")));
    let m = citroen_ir::parse::parse_module(&text)
        .unwrap_or_else(|e| die(&format!("--ir {path}: parse error: {e}")));
    let mut diags = lint_module(&m);
    if errors_only {
        diags = filter_severity(diags, Severity::Error);
    }
    if json {
        let doc = Value::Obj(vec![
            ("mode".into(), Value::str("lint")),
            ("file".into(), Value::str(path)),
            ("diagnostics".into(), Value::Arr(diags.iter().map(|d| diag_value(path, d)).collect())),
            ("total".into(), Value::U64(diags.len() as u64)),
        ]);
        println!("{}", doc.emit_pretty());
    } else {
        for d in &diags {
            println!("{path}: {d}");
        }
        println!("citroen-analyze: {} diagnostic(s) in {path}", diags.len());
    }
    i32::from(!diags.is_empty())
}

/// Oracle mode: soundness-fuzz every registered precondition, then derive
/// the pass-interaction graph over the shipped suite. Progress and the
/// campaign summary go to stderr; the graph JSON is stdout, so
/// `citroen-analyze oracle > graph.json` does the expected thing.
fn oracle_mode(cfg: &FuzzConfig, smoke: bool, with_lying: bool, json: bool) -> i32 {
    let reg = if with_lying {
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::LyingPrecondition));
        Registry::from_passes(passes)
    } else {
        Registry::full()
    };

    eprintln!(
        "citroen-analyze oracle: {} modules x {} sequences (max len {}, seed {:#x})",
        cfg.modules, cfg.seqs_per_module, cfg.max_seq_len, cfg.seed
    );
    let report = run_oracle_campaign(cfg, &reg, |line| eprintln!("{line}"));
    for v in &report.violations {
        eprintln!("\n=== oracle violation: {} (module seed {:#x}) ===", v.pass, v.module_seed);
        eprintln!("detail:           {}", v.detail);
        eprintln!("sequence:         {}", v.seq);
        eprintln!("reduced sequence: {}", v.reduced_seq);
        eprintln!("reduced module:\n{}", v.reduced_ir);
    }
    eprintln!(
        "citroen-analyze oracle: {} trial(s), {} cannot-fire verdict(s) executed \
         ({} verdicts total), {} violation(s)",
        report.trials,
        report.checked_cannot_fire,
        report.verdicts,
        report.violations.len()
    );

    // Interaction graph over the shipped suite (linked benchmarks). The
    // smoke budget keeps the corpus small so the tier-1 gate stays <30s.
    let benches = citroen_suite::cbench();
    let corpus: Vec<_> = benches
        .iter()
        .take(if smoke { 2 } else { benches.len() })
        .map(|b| b.link())
        .collect();
    let graph = citroen_passes::oracle::derive_graph(&reg, &corpus);
    eprintln!(
        "citroen-analyze oracle: interaction graph over {} module(s): {} enables, {} disables",
        graph.modules,
        graph.enables.len(),
        graph.disables.len()
    );
    if json {
        // One document wrapping campaign + graph, so machine consumers get
        // the violation list without scraping stderr. The graph subtree is
        // byte-compatible with the plain-mode stdout document.
        let graph_value =
            Value::parse(&graph.to_json()).expect("InteractionGraph::to_json is valid JSON");
        let violations = Value::Arr(
            report
                .violations
                .iter()
                .map(|v| {
                    Value::Obj(vec![
                        ("pass".into(), Value::str(&v.pass)),
                        ("module_seed".into(), Value::U64(v.module_seed)),
                        ("detail".into(), Value::str(&v.detail)),
                        ("sequence".into(), Value::str(&v.seq)),
                        ("reduced_sequence".into(), Value::str(&v.reduced_seq)),
                        ("reduced_module".into(), Value::str(&v.reduced_ir)),
                    ])
                })
                .collect(),
        );
        let doc = Value::Obj(vec![
            ("mode".into(), Value::str("oracle")),
            (
                "campaign".into(),
                Value::Obj(vec![
                    ("trials".into(), Value::U64(report.trials as u64)),
                    ("verdicts".into(), Value::U64(report.verdicts)),
                    ("checked_cannot_fire".into(), Value::U64(report.checked_cannot_fire)),
                    ("violations".into(), violations),
                ]),
            ),
            ("graph".into(), graph_value),
        ]);
        println!("{}", doc.emit_pretty());
    } else {
        println!("{}", graph.to_json());
    }

    i32::from(!report.violations.is_empty())
}

/// Subsume mode: print every statically claimed subsumption edge, then
/// soundness-fuzz the whole work-class model by replaying random sequences
/// and executing every drop the canonicalizer would have taken.
fn subsume_mode(cfg: &FuzzConfig, with_lying: bool) -> i32 {
    let reg = if with_lying {
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::LyingSubsumption));
        Registry::from_passes(passes)
    } else {
        Registry::full()
    };

    let model = citroen_passes::oracle::work_model(&reg);
    let names = reg.names();
    let pairs = model.subsumed_pairs();
    eprintln!("citroen-analyze subsume: {} claimed edge(s) (p subsumes q):", pairs.len());
    for &(p, q) in &pairs {
        eprintln!("    {} -> {}", names[p], names[q]);
    }
    eprintln!(
        "citroen-analyze subsume: {} modules x {} sequences (max len {}, seed {:#x})",
        cfg.modules, cfg.seqs_per_module, cfg.max_seq_len, cfg.seed
    );
    let report = run_subsumption_campaign(cfg, &reg, |line| eprintln!("{line}"));
    for v in &report.violations {
        eprintln!(
            "\n=== subsumption violation: {} (module seed {:#x}) ===",
            v.pass, v.module_seed
        );
        eprintln!("detail:           {}", v.detail);
        eprintln!("sequence:         {}", v.seq);
        eprintln!("reduced sequence: {}", v.reduced_seq);
        eprintln!("reduced module:\n{}", v.reduced_ir);
    }
    eprintln!(
        "citroen-analyze subsume: {} trial(s), {} predicted drop(s) executed \
         ({} positions simulated), {} violation(s)",
        report.trials,
        report.checked_drops,
        report.positions,
        report.violations.len()
    );
    i32::from(!report.violations.is_empty())
}

/// Alias-oracle mode: every same-block `No`/`Must` answer is executed as a
/// theorem against concrete access addresses. Progress goes to stderr;
/// violations and the summary line to stdout.
fn alias_oracle_mode(cfg: &FuzzConfig) -> i32 {
    eprintln!(
        "citroen-analyze: alias soundness over {} modules x (raw + {} pipelines), seed {:#x}",
        cfg.modules, cfg.seqs_per_module, cfg.seed
    );
    let report = run_alias_campaign(cfg, |line| eprintln!("{line}"));
    for v in &report.violations {
        let seq = if v.seq.is_empty() { "<source IR>".to_string() } else { v.seq.clone() };
        println!(
            "alias violation: module seed {:#x} after [{seq}]\n  {}\n{}",
            v.module_seed, v.detail, v.reduced_ir
        );
    }
    println!(
        "citroen-analyze alias-oracle: {} module(s), {} state(s), {} No + {} Must claim(s) \
         checked, {} violation(s)",
        report.modules,
        report.trials,
        report.no_claims,
        report.must_claims,
        report.violations.len()
    );
    i32::from(!report.violations.is_empty())
}

/// Mine-edges mode: empirical edge mining with fuzz-gated promotion.
/// Progress goes to stderr; the edge report to stdout.
fn mine_edges_mode(cfg: &MineConfig) -> i32 {
    eprintln!(
        "citroen-analyze: mining subsumption edges ({} seqs/benchmark, {} drop trials/edge, \
         seed {:#x})",
        cfg.mine_seqs, cfg.promote_trials, cfg.seed
    );
    let reg = citroen_passes::manager::Registry::full();
    let report = run_mine_campaign(cfg, |line| eprintln!("{line}"));
    for e in &report.statically_implied {
        println!(
            "implied:  {} -> {} ({} obs, already in the static matrix)",
            reg.pass(e.p).name(),
            reg.pass(e.q).name(),
            e.observations
        );
    }
    for r in &report.refuted {
        println!(
            "refuted:  {} -> {} ({} obs): {}",
            reg.pass(r.edge.p).name(),
            reg.pass(r.edge.q).name(),
            r.edge.observations,
            r.detail
        );
    }
    for e in &report.promoted {
        println!(
            "promoted: {} -> {} ({} obs, survived {} executed-drop trials)",
            reg.pass(e.p).name(),
            reg.pass(e.q).name(),
            e.observations,
            cfg.promote_trials
        );
    }
    println!(
        "citroen-analyze mine-edges: {} adjacencies over {} pairs; {} implied, {} promoted, \
         {} refuted ({} drop trials)",
        report.adjacencies,
        report.pairs_seen,
        report.statically_implied.len(),
        report.promoted.len(),
        report.refuted.len(),
        report.drop_trials
    );
    0
}

/// Validate mode: compile every shipped benchmark with `-O3` under the
/// armed sanitizer; each pass's pre/post facts are cross-checked at both
/// function (S1–S5) and value (S6–S8) granularity, so a structurally valid
/// miscompile is localised to the offending pass and value.
fn validate_mode(with_broken: bool) -> i32 {
    let reg = if with_broken {
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::BrokenUnroll));
        Registry::from_passes(passes)
    } else {
        Registry::full()
    };
    let mut pm = PassManager::new(&reg);
    pm.sanitize = true;
    let mut seq = o3_pipeline(&reg);
    if with_broken {
        // Prepend: the miscompile needs the source IR's store-then-ret loop
        // exits, which -O3 itself rewrites away.
        seq.insert(0, reg.by_name("broken-unroll").expect("spiked registry"));
    }

    let mut modules: Vec<(String, citroen_ir::Module)> = citroen_suite::cbench()
        .into_iter()
        .chain(citroen_suite::spec())
        .map(|b| (b.name.to_string(), b.link()))
        .collect();
    if with_broken {
        // The shipped suite never has the exact trigger shape, so add the
        // module that does — the run should end with the miscompile pinned
        // to the pass and the dangling value id.
        modules.push(("victim_computed".to_string(), citroen_passes::testing::victim_module_computed()));
    }

    let mut dirty = 0usize;
    for (name, m) in &modules {
        let bench = name.as_str();
        match pm.compile_result(m, &seq) {
            Ok(_) => println!("citroen-analyze validate: {bench}: ok"),
            Err(citroen_passes::manager::CompileError::Sanitize { pass, violations }) => {
                dirty += 1;
                for v in &violations {
                    let at = v
                        .value
                        .map(|id| format!(" (value %{id})"))
                        .unwrap_or_default();
                    println!("citroen-analyze validate: {bench}: pass '{pass}': {v}{at}");
                }
            }
            Err(citroen_passes::manager::CompileError::Verify { pass, errors }) => {
                dirty += 1;
                for e in &errors {
                    println!("citroen-analyze validate: {bench}: pass '{pass}': verifier: {e}");
                }
            }
        }
    }
    println!(
        "citroen-analyze validate: {dirty} miscompiled benchmark(s) under -O3 with the \
         sanitizer armed"
    );
    i32::from(dirty > 0)
}

fn fuzz(cfg: &FuzzConfig) -> i32 {
    println!(
        "citroen-analyze: fuzzing {} modules x {} sequences (max len {}, seed {:#x})",
        cfg.modules, cfg.seqs_per_module, cfg.max_seq_len, cfg.seed
    );
    let report = run_campaign(cfg, |line| println!("{line}"));
    for f in &report.failures {
        println!("\n=== {} failure (module seed {:#x}) ===", f.kind, f.module_seed);
        println!("sequence:         {}", f.seq);
        println!("reduced sequence: {}", f.reduced_seq);
        println!("reduced module:\n{}", f.reduced_ir);
    }
    println!(
        "citroen-analyze: {} trial(s), {} failure(s)",
        report.trials,
        report.failures.len()
    );
    i32::from(!report.failures.is_empty())
}
