//! `citroen-analyze`: the static-analysis and translation-validation front
//! end. Two modes:
//!
//! * **lint** (`--lint`): run the dataflow lint suite over the shipped
//!   benchmark suite (optionally after `-O3`) and print diagnostics.
//! * **fuzz** (default, `--smoke` for the 30-second tier-1 budget): random
//!   generated modules × random pass sequences through the verifier, the
//!   sanitizer, and an interpreter differential, delta-debugging any failure
//!   down to a minimal pass sequence + module reproducer.
//!
//! Exits non-zero iff a failure (or, with `--lint --strict`, any diagnostic)
//! was found.

use citroen::fuzz::{run_campaign, FuzzConfig};
use citroen_analyze::{filter_severity, lint_module, Severity};
use citroen_passes::manager::{o3_pipeline, PassManager, Registry};

const USAGE: &str = "\
citroen-analyze — dataflow lints + translation-validation fuzzing

USAGE:
    citroen-analyze [--smoke | --modules N --seqs N --max-len N --seed S]
    citroen-analyze --lint [--o3] [--errors-only]

MODES:
    (default)        fuzz campaign (20 modules x 10 sequences)
    --smoke          tiny deterministic campaign (tier-1 gate, <30s)
    --lint           lint the shipped benchmark suite
    --o3             lint after the -O3 pipeline instead of the source IR
    --errors-only    only report Error-severity lints

FUZZ OPTIONS:
    --modules N      number of generated modules        [default: 20]
    --seqs N         pass sequences per module          [default: 10]
    --max-len N      maximum sequence length            [default: 16]
    --seed S         campaign seed                      [default: 0xC17B0E]
";

fn parse_num(args: &mut std::iter::Peekable<std::env::Args>, flag: &str) -> u64 {
    let v = args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    parsed.unwrap_or_else(|_| die(&format!("{flag}: bad number '{v}'")))
}

fn die(msg: &str) -> ! {
    eprintln!("citroen-analyze: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().peekable();
    args.next(); // argv[0]

    let mut cfg = FuzzConfig::default();
    let (mut lint, mut o3, mut errors_only, mut smoke) = (false, false, false, false);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--lint" => lint = true,
            "--o3" => o3 = true,
            "--errors-only" => errors_only = true,
            "--smoke" => smoke = true,
            "--modules" => cfg.modules = parse_num(&mut args, "--modules") as usize,
            "--seqs" => cfg.seqs_per_module = parse_num(&mut args, "--seqs") as usize,
            "--max-len" => cfg.max_seq_len = parse_num(&mut args, "--max-len") as usize,
            "--seed" => cfg.seed = parse_num(&mut args, "--seed"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    if smoke {
        cfg = FuzzConfig::smoke();
    }

    if lint {
        std::process::exit(lint_suite(o3, errors_only));
    }
    std::process::exit(fuzz(&cfg));
}

/// Lint every benchmark in the cBench- and SPEC-like suites (linked form),
/// returning a non-zero exit code iff any diagnostic is produced.
fn lint_suite(after_o3: bool, errors_only: bool) -> i32 {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let o3 = o3_pipeline(&reg);
    let mut total = 0usize;
    for bench in citroen_suite::cbench().into_iter().chain(citroen_suite::spec()) {
        let mut m = bench.link();
        if after_o3 {
            m = pm.compile(&m, &o3).module;
        }
        let mut diags = lint_module(&m);
        if errors_only {
            diags = filter_severity(diags, Severity::Error);
        }
        for d in &diags {
            println!("{}: {d}", bench.name);
        }
        total += diags.len();
    }
    let stage = if after_o3 { "after -O3" } else { "on source IR" };
    println!("citroen-analyze: {total} diagnostic(s) {stage}");
    i32::from(total > 0)
}

fn fuzz(cfg: &FuzzConfig) -> i32 {
    println!(
        "citroen-analyze: fuzzing {} modules x {} sequences (max len {}, seed {:#x})",
        cfg.modules, cfg.seqs_per_module, cfg.max_seq_len, cfg.seed
    );
    let report = run_campaign(cfg, |line| println!("{line}"));
    for f in &report.failures {
        println!("\n=== {} failure (module seed {:#x}) ===", f.kind, f.module_seed);
        println!("sequence:         {}", f.seq);
        println!("reduced sequence: {}", f.reduced_seq);
        println!("reduced module:\n{}", f.reduced_ir);
    }
    println!(
        "citroen-analyze: {} trial(s), {} failure(s)",
        report.trials,
        report.failures.len()
    );
    i32::from(!report.failures.is_empty())
}
