//! Fuzzing campaign for the pass pipeline: random generated modules × random
//! pass sequences, each trial checked three ways — the structural verifier,
//! the translation-validation sanitizer, and an interpreter differential
//! (return value + mutable-memory digest against the unoptimised module).
//!
//! Every failure is delta-debugged before being reported: the pass sequence
//! is minimised with [`ddmin`](citroen_analyze::reduce::ddmin) and the module
//! is shrunk with [`reduce_module`](citroen_analyze::reduce::reduce_module),
//! so the report contains a small parseable reproducer rather than a 300-line
//! random program.

use citroen_analyze::reduce::{ddmin, reduce_module};
use citroen_ir::interp::{run, CountingSink, Limits, Trap, Value};
use citroen_ir::module::Module;
use citroen_ir::FuncId;
use citroen_passes::{PassId, PassManager, Registry};
use citroen_rt::rng::{Rng, SeedableRng, StdRng};
use citroen_suite::generator::{generate, GenConfig};

/// Campaign size knobs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of random modules to generate.
    pub modules: usize,
    /// Random pass sequences tried per module.
    pub seqs_per_module: usize,
    /// Maximum sequence length (lengths are drawn uniformly from 1..=max).
    pub max_seq_len: usize,
    /// Campaign seed; every trial derives deterministically from it.
    pub seed: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig { modules: 20, seqs_per_module: 10, max_seq_len: 16, seed: 0xC17B0E }
    }
}

impl FuzzConfig {
    /// The tiny deterministic budget behind `citroen-analyze --smoke`.
    pub fn smoke() -> FuzzConfig {
        FuzzConfig { modules: 4, seqs_per_module: 3, max_seq_len: 10, seed: 1 }
    }
}

/// Which oracle rejected the trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The verifier found malformed IR after a pass.
    Verify,
    /// The sanitizer proved a pass contradicted pre-pass facts.
    Sanitize,
    /// The optimised module computed a different result than the original.
    Differential,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Verify => write!(f, "verify"),
            FailureKind::Sanitize => write!(f, "sanitize"),
            FailureKind::Differential => write!(f, "differential"),
        }
    }
}

/// A reduced, reportable failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which oracle fired.
    pub kind: FailureKind,
    /// Seed of the generated module that exposed the bug.
    pub module_seed: u64,
    /// The original failing sequence (comma-separated pass names).
    pub seq: String,
    /// The ddmin-minimised sequence that still fails.
    pub reduced_seq: String,
    /// The reduced module, printed as parseable IR.
    pub reduced_ir: String,
}

/// Campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Trials executed (modules × sequences).
    pub trials: usize,
    /// Reduced failures, in discovery order.
    pub failures: Vec<Failure>,
}

/// Interpreter fuel for fuzz trials — far above any generated program's step
/// count, low enough that a reducer candidate with an accidental infinite
/// loop terminates promptly.
const FUZZ_STEPS: u64 = 5_000_000;

fn observe(m: &Module) -> Result<(Option<Value>, u64), Trap> {
    let entry = FuncId((m.funcs.len() - 1) as u32); // generator entry is last
    let mut sink = CountingSink::new();
    let limits = Limits { max_steps: FUZZ_STEPS, ..Limits::default() };
    let out = run(m, entry, &[], &mut sink, limits)?;
    Ok((out.ret, out.mem_digest))
}

/// The unified failure oracle: true iff `seq` breaks `m` in any observable
/// way. This is also the predicate the reducers re-run, so a reduction step
/// is kept only while the *same* misbehaviour class remains reachable.
fn trial_fails(pm: &PassManager<'_>, m: &Module, seq: &[PassId]) -> Option<FailureKind> {
    let res = match pm.compile_result(m, seq) {
        Err(citroen_passes::CompileError::Verify { .. }) => return Some(FailureKind::Verify),
        Err(citroen_passes::CompileError::Sanitize { .. }) => return Some(FailureKind::Sanitize),
        Ok(res) => res,
    };
    match (observe(m), observe(&res.module)) {
        (Ok(a), Ok(b)) if a != b => Some(FailureKind::Differential),
        // A module that traps before optimisation is outside the contract
        // (generated programs never trap); don't blame the passes for it.
        (Err(_), _) => None,
        // Trap introduced by optimisation is a differential failure too.
        (Ok(_), Err(_)) => Some(FailureKind::Differential),
        _ => None,
    }
}

/// Vary the generator shape per module so the campaign covers helper-call,
/// deep-nest and straight-line extremes rather than one average shape.
pub(crate) fn varied_config(rng: &mut StdRng) -> GenConfig {
    GenConfig {
        helpers: rng.gen_range(0..=3),
        trip_range: (rng.gen_range(2..16), rng.gen_range(16..64)),
        max_depth: rng.gen_range(1..=3),
        stmts: rng.gen_range(2..=8),
    }
}

/// Run a campaign. `progress` receives one line per module (already
/// rate-limited; pass `|_| {}` to silence).
pub fn run_campaign(cfg: &FuzzConfig, mut progress: impl FnMut(&str)) -> Report {
    let reg = Registry::full();
    let mut pm = PassManager::new(&reg);
    pm.verify_each = true;
    pm.sanitize = true;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = Report::default();

    for mi in 0..cfg.modules {
        let module_seed: u64 = rng.gen();
        let gen_cfg = varied_config(&mut rng);
        let module = generate(module_seed, &gen_cfg);
        progress(&format!(
            "module {}/{} (seed {module_seed:#x}, {} insts)",
            mi + 1,
            cfg.modules,
            module.num_insts()
        ));
        for _ in 0..cfg.seqs_per_module {
            report.trials += 1;
            let len = rng.gen_range(1..=cfg.max_seq_len);
            let seq: Vec<PassId> =
                (0..len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
            let Some(kind) = trial_fails(&pm, &module, &seq) else { continue };
            progress(&format!("  FAILURE ({kind}) — reducing"));

            // Reduce: first the sequence, then the module under it. The
            // predicate pins the failure *kind* so reduction cannot wander
            // from e.g. a miscompile to an unrelated verifier complaint.
            let min_seq =
                ddmin(&seq, |s| trial_fails(&pm, &module, s) == Some(kind));
            let reduced =
                reduce_module(&module, |m| trial_fails(&pm, m, &min_seq) == Some(kind));
            report.failures.push(Failure {
                kind,
                module_seed,
                seq: reg.seq_to_string(&seq),
                reduced_seq: reg.seq_to_string(&min_seq),
                reduced_ir: citroen_ir::print::print_module(&reduced),
            });
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Oracle soundness campaign
// ---------------------------------------------------------------------------

/// A contradicted `CannotFire` verdict, reduced to a small reproducer.
#[derive(Debug, Clone)]
pub struct OracleViolation {
    /// Name of the lying pass.
    pub pass: String,
    /// Seed of the generated module that exposed the lie.
    pub module_seed: u64,
    /// The original sequence under which the lie surfaced.
    pub seq: String,
    /// The ddmin-minimised sequence that still surfaces it.
    pub reduced_seq: String,
    /// The reduced module, printed as parseable IR.
    pub reduced_ir: String,
    /// What the theorem check observed (fingerprint change / stats).
    pub detail: String,
}

/// Oracle campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Module × sequence trials executed.
    pub trials: usize,
    /// `CannotFire` verdicts that were executed and checked.
    pub checked_cannot_fire: u64,
    /// Verdicts computed in total (one per pass application).
    pub verdicts: u64,
    /// Reduced violations, in discovery order.
    pub violations: Vec<OracleViolation>,
}

/// Replay `seq` on (a clone of) `m`, checking every `CannotFire` verdict
/// against the pass's actual behaviour. Returns the first contradiction as
/// `(pass name, detail)`; counters accumulate into `checked`/`verdicts` when
/// provided. This is both the campaign trial and the predicate the reducers
/// re-run (with counters off).
fn oracle_replay(
    reg: &Registry,
    m: &Module,
    seq: &[PassId],
    mut counters: Option<(&mut u64, &mut u64)>,
) -> Option<(String, String)> {
    let mut cur = m.clone();
    for &id in seq {
        let pass = reg.pass(id);
        let facts = citroen_analyze::oracle::compute_facts(&cur);
        let verdict = pass.precondition(&cur, &facts);
        if let Some((_, verdicts)) = counters.as_mut() {
            **verdicts += 1;
        }
        let claimed_dead = verdict.is_cannot_fire();
        let before = claimed_dead.then(|| citroen_ir::print::fingerprint(&cur));
        let mut stats = citroen_passes::Stats::new();
        pass.run(&mut cur, &mut stats);
        if let Some(before_fp) = before {
            if let Some((checked, _)) = counters.as_mut() {
                **checked += 1;
            }
            if citroen_ir::print::fingerprint(&cur) != before_fp {
                return Some((
                    pass.name().to_string(),
                    "cannot-fire pass changed the module fingerprint".to_string(),
                ));
            }
            if !stats.is_empty() {
                return Some((
                    pass.name().to_string(),
                    format!("cannot-fire pass recorded stats: {}", stats.keys().join(", ")),
                ));
            }
        }
    }
    None
}

/// Soundness-fuzz the precondition oracle of every pass in `reg`: random
/// generated modules × random sequences, stepping each sequence through an
/// evolving module and executing every `CannotFire` verdict seen along the
/// way. Any contradiction is delta-debugged (sequence ddmin pinned to the
/// lying pass, then module reduction) before being reported.
pub fn run_oracle_campaign(
    cfg: &FuzzConfig,
    reg: &Registry,
    mut progress: impl FnMut(&str),
) -> OracleReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = OracleReport::default();

    for mi in 0..cfg.modules {
        let module_seed: u64 = rng.gen();
        let gen_cfg = varied_config(&mut rng);
        let module = generate(module_seed, &gen_cfg);
        progress(&format!(
            "oracle module {}/{} (seed {module_seed:#x}, {} insts)",
            mi + 1,
            cfg.modules,
            module.num_insts()
        ));
        for _ in 0..cfg.seqs_per_module {
            report.trials += 1;
            let len = rng.gen_range(1..=cfg.max_seq_len);
            let seq: Vec<PassId> =
                (0..len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
            let counters = (&mut report.checked_cannot_fire, &mut report.verdicts);
            let Some((pass, detail)) = oracle_replay(reg, &module, &seq, Some(counters)) else {
                continue;
            };
            progress(&format!("  ORACLE VIOLATION ({pass}) — reducing"));

            // Reduce with the violation pinned to the same lying pass, so
            // minimisation cannot drift to a different pass's (hypothetical)
            // unrelated lie.
            let still_lies = |reg: &Registry, m: &Module, s: &[PassId]| {
                oracle_replay(reg, m, s, None).is_some_and(|(p, _)| p == pass)
            };
            let min_seq = ddmin(&seq, |s| still_lies(reg, &module, s));
            let reduced = reduce_module(&module, |m| still_lies(reg, m, &min_seq));
            report.violations.push(OracleViolation {
                pass: pass.clone(),
                module_seed,
                seq: reg.seq_to_string(&seq),
                reduced_seq: reg.seq_to_string(&min_seq),
                reduced_ir: citroen_ir::print::print_module(&reduced),
                detail,
            });
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Subsumption soundness campaign
// ---------------------------------------------------------------------------

/// A contradicted subsumption drop, reduced to a small reproducer.
#[derive(Debug, Clone)]
pub struct SubsumptionViolation {
    /// Name of the pass that was predicted subsumed but fired anyway. The
    /// false claim lives in the *kept prefix* (an overstated `clears` or an
    /// understated `produces`/`fires_on`); the reduced sequence exposes the
    /// offending pair.
    pub pass: String,
    /// Seed of the generated module that exposed the false theorem.
    pub module_seed: u64,
    /// The original sequence under which the drop was predicted.
    pub seq: String,
    /// The ddmin-minimised sequence that still predicts a firing drop.
    pub reduced_seq: String,
    /// The reduced module, printed as parseable IR.
    pub reduced_ir: String,
    /// What the theorem check observed (fingerprint change / stats).
    pub detail: String,
}

/// Subsumption campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct SubsumptionReport {
    /// Module × sequence trials executed.
    pub trials: usize,
    /// Predicted drops that were executed and checked.
    pub checked_drops: u64,
    /// Pass applications simulated in total.
    pub positions: u64,
    /// Reduced violations, in discovery order.
    pub violations: Vec<SubsumptionViolation>,
}

/// Replay `seq` on (a clone of) `m`, running the *same* absent-work dataflow
/// the [`SeqCanonicalizer`](citroen_bo::SeqCanonicalizer) runs — `maybe`
/// starts all-ones and each kept pass applies `(maybe | produces) & !clears`
/// — and executing every pass the canonicalizer would have dropped: a
/// predicted drop must leave the fingerprint unchanged and record zero
/// statistics. Dropped passes do not advance the dataflow (they provably
/// changed nothing), mirroring the canonicalizer exactly. Returns the first
/// contradiction as `(pass name, detail)`.
fn subsumption_replay(
    reg: &Registry,
    m: &Module,
    seq: &[PassId],
    mut counters: Option<(&mut u64, &mut u64)>,
) -> Option<(String, String)> {
    let fires = reg.fires_on();
    let clears = reg.clears();
    let produces = reg.produces();
    let mut cur = m.clone();
    let mut maybe = u64::MAX;
    for &id in seq {
        let pass = reg.pass(id);
        let i = id.0 as usize;
        if let Some((_, positions)) = counters.as_mut() {
            **positions += 1;
        }
        let predicted = fires[i].is_some_and(|f| f & maybe == 0);
        let before = predicted.then(|| citroen_ir::print::fingerprint(&cur));
        let mut stats = citroen_passes::Stats::new();
        pass.run(&mut cur, &mut stats);
        if let Some(before_fp) = before {
            if let Some((checked, _)) = counters.as_mut() {
                **checked += 1;
            }
            if citroen_ir::print::fingerprint(&cur) != before_fp {
                return Some((
                    pass.name().to_string(),
                    "predicted-subsumed pass changed the module fingerprint".to_string(),
                ));
            }
            if !stats.is_empty() {
                return Some((
                    pass.name().to_string(),
                    format!("predicted-subsumed pass recorded stats: {}", stats.keys().join(", ")),
                ));
            }
            // A verified no-op: like the canonicalizer, leave `maybe` as-is.
        } else {
            maybe = (maybe | produces[i]) & !clears[i];
        }
    }
    None
}

/// A concretely contradicted alias claim, with a reduced module reproducer.
#[derive(Debug, Clone)]
pub struct AliasOracleViolation {
    /// Seed of the generated module that exposed the unsound answer.
    pub module_seed: u64,
    /// Pass sequence applied before checking (empty for the raw module).
    pub seq: String,
    /// The contradiction, as reported by the concrete checker.
    pub detail: String,
    /// The reduced module, printed as parseable IR.
    pub reduced_ir: String,
}

/// Alias soundness campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct AliasOracleReport {
    /// Modules generated.
    pub modules: usize,
    /// Module states checked (raw + optimised variants).
    pub trials: usize,
    /// `No` claims tested across all trials.
    pub no_claims: u64,
    /// `Must` claims tested across all trials.
    pub must_claims: u64,
    /// Reduced violations, in discovery order.
    pub violations: Vec<AliasOracleViolation>,
}

/// Soundness-fuzz the alias analysis: every `No`/`Must` answer for same-block
/// access pairs is a theorem about all executions, checked here against the
/// brute-force witness — a concrete interpretation recording every dynamic
/// access's address (see [`citroen_analyze::aliasoracle`]). Each generated
/// module is checked raw and after random pass pipelines (optimised shapes —
/// rotated loops, forwarded loads — are where an unsound analysis would
/// bite). Violating modules are shrunk with `reduce_module`, keeping a
/// contradicted claim reachable.
pub fn run_alias_campaign(cfg: &FuzzConfig, mut progress: impl FnMut(&str)) -> AliasOracleReport {
    use citroen_analyze::aliasoracle;
    let reg = Registry::full();
    let mut pm = PassManager::new(&reg);
    pm.verify_each = false;
    pm.sanitize = false;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = AliasOracleReport::default();

    let check_state = |m: &Module,
                           module_seed: u64,
                           seq_str: String,
                           report: &mut AliasOracleReport,
                           progress: &mut dyn FnMut(&str)| {
        report.trials += 1;
        let (no, must) = aliasoracle::claim_count(m);
        report.no_claims += no as u64;
        report.must_claims += must as u64;
        let entry = FuncId((m.funcs.len() - 1) as u32);
        match aliasoracle::check_module(m, entry, FUZZ_STEPS) {
            // A trapping or runaway module is no witness either way.
            Err(_) => {}
            Ok(v) if v.is_empty() => {}
            Ok(v) => {
                progress(&format!("  ALIAS VIOLATION ({}) — reducing", v[0]));
                let reduced = reduce_module(m, |cand| {
                    let e = FuncId((cand.funcs.len() - 1) as u32);
                    matches!(aliasoracle::check_module(cand, e, FUZZ_STEPS), Ok(vs) if !vs.is_empty())
                });
                report.violations.push(AliasOracleViolation {
                    module_seed,
                    seq: seq_str,
                    detail: v[0].to_string(),
                    reduced_ir: citroen_ir::print::print_module(&reduced),
                });
            }
        }
    };

    for mi in 0..cfg.modules {
        report.modules += 1;
        let module_seed: u64 = rng.gen();
        let gen_cfg = varied_config(&mut rng);
        let module = generate(module_seed, &gen_cfg);
        progress(&format!(
            "alias module {}/{} (seed {module_seed:#x}, {} insts)",
            mi + 1,
            cfg.modules,
            module.num_insts()
        ));
        check_state(&module, module_seed, String::new(), &mut report, &mut progress);
        for _ in 0..cfg.seqs_per_module {
            let len = rng.gen_range(1..=cfg.max_seq_len);
            let seq: Vec<PassId> =
                (0..len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
            let Ok(res) = pm.compile_result(&module, &seq) else { continue };
            check_state(&res.module, module_seed, reg.seq_to_string(&seq), &mut report, &mut progress);
        }
    }
    report
}

/// Soundness-fuzz the work-class subsumption matrix: random generated modules
/// × random sequences, simulating the canonicalizer's absent-work dataflow on
/// an evolving module and executing every predicted drop as a no-op theorem.
/// This exercises all three mask claims at once — `fires_on` (the no-op
/// certificate), `clears` (the postcondition), and `produces` (the frame
/// condition) — in exactly the composition the search uses them. Violations
/// are delta-debugged (sequence ddmin pinned to the same predicted-dropped
/// pass, then module reduction) before being reported.
pub fn run_subsumption_campaign(
    cfg: &FuzzConfig,
    reg: &Registry,
    mut progress: impl FnMut(&str),
) -> SubsumptionReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = SubsumptionReport::default();

    for mi in 0..cfg.modules {
        let module_seed: u64 = rng.gen();
        let gen_cfg = varied_config(&mut rng);
        let module = generate(module_seed, &gen_cfg);
        progress(&format!(
            "subsume module {}/{} (seed {module_seed:#x}, {} insts)",
            mi + 1,
            cfg.modules,
            module.num_insts()
        ));
        for _ in 0..cfg.seqs_per_module {
            report.trials += 1;
            let len = rng.gen_range(1..=cfg.max_seq_len);
            let seq: Vec<PassId> =
                (0..len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
            let counters = (&mut report.checked_drops, &mut report.positions);
            let Some((pass, detail)) = subsumption_replay(reg, &module, &seq, Some(counters))
            else {
                continue;
            };
            progress(&format!("  SUBSUMPTION VIOLATION ({pass}) — reducing"));

            // Pin reduction to the same predicted-dropped pass so it cannot
            // drift to an unrelated (hypothetical) second false claim.
            let still_fires = |reg: &Registry, m: &Module, s: &[PassId]| {
                subsumption_replay(reg, m, s, None).is_some_and(|(p, _)| p == pass)
            };
            let min_seq = ddmin(&seq, |s| still_fires(reg, &module, s));
            let reduced = reduce_module(&module, |m| still_fires(reg, m, &min_seq));
            report.violations.push(SubsumptionViolation {
                pass: pass.clone(),
                module_seed,
                seq: reg.seq_to_string(&seq),
                reduced_seq: reg.seq_to_string(&min_seq),
                reduced_ir: citroen_ir::print::print_module(&reduced),
                detail,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_clean() {
        // The shipped passes must survive a small deterministic campaign;
        // this is the `cargo test` face of `citroen-analyze --smoke`.
        let report = run_campaign(&FuzzConfig::smoke(), |_| {});
        assert!(report.trials >= 12);
        for f in &report.failures {
            panic!(
                "fuzz failure ({}) seed {:#x}\n  seq: {}\n  reduced seq: {}\n{}",
                f.kind, f.module_seed, f.seq, f.reduced_seq, f.reduced_ir
            );
        }
    }

    #[test]
    fn oracle_smoke_campaign_is_clean() {
        // Every shipped precondition must uphold its CannotFire theorem on
        // a small deterministic campaign (the full 500-trial version runs in
        // release via `citroen-analyze oracle` / scripts/check.sh).
        let cfg = FuzzConfig { modules: 6, seqs_per_module: 5, max_seq_len: 12, seed: 7 };
        let report = run_oracle_campaign(&cfg, &Registry::full(), |_| {});
        assert_eq!(report.trials, 30);
        // The campaign only proves something if verdicts were actually
        // executed: a trivially-MayFire oracle would make this test vacuous.
        assert!(
            report.checked_cannot_fire >= report.verdicts / 10,
            "only {}/{} verdicts were CannotFire — oracle too weak to test",
            report.checked_cannot_fire,
            report.verdicts
        );
        for v in &report.violations {
            panic!(
                "oracle violation: pass '{}' ({}) seed {:#x}\n  seq: {}\n  reduced: {}\n{}",
                v.pass, v.detail, v.module_seed, v.seq, v.reduced_seq, v.reduced_ir
            );
        }
    }

    #[test]
    fn subsumption_smoke_campaign_is_clean() {
        // Every claimed work-class theorem (fires_on/clears/produces of the
        // shipped registry) must survive a small deterministic campaign; the
        // full 500-trial version runs via `citroen-analyze subsume`.
        let cfg = FuzzConfig { modules: 6, seqs_per_module: 5, max_seq_len: 12, seed: 7 };
        let report = run_subsumption_campaign(&cfg, &Registry::full(), |_| {});
        assert_eq!(report.trials, 30);
        // Vacuity guard: the campaign only proves something if drops were
        // actually predicted and executed.
        assert!(
            report.checked_drops > 0,
            "no drops predicted over {} positions — matrix too weak to test",
            report.positions
        );
        for v in &report.violations {
            panic!(
                "subsumption violation: pass '{}' ({}) seed {:#x}\n  seq: {}\n  reduced: {}\n{}",
                v.pass, v.detail, v.module_seed, v.seq, v.reduced_seq, v.reduced_ir
            );
        }
    }

    #[test]
    fn subsumption_campaign_convicts_lying_clears() {
        // A registry spiked with the pass that claims `clears == ALL` while
        // doing nothing must produce violations, and ddmin must shrink every
        // reproducer to the lie plus the one pass it falsely subsumed.
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::LyingSubsumption));
        let reg = Registry::from_passes(passes);
        let cfg = FuzzConfig { modules: 3, seqs_per_module: 8, max_seq_len: 16, seed: 28 };
        let report = run_subsumption_campaign(&cfg, &reg, |_| {});
        assert!(
            !report.violations.is_empty(),
            "the lying clears claim must be caught ({} trials)",
            report.trials
        );
        for v in &report.violations {
            let parts: Vec<&str> = v.reduced_seq.split(',').collect();
            assert_eq!(
                parts.first().copied(),
                Some("lying-subsumption"),
                "reduction must pin the lie first: {}",
                v.reduced_seq
            );
            assert_eq!(
                parts.len(),
                2,
                "minimal reproducer is the lie plus its victim: {}",
                v.reduced_seq
            );
            assert!(!v.reduced_ir.is_empty());
        }
    }

    #[test]
    fn alias_campaign_is_clean_and_exercises_both_claims() {
        let cfg = FuzzConfig { modules: 6, seqs_per_module: 3, max_seq_len: 10, seed: 0xA11A5 };
        let report = run_alias_campaign(&cfg, |_| {});
        assert_eq!(report.modules, 6);
        assert!(report.trials >= 6, "raw modules always checked: {}", report.trials);
        assert!(report.no_claims > 0, "campaign must test No claims");
        assert!(report.must_claims > 0, "campaign must test Must claims");
        for v in &report.violations {
            panic!(
                "alias violation: seed {:#x} seq [{}]\n  {}\n{}",
                v.module_seed, v.seq, v.detail, v.reduced_ir
            );
        }
    }

    #[test]
    fn oracle_campaign_convicts_lying_alias_precondition() {
        // The alias-flavoured lie: CannotFire claimed whenever the only
        // forwarding candidates flow through computed addresses. Generated
        // modules carry alloca-backed store→load pairs, so the campaign must
        // catch it, and ddmin must pin each reproducer to the lie alone.
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::LyingAliasPrecondition));
        let reg = Registry::from_passes(passes);
        let cfg = FuzzConfig { modules: 3, seqs_per_module: 8, max_seq_len: 16, seed: 11 };
        let report = run_oracle_campaign(&cfg, &reg, |_| {});
        assert!(
            !report.violations.is_empty(),
            "the alias lie must be caught ({} trials)",
            report.trials
        );
        for v in &report.violations {
            assert_eq!(v.pass, "lying-alias-precondition", "only the spiked pass may be convicted");
            assert_eq!(
                v.reduced_seq, "lying-alias-precondition",
                "ddmin must shrink the sequence to the lie alone"
            );
            assert!(!v.reduced_ir.is_empty());
        }
    }

    #[test]
    fn oracle_campaign_convicts_lying_precondition() {
        // A registry spiked with the deliberately lying pass must produce
        // violations, and ddmin must reduce each reproducer to the lie alone.
        let mut passes = citroen_passes::passes::all_passes();
        passes.push(Box::new(citroen_passes::testing::LyingPrecondition));
        let reg = Registry::from_passes(passes);
        // The lying pass is 1 of 33, so keep enough slots that some drawn
        // sequence deterministically contains it under this seed.
        let cfg = FuzzConfig { modules: 3, seqs_per_module: 8, max_seq_len: 16, seed: 11 };
        let report = run_oracle_campaign(&cfg, &reg, |_| {});
        assert!(
            !report.violations.is_empty(),
            "the lying pass must be caught ({} trials)",
            report.trials
        );
        for v in &report.violations {
            assert_eq!(v.pass, "lying-precondition", "only the spiked pass may be convicted");
            assert_eq!(
                v.reduced_seq, "lying-precondition",
                "ddmin must shrink the sequence to the lie alone"
            );
            assert!(!v.reduced_ir.is_empty());
        }
    }
}

