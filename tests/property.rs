//! Property-based tests (proptest) on core data structures and invariants:
//! IR scalar semantics, the linear-algebra kernel, the Yeo–Johnson
//! transform, symbolic address decomposition, and pass-pipeline semantic
//! preservation on arbitrary straight-line programs.

use citroen::gp::linalg::{chol_solve, cholesky, Mat};
use citroen::gp::transform::{yeo_johnson, OutputTransform};
use citroen::ir::builder::FunctionBuilder;
use citroen::ir::interp::{run_counting, Value};
use citroen::ir::types::{ScalarTy, I64};
use citroen::ir::{BinOp, Module, Operand};
use citroen::passes::{PassManager, Registry};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// IR scalar semantics: canonical sign-extension form is closed under ops.
// ---------------------------------------------------------------------------

fn scalar_tys() -> impl Strategy<Value = ScalarTy> {
    prop_oneof![
        Just(ScalarTy::I8),
        Just(ScalarTy::I16),
        Just(ScalarTy::I32),
        Just(ScalarTy::I64),
    ]
}

proptest! {
    #[test]
    fn wrap_is_idempotent_and_canonical(v in any::<i64>(), ty in scalar_tys()) {
        let w = ty.wrap(v);
        prop_assert_eq!(ty.wrap(w), w, "wrap must be idempotent");
        prop_assert_eq!(ty.sext(w), w, "wrapped values are canonical");
        // zext then sext of low bits round-trips the canonical form.
        prop_assert_eq!(ty.wrap(ty.zext(w)), w);
    }

    #[test]
    fn interpreter_matches_rust_semantics(a in any::<i32>(), b in any::<i32>()) {
        // Build `f(a, b) = (a + b) * a - (b ^ a)` in i32 and compare with Rust.
        let mut m = Module::new("p");
        let i32t = citroen::ir::types::I32;
        let mut f = FunctionBuilder::new("f", vec![i32t, i32t], Some(i32t));
        let s = f.bin(BinOp::Add, i32t, f.param(0), f.param(1));
        let p = f.bin(BinOp::Mul, i32t, s, f.param(0));
        let x = f.bin(BinOp::Xor, i32t, f.param(1), f.param(0));
        let r = f.bin(BinOp::Sub, i32t, p, x);
        f.ret(Some(r));
        m.add_func(f.finish());
        let (out, _) = run_counting(&m, citroen::ir::FuncId(0), &[Value::I(a as i64), Value::I(b as i64)]).unwrap();
        let expect = a.wrapping_add(b).wrapping_mul(a).wrapping_sub(b ^ a);
        prop_assert_eq!(out.ret, Some(Value::I(expect as i64)));
    }
}

// ---------------------------------------------------------------------------
// Linear algebra: Cholesky solves random SPD systems.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn cholesky_solves_random_spd(seed in 0u64..1000, n in 2usize..7) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // A = M Mᵀ + n·I is SPD.
        let mmat = Mat::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let a = Mat::from_fn(n, n, |i, j| {
            (0..n).map(|k| mmat.get(i, k) * mmat.get(j, k)).sum::<f64>()
                + if i == j { n as f64 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let l = cholesky(&a).unwrap();
        let x = chol_solve(&l, &b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-7, "residual {u} vs {v}");
        }
    }

    #[test]
    fn yeo_johnson_monotone_and_invertible(
        lambda in -2.0f64..3.0,
        a in -50.0f64..50.0,
        b in -50.0f64..50.0,
    ) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assume!(hi - lo > 1e-9);
        let (ta, tb) = (yeo_johnson(lo, lambda), yeo_johnson(hi, lambda));
        prop_assert!(ta < tb, "YJ must be strictly monotone: {ta} !< {tb}");
    }

    #[test]
    fn output_transform_roundtrips(values in prop::collection::vec(-100.0f64..100.0, 4..20)) {
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let t = OutputTransform::fit(&values);
        for &v in &values {
            let back = t.inverse(t.forward(v));
            prop_assert!((back - v).abs() < 1e-4 * (1.0 + v.abs()), "{v} -> {back}");
        }
    }
}

// ---------------------------------------------------------------------------
// Pass semantic preservation on arbitrary straight-line integer programs.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum OpPick {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    SMin,
    SMax,
}

fn op_strategy() -> impl Strategy<Value = OpPick> {
    prop_oneof![
        Just(OpPick::Add),
        Just(OpPick::Sub),
        Just(OpPick::Mul),
        Just(OpPick::And),
        Just(OpPick::Or),
        Just(OpPick::Xor),
        Just(OpPick::Shl),
        Just(OpPick::SMin),
        Just(OpPick::SMax),
    ]
}

fn to_binop(p: &OpPick) -> BinOp {
    match p {
        OpPick::Add => BinOp::Add,
        OpPick::Sub => BinOp::Sub,
        OpPick::Mul => BinOp::Mul,
        OpPick::And => BinOp::And,
        OpPick::Or => BinOp::Or,
        OpPick::Xor => BinOp::Xor,
        OpPick::Shl => BinOp::Shl,
        OpPick::SMin => BinOp::SMin,
        OpPick::SMax => BinOp::SMax,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn pipelines_preserve_straightline_programs(
        arg in any::<i64>(),
        ops in prop::collection::vec((op_strategy(), 0usize..8, -64i64..64), 1..24),
        pipeline in prop::collection::vec(0usize..32, 0..12),
    ) {
        // Build a straight-line i64 program: each step applies an op to a
        // previously-defined value and a small constant (shift amounts masked).
        let mut m = Module::new("p");
        let mut f = FunctionBuilder::new("f", vec![I64], Some(I64));
        let mut vals = vec![f.param(0)];
        for (op, src, konst) in &ops {
            let op = to_binop(op);
            let lhs = vals[src % vals.len()];
            let rhs = if op == BinOp::Shl {
                Operand::imm64((konst & 31).abs())
            } else {
                Operand::imm64(*konst)
            };
            let v = f.bin(op, I64, lhs, rhs);
            vals.push(v);
        }
        let last = *vals.last().unwrap();
        f.ret(Some(last));
        m.add_func(f.finish());
        citroen::ir::verify::assert_valid(&m);

        let (base, _) = run_counting(&m, citroen::ir::FuncId(0), &[Value::I(arg)]).unwrap();

        let reg = Registry::full();
        let pm = PassManager::new(&reg);
        let ids = reg.ids();
        let seq: Vec<_> = pipeline.iter().map(|i| ids[i % ids.len()]).collect();
        let res = pm.compile(&m, &seq);
        citroen::ir::verify::assert_valid(&res.module);
        let (out, _) = run_counting(&res.module, citroen::ir::FuncId(0), &[Value::I(arg)]).unwrap();
        prop_assert_eq!(base.ret, out.ret, "pipeline [{}] changed the result", reg.seq_to_string(&seq));
    }
}
