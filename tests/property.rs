//! Randomised property tests on core data structures and invariants:
//! IR scalar semantics, the linear-algebra kernel, the Yeo–Johnson
//! transform, and pass-pipeline semantic preservation on arbitrary
//! straight-line programs.
//!
//! Formerly written against `proptest`; now driven by the in-tree seeded
//! generator (`citroen::rt::rng`) so the suite builds hermetically. Every
//! test uses a fixed seed — failures reproduce exactly, with the offending
//! case printed in the assertion message.

use citroen::gp::linalg::{chol_solve, cholesky, Mat};
use citroen::gp::transform::{yeo_johnson, OutputTransform};
use citroen::ir::builder::FunctionBuilder;
use citroen::ir::interp::{run_counting, Value};
use citroen::ir::types::{ScalarTy, I64};
use citroen::ir::{BinOp, Module, Operand};
use citroen::passes::{PassManager, Registry};
use citroen::rt::rng::{Rng, SeedableRng, StdRng};

// ---------------------------------------------------------------------------
// IR scalar semantics: canonical sign-extension form is closed under ops.
// ---------------------------------------------------------------------------

const SCALAR_TYS: [ScalarTy; 4] =
    [ScalarTy::I8, ScalarTy::I16, ScalarTy::I32, ScalarTy::I64];

#[test]
fn wrap_is_idempotent_and_canonical() {
    let mut rng = StdRng::seed_from_u64(0xC17_0E21);
    for case in 0..2000 {
        let v: i64 = rng.gen();
        let ty = *rng.choose(&SCALAR_TYS).unwrap();
        let w = ty.wrap(v);
        assert_eq!(ty.wrap(w), w, "case {case}: wrap must be idempotent on {v} {ty:?}");
        assert_eq!(ty.sext(w), w, "case {case}: wrapped values are canonical");
        // zext then sext of low bits round-trips the canonical form.
        assert_eq!(ty.wrap(ty.zext(w)), w, "case {case}: zext/wrap roundtrip {v} {ty:?}");
    }
}

#[test]
fn interpreter_matches_rust_semantics() {
    let mut rng = StdRng::seed_from_u64(0xC17_0E22);
    for case in 0..500 {
        let a: i32 = rng.gen();
        let b: i32 = rng.gen();
        // Build `f(a, b) = (a + b) * a - (b ^ a)` in i32 and compare with Rust.
        let mut m = Module::new("p");
        let i32t = citroen::ir::types::I32;
        let mut f = FunctionBuilder::new("f", vec![i32t, i32t], Some(i32t));
        let s = f.bin(BinOp::Add, i32t, f.param(0), f.param(1));
        let p = f.bin(BinOp::Mul, i32t, s, f.param(0));
        let x = f.bin(BinOp::Xor, i32t, f.param(1), f.param(0));
        let r = f.bin(BinOp::Sub, i32t, p, x);
        f.ret(Some(r));
        m.add_func(f.finish());
        let (out, _) = run_counting(
            &m,
            citroen::ir::FuncId(0),
            &[Value::I(a as i64), Value::I(b as i64)],
        )
        .unwrap();
        let expect = a.wrapping_add(b).wrapping_mul(a).wrapping_sub(b ^ a);
        assert_eq!(out.ret, Some(Value::I(expect as i64)), "case {case}: f({a}, {b})");
    }
}

// ---------------------------------------------------------------------------
// Linear algebra: Cholesky solves random SPD systems.
// ---------------------------------------------------------------------------

#[test]
fn cholesky_solves_random_spd() {
    let mut outer = StdRng::seed_from_u64(0xC17_0E23);
    for case in 0..32 {
        let seed = outer.gen_range(0u64..1000);
        let n = outer.gen_range(2usize..7);
        let mut rng = StdRng::seed_from_u64(seed);
        // A = M Mᵀ + n·I is SPD.
        let mmat = Mat::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let a = Mat::from_fn(n, n, |i, j| {
            (0..n).map(|k| mmat.get(i, k) * mmat.get(j, k)).sum::<f64>()
                + if i == j { n as f64 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let l = cholesky(&a).unwrap();
        let x = chol_solve(&l, &b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!(
                (u - v).abs() < 1e-7,
                "case {case} (seed {seed}, n {n}): residual {u} vs {v}"
            );
        }
    }
}

#[test]
fn yeo_johnson_monotone_and_invertible() {
    let mut rng = StdRng::seed_from_u64(0xC17_0E24);
    let mut checked = 0;
    while checked < 500 {
        let lambda = rng.gen_range(-2.0f64..3.0);
        let a = rng.gen_range(-50.0f64..50.0);
        let b = rng.gen_range(-50.0f64..50.0);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if hi - lo <= 1e-9 {
            continue;
        }
        checked += 1;
        let (ta, tb) = (yeo_johnson(lo, lambda), yeo_johnson(hi, lambda));
        assert!(
            ta < tb,
            "YJ must be strictly monotone: yj({lo}, {lambda}) = {ta} !< yj({hi}, {lambda}) = {tb}"
        );
    }
}

#[test]
fn output_transform_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xC17_0E25);
    let mut checked = 0;
    while checked < 200 {
        let len = rng.gen_range(4usize..20);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread <= 1e-6 {
            continue;
        }
        checked += 1;
        let t = OutputTransform::fit(&values);
        for &v in &values {
            let back = t.inverse(t.forward(v));
            assert!(
                (back - v).abs() < 1e-4 * (1.0 + v.abs()),
                "case {checked}: {v} -> {back}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Pass semantic preservation on arbitrary straight-line integer programs.
// ---------------------------------------------------------------------------

const OPS: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::SMin,
    BinOp::SMax,
];

#[test]
fn pipelines_preserve_straightline_programs() {
    let mut rng = StdRng::seed_from_u64(0xC17_0E26);
    for case in 0..48 {
        let arg: i64 = rng.gen();
        let n_ops = rng.gen_range(1usize..24);
        let ops: Vec<(BinOp, usize, i64)> = (0..n_ops)
            .map(|_| {
                (
                    *rng.choose(&OPS).unwrap(),
                    rng.gen_range(0usize..8),
                    rng.gen_range(-64i64..64),
                )
            })
            .collect();
        let pipeline: Vec<usize> =
            (0..rng.gen_range(0usize..12)).map(|_| rng.gen_range(0usize..32)).collect();

        // Build a straight-line i64 program: each step applies an op to a
        // previously-defined value and a small constant (shift amounts masked).
        let mut m = Module::new("p");
        let mut f = FunctionBuilder::new("f", vec![I64], Some(I64));
        let mut vals = vec![f.param(0)];
        for (op, src, konst) in &ops {
            let lhs = vals[src % vals.len()];
            let rhs = if *op == BinOp::Shl {
                Operand::imm64((konst & 31).abs())
            } else {
                Operand::imm64(*konst)
            };
            let v = f.bin(*op, I64, lhs, rhs);
            vals.push(v);
        }
        let last = *vals.last().unwrap();
        f.ret(Some(last));
        m.add_func(f.finish());
        citroen::ir::verify::assert_valid(&m);

        let (base, _) = run_counting(&m, citroen::ir::FuncId(0), &[Value::I(arg)]).unwrap();

        let reg = Registry::full();
        let pm = PassManager::new(&reg);
        let ids = reg.ids();
        let seq: Vec<_> = pipeline.iter().map(|i| ids[i % ids.len()]).collect();
        let res = pm.compile(&m, &seq);
        citroen::ir::verify::assert_valid(&res.module);
        let (out, _) =
            run_counting(&res.module, citroen::ir::FuncId(0), &[Value::I(arg)]).unwrap();
        assert_eq!(
            base.ret,
            out.ret,
            "case {case}: pipeline [{}] changed the result for arg {arg}",
            reg.seq_to_string(&seq)
        );
    }
}
