//! The build must stay hermetic: every manifest in the workspace may depend
//! only on in-tree `citroen-*` crates (and the std library). A dependency on
//! any external crate would break offline/air-gapped builds — exactly the
//! failure mode this rule exists to prevent — so this test walks every
//! `Cargo.toml` and fails the moment one sneaks in.

use std::fs;
use std::path::{Path, PathBuf};

/// Collect the root manifest plus every `crates/*/Cargo.toml`.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut found = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ must exist") {
        let manifest = entry.unwrap().path().join("Cargo.toml");
        if manifest.is_file() {
            found.push(manifest);
        }
    }
    assert!(found.len() >= 11, "expected root + >=10 crate manifests, found {}", found.len());
    found
}

/// Is `line` a TOML table header for a dependency section?
fn is_dep_section(header: &str) -> bool {
    let h = header.trim_start_matches('[').trim_end_matches(']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || (h.starts_with("target.") && h.ends_with(".dependencies"))
        || h.starts_with("dependencies.")
        || h.starts_with("dev-dependencies.")
}

/// Extract the dependency name a line in a dep section declares, if any.
fn dep_name(line: &str) -> Option<&str> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let key = line.split('=').next()?.trim();
    // `foo.workspace = true` declares dep `foo`.
    let key = key.split('.').next()?.trim().trim_matches('"');
    if key.is_empty() { None } else { Some(key) }
}

fn allowed(dep: &str) -> bool {
    dep == "citroen" || dep.starts_with("citroen-")
}

#[test]
fn all_manifests_depend_only_on_in_tree_crates() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest).unwrap();
        let mut in_deps = false;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                in_deps = is_dep_section(trimmed);
                // `[dependencies.foo]`-style headers declare dep `foo` inline.
                if in_deps {
                    let h = trimmed.trim_matches(['[', ']']);
                    if let Some(name) = h.strip_prefix("dependencies.")
                        .or_else(|| h.strip_prefix("dev-dependencies."))
                    {
                        if !allowed(name) {
                            violations.push(format!("{}: {}", manifest.display(), name));
                        }
                    }
                }
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(name) = dep_name(line) {
                if !allowed(name) {
                    violations.push(format!("{}: {}", manifest.display(), name));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "external dependencies break the hermetic build:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn rng_stream_is_pinned_at_integration_level() {
    // A coarse cross-crate echo of the known-answer tests inside citroen-rt:
    // if the stream ever shifts, seeded experiment trajectories shift with it,
    // so catch it here too where `citroen` re-exports the runtime.
    use citroen::rt::rng::{Rng, SeedableRng, StdRng};
    let mut rng = StdRng::seed_from_u64(42);
    let first: u64 = rng.gen();
    assert_eq!(first, 0xD076_4D4F_4476_689F, "seed-42 stream moved");
}
