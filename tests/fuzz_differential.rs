//! Cross-crate fuzz testing: randomly generated programs × random pass
//! sequences must preserve observable behaviour, keep the verifier happy,
//! and compile deterministically. This is the widest correctness net over
//! the whole compiler substrate.

use citroen::ir::interp::run_counting;
use citroen::passes::{o3_pipeline, PassManager, Registry};
use citroen::suite::generator::{generate, GenConfig};
use citroen_rt::rng::StdRng;
use citroen_rt::rng::{Rng, SeedableRng};

#[test]
fn generated_programs_survive_random_pipelines() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for seed in 0..12u64 {
        let m = generate(seed, &GenConfig::default());
        let entry = m.func_by_name("gen_main").unwrap();
        let (base, _) = run_counting(&m, entry, &[]).unwrap();
        for trial in 0..6 {
            let len = rng.gen_range(1..=20);
            let seq: Vec<_> = (0..len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
            let res = pm.compile(&m, &seq);
            citroen::ir::verify::assert_valid(&res.module);
            let (out, _) = run_counting(&res.module, entry, &[]).unwrap_or_else(|t| {
                panic!(
                    "seed {seed} trial {trial} trapped ({t}) under [{}]",
                    reg.seq_to_string(&seq)
                )
            });
            assert_eq!(
                (base.ret, base.mem_digest),
                (out.ret, out.mem_digest),
                "seed {seed}: behaviour changed under [{}]",
                reg.seq_to_string(&seq)
            );
        }
    }
}

#[test]
fn generated_programs_survive_o3() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let o3 = o3_pipeline(&reg);
    for seed in 100..115u64 {
        let m = generate(seed, &GenConfig::default());
        let entry = m.func_by_name("gen_main").unwrap();
        let (base, _) = run_counting(&m, entry, &[]).unwrap();
        let res = pm.compile(&m, &o3);
        let (out, _) = run_counting(&res.module, entry, &[])
            .unwrap_or_else(|t| panic!("seed {seed} trapped under O3: {t}"));
        assert_eq!((base.ret, base.mem_digest), (out.ret, out.mem_digest), "seed {seed}");
    }
}

#[test]
fn compilation_is_deterministic_across_programs() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let o3 = o3_pipeline(&reg);
    for seed in 0..6u64 {
        let m = generate(seed, &GenConfig::default());
        let a = pm.compile(&m, &o3);
        let b = pm.compile(&m, &o3);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}: nondeterministic compile");
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn suite_benchmarks_survive_random_pipelines() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for b in citroen::suite::cbench().into_iter().take(5) {
        let linked0 = b.link();
        let entry = b.entry_in(&linked0);
        let (base, _) = run_counting(&linked0, entry, &b.args).unwrap();
        for _ in 0..4 {
            let len = rng.gen_range(4..=16);
            let seq: Vec<_> = (0..len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
            let opt: Vec<_> = b.modules.iter().map(|m| pm.compile(m, &seq).module).collect();
            let linked = b.link_with(Some(&opt));
            let (out, _) = run_counting(&linked, entry, &b.args).unwrap_or_else(|t| {
                panic!("{} trapped under [{}]: {t}", b.name, reg.seq_to_string(&seq))
            });
            assert_eq!(
                (base.ret, base.mem_digest),
                (out.ret, out.mem_digest),
                "{} changed behaviour under [{}]",
                b.name,
                reg.seq_to_string(&seq)
            );
        }
    }
}
