//! End-to-end integration tests spanning all crates: the full
//! benchmark → compile → simulate → tune loop, the paper's headline claims
//! at miniature scale, and the public-API surface the examples rely on.

use citroen::core::{
    run_citroen, run_multimodule, Allocation, CitroenConfig, FeatureKind, MultiModuleConfig,
    Task, TaskConfig,
};
use citroen::passes::Registry;
use citroen::sim::Platform;
use citroen::tuners::{RandomTuner, SeqTuner};

fn gsm_task(seed: u64) -> Task {
    Task::new(
        citroen::suite::kernels::telecom_gsm(),
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: 16, seed, ..Default::default() },
    )
}

#[test]
fn citroen_beats_random_on_gsm_small_budget() {
    // The paper's headline at miniature scale: with a tight budget, the
    // statistics-guided search finds faster binaries than random search
    // (averaged over seeds).
    let budget = 18;
    let mut citroen_total = 0.0;
    let mut random_total = 0.0;
    for seed in 0..3 {
        let mut t1 = gsm_task(seed);
        let (tr, _) = run_citroen(
            &mut t1,
            budget,
            &CitroenConfig { candidates: 24, init_random: 5, seed, ..Default::default() },
        );
        citroen_total += tr.best() / t1.o3_seconds;

        let mut t2 = gsm_task(seed);
        let tr2 = RandomTuner { seed }.run(&mut t2, budget);
        random_total += tr2.best() / t2.o3_seconds;
    }
    assert!(
        citroen_total <= random_total * 1.02,
        "CITROEN (rel {citroen_total:.3}) should not lose to random (rel {random_total:.3})"
    );
}

#[test]
fn stats_features_beat_raw_sequence_on_jpeg() {
    // Fig. 5.9's claim at miniature scale (averaged over seeds). The DCT
    // kernel is the robust vehicle: its headroom is found reliably with
    // statistics features and reliably missed with raw-sequence features
    // (gsm's optimum is jackpot-dominated at small budgets — see
    // EXPERIMENTS.md).
    let budget = 25;
    let mut stats_total = 0.0;
    let mut raw_total = 0.0;
    for seed in 0..3 {
        let mk = |seed: u64| {
            Task::new(
                citroen::suite::kernels::consumer_jpeg_dct(),
                Registry::full(),
                Platform::tx2(),
                TaskConfig { seq_len: 16, seed, ..Default::default() },
            )
        };
        let mut t1 = mk(seed + 10);
        let (a, _) = run_citroen(
            &mut t1,
            budget,
            &CitroenConfig { candidates: 24, init_random: 5, seed, ..Default::default() },
        );
        stats_total += a.best() / t1.o3_seconds;
        let mut t2 = mk(seed + 10);
        let (b, _) = run_citroen(
            &mut t2,
            budget,
            &CitroenConfig {
                candidates: 24,
                init_random: 5,
                features: FeatureKind::RawSequence,
                seed,
                ..Default::default()
            },
        );
        raw_total += b.best() / t2.o3_seconds;
    }
    // Allow noise but stats features should be at least competitive.
    assert!(
        stats_total <= raw_total * 1.05,
        "stats features {stats_total:.3} vs raw features {raw_total:.3}"
    );
}

#[test]
fn budget_accounting_is_exact_across_tuners() {
    let mut task = gsm_task(1);
    let (trace, _) = run_citroen(&mut task, 9, &CitroenConfig::default());
    assert_eq!(task.measurements, 9);
    assert_eq!(trace.runtimes.len() >= 9, true);
    // Compilations vastly outnumber measurements (the cheap/expensive split).
    assert!(task.compilations > task.measurements);
}

#[test]
fn multimodule_adaptive_runs_end_to_end() {
    let mut task = Task::new(
        citroen::suite::speclike::spec_compress(),
        Registry::full(),
        Platform::amd(),
        TaskConfig { seq_len: 10, ..Default::default() },
    );
    if task.hot_modules.len() < 2 {
        let extra = (0..task.benchmark().modules.len())
            .find(|i| !task.hot_modules.contains(i))
            .unwrap();
        task.hot_modules.push(extra);
    }
    let res = run_multimodule(
        &mut task,
        10,
        &MultiModuleConfig {
            allocation: Allocation::Adaptive,
            candidates_per_module: 4,
            init_random: 2,
            ..Default::default()
        },
    );
    assert_eq!(task.measurements, 10);
    assert!(res.trace.best().is_finite());
    assert!(res.trace.best() <= task.o0_seconds);
}

#[test]
fn impact_report_names_real_statistics() {
    let mut task = gsm_task(4);
    let (_, report) = run_citroen(
        &mut task,
        12,
        &CitroenConfig { candidates: 20, init_random: 5, seed: 4, ..Default::default() },
    );
    assert!(report.ranked.len() >= 5);
    for (name, ls) in report.ranked.iter().take(5) {
        assert!(name.contains('.'), "stat key '{name}' should be pass.stat");
        assert!(*ls > 0.0);
    }
}

#[test]
fn llvm10_registry_tunes_too() {
    let mut task = Task::new(
        citroen::suite::kernels::telecom_crc32(),
        Registry::llvm10(),
        Platform::tx2(),
        TaskConfig { seq_len: 12, ..Default::default() },
    );
    let (trace, _) = run_citroen(
        &mut task,
        8,
        &CitroenConfig { candidates: 16, init_random: 4, ..Default::default() },
    );
    assert_eq!(task.measurements, 8);
    assert!(trace.best().is_finite());
}

#[test]
fn facade_reexports_compose() {
    // The root crate's re-exports must be enough to drive the whole flow
    // (what the README quickstart uses).
    let bench = citroen::suite::kernels::automotive_bitcount();
    let linked = bench.link();
    citroen::ir::verify::assert_valid(&linked);
    let platform = citroen::sim::Platform::tx2();
    let exec = platform.execute(&linked, bench.entry_in(&linked), &bench.args).unwrap();
    assert!(exec.seconds > 0.0);
    let reg = citroen::passes::Registry::full();
    assert!(reg.len() >= 30);
    let fun = citroen::synthetic::functions::ackley(5);
    assert!((fun.f)(&[0.0; 5]).abs() < 1e-9);
}
