//! The CI SLO gate, end to end over real binaries: `citroen-trace top
//! --once` against a live socket daemon must exit 0 while the daemon is
//! healthy and 1 once an (injected) SLO breach degrades it.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Kills the daemon subprocess even when an assertion panics mid-test.
struct DaemonGuard {
    child: Child,
    socket: PathBuf,
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn spawn_daemon(name: &str, extra: &[&str]) -> DaemonGuard {
    let socket =
        std::env::temp_dir().join(format!("citroen-slo-{name}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut args = vec!["serve".to_string(), "--socket".to_string()];
    args.push(socket.to_string_lossy().into_owned());
    args.extend(extra.iter().map(|s| s.to_string()));
    let child = Command::new(env!("CARGO_BIN_EXE_citroen-serve"))
        .args(&args)
        .spawn()
        .expect("spawn citroen-serve");
    let mut guard = DaemonGuard { child, socket };
    let deadline = Instant::now() + Duration::from_secs(15);
    while !guard.socket.exists() {
        assert!(Instant::now() < deadline, "daemon socket never appeared");
        if let Some(status) = guard.child.try_wait().expect("child status") {
            panic!("daemon exited early with {status}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    guard
}

/// Submit one small job over the socket and block until its result reply,
/// so the SLO sentinels have observed a completed session before `top`
/// polls. The connection is dropped before returning (the daemon serves
/// connections sequentially).
fn run_one_job(socket: &Path) {
    let stream = UnixStream::connect(socket).expect("connect daemon socket");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let mut writer = stream.try_clone().expect("clone socket");
    writer
        .write_all(
            b"{\"type\":\"submit\",\"job\":{\"id\":\"g\",\"bench\":\"telecom_gsm\",\
              \"budget\":3,\"seed\":3}}\n",
        )
        .expect("submit");
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("daemon reply");
        assert!(n > 0, "daemon closed the connection before the job finished");
        if line.contains("\"type\":\"result\"") {
            return;
        }
        assert!(!line.contains("\"type\":\"error\""), "daemon error reply: {line}");
    }
}

fn top_once(socket: &Path) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_citroen-trace"))
        .args(["top", "--once", "--socket", &socket.to_string_lossy()])
        .status()
        .expect("run citroen-trace top")
        .code()
        .expect("top exit code")
}

#[test]
fn top_exits_zero_on_healthy_daemon() {
    let daemon = spawn_daemon("ok", &[]);
    run_one_job(&daemon.socket);
    assert_eq!(top_once(&daemon.socket), 0, "healthy daemon must gate green");
}

#[test]
fn top_exits_one_on_injected_slo_breach() {
    // A run-wall ceiling of 1 ns of milliseconds: the first completed job's
    // EWMA lands far above it, flipping health to degraded.
    let daemon = spawn_daemon("breach", &["--slo-run-ms", "0.000001"]);
    run_one_job(&daemon.socket);
    assert_eq!(top_once(&daemon.socket), 1, "breached daemon must gate red");
}

#[test]
fn compile_slo_breach_does_not_deadlock_the_daemon() {
    // Regression: the compile sentinel breaches inside sink dispatch (span
    // close holds the process-global telemetry SINK mutex). Emitting the
    // breach event from there re-locked the same mutex and hung the daemon
    // mid-span; the breach must instead be queued and emitted later. With
    // the ceiling at ~1 ns the very first compile breaches — the job still
    // completing (instead of `run_one_job` timing out) is the regression
    // check, and `top` must then gate red on the degraded daemon.
    let daemon = spawn_daemon("compile-breach", &["--slo-compile-us", "0.000001"]);
    run_one_job(&daemon.socket);
    assert_eq!(top_once(&daemon.socket), 1, "compile breach must gate red");
}
