//! Exit-code contract of the `citroen-analyze` binary: 0 on a clean run,
//! 1 when findings (lint diagnostics or oracle violations) exist, 2 on usage
//! errors. CI scripts branch on these codes, so they are pinned here against
//! the real binary rather than the library functions behind it.

use citroen_ir::builder::FunctionBuilder;
use citroen_ir::inst::Operand;
use citroen_ir::module::Module;
use citroen_ir::types::I64;
use std::path::PathBuf;
use std::process::{Command, Output};

fn analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_citroen-analyze"))
        .args(args)
        .output()
        .expect("spawn citroen-analyze")
}

fn temp_ir(name: &str, m: &Module) -> PathBuf {
    let path = std::env::temp_dir().join(format!("citroen-exit-{}-{name}.ir", std::process::id()));
    std::fs::write(&path, citroen_ir::print::print_module(m)).expect("write temp IR");
    path
}

/// A module with a provable dead store (the only write to a non-escaping
/// alloca that is never read).
fn dirty_module() -> Module {
    let mut m = Module::new("dirty");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let slot = b.alloca(8);
    b.store(I64, b.param(0), slot);
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    m
}

fn clean_module() -> Module {
    let mut m = Module::new("clean");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    b.ret(Some(b.param(0)));
    m.add_func(b.finish());
    m
}

#[test]
fn usage_error_exits_2() {
    let out = analyze(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown argument"), "{err}");

    // A flag missing its value is also a usage error.
    assert_eq!(analyze(&["--ir"]).status.code(), Some(2));
    assert_eq!(analyze(&["--lint", "--ir", "/no/such/file.ir"]).status.code(), Some(2));
}

#[test]
fn lint_ir_exit_codes_follow_findings() {
    // A module with a provable dead store → findings → exit 1.
    let dirty = temp_ir("dirty", &dirty_module());
    let out = analyze(&["--lint", "--ir", dirty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dead-store"), "{stdout}");

    // The same module has only Warning findings, so --errors-only is clean.
    let strict = analyze(&["--lint", "--errors-only", "--ir", dirty.to_str().unwrap()]);
    assert_eq!(strict.status.code(), Some(0));

    // A clean module → exit 0.
    let clean = temp_ir("clean", &clean_module());
    let out = analyze(&["--lint", "--ir", clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));

    let _ = std::fs::remove_file(dirty);
    let _ = std::fs::remove_file(clean);
}

#[test]
fn oracle_smoke_is_clean_and_emits_the_graph() {
    let out = analyze(&["oracle", "--smoke"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    // The graph JSON goes to stdout and must round-trip.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let graph = citroen_analyze::InteractionGraph::from_json(&stdout)
        .unwrap_or_else(|e| panic!("bad graph JSON ({e}):\n{stdout}"));
    assert!(!graph.passes.is_empty());
    // The summary (stderr) must witness that verdicts were really executed.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot-fire verdict(s) executed"), "{err}");
    assert!(err.contains("0 violation(s)"), "{err}");
}

#[test]
fn oracle_with_lying_pass_exits_1() {
    let out = analyze(&["oracle", "--smoke", "--with-lying"]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("oracle violation: lying-precondition"), "{err}");
    // ddmin must have shrunk the reproducer to the lying pass alone.
    assert!(err.contains("reduced sequence: lying-precondition"), "{err}");
}
