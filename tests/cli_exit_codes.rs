//! Exit-code contract of the `citroen-analyze` and `citroen-trace` binaries:
//! 0 on a clean run, 1 when findings (lint diagnostics, oracle violations,
//! trace-check failures, regressions) exist, 2 on usage errors. CI scripts
//! branch on these codes, so they are pinned here against the real binaries
//! rather than the library functions behind them.

use citroen_ir::builder::FunctionBuilder;
use citroen_ir::inst::Operand;
use citroen_ir::module::Module;
use citroen_ir::types::I64;
use std::path::PathBuf;
use std::process::{Command, Output};

fn analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_citroen-analyze"))
        .args(args)
        .output()
        .expect("spawn citroen-analyze")
}

fn temp_ir(name: &str, m: &Module) -> PathBuf {
    let path = std::env::temp_dir().join(format!("citroen-exit-{}-{name}.ir", std::process::id()));
    std::fs::write(&path, citroen_ir::print::print_module(m)).expect("write temp IR");
    path
}

/// A module with a provable dead store (the only write to a non-escaping
/// alloca that is never read).
fn dirty_module() -> Module {
    let mut m = Module::new("dirty");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let slot = b.alloca(8);
    b.store(I64, b.param(0), slot);
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    m
}

fn clean_module() -> Module {
    let mut m = Module::new("clean");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    b.ret(Some(b.param(0)));
    m.add_func(b.finish());
    m
}

#[test]
fn usage_error_exits_2() {
    let out = analyze(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown argument"), "{err}");

    // A flag missing its value is also a usage error.
    assert_eq!(analyze(&["--ir"]).status.code(), Some(2));
    assert_eq!(analyze(&["--lint", "--ir", "/no/such/file.ir"]).status.code(), Some(2));
}

#[test]
fn lint_ir_exit_codes_follow_findings() {
    // A module with a provable dead store → findings → exit 1.
    let dirty = temp_ir("dirty", &dirty_module());
    let out = analyze(&["--lint", "--ir", dirty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dead-store"), "{stdout}");

    // The same module has only Warning findings, so --errors-only is clean.
    let strict = analyze(&["--lint", "--errors-only", "--ir", dirty.to_str().unwrap()]);
    assert_eq!(strict.status.code(), Some(0));

    // A clean module → exit 0.
    let clean = temp_ir("clean", &clean_module());
    let out = analyze(&["--lint", "--ir", clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));

    let _ = std::fs::remove_file(dirty);
    let _ = std::fs::remove_file(clean);
}

#[test]
fn lint_json_keeps_exit_codes_and_is_parseable() {
    // --json must not change the exit-code contract: findings → 1, clean → 0.
    let dirty = temp_ir("dirty-json", &dirty_module());
    let out = analyze(&["--lint", "--json", "--ir", dirty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = citroen_rt::json::Value::parse(&stdout)
        .unwrap_or_else(|e| panic!("bad lint JSON ({e}):\n{stdout}"));
    assert_eq!(doc.get("mode").and_then(|v| v.as_str()), Some("lint"));
    let diags = doc.get("diagnostics").and_then(|v| v.as_arr()).expect("diagnostics array");
    assert!(!diags.is_empty());
    assert_eq!(diags[0].get("code").and_then(|v| v.as_str()), Some("dead-store"));
    assert_eq!(doc.get("total").and_then(|v| v.as_u64()), Some(diags.len() as u64));

    let clean = temp_ir("clean-json", &clean_module());
    let out = analyze(&["--lint", "--json", "--ir", clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = citroen_rt::json::Value::parse(&stdout).expect("clean lint JSON");
    assert_eq!(doc.get("total").and_then(|v| v.as_u64()), Some(0));

    let _ = std::fs::remove_file(dirty);
    let _ = std::fs::remove_file(clean);
}

#[test]
fn oracle_json_wraps_campaign_and_graph() {
    let out = analyze(&["oracle", "--smoke", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = citroen_rt::json::Value::parse(&stdout)
        .unwrap_or_else(|e| panic!("bad oracle JSON ({e}):\n{stdout}"));
    assert_eq!(doc.get("mode").and_then(|v| v.as_str()), Some("oracle"));
    let campaign = doc.get("campaign").expect("campaign object");
    assert!(campaign.get("trials").and_then(|v| v.as_u64()).unwrap_or(0) > 0);
    assert_eq!(
        campaign.get("violations").and_then(|v| v.as_arr()).map(<[_]>::len),
        Some(0)
    );
    // The embedded graph subtree must still round-trip as a graph document.
    let graph = citroen_analyze::InteractionGraph::from_json(
        &doc.get("graph").expect("graph object").emit_pretty(),
    )
    .expect("embedded graph round-trips");
    assert!(!graph.passes.is_empty());
}

#[test]
fn oracle_smoke_is_clean_and_emits_the_graph() {
    let out = analyze(&["oracle", "--smoke"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    // The graph JSON goes to stdout and must round-trip.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let graph = citroen_analyze::InteractionGraph::from_json(&stdout)
        .unwrap_or_else(|e| panic!("bad graph JSON ({e}):\n{stdout}"));
    assert!(!graph.passes.is_empty());
    // The summary (stderr) must witness that verdicts were really executed.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot-fire verdict(s) executed"), "{err}");
    assert!(err.contains("0 violation(s)"), "{err}");
}

#[test]
fn oracle_with_lying_pass_exits_1() {
    let out = analyze(&["oracle", "--smoke", "--with-lying"]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("oracle violation: lying-precondition"), "{err}");
    // ddmin must have shrunk the reproducer to the lying pass alone.
    assert!(err.contains("reduced sequence: lying-precondition"), "{err}");
}

// ---------------------------------------------------------------------------
// citroen-trace
// ---------------------------------------------------------------------------

fn trace_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_citroen-trace"))
        .args(args)
        .output()
        .expect("spawn citroen-trace")
}

fn temp_text(name: &str, text: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("citroen-exit-{}-{name}", std::process::id()));
    std::fs::write(&path, text).expect("write temp file");
    path
}

/// A hand-built streamed trace of a plausible tuning run: every span kind
/// and counter `check` requires, spans listed in completion order (children
/// before parents — the streaming order), run.meta + improving progress
/// events for `curve`, and all span totals above the 1 ms floor `regress`
/// compares. `scale` multiplies durations, to fabricate a perturbed run.
fn tuning_jsonl(scale: u64) -> String {
    let s = scale;
    let spans = [
        (2u64, 1u64, "init", 0u64, 1_000_000u64),
        (4, 3, "compile", 1_000_000, 4_000_000),
        (9, 5, "sim.execute", 5_000_000, 2_500_000),
        (5, 3, "measure", 5_000_000, 3_000_000),
        (8, 6, "gp.fit", 8_000_000, 900_000),
        (6, 3, "fit", 8_000_000, 1_000_000),
        (7, 3, "acquire", 9_000_000, 1_000_000),
        (3, 1, "iteration", 1_000_000, 9_500_000),
        (1, 0, "citroen.run", 0, 11_000_000),
    ];
    let mut out = String::from("{\"t\":\"meta\",\"version\":1}\n");
    for (id, parent, name, start, dur) in spans {
        out += &format!(
            "{{\"t\":\"span\",\"id\":{id},\"parent\":{parent},\"name\":\"{name}\",\
             \"thread\":0,\"start_ns\":{},\"dur_ns\":{}}}\n",
            start * s,
            dur * s
        );
    }
    for (name, delta) in [
        ("task.compilations", 40u64),
        ("task.measurements", 50),
        ("citroen.iterations", 12),
        ("gp.predict.calls", 100),
        ("acq.evals", 200),
    ] {
        out += &format!("{{\"t\":\"counter\",\"name\":\"{name}\",\"delta\":{delta}}}\n");
    }
    out += "{\"t\":\"event\",\"name\":\"run.meta\",\"span\":1,\"thread\":0,\"at_ns\":1,\
            \"fields\":{\"o3_ns\":2000000}}\n";
    for (iter, last, best) in [(0u64, 1_500_000u64, 1_500_000u64), (1, 1_600_000, 1_500_000), (2, 1_200_000, 1_200_000)] {
        out += &format!(
            "{{\"t\":\"event\",\"name\":\"progress\",\"span\":3,\"thread\":0,\"at_ns\":{},\
             \"fields\":{{\"iter\":{iter},\"measurements\":{},\"compilations\":{},\
             \"cache_hits\":{iter},\"coverage_dropped\":0,\"last_ns\":{last},\"best_ns\":{best}}}}}\n",
            (iter + 2) * 2_000_000,
            iter + 4,
            iter + 4
        );
    }
    out
}

#[test]
fn trace_usage_errors_exit_2() {
    assert_eq!(trace_bin(&[]).status.code(), Some(2));
    let out = trace_bin(&["no-such-mode"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"), "usage not printed");
    // A mode missing its required file argument is also a usage error.
    assert_eq!(trace_bin(&["check"]).status.code(), Some(2));
    assert_eq!(trace_bin(&["regress"]).status.code(), Some(2));
}

#[test]
fn trace_check_and_curve_accept_a_streamed_tuning_trace() {
    let good = temp_text("good.jsonl", &tuning_jsonl(1));
    let path = good.to_str().unwrap();

    let out = trace_bin(&["check", path]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("trace OK"));

    let out = trace_bin(&["curve", path]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("monotone OK"), "{stdout}");
    assert!(stdout.contains("1.667x"), "speedup column missing: {stdout}"); // 2ms / 1.2ms

    // flame and tail both read the same file.
    let out = trace_bin(&["flame", path]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("citroen.run;iteration;compile"), "{stdout}");
    let out = trace_bin(&["tail", path]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("progress"), "tail shows progress");

    let _ = std::fs::remove_file(good);
}

#[test]
fn trace_show_surfaces_sanitizer_and_canonicalizer_counters() {
    // A hand-built trace carrying the sanitizer-scheduling and canonicalizer
    // counters must surface them in show's dedicated summary block (with the
    // derived skip rate), exit 0, and keep the block absent when the
    // counters are missing.
    let mut with = tuning_jsonl(1);
    for (name, delta) in
        [("citroen.sanitize.runs", 30u64), ("citroen.sanitize.skips", 10), ("canon.subsume_dropped", 7)]
    {
        with += &format!("{{\"t\":\"counter\",\"name\":\"{name}\",\"delta\":{delta}}}\n");
    }
    let file = temp_text("sanitize-counters.jsonl", &with);
    let out = trace_bin(&["show", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== sanitizer / canonicalizer =="), "{stdout}");
    assert!(stdout.contains("citroen.sanitize.runs"), "{stdout}");
    assert!(stdout.contains("citroen.sanitize.skips"), "{stdout}");
    assert!(stdout.contains("canon.subsume_dropped"), "{stdout}");
    assert!(stdout.contains("25.0%"), "skip rate 10/40 missing: {stdout}");
    let _ = std::fs::remove_file(file);

    let without = temp_text("plain-counters.jsonl", &tuning_jsonl(1));
    let out = trace_bin(&["show", without.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("sanitizer / canonicalizer"), "{stdout}");
    let _ = std::fs::remove_file(without);
}

#[test]
fn trace_tail_follows_rotated_stream_generations() {
    // A `--stream-cap` writer rotates FILE → FILE.1 → FILE.2; tail must
    // merge the whole chain oldest-first, not just the live file.
    let live = temp_text("rotated.jsonl", &tuning_jsonl(1));
    let path = live.to_str().unwrap();
    std::fs::write(format!("{path}.1"), tuning_jsonl(2)).unwrap();
    std::fs::write(format!("{path}.2"), tuning_jsonl(3)).unwrap();

    let out = trace_bin(&["tail", path]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 3 generations × 9 spans each, and the header names the rotated files.
    assert!(stdout.contains("(+2 rotated)"), "{stdout}");
    assert!(stdout.contains("27 spans"), "{stdout}");

    // Without rotated siblings the live file alone is summarised, as before.
    std::fs::remove_file(format!("{path}.1")).unwrap();
    std::fs::remove_file(format!("{path}.2")).unwrap();
    let out = trace_bin(&["tail", path]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("(+"), "rotated marker without rotated files: {stdout}");
    assert!(stdout.contains("9 spans"), "{stdout}");

    let _ = std::fs::remove_file(live);
}

#[test]
fn trace_curve_exits_1_when_best_so_far_regresses() {
    // Flip the progress stream so best-so-far gets *worse*: corrupt.
    let broken = tuning_jsonl(1)
        .replace("\"best_ns\":1200000", "\"best_ns\":1800000");
    let file = temp_text("nonmono.jsonl", &broken);
    let out = trace_bin(&["curve", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not monotone"), "wrong failure");
    let _ = std::fs::remove_file(file);
}

#[test]
fn trace_regress_exit_codes_follow_the_threshold() {
    let good = temp_text("base-run.jsonl", &tuning_jsonl(1));
    let slow = temp_text("slow-run.jsonl", &tuning_jsonl(3)); // 3× every span
    let baseline = std::env::temp_dir()
        .join(format!("citroen-exit-{}-baseline.json", std::process::id()));

    let out = trace_bin(&[
        "baseline",
        good.to_str().unwrap(),
        "--out",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // Same run vs its own baseline: no deltas, exit 0.
    let out = trace_bin(&[
        "regress",
        good.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));

    // A 3×-slower run blows through the default 25% threshold: exit 1.
    let out = trace_bin(&[
        "regress",
        slow.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");

    // ... but a generous threshold tolerates it.
    let out = trace_bin(&[
        "regress",
        slow.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--threshold",
        "250",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));

    for f in [good, slow, baseline] {
        let _ = std::fs::remove_file(f);
    }
}
