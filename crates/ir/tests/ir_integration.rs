//! IR crate integration tests: printer stability, memory model corner cases,
//! vector semantics, linker + interpreter interplay, and event-sink hooks.

use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
use citroen_ir::inst::{BinOp, CastKind, FuncId, Operand};
use citroen_ir::interp::{run, run_counting, CountingSink, EventSink, Limits, OpClass, Trap, Value};
use citroen_ir::module::{Function, GlobalInit, Module};
use citroen_ir::print::{fingerprint, print_module};
use citroen_ir::types::{ScalarTy, Ty, F64, I16, I64, I8};

#[test]
fn printer_is_stable_and_structural() {
    let mut m = Module::new("m");
    let g = m.add_global("data", GlobalInit::I16s(vec![1, 2, 3]), true);
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let v = b.load(I16, Operand::Global(g));
    let w = b.cast(CastKind::SExt, I64, v);
    let s = b.bin(BinOp::Add, I64, w, b.param(0));
    b.store(I64, s, Operand::Global(g));
    b.ret(Some(s));
    m.add_func(b.finish());

    let p1 = print_module(&m);
    let p2 = print_module(&m);
    assert_eq!(p1, p2);
    assert!(p1.contains("global @0 data : i16[3]"));
    assert!(p1.contains("sext %1 to i64"));
    // Fingerprint reflects structure, not identity.
    let m2 = m.clone();
    assert_eq!(fingerprint(&m), fingerprint(&m2));
}

#[test]
fn memory_digest_ignores_immutable_globals() {
    let mut m = Module::new("m");
    let imm = m.add_global("ro", GlobalInit::I64s(vec![5]), false);
    let mt = m.add_global("rw", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let x = b.load(I64, Operand::Global(imm));
    b.store(I64, b.param(0), Operand::Global(mt));
    b.ret(Some(x));
    m.add_func(b.finish());
    let (o1, _) = run_counting(&m, FuncId(0), &[Value::I(1)]).unwrap();
    let (o2, _) = run_counting(&m, FuncId(0), &[Value::I(2)]).unwrap();
    assert_ne!(o1.mem_digest, o2.mem_digest, "mutable writes must be observable");
}

#[test]
fn narrow_stores_roundtrip_with_sign() {
    // store i8 -1 then load i8: canonical sign-extended -1.
    let mut m = Module::new("m");
    let g = m.add_global("b", GlobalInit::Zero(4), true);
    let mut b = FunctionBuilder::new("f", vec![], Some(I64));
    b.store(I8, Operand::ImmI(-1, ScalarTy::I8), Operand::Global(g));
    let v = b.load(I8, Operand::Global(g));
    let w = b.cast(CastKind::SExt, I64, v);
    b.ret(Some(w));
    m.add_func(b.finish());
    assert_eq!(run_counting(&m, FuncId(0), &[]).unwrap().0.ret, Some(Value::I(-1)));
}

#[test]
fn float_vector_pipeline() {
    let v2 = Ty::vector(ScalarTy::F64, 2);
    let mut m = Module::new("m");
    let g = m.add_global("a", GlobalInit::F64s(vec![1.5, 2.5]), false);
    let mut b = FunctionBuilder::new("f", vec![], Some(F64));
    let x = b.load(v2, Operand::Global(g));
    let s = b.splat(v2, Operand::ImmF(2.0));
    let p = b.bin(BinOp::FMul, v2, x, s);
    let r = b.reduce(BinOp::FAdd, ScalarTy::F64, p);
    b.ret(Some(r));
    m.add_func(b.finish());
    citroen_ir::verify::assert_valid(&m);
    let (out, sink) = run_counting(&m, FuncId(0), &[]).unwrap();
    assert_eq!(out.ret, Some(Value::F(8.0)));
    assert_eq!(sink.count(OpClass::VecFp), 1);
    assert_eq!(sink.count(OpClass::Splat), 1);
}

#[test]
fn step_limit_and_call_depth_guards() {
    // Direct infinite recursion trips the depth limit.
    let mut m = Module::new("m");
    let mut f = FunctionBuilder::new("rec", vec![], Some(I64));
    let r = f.call(FuncId(0), Some(I64), vec![]).unwrap();
    f.ret(Some(r));
    m.add_func(f.finish());
    let mut sink = CountingSink::new();
    let err = run(&m, FuncId(0), &[], &mut sink, Limits::default()).unwrap_err();
    assert_eq!(err, Trap::CallDepth);
}

#[test]
fn event_sink_function_hooks_fire() {
    struct Hooks {
        enters: usize,
        exits: usize,
    }
    impl EventSink for Hooks {
        fn op(&mut self, _c: OpClass, _l: u8) {}
        fn mem(&mut self, _a: u64, _b: u32, _s: bool) {}
        fn branch(&mut self, _s: u32, _t: bool) {}
        fn enter_function(&mut self, _f: FuncId) {
            self.enters += 1;
        }
        fn exit_function(&mut self) {
            self.exits += 1;
        }
    }
    let mut m = Module::new("m");
    let mut callee = FunctionBuilder::new("c", vec![], Some(I64));
    callee.ret(Some(Operand::imm64(1)));
    let cid = m.add_func(callee.finish());
    let mut b = FunctionBuilder::new("main", vec![], Some(I64));
    let a = b.call(cid, Some(I64), vec![]).unwrap();
    let c = b.call(cid, Some(I64), vec![]).unwrap();
    let s = b.bin(BinOp::Add, I64, a, c);
    b.ret(Some(s));
    m.add_func(b.finish());
    let mut hooks = Hooks { enters: 0, exits: 0 };
    run(&m, FuncId(1), &[], &mut hooks, Limits::default()).unwrap();
    assert_eq!(hooks.enters, 3); // main + 2 calls
    assert_eq!(hooks.exits, 3);
}

#[test]
fn linked_module_keeps_global_addresses_distinct() {
    // Two modules each with a private buffer; after linking, writes to one
    // must not clobber the other.
    let mk = |name: &str, gname: &str, fname: &'static str, val: i64| {
        let mut m = Module::new(name);
        let g = m.add_global(gname, GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new(fname, vec![], Some(I64));
        b.store(I64, Operand::imm64(val), Operand::Global(g));
        let v = b.load(I64, Operand::Global(g));
        b.ret(Some(v));
        m.add_func(b.finish());
        m
    };
    let m1 = mk("a.c", "buf_a", "fa", 11);
    let m2 = mk("b.c", "buf_b", "fb", 22);
    let mut main = Module::new("main.c");
    let fa = main.add_func(Function::decl("fa", vec![], Some(I64)));
    let fb = main.add_func(Function::decl("fb", vec![], Some(I64)));
    let mut b = FunctionBuilder::new("main", vec![], Some(I64));
    let x = b.call(fa, Some(I64), vec![]).unwrap();
    let y = b.call(fb, Some(I64), vec![]).unwrap();
    let s = b.bin(BinOp::Add, I64, x, y);
    b.ret(Some(s));
    main.add_func(b.finish());
    let linked = citroen_ir::link("p", &[m1, m2, main]).unwrap();
    let entry = linked.func_by_name("main").unwrap();
    let (out, _) = run_counting(&linked, entry, &[]).unwrap();
    assert_eq!(out.ret, Some(Value::I(33)));
}

#[test]
fn loop_helpers_compose_deeply() {
    // Triple-nested memory loops: count iterations.
    let mut m = Module::new("m");
    let g = m.add_global("n", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("f", vec![], Some(I64));
    counted_loop_mem(&mut b, Operand::imm64(3), |b, _| {
        counted_loop_mem(b, Operand::imm64(4), |b, _| {
            counted_loop_mem(b, Operand::imm64(5), |b, _| {
                let c = b.load(I64, Operand::Global(g));
                let c1 = b.bin(BinOp::Add, I64, c, Operand::imm64(1));
                b.store(I64, c1, Operand::Global(g));
            });
        });
    });
    let r = b.load(I64, Operand::Global(g));
    b.ret(Some(r));
    m.add_func(b.finish());
    citroen_ir::verify::assert_valid(&m);
    assert_eq!(run_counting(&m, FuncId(0), &[]).unwrap().0.ret, Some(Value::I(60)));
}

#[test]
fn zero_and_negative_trip_counts_skip_loops() {
    for n in [0i64, -5] {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let slot = b.alloca(8);
        b.store(I64, Operand::imm64(7), slot);
        let n_op = b.param(0);
        counted_loop_mem(&mut b, n_op, |b, _| {
            b.store(I64, Operand::imm64(0), slot);
        });
        let r = b.load(I64, slot);
        b.ret(Some(r));
        m.add_func(b.finish());
        let (out, _) = run_counting(&m, FuncId(0), &[Value::I(n)]).unwrap();
        assert_eq!(out.ret, Some(Value::I(7)), "trip count {n} must not execute the body");
    }
}
