//! Scalar and vector types of the CITROEN intermediate representation.
//!
//! The IR is deliberately small but wide enough to express the optimisation
//! phenomena the paper relies on: multiple integer widths (so sign-extension
//! widening by `instcombine` is observable, Fig. 5.1), floating point, and
//! short SIMD vectors (so the SLP/loop vectorisers have something to emit).


/// Scalar component type. Pointers are modelled as `I64` byte addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarTy {
    /// 1-bit boolean (comparison results, branch conditions).
    I1,
    /// 8-bit signed integer.
    I8,
    /// 16-bit signed integer.
    I16,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer; also the pointer type.
    I64,
    /// IEEE-754 double.
    F64,
}

impl ScalarTy {
    /// Width of the scalar in bits (64 for `F64`).
    pub fn bits(self) -> u32 {
        match self {
            ScalarTy::I1 => 1,
            ScalarTy::I8 => 8,
            ScalarTy::I16 => 16,
            ScalarTy::I32 => 32,
            ScalarTy::I64 | ScalarTy::F64 => 64,
        }
    }

    /// Size in bytes when stored to memory (`I1` occupies one byte).
    pub fn bytes(self) -> u32 {
        match self {
            ScalarTy::I1 | ScalarTy::I8 => 1,
            ScalarTy::I16 => 2,
            ScalarTy::I32 => 4,
            ScalarTy::I64 | ScalarTy::F64 => 8,
        }
    }

    /// Whether this is an integer type (everything except `F64`).
    pub fn is_int(self) -> bool {
        !matches!(self, ScalarTy::F64)
    }

    /// Sign-extend `v` (assumed to occupy the low `bits()` of the i64) to i64.
    pub fn sext(self, v: i64) -> i64 {
        match self {
            ScalarTy::I1 => {
                if v & 1 != 0 {
                    -1
                } else {
                    0
                }
            }
            ScalarTy::I8 => v as i8 as i64,
            ScalarTy::I16 => v as i16 as i64,
            ScalarTy::I32 => v as i32 as i64,
            ScalarTy::I64 | ScalarTy::F64 => v,
        }
    }

    /// Zero-extend `v`'s low `bits()` to i64.
    pub fn zext(self, v: i64) -> i64 {
        match self {
            ScalarTy::I1 => v & 1,
            ScalarTy::I8 => v as u8 as i64,
            ScalarTy::I16 => v as u16 as i64,
            ScalarTy::I32 => v as u32 as i64,
            ScalarTy::I64 | ScalarTy::F64 => v,
        }
    }

    /// Canonical in-register form: registers hold the sign-extended value.
    pub fn wrap(self, v: i64) -> i64 {
        self.sext(v)
    }

    /// Short mnemonic used by the textual printer.
    pub fn name(self) -> &'static str {
        match self {
            ScalarTy::I1 => "i1",
            ScalarTy::I8 => "i8",
            ScalarTy::I16 => "i16",
            ScalarTy::I32 => "i32",
            ScalarTy::I64 => "i64",
            ScalarTy::F64 => "f64",
        }
    }
}

/// Full value type: a scalar with a lane count (`lanes == 1` means scalar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ty {
    /// Element type.
    pub scalar: ScalarTy,
    /// Number of SIMD lanes; 1 for scalars. At most [`MAX_LANES`].
    pub lanes: u8,
}

/// Maximum number of SIMD lanes representable by the interpreter.
pub const MAX_LANES: u8 = 8;

impl Ty {
    /// Scalar type constructor.
    pub const fn scalar(scalar: ScalarTy) -> Ty {
        Ty { scalar, lanes: 1 }
    }

    /// Vector type constructor. Panics if `lanes` is 0 or exceeds [`MAX_LANES`].
    pub fn vector(scalar: ScalarTy, lanes: u8) -> Ty {
        assert!(lanes >= 1 && lanes <= MAX_LANES, "bad lane count {lanes}");
        Ty { scalar, lanes }
    }

    /// Whether the type is a vector (more than one lane).
    pub fn is_vector(self) -> bool {
        self.lanes > 1
    }

    /// Total storage size in bytes.
    pub fn bytes(self) -> u32 {
        self.scalar.bytes() * self.lanes as u32
    }

    /// Total width in bits, as used by vectoriser profitability checks.
    pub fn bits(self) -> u32 {
        self.scalar.bits() * self.lanes as u32
    }
}

/// `i1` scalar.
pub const I1: Ty = Ty::scalar(ScalarTy::I1);
/// `i8` scalar.
pub const I8: Ty = Ty::scalar(ScalarTy::I8);
/// `i16` scalar.
pub const I16: Ty = Ty::scalar(ScalarTy::I16);
/// `i32` scalar.
pub const I32: Ty = Ty::scalar(ScalarTy::I32);
/// `i64` scalar; also the pointer type.
pub const I64: Ty = Ty::scalar(ScalarTy::I64);
/// `f64` scalar.
pub const F64: Ty = Ty::scalar(ScalarTy::F64);

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.lanes == 1 {
            write!(f, "{}", self.scalar.name())
        } else {
            write!(f, "<{} x {}>", self.lanes, self.scalar.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ScalarTy::I16.bits(), 16);
        assert_eq!(ScalarTy::I16.bytes(), 2);
        assert_eq!(Ty::vector(ScalarTy::I32, 4).bytes(), 16);
        assert_eq!(Ty::vector(ScalarTy::I32, 4).bits(), 128);
    }

    #[test]
    fn sext_zext_wrap() {
        assert_eq!(ScalarTy::I8.sext(0xff), -1);
        assert_eq!(ScalarTy::I8.zext(0xff), 255);
        assert_eq!(ScalarTy::I16.sext(0x8000), -32768);
        assert_eq!(ScalarTy::I1.sext(3), -1);
        assert_eq!(ScalarTy::I1.zext(3), 1);
        assert_eq!(ScalarTy::I64.sext(-5), -5);
        // wrap keeps canonical sign-extended form
        assert_eq!(ScalarTy::I8.wrap(257), 1);
        assert_eq!(ScalarTy::I8.wrap(128), -128);
    }

    #[test]
    fn display() {
        assert_eq!(I32.to_string(), "i32");
        assert_eq!(Ty::vector(ScalarTy::F64, 2).to_string(), "<2 x f64>");
    }

    #[test]
    #[should_panic]
    fn too_many_lanes() {
        Ty::vector(ScalarTy::I8, 16);
    }
}
