//! Module linking: combine separately-optimised modules into one executable
//! module, resolving function and global *declarations* by symbol name.
//!
//! This is the substrate for the paper's multi-module programs (§1.2.3,
//! §5.3.6): each source file is optimised with its own pass sequence, then
//! everything is linked and the binary is measured.

use crate::inst::{FuncId, GlobalId, Inst, Operand};
use crate::module::{Function, GlobalInit, Module};
use std::collections::HashMap;

impl Function {
    /// Create a declaration (signature only, no body). Calls to declarations
    /// are resolved at link time by name.
    pub fn decl(name: impl Into<String>, params: Vec<crate::types::Ty>, ret: Option<crate::types::Ty>) -> Function {
        let mut f = Function::new(name, params, ret);
        f.blocks.clear();
        f
    }

    /// Whether this function is a declaration (no body).
    pub fn is_decl(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Linking errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A symbol is defined in more than one module.
    DuplicateSymbol(String),
    /// A declaration has no matching definition.
    Undefined(String),
    /// Declaration and definition signatures disagree.
    SignatureMismatch(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::DuplicateSymbol(s) => write!(f, "duplicate symbol '{s}'"),
            LinkError::Undefined(s) => write!(f, "undefined symbol '{s}'"),
            LinkError::SignatureMismatch(s) => write!(f, "signature mismatch for '{s}'"),
        }
    }
}

/// Link `modules` into a single module named `name`. Function and global
/// definitions are unioned; declarations (functions without bodies, globals
/// with `external == true`) bind to the definition with the same name.
pub fn link(name: &str, modules: &[Module]) -> Result<Module, LinkError> {
    let mut out = Module::new(name);
    // First pass: place all definitions, recording symbol tables.
    let mut func_sym: HashMap<String, FuncId> = HashMap::new();
    let mut glob_sym: HashMap<String, GlobalId> = HashMap::new();
    for m in modules {
        for f in &m.funcs {
            if !f.is_decl() {
                if func_sym.contains_key(&f.name) {
                    return Err(LinkError::DuplicateSymbol(f.name.clone()));
                }
                let id = out.add_func(f.clone());
                func_sym.insert(f.name.clone(), id);
            }
        }
        for g in &m.globals {
            if !g.external {
                if glob_sym.contains_key(&g.name) {
                    return Err(LinkError::DuplicateSymbol(g.name.clone()));
                }
                let id = out.add_global(g.name.clone(), g.init.clone(), g.mutable);
                glob_sym.insert(g.name.clone(), id);
            }
        }
    }
    // Second pass: compute per-module id remaps and rewrite bodies.
    let mut out_fi = 0usize;
    for m in modules {
        let mut fmap: Vec<FuncId> = Vec::with_capacity(m.funcs.len());
        for f in &m.funcs {
            let target = func_sym
                .get(&f.name)
                .copied()
                .ok_or_else(|| LinkError::Undefined(f.name.clone()))?;
            // Signature check for declarations binding a definition.
            let def = &out.funcs[target.idx()];
            if def.params != f.params || def.ret != f.ret {
                return Err(LinkError::SignatureMismatch(f.name.clone()));
            }
            fmap.push(target);
        }
        let mut gmap: Vec<GlobalId> = Vec::with_capacity(m.globals.len());
        for g in &m.globals {
            let target = glob_sym
                .get(&g.name)
                .copied()
                .ok_or_else(|| LinkError::Undefined(g.name.clone()))?;
            gmap.push(target);
        }
        for f in &m.funcs {
            if f.is_decl() {
                continue;
            }
            let nf = &mut out.funcs[out_fi];
            debug_assert_eq!(nf.name, f.name);
            for blk in &mut nf.blocks {
                for inst in &mut blk.insts {
                    if let Inst::Call { callee, .. } = inst {
                        *callee = fmap[callee.idx()];
                    }
                    inst.for_each_operand_mut(|op| {
                        if let Operand::Global(g) = op {
                            *g = gmap[g.idx()];
                        }
                    });
                }
                blk.term.for_each_operand_mut(|op| {
                    if let Operand::Global(g) = op {
                        *g = gmap[g.idx()];
                    }
                });
            }
            out_fi += 1;
        }
    }
    Ok(out)
}

impl Module {
    /// Add an external global declaration (resolved at link time).
    pub fn add_extern_global(&mut self, name: impl Into<String>) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(crate::module::Global {
            name: name.into(),
            init: GlobalInit::Zero(0),
            mutable: true,
            external: true,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::interp::{run_counting, Value};
    use crate::types::I64;

    fn lib_module() -> Module {
        let mut m = Module::new("lib.c");
        let g = m.add_global("shared", GlobalInit::I64s(vec![100]), true);
        let mut b = FunctionBuilder::new("double_shared", vec![], Some(I64));
        let x = b.load(I64, Operand::Global(g));
        let d = b.bin(BinOp::Mul, I64, x, Operand::imm64(2));
        b.store(I64, d, Operand::Global(g));
        b.ret(Some(d));
        m.add_func(b.finish());
        m
    }

    fn main_module() -> Module {
        let mut m = Module::new("main.c");
        let shared = m.add_extern_global("shared");
        let dbl = m.add_func(Function::decl("double_shared", vec![], Some(I64)));
        let mut b = FunctionBuilder::new("main", vec![], Some(I64));
        let a = b.call(dbl, Some(I64), vec![]).unwrap();
        let c = b.call(dbl, Some(I64), vec![]).unwrap();
        let sum = b.bin(BinOp::Add, I64, a, c);
        let v = b.load(I64, Operand::Global(shared));
        let total = b.bin(BinOp::Add, I64, sum, v);
        b.ret(Some(total));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn links_and_runs() {
        let linked = link("prog", &[lib_module(), main_module()]).unwrap();
        crate::verify::assert_valid(&linked);
        let main = linked.func_by_name("main").unwrap();
        let (out, _) = run_counting(&linked, main, &[]).unwrap();
        // 200 + 400 + 400 = 1000
        assert_eq!(out.ret, Some(Value::I(1000)));
    }

    #[test]
    fn undefined_symbol_errors() {
        let r = link("p", &[main_module()]);
        assert!(matches!(r, Err(LinkError::Undefined(_))));
    }

    #[test]
    fn duplicate_symbol_errors() {
        let r = link("p", &[lib_module(), lib_module(), main_module()]);
        assert!(matches!(r, Err(LinkError::DuplicateSymbol(_))));
    }

    #[test]
    fn signature_mismatch_errors() {
        let mut bad_main = Module::new("main.c");
        bad_main.add_extern_global("shared");
        let dbl = bad_main.add_func(Function::decl("double_shared", vec![I64], Some(I64)));
        let mut b = FunctionBuilder::new("main", vec![], Some(I64));
        let a = b.call(dbl, Some(I64), vec![Operand::imm64(0)]).unwrap();
        b.ret(Some(a));
        bad_main.add_func(b.finish());
        let r = link("p", &[lib_module(), bad_main]);
        assert!(matches!(r, Err(LinkError::SignatureMismatch(_))));
    }
}
