//! Instructions, operands and block terminators.

use crate::types::{ScalarTy, Ty};

/// Identifier of an SSA value inside a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifier of a basic block inside a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifier of a function inside a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifier of a global inside a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl ValueId {
    /// Index form for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl BlockId {
    /// Index form for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl FuncId {
    /// Index form for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl GlobalId {
    /// Index form for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Instruction operand: an SSA value, an immediate, or a global's address.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Reference to an SSA value.
    Value(ValueId),
    /// Integer immediate with its scalar type (stored sign-extended).
    ImmI(i64, ScalarTy),
    /// Floating-point immediate.
    ImmF(f64),
    /// Byte address of a module global.
    Global(GlobalId),
}

impl Operand {
    /// Convenience `i64` immediate.
    pub fn imm64(v: i64) -> Operand {
        Operand::ImmI(v, ScalarTy::I64)
    }
    /// Convenience `i32` immediate.
    pub fn imm32(v: i32) -> Operand {
        Operand::ImmI(v as i64, ScalarTy::I32)
    }
    /// The value id, if this is an SSA reference.
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            _ => None,
        }
    }
    /// The integer constant, if this is an integer immediate.
    pub fn as_const_int(self) -> Option<i64> {
        match self {
            Operand::ImmI(v, _) => Some(v),
            _ => None,
        }
    }
    /// Whether the operand is any kind of constant (immediate or global address).
    pub fn is_const(self) -> bool {
        !matches!(self, Operand::Value(_))
    }
}

/// Binary operators. Integer ops wrap at the result type's width; shifts mask
/// the shift amount by `bits-1`; division by zero traps (interpreter error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Signed integer divide.
    SDiv,
    /// Signed remainder.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    AShr,
    /// Logical shift right.
    LShr,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Signed integer minimum.
    SMin,
    /// Signed integer maximum.
    SMax,
}

impl BinOp {
    /// Whether the operator is commutative.
    pub fn commutative(self) -> bool {
        use BinOp::*;
        matches!(self, Add | Mul | And | Or | Xor | FAdd | FMul | SMin | SMax)
    }
    /// Whether this is a floating-point operator.
    pub fn is_float(self) -> bool {
        use BinOp::*;
        matches!(self, FAdd | FSub | FMul | FDiv)
    }
    /// Whether `a op (b op c) == (a op b) op c` holds exactly (int only; we
    /// treat FP as non-associative, like LLVM without fast-math).
    pub fn associative(self) -> bool {
        use BinOp::*;
        matches!(self, Add | Mul | And | Or | Xor | SMin | SMax)
    }
    /// Printer mnemonic.
    pub fn name(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            SDiv => "sdiv",
            SRem => "srem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            AShr => "ashr",
            LShr => "lshr",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            SMin => "smin",
            SMax => "smax",
        }
    }
}

/// Comparison predicates. Integer comparisons are signed; `F*` are ordered
/// float comparisons (NaN compares false).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
}

impl CmpOp {
    /// Predicate with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpOp {
        use CmpOp::*;
        match self {
            Eq => Eq,
            Ne => Ne,
            Slt => Sgt,
            Sle => Sge,
            Sgt => Slt,
            Sge => Sle,
        }
    }
    /// Logical negation of the predicate.
    pub fn inverse(self) -> CmpOp {
        use CmpOp::*;
        match self {
            Eq => Ne,
            Ne => Eq,
            Slt => Sge,
            Sle => Sgt,
            Sgt => Sle,
            Sge => Slt,
        }
    }
    /// Printer mnemonic.
    pub fn name(self) -> &'static str {
        use CmpOp::*;
        match self {
            Eq => "eq",
            Ne => "ne",
            Slt => "slt",
            Sle => "sle",
            Sgt => "sgt",
            Sge => "sge",
        }
    }
}

/// Cast kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Sign extension to a wider integer type.
    SExt,
    /// Zero extension to a wider integer type.
    ZExt,
    /// Truncation to a narrower integer type.
    Trunc,
    /// Signed integer to float.
    SiToFp,
    /// Float to signed integer (round toward zero; saturates at i64 bounds).
    FpToSi,
}

impl CastKind {
    /// Printer mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            CastKind::SExt => "sext",
            CastKind::ZExt => "zext",
            CastKind::Trunc => "trunc",
            CastKind::SiToFp => "sitofp",
            CastKind::FpToSi => "fptosi",
        }
    }
}

/// A single IR instruction. The destination's type lives in the enclosing
/// function's value-type table; instructions that need an explicit type for
/// memory access carry it inline.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = op lhs, rhs` — element-wise for vectors.
    Bin {
        /// Result value.
        dst: ValueId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cmp.pred lhs, rhs` — result is `i1` (or `<n x i1>`).
    Cmp {
        /// Result value.
        dst: ValueId,
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cast.kind src` — dst type from the value-type table.
    Cast {
        /// Result value.
        dst: ValueId,
        /// Kind of conversion.
        kind: CastKind,
        /// Source operand.
        src: Operand,
    },
    /// `dst = alloca bytes` — reserves stack storage, yields its address.
    Alloca {
        /// Resulting pointer value (type `i64`).
        dst: ValueId,
        /// Number of bytes reserved.
        bytes: u32,
    },
    /// `dst = load ty, addr` — loads `dst`'s type from byte address `addr`.
    /// Vector loads read `lanes` consecutive elements.
    Load {
        /// Result value.
        dst: ValueId,
        /// Byte address operand.
        addr: Operand,
    },
    /// `store ty val, addr`.
    Store {
        /// Stored value's type (needed when `val` is an immediate).
        ty: Ty,
        /// Value to store.
        val: Operand,
        /// Byte address operand.
        addr: Operand,
    },
    /// `dst? = call f(args...)`.
    Call {
        /// Result value if the callee returns one.
        dst: Option<ValueId>,
        /// Callee.
        callee: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// SSA φ-node; must appear at the start of a block.
    Phi {
        /// Result value.
        dst: ValueId,
        /// `(predecessor, value)` pairs, one per CFG predecessor.
        incoming: Vec<(BlockId, Operand)>,
    },
    /// `dst = select cond, t, f`.
    Select {
        /// Result value.
        dst: ValueId,
        /// `i1` condition.
        cond: Operand,
        /// Value if true.
        t: Operand,
        /// Value if false.
        f: Operand,
    },
    /// `dst = splat src` — broadcast a scalar into all lanes of `dst`'s vector type.
    Splat {
        /// Result vector value.
        dst: ValueId,
        /// Scalar source.
        src: Operand,
    },
    /// `dst = extractlane src, lane`.
    ExtractLane {
        /// Result scalar value.
        dst: ValueId,
        /// Vector source.
        src: Operand,
        /// Lane index.
        lane: u8,
    },
    /// `dst = reduce.op src` — horizontal reduction of a vector to a scalar.
    Reduce {
        /// Result scalar value.
        dst: ValueId,
        /// Reduction operator (must be associative or FAdd, treated as fast-math).
        op: BinOp,
        /// Vector source.
        src: Operand,
    },
}

impl Inst {
    /// The value defined by this instruction, if any.
    pub fn dst(&self) -> Option<ValueId> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Alloca { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Phi { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Splat { dst, .. }
            | Inst::ExtractLane { dst, .. }
            | Inst::Reduce { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }

    /// Visit every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Cast { src, .. }
            | Inst::Splat { src, .. }
            | Inst::ExtractLane { src, .. }
            | Inst::Reduce { src, .. } => f(src),
            Inst::Alloca { .. } => {}
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { val, addr, .. } => {
                f(val);
                f(addr);
            }
            Inst::Call { args, .. } => args.iter().for_each(f),
            Inst::Phi { incoming, .. } => incoming.iter().for_each(|(_, op)| f(op)),
            Inst::Select { cond, t, f: fv, .. } => {
                f(cond);
                f(t);
                f(fv);
            }
        }
    }

    /// Visit every operand mutably (used by rewriting passes).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Cast { src, .. }
            | Inst::Splat { src, .. }
            | Inst::ExtractLane { src, .. }
            | Inst::Reduce { src, .. } => f(src),
            Inst::Alloca { .. } => {}
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { val, addr, .. } => {
                f(val);
                f(addr);
            }
            Inst::Call { args, .. } => args.iter_mut().for_each(f),
            Inst::Phi { incoming, .. } => incoming.iter_mut().for_each(|(_, op)| f(op)),
            Inst::Select { cond, t, f: fv, .. } => {
                f(cond);
                f(t);
                f(fv);
            }
        }
    }

    /// Whether the instruction may read or write memory or have other side
    /// effects (calls are conservatively side-effecting unless the callee is
    /// attributed; that refinement lives in the passes crate).
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. })
    }

    /// Whether the instruction reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Call { .. })
    }

    /// Whether this is a φ-node.
    pub fn is_phi(&self) -> bool {
        matches!(self, Inst::Phi { .. })
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` operand.
    CondBr {
        /// Condition operand.
        cond: Operand,
        /// Target if true.
        t: BlockId,
        /// Target if false.
        f: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
    /// Placeholder for unreachable code (created by simplify-cfg).
    Unreachable,
}

impl Term {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br(b) => vec![*b],
            Term::CondBr { t, f, .. } => {
                if t == f {
                    vec![*t]
                } else {
                    vec![*t, *f]
                }
            }
            Term::Ret(_) | Term::Unreachable => vec![],
        }
    }

    /// Visit successor block ids mutably (used when renumbering blocks).
    pub fn for_each_successor_mut(&mut self, mut fun: impl FnMut(&mut BlockId)) {
        match self {
            Term::Br(b) => fun(b),
            Term::CondBr { t, f, .. } => {
                fun(t);
                fun(f);
            }
            Term::Ret(_) | Term::Unreachable => {}
        }
    }

    /// Visit operands of the terminator.
    pub fn for_each_operand(&self, mut fun: impl FnMut(&Operand)) {
        match self {
            Term::CondBr { cond, .. } => fun(cond),
            Term::Ret(Some(op)) => fun(op),
            _ => {}
        }
    }

    /// Visit operands of the terminator mutably.
    pub fn for_each_operand_mut(&mut self, mut fun: impl FnMut(&mut Operand)) {
        match self {
            Term::CondBr { cond, .. } => fun(cond),
            Term::Ret(Some(op)) => fun(op),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_helpers() {
        assert_eq!(Operand::imm64(7).as_const_int(), Some(7));
        assert!(Operand::Global(GlobalId(0)).is_const());
        assert_eq!(Operand::Value(ValueId(3)).as_value(), Some(ValueId(3)));
        assert_eq!(Operand::Value(ValueId(3)).as_const_int(), None);
    }

    #[test]
    fn cmp_algebra() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Slt, CmpOp::Sle, CmpOp::Sgt, CmpOp::Sge] {
            assert_eq!(op.inverse().inverse(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
        assert_eq!(CmpOp::Slt.swapped(), CmpOp::Sgt);
        assert_eq!(CmpOp::Slt.inverse(), CmpOp::Sge);
    }

    #[test]
    fn successors() {
        let t = Term::CondBr { cond: Operand::imm64(1), t: BlockId(1), f: BlockId(1) };
        assert_eq!(t.successors(), vec![BlockId(1)]);
        assert!(Term::Ret(None).successors().is_empty());
    }

    #[test]
    fn inst_dst_and_operands() {
        let i = Inst::Bin {
            dst: ValueId(5),
            op: BinOp::Add,
            lhs: Operand::Value(ValueId(1)),
            rhs: Operand::imm64(2),
        };
        assert_eq!(i.dst(), Some(ValueId(5)));
        let mut n = 0;
        i.for_each_operand(|_| n += 1);
        assert_eq!(n, 2);
        assert!(!i.has_side_effects());
        assert!(Inst::Store { ty: crate::types::I64, val: Operand::imm64(0), addr: Operand::imm64(0) }
            .has_side_effects());
    }
}
