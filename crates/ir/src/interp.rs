//! Reference interpreter.
//!
//! Executes a [`Module`] and streams *dynamic events* (per-op-class counts,
//! memory accesses, branch outcomes) into an [`EventSink`]. The performance
//! simulator (`citroen-sim`) implements the sink with a cache model and branch
//! predictor to turn a trace into estimated seconds; differential testing
//! compares the returned value and memory digest between the unoptimised and
//! optimised module.

use crate::inst::{BinOp, CastKind, CmpOp, FuncId, Inst, Operand, Term};
use crate::module::{GlobalInit, Module};
use crate::print::Fnv64;
use crate::types::{ScalarTy, MAX_LANES};

/// A runtime value. Vectors are stored inline (`MAX_LANES` slots + a length).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer scalar (canonical sign-extended form).
    I(i64),
    /// Float scalar.
    F(f64),
    /// Integer vector.
    IV([i64; MAX_LANES as usize], u8),
    /// Float vector.
    FV([f64; MAX_LANES as usize], u8),
}

impl Value {
    /// Extract an integer scalar; panics on other variants (verifier rules
    /// make this unreachable on valid IR).
    pub fn as_i(&self) -> i64 {
        match self {
            Value::I(v) => *v,
            other => panic!("expected int scalar, got {other:?}"),
        }
    }
    /// Extract a float scalar.
    pub fn as_f(&self) -> f64 {
        match self {
            Value::F(v) => *v,
            other => panic!("expected float scalar, got {other:?}"),
        }
    }
}

/// Dynamic operation classes, the vocabulary of the machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// Integer add/sub/logic/shift/min/max and compares.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// Float add/sub.
    FpAlu,
    /// Float multiply.
    FpMul,
    /// Float divide.
    FpDiv,
    /// Conversion.
    Cast,
    /// Scalar load.
    Load,
    /// Scalar store.
    Store,
    /// Unconditional branch.
    Br,
    /// Conditional branch.
    CondBr,
    /// Function call (overhead at the call site).
    Call,
    /// Function return.
    Ret,
    /// φ resolution (register shuffling).
    Phi,
    /// Select.
    Select,
    /// Vector integer ALU op.
    VecIntAlu,
    /// Vector integer multiply.
    VecIntMul,
    /// Vector float op.
    VecFp,
    /// Vector load.
    VecLoad,
    /// Vector store.
    VecStore,
    /// Horizontal reduction.
    Reduce,
    /// Scalar broadcast.
    Splat,
    /// Stack allocation.
    Alloca,
}

/// Number of op classes (array sizing).
pub const NUM_OP_CLASSES: usize = 23;

impl OpClass {
    /// Dense index for table lookups.
    pub fn idx(self) -> usize {
        self as usize
    }
    /// All classes, in `idx` order.
    pub fn all() -> [OpClass; NUM_OP_CLASSES] {
        use OpClass::*;
        [
            IntAlu, IntMul, IntDiv, FpAlu, FpMul, FpDiv, Cast, Load, Store, Br, CondBr, Call,
            Ret, Phi, Select, VecIntAlu, VecIntMul, VecFp, VecLoad, VecStore, Reduce, Splat,
            Alloca,
        ]
    }
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        use OpClass::*;
        match self {
            IntAlu => "int_alu",
            IntMul => "int_mul",
            IntDiv => "int_div",
            FpAlu => "fp_alu",
            FpMul => "fp_mul",
            FpDiv => "fp_div",
            Cast => "cast",
            Load => "load",
            Store => "store",
            Br => "br",
            CondBr => "condbr",
            Call => "call",
            Ret => "ret",
            Phi => "phi",
            Select => "select",
            VecIntAlu => "vec_int_alu",
            VecIntMul => "vec_int_mul",
            VecFp => "vec_fp",
            VecLoad => "vec_load",
            VecStore => "vec_store",
            Reduce => "reduce",
            Splat => "splat",
            Alloca => "alloca",
        }
    }
}

/// Receives the dynamic event stream of an execution.
pub trait EventSink {
    /// One dynamic operation of class `class` with `lanes` SIMD lanes (1 for scalars).
    fn op(&mut self, class: OpClass, lanes: u8);
    /// A memory access at byte address `addr` of `bytes` bytes.
    fn mem(&mut self, addr: u64, bytes: u32, store: bool);
    /// Same access, attributed to its static site (function, block,
    /// instruction index). Default: ignored — only site-level tools (the
    /// alias soundness oracle) pay for recording.
    fn mem_site(&mut self, f: FuncId, block: u32, inst: u32, addr: u64, bytes: u32, store: bool) {
        let _ = (f, block, inst, addr, bytes, store);
    }
    /// A conditional-branch outcome at static site `site`.
    fn branch(&mut self, site: u32, taken: bool);
    /// Control entered function `f` (perf-style attribution hook).
    fn enter_function(&mut self, f: FuncId) {
        let _ = f;
    }
    /// Control returned from the current function.
    fn exit_function(&mut self) {}
}

/// Sink that only counts per-class totals. Used by tests and as a cheap trace
/// summary.
#[derive(Debug, Clone)]
pub struct CountingSink {
    /// Dynamic count per op class.
    pub counts: [u64; NUM_OP_CLASSES],
    /// Total dynamic operations.
    pub total: u64,
    /// Taken-branch count.
    pub taken: u64,
    /// Conditional branch count.
    pub cond_branches: u64,
}

impl CountingSink {
    /// Zeroed counters.
    pub fn new() -> CountingSink {
        CountingSink { counts: [0; NUM_OP_CLASSES], total: 0, taken: 0, cond_branches: 0 }
    }
    /// Count for one class.
    pub fn count(&self, c: OpClass) -> u64 {
        self.counts[c.idx()]
    }
}

impl Default for CountingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for CountingSink {
    fn op(&mut self, class: OpClass, _lanes: u8) {
        self.counts[class.idx()] += 1;
        self.total += 1;
    }
    fn mem(&mut self, _addr: u64, _bytes: u32, _store: bool) {}
    fn branch(&mut self, _site: u32, taken: bool) {
        self.cond_branches += 1;
        if taken {
            self.taken += 1;
        }
    }
}

/// Execution traps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Integer division by zero.
    DivByZero,
    /// Access outside the memory image.
    OutOfBounds(u64),
    /// Exceeded the dynamic step limit.
    StepLimit,
    /// Exceeded the call-depth limit.
    CallDepth,
    /// Ran out of stack space for allocas.
    StackOverflow,
    /// Executed an `unreachable` terminator.
    Unreachable,
    /// Read of a register never written (malformed IR slipped through).
    UndefRead,
    /// Call of an unresolved declaration (module was not linked).
    UnresolvedCall,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum dynamic operations before [`Trap::StepLimit`].
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: u32,
    /// Stack bytes available for allocas.
    pub stack_bytes: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_steps: 200_000_000, max_depth: 64, stack_bytes: 1 << 20 }
    }
}

/// Result of a successful execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutput {
    /// Return value of the entry function.
    pub ret: Option<Value>,
    /// Total dynamic operations executed.
    pub steps: u64,
    /// FNV digest of all mutable globals after execution — combined with
    /// `ret`, this is the observable behaviour differential testing compares.
    pub mem_digest: u64,
}

/// Byte-addressed flat memory image: globals at the bottom, alloca stack on top.
pub struct Memory {
    data: Vec<u8>,
    global_addr: Vec<u64>,
    sp: u64,
    limit: u64,
}

const GLOBAL_BASE: u64 = 0x1000;

impl Memory {
    /// Lay out and initialise the globals of `m`; reserve `stack_bytes` on top.
    pub fn new(m: &Module, stack_bytes: u64) -> Memory {
        let mut addr = GLOBAL_BASE;
        let mut global_addr = Vec::with_capacity(m.globals.len());
        for g in &m.globals {
            global_addr.push(addr);
            addr += (g.init.bytes() as u64 + 7) & !7;
        }
        let global_end = addr;
        let total = global_end + stack_bytes;
        let mut data = vec![0u8; total as usize];
        for (g, &base) in m.globals.iter().zip(&global_addr) {
            let b = base as usize;
            match &g.init {
                GlobalInit::Zero(_) => {}
                GlobalInit::I8s(v) => {
                    for (i, x) in v.iter().enumerate() {
                        data[b + i] = *x as u8;
                    }
                }
                GlobalInit::I16s(v) => {
                    for (i, x) in v.iter().enumerate() {
                        data[b + 2 * i..b + 2 * i + 2].copy_from_slice(&x.to_le_bytes());
                    }
                }
                GlobalInit::I32s(v) => {
                    for (i, x) in v.iter().enumerate() {
                        data[b + 4 * i..b + 4 * i + 4].copy_from_slice(&x.to_le_bytes());
                    }
                }
                GlobalInit::I64s(v) => {
                    for (i, x) in v.iter().enumerate() {
                        data[b + 8 * i..b + 8 * i + 8].copy_from_slice(&x.to_le_bytes());
                    }
                }
                GlobalInit::F64s(v) => {
                    for (i, x) in v.iter().enumerate() {
                        data[b + 8 * i..b + 8 * i + 8].copy_from_slice(&x.to_bits().to_le_bytes());
                    }
                }
            }
        }
        Memory { data, global_addr, sp: global_end, limit: total }
    }

    /// Address of global `g`.
    pub fn global_addr(&self, g: usize) -> u64 {
        self.global_addr[g]
    }

    fn check(&self, addr: u64, bytes: u32) -> Result<usize, Trap> {
        if addr < GLOBAL_BASE || addr + bytes as u64 > self.limit {
            return Err(Trap::OutOfBounds(addr));
        }
        Ok(addr as usize)
    }

    /// Read a scalar of type `ty` at `addr` (canonical sign-extended form for ints).
    pub fn read_scalar(&self, ty: ScalarTy, addr: u64) -> Result<Value, Trap> {
        let a = self.check(addr, ty.bytes())?;
        let raw = match ty.bytes() {
            1 => self.data[a] as i64,
            2 => i16::from_le_bytes([self.data[a], self.data[a + 1]]) as i64,
            4 => i32::from_le_bytes(self.data[a..a + 4].try_into().unwrap()) as i64,
            _ => i64::from_le_bytes(self.data[a..a + 8].try_into().unwrap()),
        };
        Ok(if ty == ScalarTy::F64 {
            Value::F(f64::from_bits(raw as u64))
        } else {
            Value::I(ty.sext(raw))
        })
    }

    /// Write a scalar of type `ty` at `addr`.
    pub fn write_scalar(&mut self, ty: ScalarTy, addr: u64, v: &Value) -> Result<(), Trap> {
        let a = self.check(addr, ty.bytes())?;
        let bits: i64 = match (ty, v) {
            (ScalarTy::F64, Value::F(x)) => x.to_bits() as i64,
            (_, Value::I(x)) => *x,
            (_, Value::F(x)) => x.to_bits() as i64,
            _ => panic!("vector value in scalar store"),
        };
        match ty.bytes() {
            1 => self.data[a] = bits as u8,
            2 => self.data[a..a + 2].copy_from_slice(&(bits as i16).to_le_bytes()),
            4 => self.data[a..a + 4].copy_from_slice(&(bits as i32).to_le_bytes()),
            _ => self.data[a..a + 8].copy_from_slice(&bits.to_le_bytes()),
        }
        Ok(())
    }

    fn alloca(&mut self, bytes: u32) -> Result<u64, Trap> {
        let addr = (self.sp + 7) & !7;
        if addr + bytes as u64 > self.limit {
            return Err(Trap::StackOverflow);
        }
        self.sp = addr + bytes as u64;
        // Allocas are zero-initialised for determinism (LLVM would give undef;
        // zeroing keeps differential testing meaningful for sloppy kernels).
        self.data[addr as usize..self.sp as usize].fill(0);
        Ok(addr)
    }

    /// Digest of the mutable-global region (observable program state).
    pub fn digest(&self, m: &Module) -> u64 {
        let mut h = Fnv64::new();
        for (g, &base) in m.globals.iter().zip(&self.global_addr) {
            if g.mutable {
                let b = base as usize;
                h.write(&self.data[b..b + g.init.bytes() as usize]);
            }
        }
        h.finish()
    }
}

struct Interp<'m, S: EventSink> {
    m: &'m Module,
    mem: Memory,
    sink: &'m mut S,
    steps: u64,
    limits: Limits,
}

impl<'m, S: EventSink> Interp<'m, S> {
    fn step(&mut self, class: OpClass, lanes: u8) -> Result<(), Trap> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(Trap::StepLimit);
        }
        self.sink.op(class, lanes);
        Ok(())
    }

    fn eval(&self, regs: &[Option<Value>], op: &Operand) -> Result<Value, Trap> {
        match op {
            Operand::Value(v) => regs[v.idx()].ok_or(Trap::UndefRead),
            Operand::ImmI(v, s) => Ok(Value::I(s.sext(*v))),
            Operand::ImmF(v) => Ok(Value::F(*v)),
            Operand::Global(g) => Ok(Value::I(self.mem.global_addr(g.idx()) as i64)),
        }
    }

    fn call(&mut self, fid: FuncId, args: &[Value], depth: u32) -> Result<Option<Value>, Trap> {
        if depth > self.limits.max_depth {
            return Err(Trap::CallDepth);
        }
        let f = &self.m.funcs[fid.idx()];
        if f.blocks.is_empty() {
            return Err(Trap::UnresolvedCall);
        }
        self.sink.enter_function(fid);
        let saved_sp = self.mem.sp;
        let mut regs: Vec<Option<Value>> = vec![None; f.value_ty.len()];
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(*a);
        }
        let mut block = f.entry();
        let mut prev = f.entry();
        let mut phi_buf: Vec<(u32, Value)> = Vec::new();

        'outer: loop {
            let blk = &f.blocks[block.idx()];
            // Resolve φs atomically against the predecessor `prev`.
            phi_buf.clear();
            for inst in blk.insts.iter().take_while(|i| i.is_phi()) {
                if let Inst::Phi { dst, incoming } = inst {
                    let (_, op) = incoming
                        .iter()
                        .find(|(p, _)| *p == prev)
                        .ok_or(Trap::UndefRead)?;
                    let v = self.eval(&regs, op)?;
                    phi_buf.push((dst.0, v));
                    self.step(OpClass::Phi, 1)?;
                }
            }
            for (d, v) in phi_buf.drain(..) {
                regs[d as usize] = Some(v);
            }

            for (ii, inst) in blk.insts.iter().enumerate().skip_while(|(_, i)| i.is_phi()) {
                match inst {
                    Inst::Phi { .. } => unreachable!(),
                    Inst::Bin { dst, op, lhs, rhs } => {
                        let ty = f.ty(*dst);
                        let a = self.eval(&regs, lhs)?;
                        let b = self.eval(&regs, rhs)?;
                        let r = exec_bin(*op, ty.scalar, ty.lanes, &a, &b)?;
                        let class = bin_class(*op, ty.lanes);
                        self.step(class, ty.lanes)?;
                        regs[dst.idx()] = Some(r);
                    }
                    Inst::Cmp { dst, op, lhs, rhs } => {
                        let a = self.eval(&regs, lhs)?;
                        let b = self.eval(&regs, rhs)?;
                        let r = exec_cmp(*op, &a, &b);
                        self.step(OpClass::IntAlu, 1)?;
                        regs[dst.idx()] = Some(Value::I(if r { -1 } else { 0 }));
                    }
                    Inst::Cast { dst, kind, src } => {
                        let to = f.ty(*dst);
                        let v = self.eval(&regs, src)?;
                        let from = f.operand_ty(src);
                        let r = exec_cast(*kind, from.scalar, to.scalar, &v);
                        self.step(OpClass::Cast, to.lanes)?;
                        regs[dst.idx()] = Some(r);
                    }
                    Inst::Alloca { dst, bytes } => {
                        let a = self.mem.alloca(*bytes)?;
                        self.step(OpClass::Alloca, 1)?;
                        regs[dst.idx()] = Some(Value::I(a as i64));
                    }
                    Inst::Load { dst, addr } => {
                        let ty = f.ty(*dst);
                        let a = self.eval(&regs, addr)?.as_i() as u64;
                        if ty.lanes == 1 {
                            let v = self.mem.read_scalar(ty.scalar, a)?;
                            self.sink.mem(a, ty.scalar.bytes(), false);
                            self.sink.mem_site(fid, block.0, ii as u32, a, ty.scalar.bytes(), false);
                            self.step(OpClass::Load, 1)?;
                            regs[dst.idx()] = Some(v);
                        } else {
                            let v = self.read_vector(ty.scalar, ty.lanes, a)?;
                            self.sink.mem(a, ty.bytes(), false);
                            self.sink.mem_site(fid, block.0, ii as u32, a, ty.bytes(), false);
                            self.step(OpClass::VecLoad, ty.lanes)?;
                            regs[dst.idx()] = Some(v);
                        }
                    }
                    Inst::Store { ty, val, addr } => {
                        let v = self.eval(&regs, val)?;
                        let a = self.eval(&regs, addr)?.as_i() as u64;
                        if ty.lanes == 1 {
                            self.mem.write_scalar(ty.scalar, a, &v)?;
                            self.sink.mem(a, ty.scalar.bytes(), true);
                            self.sink.mem_site(fid, block.0, ii as u32, a, ty.scalar.bytes(), true);
                            self.step(OpClass::Store, 1)?;
                        } else {
                            self.write_vector(ty.scalar, ty.lanes, a, &v)?;
                            self.sink.mem(a, ty.bytes(), true);
                            self.sink.mem_site(fid, block.0, ii as u32, a, ty.bytes(), true);
                            self.step(OpClass::VecStore, ty.lanes)?;
                        }
                    }
                    Inst::Call { dst, callee, args } => {
                        let mut vals = Vec::with_capacity(args.len());
                        for a in args {
                            vals.push(self.eval(&regs, a)?);
                        }
                        self.step(OpClass::Call, 1)?;
                        let r = self.call(*callee, &vals, depth + 1)?;
                        if let Some(d) = dst {
                            regs[d.idx()] = Some(r.ok_or(Trap::UndefRead)?);
                        }
                    }
                    Inst::Select { dst, cond, t, f: fv } => {
                        let c = self.eval(&regs, cond)?.as_i();
                        let r = if c != 0 { self.eval(&regs, t)? } else { self.eval(&regs, fv)? };
                        self.step(OpClass::Select, 1)?;
                        regs[dst.idx()] = Some(r);
                    }
                    Inst::Splat { dst, src } => {
                        let ty = f.ty(*dst);
                        let v = self.eval(&regs, src)?;
                        let r = match v {
                            Value::I(x) => Value::IV([x; MAX_LANES as usize], ty.lanes),
                            Value::F(x) => Value::FV([x; MAX_LANES as usize], ty.lanes),
                            other => other,
                        };
                        self.step(OpClass::Splat, ty.lanes)?;
                        regs[dst.idx()] = Some(r);
                    }
                    Inst::ExtractLane { dst, src, lane } => {
                        let v = self.eval(&regs, src)?;
                        let r = match v {
                            Value::IV(xs, n) if *lane < n => Value::I(xs[*lane as usize]),
                            Value::FV(xs, n) if *lane < n => Value::F(xs[*lane as usize]),
                            _ => return Err(Trap::UndefRead),
                        };
                        self.step(OpClass::IntAlu, 1)?;
                        regs[dst.idx()] = Some(r);
                    }
                    Inst::Reduce { dst, op, src } => {
                        let ty = f.ty(*dst);
                        let v = self.eval(&regs, src)?;
                        let r = exec_reduce(*op, ty.scalar, &v)?;
                        self.step(OpClass::Reduce, 1)?;
                        regs[dst.idx()] = Some(r);
                    }
                }
            }

            match &blk.term {
                Term::Br(b) => {
                    self.step(OpClass::Br, 1)?;
                    prev = block;
                    block = *b;
                }
                Term::CondBr { cond, t, f: fb } => {
                    let c = self.eval(&regs, cond)?.as_i() != 0;
                    let site = (fid.0 << 16) | block.0;
                    self.sink.branch(site, c);
                    self.step(OpClass::CondBr, 1)?;
                    prev = block;
                    block = if c { *t } else { *fb };
                }
                Term::Ret(op) => {
                    self.step(OpClass::Ret, 1)?;
                    let r = match op {
                        Some(o) => Some(self.eval(&regs, o)?),
                        None => None,
                    };
                    self.mem.sp = saved_sp;
                    self.sink.exit_function();
                    break 'outer Ok(r);
                }
                Term::Unreachable => break 'outer Err(Trap::Unreachable),
            }
        }
    }

    fn read_vector(&self, s: ScalarTy, lanes: u8, addr: u64) -> Result<Value, Trap> {
        if s == ScalarTy::F64 {
            let mut xs = [0.0; MAX_LANES as usize];
            for (i, x) in xs.iter_mut().enumerate().take(lanes as usize) {
                *x = self.mem.read_scalar(s, addr + (i as u64) * s.bytes() as u64)?.as_f();
            }
            Ok(Value::FV(xs, lanes))
        } else {
            let mut xs = [0i64; MAX_LANES as usize];
            for (i, x) in xs.iter_mut().enumerate().take(lanes as usize) {
                *x = self.mem.read_scalar(s, addr + (i as u64) * s.bytes() as u64)?.as_i();
            }
            Ok(Value::IV(xs, lanes))
        }
    }

    fn write_vector(&mut self, s: ScalarTy, lanes: u8, addr: u64, v: &Value) -> Result<(), Trap> {
        match v {
            Value::IV(xs, _) => {
                for (i, x) in xs.iter().enumerate().take(lanes as usize) {
                    self.mem.write_scalar(s, addr + (i as u64) * s.bytes() as u64, &Value::I(*x))?;
                }
            }
            Value::FV(xs, _) => {
                for (i, x) in xs.iter().enumerate().take(lanes as usize) {
                    self.mem.write_scalar(s, addr + (i as u64) * s.bytes() as u64, &Value::F(*x))?;
                }
            }
            _ => return Err(Trap::UndefRead),
        }
        Ok(())
    }
}

fn bin_class(op: BinOp, lanes: u8) -> OpClass {
    use BinOp::*;
    if lanes > 1 {
        match op {
            Mul => OpClass::VecIntMul,
            FAdd | FSub | FMul | FDiv => OpClass::VecFp,
            _ => OpClass::VecIntAlu,
        }
    } else {
        match op {
            Mul => OpClass::IntMul,
            SDiv | SRem => OpClass::IntDiv,
            FAdd | FSub => OpClass::FpAlu,
            FMul => OpClass::FpMul,
            FDiv => OpClass::FpDiv,
            _ => OpClass::IntAlu,
        }
    }
}

fn scalar_bin(op: BinOp, ty: ScalarTy, a: i64, b: i64) -> Result<i64, Trap> {
    use BinOp::*;
    let bits = ty.bits().min(64);
    let shift_mask = (bits - 1) as i64;
    let r = match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        SDiv => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_div(b)
        }
        SRem => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_rem(b)
        }
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => a.wrapping_shl((b & shift_mask) as u32),
        AShr => ty.sext(a).wrapping_shr((b & shift_mask) as u32),
        LShr => ((ty.zext(a) as u64) >> ((b & shift_mask) as u64)) as i64,
        SMin => a.min(b),
        SMax => a.max(b),
        _ => unreachable!("float op on ints"),
    };
    Ok(ty.wrap(r))
}

fn float_bin(op: BinOp, a: f64, b: f64) -> f64 {
    use BinOp::*;
    match op {
        FAdd => a + b,
        FSub => a - b,
        FMul => a * b,
        FDiv => a / b,
        SMin => a.min(b),
        SMax => a.max(b),
        _ => unreachable!("int op on floats"),
    }
}

fn exec_bin(op: BinOp, s: ScalarTy, lanes: u8, a: &Value, b: &Value) -> Result<Value, Trap> {
    if lanes == 1 {
        if op.is_float() || s == ScalarTy::F64 {
            Ok(Value::F(float_bin(op, a.as_f(), b.as_f())))
        } else {
            Ok(Value::I(scalar_bin(op, s, a.as_i(), b.as_i())?))
        }
    } else {
        match (a, b) {
            (Value::IV(xs, n), Value::IV(ys, _)) => {
                let mut out = [0i64; MAX_LANES as usize];
                for i in 0..(*n as usize) {
                    out[i] = scalar_bin(op, s, xs[i], ys[i])?;
                }
                Ok(Value::IV(out, *n))
            }
            (Value::FV(xs, n), Value::FV(ys, _)) => {
                let mut out = [0.0; MAX_LANES as usize];
                for i in 0..(*n as usize) {
                    out[i] = float_bin(op, xs[i], ys[i]);
                }
                Ok(Value::FV(out, *n))
            }
            _ => Err(Trap::UndefRead),
        }
    }
}

fn exec_cmp(op: CmpOp, a: &Value, b: &Value) -> bool {
    use CmpOp::*;
    match (a, b) {
        (Value::F(x), Value::F(y)) => match op {
            Eq => x == y,
            Ne => x != y,
            Slt => x < y,
            Sle => x <= y,
            Sgt => x > y,
            Sge => x >= y,
        },
        _ => {
            let (x, y) = (a.as_i(), b.as_i());
            match op {
                Eq => x == y,
                Ne => x != y,
                Slt => x < y,
                Sle => x <= y,
                Sgt => x > y,
                Sge => x >= y,
            }
        }
    }
}

fn exec_cast(kind: CastKind, from: ScalarTy, to: ScalarTy, v: &Value) -> Value {
    // Vector casts apply element-wise.
    match v {
        Value::IV(xs, n) => {
            let mut out_i = [0i64; MAX_LANES as usize];
            let mut out_f = [0.0f64; MAX_LANES as usize];
            let is_f = to == ScalarTy::F64;
            for i in 0..(*n as usize) {
                match exec_cast(kind, from, to, &Value::I(xs[i])) {
                    Value::I(r) => out_i[i] = r,
                    Value::F(r) => out_f[i] = r,
                    _ => unreachable!(),
                }
            }
            return if is_f { Value::FV(out_f, *n) } else { Value::IV(out_i, *n) };
        }
        Value::FV(xs, n) => {
            let mut out_i = [0i64; MAX_LANES as usize];
            for i in 0..(*n as usize) {
                if let Value::I(r) = exec_cast(kind, from, to, &Value::F(xs[i])) {
                    out_i[i] = r;
                }
            }
            return Value::IV(out_i, *n);
        }
        _ => {}
    }
    match kind {
        // Registers hold canonical sign-extended values, so SExt to a wider
        // type is the identity on the representation.
        CastKind::SExt => Value::I(v.as_i()),
        CastKind::ZExt => Value::I(from.zext(v.as_i())),
        CastKind::Trunc => Value::I(to.wrap(v.as_i())),
        CastKind::SiToFp => Value::F(v.as_i() as f64),
        CastKind::FpToSi => {
            let x = v.as_f();
            let clamped = if x.is_nan() { 0 } else { x as i64 };
            Value::I(to.wrap(clamped))
        }
    }
}

fn exec_reduce(op: BinOp, s: ScalarTy, v: &Value) -> Result<Value, Trap> {
    match v {
        Value::IV(xs, n) => {
            let mut acc = xs[0];
            for &x in xs.iter().take(*n as usize).skip(1) {
                acc = scalar_bin(op, s, acc, x)?;
            }
            Ok(Value::I(acc))
        }
        Value::FV(xs, n) => {
            let mut acc = xs[0];
            for &x in xs.iter().take(*n as usize).skip(1) {
                acc = float_bin(op, acc, x);
            }
            Ok(Value::F(acc))
        }
        _ => Err(Trap::UndefRead),
    }
}

/// Execute `entry(args…)` in module `m`, streaming events into `sink`.
pub fn run<S: EventSink>(
    m: &Module,
    entry: FuncId,
    args: &[Value],
    sink: &mut S,
    limits: Limits,
) -> Result<ExecOutput, Trap> {
    let mem = Memory::new(m, limits.stack_bytes);
    let mut interp = Interp { m, mem, sink, steps: 0, limits };
    let ret = interp.call(entry, args, 0)?;
    let digest = interp.mem.digest(m);
    Ok(ExecOutput { ret, steps: interp.steps, mem_digest: digest })
}

/// Convenience: run with a counting sink and default limits.
pub fn run_counting(
    m: &Module,
    entry: FuncId,
    args: &[Value],
) -> Result<(ExecOutput, CountingSink), Trap> {
    let mut sink = CountingSink::new();
    let out = run(m, entry, args, &mut sink, Limits::default())?;
    Ok((out, sink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{counted_loop_mem, counted_loop_ssa, FunctionBuilder};
    use crate::module::Module;
    use crate::types::{I16, I64};

    fn run1(m: &Module, args: &[Value]) -> (ExecOutput, CountingSink) {
        run_counting(m, FuncId(0), args).expect("execution trapped")
    }

    #[test]
    fn arithmetic() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
        let s = b.bin(BinOp::Add, I64, b.param(0), b.param(1));
        let d = b.bin(BinOp::Mul, I64, s, Operand::imm64(3));
        b.ret(Some(d));
        m.add_func(b.finish());
        let (out, sink) = run1(&m, &[Value::I(2), Value::I(5)]);
        assert_eq!(out.ret, Some(Value::I(21)));
        assert_eq!(sink.count(OpClass::IntAlu), 1);
        assert_eq!(sink.count(OpClass::IntMul), 1);
    }

    #[test]
    fn narrow_width_wrapping() {
        // i16 add wraps at 16 bits.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I16], Some(I16));
        let s = b.bin(BinOp::Add, I16, b.param(0), Operand::ImmI(1, ScalarTy::I16));
        b.ret(Some(s));
        m.add_func(b.finish());
        let (out, _) = run1(&m, &[Value::I(32767)]);
        assert_eq!(out.ret, Some(Value::I(-32768)));
    }

    #[test]
    fn ssa_loop_sum() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("sum", vec![I64], Some(I64));
        let n = b.param(0);
        let pre = b.current();
        let merged = counted_loop_ssa(&mut b, n, |b, iv, c| {
            let acc = b.phi(I64, vec![(pre, Operand::imm64(0))]);
            let nx = b.bin(BinOp::Add, I64, acc, iv);
            c.feed(acc, nx);
        });
        b.ret(Some(merged[0]));
        m.add_func(b.finish());
        let (out, _) = run1(&m, &[Value::I(10)]);
        assert_eq!(out.ret, Some(Value::I(45)));
        // zero trip count takes the guard path
        let (out0, _) = run1(&m, &[Value::I(0)]);
        assert_eq!(out0.ret, Some(Value::I(0)));
    }

    #[test]
    fn mem_loop_and_globals() {
        // Sum a global i32 array of length n via an O0-style loop.
        let mut m = Module::new("m");
        let g = m.add_global("a", GlobalInit::I32s(vec![3, 1, 4, 1, 5]), false);
        let mut b = FunctionBuilder::new("sum", vec![I64], Some(I64));
        let n = b.param(0);
        let acc_slot = b.alloca(8);
        b.store(I64, Operand::imm64(0), acc_slot);
        counted_loop_mem(&mut b, n, |b, iv| {
            let addr = b.gep(Operand::Global(g), iv, 4);
            let x = b.load(crate::types::I32, addr);
            let x64 = b.cast(CastKind::SExt, I64, x);
            let acc = b.load(I64, acc_slot);
            let nx = b.bin(BinOp::Add, I64, acc, x64);
            b.store(I64, nx, acc_slot);
        });
        let r = b.load(I64, acc_slot);
        b.ret(Some(r));
        m.add_func(b.finish());
        crate::verify::assert_valid(&m);
        let (out, sink) = run1(&m, &[Value::I(5)]);
        assert_eq!(out.ret, Some(Value::I(14)));
        assert!(sink.count(OpClass::Load) > 10); // acc + array + iv loads
    }

    #[test]
    fn call_and_mutable_global_digest() {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        // callee: store its arg to @out and return arg*2
        let mut cb = FunctionBuilder::new("callee", vec![I64], Some(I64));
        cb.store(I64, cb.param(0), Operand::Global(g));
        let r = cb.bin(BinOp::Mul, I64, cb.param(0), Operand::imm64(2));
        cb.ret(Some(r));
        let callee = m.add_func(cb.finish());
        let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
        let v = b.call(callee, Some(I64), vec![b.param(0)]).unwrap();
        b.ret(Some(v));
        m.add_func(b.finish());
        let main = m.func_by_name("main").unwrap();

        let (o1, s1) = run_counting(&m, main, &[Value::I(7)]).unwrap();
        assert_eq!(o1.ret, Some(Value::I(14)));
        assert_eq!(s1.count(OpClass::Call), 1);
        let (o2, _) = run_counting(&m, main, &[Value::I(8)]).unwrap();
        assert_ne!(o1.mem_digest, o2.mem_digest, "digest must observe global writes");
    }

    #[test]
    fn vector_ops() {
        use crate::types::Ty;
        let v4 = Ty::vector(ScalarTy::I32, 4);
        let mut m = Module::new("m");
        let g = m.add_global("a", GlobalInit::I32s(vec![1, 2, 3, 4]), false);
        let h = m.add_global("b", GlobalInit::I32s(vec![10, 20, 30, 40]), false);
        let mut b = FunctionBuilder::new("dot", vec![], Some(crate::types::I32));
        let x = b.load(v4, Operand::Global(g));
        let y = b.load(v4, Operand::Global(h));
        let p = b.bin(BinOp::Mul, v4, x, y);
        let doubled = b.bin(BinOp::Add, v4, p, p); // 2*products
        let r = b.reduce(BinOp::Add, ScalarTy::I32, doubled);
        b.ret(Some(r));
        m.add_func(b.finish());
        let (out, sink) = run_counting(&m, FuncId(0), &[]).unwrap();
        // dot = 1*10+2*20+3*30+4*40 = 300, doubled = 600
        assert_eq!(out.ret, Some(Value::I(600)));
        assert_eq!(sink.count(OpClass::VecLoad), 2);
        assert_eq!(sink.count(OpClass::VecIntMul), 1);
        assert_eq!(sink.count(OpClass::Reduce), 1);
    }

    #[test]
    fn traps() {
        // div by zero
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let d = b.bin(BinOp::SDiv, I64, Operand::imm64(1), b.param(0));
        b.ret(Some(d));
        m.add_func(b.finish());
        let r = run_counting(&m, FuncId(0), &[Value::I(0)]);
        assert_eq!(r.unwrap_err(), Trap::DivByZero);

        // out of bounds
        let mut m2 = Module::new("m");
        let mut b2 = FunctionBuilder::new("f", vec![], Some(I64));
        let v = b2.load(I64, Operand::imm64(0));
        b2.ret(Some(v));
        m2.add_func(b2.finish());
        assert!(matches!(run_counting(&m2, FuncId(0), &[]), Err(Trap::OutOfBounds(_))));

        // infinite loop hits the step limit
        let mut m3 = Module::new("m");
        let mut b3 = FunctionBuilder::new("f", vec![], Some(I64));
        let l = b3.block();
        b3.br(l);
        b3.switch_to(l);
        b3.br(l);
        m3.add_func(b3.finish());
        let mut sink = CountingSink::new();
        let r = run(
            &m3,
            FuncId(0),
            &[],
            &mut sink,
            Limits { max_steps: 1000, ..Limits::default() },
        );
        assert_eq!(r.unwrap_err(), Trap::StepLimit);
    }

    #[test]
    fn shifts_and_logic() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let a = b.bin(BinOp::Shl, I64, b.param(0), Operand::imm64(3));
        let c = b.bin(BinOp::AShr, I64, a, Operand::imm64(1));
        let d = b.bin(BinOp::Xor, I64, c, Operand::imm64(0xff));
        b.ret(Some(d));
        m.add_func(b.finish());
        let (out, _) = run1(&m, &[Value::I(5)]);
        assert_eq!(out.ret, Some(Value::I((5i64 << 3 >> 1) ^ 0xff)));
    }

    #[test]
    fn float_ops() {
        use crate::types::F64;
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![F64, F64], Some(F64));
        let s = b.bin(BinOp::FMul, F64, b.param(0), b.param(1));
        let d = b.bin(BinOp::FAdd, F64, s, Operand::ImmF(0.5));
        b.ret(Some(d));
        m.add_func(b.finish());
        let (out, sink) = run1(&m, &[Value::F(2.0), Value::F(3.0)]);
        assert_eq!(out.ret, Some(Value::F(6.5)));
        assert_eq!(sink.count(OpClass::FpMul), 1);
        assert_eq!(sink.count(OpClass::FpAlu), 1);
    }
}
