//! Textual printing of the IR and stable structural fingerprinting.
//!
//! The fingerprint is what the tuners use to detect that two different pass
//! sequences produced the *same binary* (Kulkarni-style redundancy pruning,
//! and the coverage bookkeeping of CITROEN §5.3.4).

use crate::inst::{Inst, Operand, Term};
use crate::module::{Function, GlobalInit, Module};
use std::fmt::Write as _;

fn op_str(_f: &Function, op: &Operand) -> String {
    match op {
        Operand::Value(v) => format!("%{}", v.0),
        Operand::ImmI(v, s) => format!("{} {v}", s.name()),
        Operand::ImmF(v) => format!("f64 {v:?}"),
        Operand::Global(g) => format!("@{}", g.0),
    }
}

/// Render one function as text.
pub fn print_function(f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> =
        f.params.iter().enumerate().map(|(i, t)| format!("{t} %{i}")).collect();
    let ret = f.ret.map(|t| t.to_string()).unwrap_or_else(|| "void".into());
    let _ = writeln!(s, "func @{}({}) -> {} {{", f.name, params.join(", "), ret);
    for (b, blk) in f.iter_blocks() {
        let _ = writeln!(s, "b{}:", b.0);
        for inst in &blk.insts {
            let line = match inst {
                Inst::Bin { dst, op, lhs, rhs } => format!(
                    "%{} = {}.{} {}, {}",
                    dst.0,
                    op.name(),
                    f.ty(*dst),
                    op_str(f, lhs),
                    op_str(f, rhs)
                ),
                Inst::Cmp { dst, op, lhs, rhs } => {
                    format!("%{} = cmp.{} {}, {}", dst.0, op.name(), op_str(f, lhs), op_str(f, rhs))
                }
                Inst::Cast { dst, kind, src } => {
                    format!("%{} = {} {} to {}", dst.0, kind.name(), op_str(f, src), f.ty(*dst))
                }
                Inst::Alloca { dst, bytes } => format!("%{} = alloca {}", dst.0, bytes),
                Inst::Load { dst, addr } => {
                    format!("%{} = load {}, {}", dst.0, f.ty(*dst), op_str(f, addr))
                }
                Inst::Store { ty, val, addr } => {
                    format!("store {}, {}, {}", ty, op_str(f, val), op_str(f, addr))
                }
                Inst::Call { dst, callee, args } => {
                    let a: Vec<String> = args.iter().map(|x| op_str(f, x)).collect();
                    match dst {
                        Some(d) => format!("%{} = call f{}({})", d.0, callee.0, a.join(", ")),
                        None => format!("call f{}({})", callee.0, a.join(", ")),
                    }
                }
                Inst::Phi { dst, incoming } => {
                    let a: Vec<String> = incoming
                        .iter()
                        .map(|(b, o)| format!("[b{}: {}]", b.0, op_str(f, o)))
                        .collect();
                    format!("%{} = phi {} {}", dst.0, f.ty(*dst), a.join(", "))
                }
                Inst::Select { dst, cond, t, f: fv } => format!(
                    "%{} = select {}, {}, {}",
                    dst.0,
                    op_str(f, cond),
                    op_str(f, t),
                    op_str(f, fv)
                ),
                Inst::Splat { dst, src } => {
                    format!("%{} = splat {} {}", dst.0, f.ty(*dst), op_str(f, src))
                }
                Inst::ExtractLane { dst, src, lane } => {
                    format!("%{} = extractlane {}, {}", dst.0, op_str(f, src), lane)
                }
                Inst::Reduce { dst, op, src } => {
                    format!("%{} = reduce.{} {}", dst.0, op.name(), op_str(f, src))
                }
            };
            let _ = writeln!(s, "  {line}");
        }
        let t = match &blk.term {
            Term::Br(b) => format!("br b{}", b.0),
            Term::CondBr { cond, t, f: fb } => {
                format!("condbr {}, b{}, b{}", op_str(f, cond), t.0, fb.0)
            }
            Term::Ret(Some(op)) => format!("ret {}", op_str(f, op)),
            Term::Ret(None) => "ret".into(),
            Term::Unreachable => "unreachable".into(),
        };
        let _ = writeln!(s, "  {t}");
    }
    let _ = writeln!(s, "}}");
    s
}

/// Render a whole module as text.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module {}", m.name);
    for (i, g) in m.globals.iter().enumerate() {
        let kind = match &g.init {
            GlobalInit::Zero(n) => format!("zero[{n}]"),
            GlobalInit::I8s(v) => format!("i8[{}]", v.len()),
            GlobalInit::I16s(v) => format!("i16[{}]", v.len()),
            GlobalInit::I32s(v) => format!("i32[{}]", v.len()),
            GlobalInit::I64s(v) => format!("i64[{}]", v.len()),
            GlobalInit::F64s(v) => format!("f64[{}]", v.len()),
        };
        let _ = writeln!(s, "global @{i} {} : {kind}", g.name);
    }
    for f in &m.funcs {
        s.push_str(&print_function(f));
    }
    s
}

/// 64-bit FNV-1a — stable across platforms and Rust releases, unlike
/// `DefaultHasher`, so fingerprints can be persisted.
#[derive(Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Fresh hasher with the standard offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf29ce484222325)
    }
    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    /// Absorb a u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    /// Final digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable structural fingerprint of a module (the "binary hash"). Two modules
/// print identically iff they are structurally identical, so hashing the text
/// is a faithful structural hash while staying simple.
pub fn fingerprint(m: &Module) -> u64 {
    let mut h = Fnv64::new();
    h.write(print_module(m).as_bytes());
    // Attributes affect codegen (call cost) but not the printed body; fold them in.
    for f in &m.funcs {
        h.write_u64(f.attrs.readnone as u64 | (f.attrs.readonly as u64) << 1 | (f.attrs.noinline as u64) << 2);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Operand};
    use crate::types::I64;

    fn sample() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let x = b.bin(BinOp::Add, I64, b.param(0), Operand::imm64(1));
        b.ret(Some(x));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn print_contains_expected_tokens() {
        let m = sample();
        let s = print_module(&m);
        assert!(s.contains("func @f(i64 %0) -> i64"));
        assert!(s.contains("add.i64"));
        assert!(s.contains("ret %1"));
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        let m1 = sample();
        let m2 = sample();
        assert_eq!(fingerprint(&m1), fingerprint(&m2));
        let mut m3 = sample();
        // Change the constant — fingerprint must change.
        if let Inst::Bin { rhs, .. } = &mut m3.funcs[0].blocks[0].insts[0] {
            *rhs = Operand::imm64(2);
        }
        assert_ne!(fingerprint(&m1), fingerprint(&m3));
        // Changing attrs also changes the fingerprint.
        let mut m4 = sample();
        m4.funcs[0].attrs.readnone = true;
        assert_ne!(fingerprint(&m1), fingerprint(&m4));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), 0xcbf29ce484222325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }
}
