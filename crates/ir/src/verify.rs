//! IR verifier. Every pass is required to leave modules verifier-clean; the
//! property tests in the passes crate enforce this on random programs.

use crate::analysis::{Cfg, DefUse, DomTree};
use crate::inst::{BinOp, CastKind, Inst, Operand, Term, ValueId};
use crate::module::{Function, Module};
use crate::types::ScalarTy;

/// A verifier diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the problem was found.
    pub func: String,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.func, self.msg)
    }
}

/// Verify a whole module; returns all diagnostics found.
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for f in &m.funcs {
        verify_function(m, f, &mut errs);
    }
    errs
}

/// Verify a module and panic with diagnostics if it is malformed. Intended
/// for tests and debug assertions in the pass manager.
pub fn assert_valid(m: &Module) {
    let errs = verify_module(m);
    if !errs.is_empty() {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        panic!("IR verification failed:\n{}\n{}", msgs.join("\n"), crate::print::print_module(m));
    }
}

fn verify_function(m: &Module, f: &Function, errs: &mut Vec<VerifyError>) {
    let err = |errs: &mut Vec<VerifyError>, msg: String| {
        errs.push(VerifyError { func: f.name.clone(), msg })
    };
    if f.is_decl() {
        return; // declarations have nothing to verify
    }

    // Every block id referenced by terminators must exist.
    for (b, blk) in f.iter_blocks() {
        for s in blk.term.successors() {
            if s.idx() >= f.blocks.len() {
                err(errs, format!("b{} branches to nonexistent b{}", b.0, s.0));
                return;
            }
        }
    }

    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let du = DefUse::compute(f);

    // Single definition per value, no redefinition of params, and φs only at
    // the top of a block — one pass over the instructions covers all three.
    // Parameters are defined at function entry, so any instruction targeting
    // one is a redefinition.
    let mut def_count = vec![0u32; f.value_ty.len()];
    for (b, blk) in f.iter_blocks() {
        let mut seen_nonphi = false;
        for inst in &blk.insts {
            if inst.is_phi() {
                if seen_nonphi {
                    err(errs, format!("b{}: phi after non-phi instruction", b.0));
                }
            } else {
                seen_nonphi = true;
            }
            if let Some(d) = inst.dst() {
                if d.idx() >= f.value_ty.len() {
                    err(errs, format!("b{}: defines out-of-range value %{}", b.0, d.0));
                    continue;
                }
                if f.is_param(d) {
                    err(errs, format!("b{}: redefines parameter %{}", b.0, d.0));
                }
                def_count[d.idx()] += 1;
            }
        }
    }
    for (i, &c) in def_count.iter().enumerate() {
        if c > 1 {
            err(errs, format!("value %{i} defined {c} times"));
        }
    }

    // Operand checks: referenced values must be defined somewhere; types must
    // line up for the common instruction kinds; uses must be dominated by defs.
    for (b, blk) in f.iter_blocks() {
        if !cfg.reachable(b) {
            continue; // dominance undefined for unreachable code
        }
        for (idx, inst) in blk.insts.iter().enumerate() {
            let check_op = |op: &Operand, errs: &mut Vec<VerifyError>| {
                match op {
                    Operand::Value(v) => {
                        if v.idx() >= f.value_ty.len() || du.def[v.idx()].is_none() {
                            err(errs, format!("b{}: use of undefined value %{}", b.0, v.0));
                        } else if !inst.is_phi() {
                            check_dominance(f, &dom, &du, b, idx, *v, errs);
                        }
                    }
                    Operand::Global(g) => {
                        if g.idx() >= m.globals.len() {
                            err(errs, format!("b{}: reference to nonexistent global @{}", b.0, g.0));
                        }
                    }
                    _ => {}
                }
            };
            inst.for_each_operand(|op| check_op(op, errs));

            match inst {
                Inst::Bin { dst, op, lhs, rhs } => {
                    let ty = f.ty(*dst);
                    if op.is_float() != (ty.scalar == ScalarTy::F64) {
                        err(errs, format!("b{}: %{} {} on {}", b.0, dst.0, op.name(), ty));
                    }
                    for o in [lhs, rhs] {
                        let ot = f.operand_ty(o);
                        if ot.scalar != ty.scalar && !o.is_const() {
                            err(
                                errs,
                                format!(
                                    "b{}: %{} operand type {} != result scalar {}",
                                    b.0, dst.0, ot, ty
                                ),
                            );
                        }
                    }
                    if matches!(op, BinOp::Shl | BinOp::AShr | BinOp::LShr)
                        && ty.scalar == ScalarTy::F64
                    {
                        err(errs, format!("b{}: shift on float", b.0));
                    }
                }
                Inst::Cmp { lhs, rhs, .. } => {
                    let lt = f.operand_ty(lhs);
                    let rt = f.operand_ty(rhs);
                    if lt.scalar != rt.scalar && !lhs.is_const() && !rhs.is_const() {
                        err(errs, format!("b{}: cmp between {} and {}", b.0, lt, rt));
                    }
                }
                Inst::Cast { dst, kind, src } => {
                    let to = f.ty(*dst);
                    let from = f.operand_ty(src);
                    let ok = match kind {
                        CastKind::SExt | CastKind::ZExt => {
                            from.scalar.is_int()
                                && to.scalar.is_int()
                                && to.scalar.bits() > from.scalar.bits()
                        }
                        CastKind::Trunc => {
                            from.scalar.is_int()
                                && to.scalar.is_int()
                                && to.scalar.bits() < from.scalar.bits()
                        }
                        CastKind::SiToFp => from.scalar.is_int() && to.scalar == ScalarTy::F64,
                        CastKind::FpToSi => from.scalar == ScalarTy::F64 && to.scalar.is_int(),
                    };
                    if !ok && !src.is_const() {
                        err(errs, format!("b{}: bad cast {} {} -> {}", b.0, kind.name(), from, to));
                    }
                }
                Inst::Call { dst, callee, args } => {
                    if callee.idx() >= m.funcs.len() {
                        err(errs, format!("b{}: call to nonexistent f{}", b.0, callee.0));
                    } else {
                        let cal = &m.funcs[callee.idx()];
                        if args.len() != cal.params.len() {
                            err(
                                errs,
                                format!(
                                    "b{}: call to @{} with {} args, expects {}",
                                    b.0,
                                    cal.name,
                                    args.len(),
                                    cal.params.len()
                                ),
                            );
                        }
                        if dst.is_some() != cal.ret.is_some() {
                            err(errs, format!("b{}: call/return mismatch for @{}", b.0, cal.name));
                        }
                    }
                }
                Inst::Phi { dst, incoming } => {
                    if let Some((bad, _)) =
                        incoming.iter().find(|(p, _)| p.idx() >= f.blocks.len())
                    {
                        err(errs, format!("b{}: phi %{} from nonexistent b{}", b.0, dst.0, bad.0));
                        continue;
                    }
                    let preds = &cfg.preds[b.idx()];
                    let mut blocks: Vec<_> = incoming.iter().map(|(p, _)| *p).collect();
                    blocks.sort_unstable_by_key(|x| x.0);
                    blocks.dedup();
                    if blocks.len() != incoming.len() {
                        err(errs, format!("b{}: phi %{} has duplicate incoming blocks", b.0, dst.0));
                    }
                    let mut ps: Vec<_> = preds.clone();
                    ps.sort_unstable_by_key(|x| x.0);
                    ps.dedup();
                    if blocks != ps {
                        err(
                            errs,
                            format!(
                                "b{}: phi %{} incoming blocks {:?} != predecessors {:?}",
                                b.0,
                                dst.0,
                                blocks.iter().map(|x| x.0).collect::<Vec<_>>(),
                                ps.iter().map(|x| x.0).collect::<Vec<_>>()
                            ),
                        );
                    }
                    // φ operands must dominate the corresponding predecessor's exit.
                    for (p, op) in incoming {
                        if let Operand::Value(v) = op {
                            if v.idx() < du.def.len() {
                                if let Some(site) = &du.def[v.idx()] {
                                    if let crate::analysis::DefSite::Inst { block, .. } = site {
                                        if cfg.reachable(*p) && !dom.dominates(*block, *p) {
                                            err(
                                                errs,
                                                format!(
                                                    "b{}: phi %{} operand %{} (def b{}) does not dominate pred b{}",
                                                    b.0, dst.0, v.0, block.0, p.0
                                                ),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Inst::Reduce { op, .. } => {
                    if !op.associative() && *op != BinOp::FAdd && *op != BinOp::FMul {
                        err(errs, format!("b{}: reduce with non-associative {}", b.0, op.name()));
                    }
                }
                _ => {}
            }
        }
        // Terminator operand checks.
        if let Term::CondBr { cond, .. } = &blk.term {
            let ct = f.operand_ty(cond);
            if ct.scalar != ScalarTy::I1 && !cond.is_const() {
                err(errs, format!("b{}: condbr on non-i1 {}", b.0, ct));
            }
            if let Operand::Value(v) = cond {
                if v.idx() >= f.value_ty.len() || du.def[v.idx()].is_none() {
                    err(errs, format!("b{}: condbr on undefined %{}", b.0, v.0));
                }
            }
        }
        if let Term::Ret(op) = &blk.term {
            match (op, f.ret) {
                (Some(_), None) => err(errs, format!("b{}: ret with value in void fn", b.0)),
                (None, Some(_)) => err(errs, format!("b{}: ret without value", b.0)),
                _ => {}
            }
        }
    }
}

fn check_dominance(
    f: &Function,
    dom: &DomTree,
    du: &DefUse,
    use_block: crate::inst::BlockId,
    use_idx: usize,
    v: ValueId,
    errs: &mut Vec<VerifyError>,
) {
    match du.def[v.idx()] {
        Some(crate::analysis::DefSite::Param) | None => {}
        Some(crate::analysis::DefSite::Inst { block, inst }) => {
            let ok = if block == use_block { inst < use_idx } else { dom.dominates(block, use_block) };
            if !ok {
                errs.push(VerifyError {
                    func: f.name.clone(),
                    msg: format!(
                        "use of %{} in b{} not dominated by its definition in b{}",
                        v.0, use_block.0, block.0
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{counted_loop_mem, counted_loop_ssa, FunctionBuilder};
    use crate::inst::{BinOp, BlockId, Operand};
    use crate::types::{I32, I64};

    #[test]
    fn valid_function_passes() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let x = b.bin(BinOp::Add, I64, b.param(0), Operand::imm64(1));
        b.ret(Some(x));
        m.add_func(b.finish());
        assert!(verify_module(&m).is_empty());
    }

    #[test]
    fn loops_pass_verification() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let n = b.param(0);
        let pre = b.current();
        let merged = counted_loop_ssa(&mut b, n, |b, iv, c| {
            let acc = b.phi(I64, vec![(pre, Operand::imm64(0))]);
            let nx = b.bin(BinOp::Add, I64, acc, iv);
            c.feed(acc, nx);
        });
        b.ret(Some(merged[0]));
        m.add_func(b.finish());
        assert_valid(&m);

        let mut m2 = Module::new("m2");
        let mut b2 = FunctionBuilder::new("g", vec![I64], Some(I64));
        let n2 = b2.param(0);
        counted_loop_mem(&mut b2, n2, |_, _| {});
        b2.ret(Some(Operand::imm64(0)));
        m2.add_func(b2.finish());
        assert_valid(&m2);
    }

    #[test]
    fn detects_phi_after_nonphi() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![I64], Some(I64));
        let entry = BlockId(0);
        let x = f.new_value(I64);
        let p = f.new_value(I64);
        f.blocks[0].insts.push(Inst::Bin {
            dst: x,
            op: BinOp::Add,
            lhs: Operand::Value(crate::inst::ValueId(0)), // the i64 param
            rhs: Operand::imm64(1),
        });
        // φ below a non-φ instruction: structurally representable, illegal.
        f.blocks[0].insts.push(Inst::Phi { dst: p, incoming: vec![(entry, Operand::imm64(0))] });
        f.blocks[0].term = Term::Ret(Some(Operand::Value(x)));
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.msg.contains("phi after non-phi")),
            "missing diagnostic: {errs:?}"
        );
    }

    #[test]
    fn detects_non_associative_reduce() {
        use crate::types::Ty;
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Some(I64));
        let v = f.new_value(Ty::vector(crate::types::ScalarTy::I64, 4));
        let r = f.new_value(I64);
        f.blocks[0].insts.push(Inst::Splat { dst: v, src: Operand::imm64(7) });
        // Sub is not associative: reducing with it has no defined bracketing.
        f.blocks[0].insts.push(Inst::Reduce { dst: r, op: BinOp::Sub, src: Operand::Value(v) });
        f.blocks[0].term = Term::Ret(Some(Operand::Value(r)));
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.msg.contains("non-associative")),
            "missing diagnostic: {errs:?}"
        );
    }

    #[test]
    fn detects_undefined_use() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Some(I64));
        let v = f.new_value(I64);
        let w = f.new_value(I64);
        f.blocks[0].insts.push(Inst::Bin {
            dst: v,
            op: BinOp::Add,
            lhs: Operand::Value(w), // never defined
            rhs: Operand::imm64(1),
        });
        f.blocks[0].term = Term::Ret(Some(Operand::Value(v)));
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("undefined value")));
    }

    #[test]
    fn detects_type_mismatch() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![I32], Some(I64));
        let v = f.new_value(I64);
        f.blocks[0].insts.push(Inst::Bin {
            dst: v,
            op: BinOp::Add,
            lhs: Operand::Value(ValueId(0)), // i32 into i64 add
            rhs: Operand::imm64(1),
        });
        f.blocks[0].term = Term::Ret(Some(Operand::Value(v)));
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("operand type")));
    }

    #[test]
    fn detects_non_dominating_use() {
        // b0: condbr p, b1, b2 ; b1 defines %v, br b2 ; b2 uses %v — invalid.
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Some(I64));
        let p = f.new_value(crate::types::I1);
        let v = f.new_value(I64);
        let r = f.new_value(I64);
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.blocks[0].insts.push(Inst::Cmp {
            dst: p,
            op: crate::inst::CmpOp::Eq,
            lhs: Operand::imm64(0),
            rhs: Operand::imm64(0),
        });
        f.blocks[0].term = Term::CondBr { cond: Operand::Value(p), t: b1, f: b2 };
        f.blocks[b1.idx()].insts.push(Inst::Bin {
            dst: v,
            op: BinOp::Add,
            lhs: Operand::imm64(1),
            rhs: Operand::imm64(2),
        });
        f.blocks[b1.idx()].term = Term::Br(b2);
        f.blocks[b2.idx()].insts.push(Inst::Bin {
            dst: r,
            op: BinOp::Add,
            lhs: Operand::Value(v),
            rhs: Operand::imm64(0),
        });
        f.blocks[b2.idx()].term = Term::Ret(Some(Operand::Value(r)));
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("not dominated")));
    }

    #[test]
    fn detects_bad_phi_preds() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Some(I64));
        let v = f.new_value(I64);
        let b1 = f.new_block();
        f.blocks[0].term = Term::Br(b1);
        f.blocks[b1.idx()].insts.push(Inst::Phi {
            dst: v,
            incoming: vec![(BlockId(0), Operand::imm64(1)), (BlockId(5), Operand::imm64(2))],
        });
        f.blocks[b1.idx()].term = Term::Ret(Some(Operand::Value(v)));
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(!errs.is_empty());
    }
}
