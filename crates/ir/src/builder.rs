//! Ergonomic function construction, used by the benchmark suite and tests.

use crate::inst::{BinOp, BlockId, CastKind, CmpOp, FuncId, Inst, Operand, Term, ValueId};
use crate::module::Function;
use crate::types::{ScalarTy, Ty, I1};

/// Builds a [`Function`] block by block.
///
/// ```
/// use citroen_ir::builder::FunctionBuilder;
/// use citroen_ir::types::I64;
/// use citroen_ir::inst::{BinOp, Operand};
///
/// let mut b = FunctionBuilder::new("add1", vec![I64], Some(I64));
/// let x = b.param(0);
/// let y = b.bin(BinOp::Add, I64, x, Operand::imm64(1));
/// b.ret(Some(y));
/// let f = b.finish();
/// assert_eq!(f.num_insts(), 1);
/// ```
pub struct FunctionBuilder {
    f: Function,
    cur: BlockId,
    terminated: Vec<bool>,
}

impl FunctionBuilder {
    /// Start building a function; the cursor is at the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> FunctionBuilder {
        let f = Function::new(name, params, ret);
        FunctionBuilder { f, cur: BlockId(0), terminated: vec![false] }
    }

    /// Operand referring to parameter `i`.
    pub fn param(&self, i: usize) -> Operand {
        assert!(i < self.f.params.len(), "no parameter {i}");
        Operand::Value(ValueId(i as u32))
    }

    /// Create a new (empty) block without moving the cursor.
    pub fn block(&mut self) -> BlockId {
        let b = self.f.new_block();
        self.terminated.push(false);
        b
    }

    /// Move the insertion cursor to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    fn push(&mut self, inst: Inst) {
        assert!(!self.terminated[self.cur.idx()], "appending to terminated block {:?}", self.cur);
        self.f.blocks[self.cur.idx()].insts.push(inst);
    }

    fn def(&mut self, ty: Ty) -> ValueId {
        self.f.new_value(ty)
    }

    /// Emit a binary operation of result type `ty`.
    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        let dst = self.def(ty);
        self.push(Inst::Bin { dst, op, lhs, rhs });
        Operand::Value(dst)
    }

    /// Emit an integer/float comparison; the result is `i1`.
    pub fn cmp(&mut self, op: CmpOp, lhs: Operand, rhs: Operand) -> Operand {
        let dst = self.def(I1);
        self.push(Inst::Cmp { dst, op, lhs, rhs });
        Operand::Value(dst)
    }

    /// Emit a cast to `to` of the given kind.
    pub fn cast(&mut self, kind: CastKind, to: Ty, src: Operand) -> Operand {
        let dst = self.def(to);
        self.push(Inst::Cast { dst, kind, src });
        Operand::Value(dst)
    }

    /// Emit an alloca of `bytes` bytes; the result is its byte address.
    pub fn alloca(&mut self, bytes: u32) -> Operand {
        let dst = self.def(Ty::scalar(ScalarTy::I64));
        self.push(Inst::Alloca { dst, bytes });
        Operand::Value(dst)
    }

    /// Emit a typed load.
    pub fn load(&mut self, ty: Ty, addr: Operand) -> Operand {
        let dst = self.def(ty);
        self.push(Inst::Load { dst, addr });
        Operand::Value(dst)
    }

    /// Emit a typed store.
    pub fn store(&mut self, ty: Ty, val: Operand, addr: Operand) {
        self.push(Inst::Store { ty, val, addr });
    }

    /// Emit a call; `ret` is the callee's return type if it has one.
    pub fn call(&mut self, callee: FuncId, ret: Option<Ty>, args: Vec<Operand>) -> Option<Operand> {
        let dst = ret.map(|ty| self.def(ty));
        self.push(Inst::Call { dst, callee, args });
        dst.map(Operand::Value)
    }

    /// Emit a φ-node of type `ty` with the given incoming edges.
    pub fn phi(&mut self, ty: Ty, incoming: Vec<(BlockId, Operand)>) -> Operand {
        let dst = self.def(ty);
        // φ-nodes go before non-φ instructions.
        let blk = &mut self.f.blocks[self.cur.idx()];
        let pos = blk.insts.iter().take_while(|i| i.is_phi()).count();
        blk.insts.insert(pos, Inst::Phi { dst, incoming });
        Operand::Value(dst)
    }

    /// Emit a select of type `ty`.
    pub fn select(&mut self, ty: Ty, cond: Operand, t: Operand, f: Operand) -> Operand {
        let dst = self.def(ty);
        self.push(Inst::Select { dst, cond, t, f });
        Operand::Value(dst)
    }

    /// Emit a splat (scalar broadcast) producing a vector of type `ty`.
    pub fn splat(&mut self, ty: Ty, src: Operand) -> Operand {
        assert!(ty.is_vector());
        let dst = self.def(ty);
        self.push(Inst::Splat { dst, src });
        Operand::Value(dst)
    }

    /// Emit a lane extraction; result has the vector's scalar type.
    pub fn extract_lane(&mut self, scalar: ScalarTy, src: Operand, lane: u8) -> Operand {
        let dst = self.def(Ty::scalar(scalar));
        self.push(Inst::ExtractLane { dst, src, lane });
        Operand::Value(dst)
    }

    /// Emit a horizontal reduction to a scalar of type `scalar`.
    pub fn reduce(&mut self, op: BinOp, scalar: ScalarTy, src: Operand) -> Operand {
        let dst = self.def(Ty::scalar(scalar));
        self.push(Inst::Reduce { dst, op, src });
        Operand::Value(dst)
    }

    /// Compute `base + index * elem_bytes` (address arithmetic helper).
    /// Constant indices fold at build time, as a C front end would fold
    /// constant GEPs.
    pub fn gep(&mut self, base: Operand, index: Operand, elem_bytes: u32) -> Operand {
        let i64t = Ty::scalar(ScalarTy::I64);
        if let Some(c) = index.as_const_int() {
            let off = c.wrapping_mul(elem_bytes as i64);
            if off == 0 {
                return base;
            }
            return self.bin(BinOp::Add, i64t, base, Operand::imm64(off));
        }
        let scaled = if elem_bytes == 1 {
            index
        } else {
            self.bin(BinOp::Mul, i64t, index, Operand::imm64(elem_bytes as i64))
        };
        self.bin(BinOp::Add, i64t, base, scaled)
    }

    /// Terminate the current block with an unconditional branch.
    pub fn br(&mut self, to: BlockId) {
        self.terminate(Term::Br(to));
    }

    /// Terminate the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Operand, t: BlockId, f: BlockId) {
        self.terminate(Term::CondBr { cond, t, f });
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.terminate(Term::Ret(val));
    }

    fn terminate(&mut self, term: Term) {
        assert!(!self.terminated[self.cur.idx()], "block {:?} already terminated", self.cur);
        self.f.blocks[self.cur.idx()].term = term;
        self.terminated[self.cur.idx()] = true;
    }

    /// Finish and return the function. Panics if any block lacks a terminator.
    pub fn finish(self) -> Function {
        for (i, t) in self.terminated.iter().enumerate() {
            assert!(*t, "block b{i} in '{}' not terminated", self.f.name);
        }
        self.f
    }
}

/// Records loop-carried values created inside a [`counted_loop_ssa`] body.
pub struct LoopCarried {
    pairs: Vec<(ValueId, Operand)>,
}

impl LoopCarried {
    /// Register that φ `phi` (created by the body with a single incoming edge
    /// from the guard block) receives `next` along the back edge.
    pub fn feed(&mut self, phi: Operand, next: Operand) {
        let v = phi.as_value().expect("loop-carried phi must be a value");
        self.pairs.push((v, next));
    }
}

/// Emit a guarded SSA `for i in 0..n { body }` (body runs `max(n, 0)` times).
///
/// The body receives the induction variable and a [`LoopCarried`] registry.
/// For every `feed(phi, next)` call, the φ's back edge is patched and a
/// *merged exit value* is created (φ at the exit block selecting the initial
/// value when the loop was skipped and `next` otherwise). Returns the merged
/// exit values in `feed` call order; the cursor is left at the exit block.
pub fn counted_loop_ssa(
    b: &mut FunctionBuilder,
    n: Operand,
    body: impl FnOnce(&mut FunctionBuilder, Operand, &mut LoopCarried),
) -> Vec<Operand> {
    let i64t = Ty::scalar(ScalarTy::I64);
    let pre = b.current();
    let header = b.block();
    let exit = b.block();
    // Guard: skip the loop entirely when n <= 0.
    let enter = b.cmp(CmpOp::Sgt, n, Operand::imm64(0));
    b.cond_br(enter, header, exit);

    b.switch_to(header);
    let iv = b.phi(i64t, vec![(pre, Operand::imm64(0))]);
    let mut carried = LoopCarried { pairs: Vec::new() };
    body(b, iv, &mut carried);
    // i' = i + 1; continue while i' < n
    let next = b.bin(BinOp::Add, i64t, iv, Operand::imm64(1));
    let cont = b.cmp(CmpOp::Slt, next, n);
    let latch = b.current();
    b.cond_br(cont, header, exit);

    // Patch back edges and build merged exit φs.
    let pairs = std::mem::take(&mut carried.pairs);
    let iv_v = iv.as_value().unwrap();
    patch_phi_backedge(b, header, iv_v, latch, next);
    let mut merged = Vec::with_capacity(pairs.len());
    b.switch_to(exit);
    for (phi, back) in pairs {
        let init = patch_phi_backedge(b, header, phi, latch, back);
        let ty = b.f.ty(phi);
        merged.push(b.phi(ty, vec![(pre, init), (latch, back)]));
    }
    merged
}

/// Patch the back edge of `phi` and return its initial (guard-edge) operand.
fn patch_phi_backedge(
    b: &mut FunctionBuilder,
    header: BlockId,
    phi: ValueId,
    latch: BlockId,
    val: Operand,
) -> Operand {
    for inst in &mut b.f.blocks[header.idx()].insts {
        if let Inst::Phi { dst, incoming } = inst {
            if *dst == phi {
                let init = incoming[0].1;
                incoming.push((latch, val));
                return init;
            }
        }
    }
    panic!("phi {phi:?} not found in loop header");
}

/// Emit an unoptimised (`-O0`-style) counted loop: the induction variable
/// lives in an alloca slot, and the loop is in while-shape (test at the top),
/// exactly as a C front end would emit it. `mem2reg` promotes the slot,
/// `loop-rotate` converts the shape — which is what gives those passes their
/// job in this IR. The body closure receives the loaded induction variable
/// and must not write to the slot. Returns the exit block (cursor placed there).
pub fn counted_loop_mem(
    b: &mut FunctionBuilder,
    n: Operand,
    body: impl FnOnce(&mut FunctionBuilder, Operand),
) -> BlockId {
    let i64t = Ty::scalar(ScalarTy::I64);
    let slot = b.alloca(8);
    b.store(i64t, Operand::imm64(0), slot);
    let check = b.block();
    let body_blk = b.block();
    let exit = b.block();
    b.br(check);

    b.switch_to(check);
    let i = b.load(i64t, slot);
    let c = b.cmp(CmpOp::Slt, i, n);
    b.cond_br(c, body_blk, exit);

    b.switch_to(body_blk);
    body(b, i);
    let i2 = b.load(i64t, slot);
    let next = b.bin(BinOp::Add, i64t, i2, Operand::imm64(1));
    b.store(i64t, next, slot);
    b.br(check);

    b.switch_to(exit);
    exit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::I64;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
        let s = b.bin(BinOp::Add, I64, b.param(0), b.param(1));
        let d = b.bin(BinOp::Mul, I64, s, Operand::imm64(3));
        b.ret(Some(d));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    fn counted_loop_ssa_shape() {
        // sum = Σ i for i in 0..n
        let mut b = FunctionBuilder::new("sum", vec![I64], Some(I64));
        let n = b.param(0);
        let pre = b.current();
        let merged = counted_loop_ssa(&mut b, n, |b, iv, carried| {
            let acc = b.phi(I64, vec![(pre, Operand::imm64(0))]);
            let next = b.bin(BinOp::Add, I64, acc, iv);
            carried.feed(acc, next);
        });
        b.ret(Some(merged[0]));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3); // entry, header, exit
        // header has iv φ + acc φ, each with two incomings; exit has merge φ.
        let header = &f.blocks[1];
        assert_eq!(header.num_phis(), 2);
        for inst in header.insts.iter().take(2) {
            if let Inst::Phi { incoming, .. } = inst {
                assert_eq!(incoming.len(), 2);
            }
        }
        assert_eq!(f.blocks[2].num_phis(), 1);
    }

    #[test]
    fn counted_loop_mem_shape() {
        let mut b = FunctionBuilder::new("count", vec![I64], Some(I64));
        let n = b.param(0);
        counted_loop_mem(&mut b, n, |_, _| {});
        b.ret(Some(Operand::imm64(0)));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4); // entry, check, body, exit
        // No φs anywhere before mem2reg.
        assert!(f.blocks.iter().all(|blk| blk.num_phis() == 0));
        // One alloca, loads in check and body.
        let allocas = f.blocks.iter().flat_map(|blk| &blk.insts)
            .filter(|i| matches!(i, Inst::Alloca { .. })).count();
        assert_eq!(allocas, 1);
    }

    #[test]
    #[should_panic]
    fn unterminated_block_panics() {
        let b = FunctionBuilder::new("f", vec![], None);
        let _ = b.finish();
    }

    #[test]
    #[should_panic]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        b.ret(None);
    }
}
