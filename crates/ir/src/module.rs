//! Modules, functions, blocks and globals.

use crate::inst::{BlockId, FuncId, GlobalId, Inst, Operand, Term, ValueId};
use crate::types::{ScalarTy, Ty};

/// Function attributes. Discovered by the `function-attrs` pass; they change
/// what later passes may do (the paper's example of a transformation that is
/// invisible to IR-syntax features, §3.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnAttrs {
    /// Function neither reads nor writes memory reachable from outside.
    pub readnone: bool,
    /// Function may read but never writes memory.
    pub readonly: bool,
    /// Do not inline this function.
    pub noinline: bool,
}

/// A basic block: a straight-line run of instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in program order; φ-nodes must come first.
    pub insts: Vec<Inst>,
    /// The block terminator.
    pub term: Term,
}

impl Block {
    /// Empty block ending in `Unreachable` (builder fills it in).
    pub fn new() -> Block {
        Block { insts: Vec::new(), term: Term::Unreachable }
    }

    /// Number of leading φ-nodes.
    pub fn num_phis(&self) -> usize {
        self.insts.iter().take_while(|i| i.is_phi()).count()
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// A function: CFG of blocks plus a value-type table.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types; parameters are values `0..params.len()`.
    pub params: Vec<Ty>,
    /// Return type, if the function returns a value.
    pub ret: Option<Ty>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Type of each value, indexed by [`ValueId`].
    pub value_ty: Vec<Ty>,
    /// Attributes (possibly set by `function-attrs`).
    pub attrs: FnAttrs,
}

impl Function {
    /// Create an empty function with the given signature. Parameters become
    /// values `0..params.len()`; an entry block is created.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Function {
        let value_ty = params.clone();
        Function {
            name: name.into(),
            params,
            ret,
            blocks: vec![Block::new()],
            value_ty,
            attrs: FnAttrs::default(),
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocate a fresh value of type `ty`.
    pub fn new_value(&mut self, ty: Ty) -> ValueId {
        let id = ValueId(self.value_ty.len() as u32);
        self.value_ty.push(ty);
        id
    }

    /// Allocate a fresh (empty) block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Type of a value.
    pub fn ty(&self, v: ValueId) -> Ty {
        self.value_ty[v.idx()]
    }

    /// Type of an operand.
    pub fn operand_ty(&self, op: &Operand) -> Ty {
        match op {
            Operand::Value(v) => self.ty(*v),
            Operand::ImmI(_, s) => Ty::scalar(*s),
            Operand::ImmF(_) => Ty::scalar(ScalarTy::F64),
            Operand::Global(_) => Ty::scalar(ScalarTy::I64),
        }
    }

    /// Whether `v` is a parameter.
    pub fn is_param(&self, v: ValueId) -> bool {
        v.idx() < self.params.len()
    }

    /// Total number of instructions (excluding terminators).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }
}

/// Initial contents of a global.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialised region of the given size in bytes.
    Zero(u32),
    /// Array of 8-bit integers.
    I8s(Vec<i8>),
    /// Array of 16-bit integers.
    I16s(Vec<i16>),
    /// Array of 32-bit integers.
    I32s(Vec<i32>),
    /// Array of 64-bit integers.
    I64s(Vec<i64>),
    /// Array of doubles.
    F64s(Vec<f64>),
}

impl GlobalInit {
    /// Size of the region in bytes.
    pub fn bytes(&self) -> u32 {
        match self {
            GlobalInit::Zero(n) => *n,
            GlobalInit::I8s(v) => v.len() as u32,
            GlobalInit::I16s(v) => (v.len() * 2) as u32,
            GlobalInit::I32s(v) => (v.len() * 4) as u32,
            GlobalInit::I64s(v) => (v.len() * 8) as u32,
            GlobalInit::F64s(v) => (v.len() * 8) as u32,
        }
    }
}

/// A module global: named initialised storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Initial contents.
    pub init: GlobalInit,
    /// Whether any function may write to it (used by alias reasoning).
    pub mutable: bool,
    /// Declaration only — storage comes from another module at link time.
    pub external: bool,
}

/// A compilation module: functions plus globals. This is the unit the paper
/// calls a "module" (one source file); multi-module programs are collections
/// of these linked by the suite crate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name (e.g. `long_term.c`).
    pub name: String,
    /// Functions; ids index this vector.
    pub funcs: Vec<Function>,
    /// Globals; ids index this vector.
    pub globals: Vec<Global>,
}

impl Module {
    /// Empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module { name: name.into(), funcs: Vec::new(), globals: Vec::new() }
    }

    /// Add a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Add a global, returning its id.
    pub fn add_global(&mut self, name: impl Into<String>, init: GlobalInit, mutable: bool) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global { name: name.into(), init, mutable, external: false });
        id
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Access a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.idx()]
    }

    /// Total instruction count across all functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{I32, I64};

    #[test]
    fn function_values_and_blocks() {
        let mut f = Function::new("f", vec![I64, I32], Some(I32));
        assert_eq!(f.value_ty.len(), 2);
        assert!(f.is_param(ValueId(1)));
        let v = f.new_value(I32);
        assert_eq!(v, ValueId(2));
        assert!(!f.is_param(v));
        assert_eq!(f.ty(v), I32);
        let b = f.new_block();
        assert_eq!(b, BlockId(1));
        assert_eq!(f.entry(), BlockId(0));
    }

    #[test]
    fn module_roundtrip() {
        let mut m = Module::new("m");
        let g = m.add_global("data", GlobalInit::I32s(vec![1, 2, 3]), false);
        assert_eq!(m.globals[g.idx()].init.bytes(), 12);
        let f = m.add_func(Function::new("main", vec![], Some(I64)));
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.func_by_name("nope"), None);
    }

    #[test]
    fn global_sizes() {
        assert_eq!(GlobalInit::Zero(10).bytes(), 10);
        assert_eq!(GlobalInit::I16s(vec![0; 4]).bytes(), 8);
        assert_eq!(GlobalInit::F64s(vec![0.0; 2]).bytes(), 16);
    }
}
