//! Function-level analyses: CFG shape, dominators, dominance frontiers,
//! natural loops, and def/use information. These are the substrate the
//! transformation passes (mem2reg, LICM, loop passes, …) are built on.

use crate::inst::{BlockId, Inst, Operand, ValueId};
use crate::module::Function;
use std::collections::HashMap;

/// Predecessor/successor lists and a reverse postorder of the CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Predecessors of each block.
    pub preds: Vec<Vec<BlockId>>,
    /// Successors of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Reverse postorder over blocks reachable from the entry.
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b] == position of b in rpo`, or `usize::MAX` if unreachable.
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Compute the CFG of `f`.
    pub fn compute(f: &Function) -> Cfg {
        let n = f.blocks.len();
        if n == 0 {
            // Declarations have no CFG.
            return Cfg { preds: vec![], succs: vec![], rpo: vec![], rpo_index: vec![] };
        }
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (b, blk) in f.iter_blocks() {
            for s in blk.term.successors() {
                succs[b.idx()].push(s);
                preds[s.idx()].push(b);
            }
        }
        // Iterative DFS postorder from the entry.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.idx()].len() {
                let s = succs[b.idx()][*i];
                *i += 1;
                if !visited[s.idx()] {
                    visited[s.idx()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.idx()] = i;
        }
        Cfg { preds, succs, rpo, rpo_index }
    }

    /// Whether block `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.idx()] != usize::MAX
    }
}

/// Dominator tree plus dominance frontiers (Cooper–Harvey–Kennedy).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Dominance frontier of each block.
    pub frontier: Vec<Vec<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
    rpo_index: Vec<usize>,
}

impl DomTree {
    /// Compute dominators of `f` given its CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom, frontier: vec![], children: vec![], rpo_index: vec![] };
        }
        idom[0] = Some(BlockId(0));

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while cfg.rpo_index[a.idx()] > cfg.rpo_index[b.idx()] {
                    a = idom[a.idx()].unwrap();
                }
                while cfg.rpo_index[b.idx()] > cfg.rpo_index[a.idx()] {
                    b = idom[b.idx()].unwrap();
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.idx()] {
                    if idom[p.idx()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.idx()] != Some(ni) {
                        idom[b.idx()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Dominance frontiers.
        let mut frontier = vec![Vec::new(); n];
        for &b in &cfg.rpo {
            if cfg.preds[b.idx()].len() >= 2 {
                for &p in &cfg.preds[b.idx()] {
                    if idom[p.idx()].is_none() {
                        continue;
                    }
                    let mut runner = p;
                    while runner != idom[b.idx()].unwrap() {
                        if !frontier[runner.idx()].contains(&b) {
                            frontier[runner.idx()].push(b);
                        }
                        runner = idom[runner.idx()].unwrap();
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for &b in cfg.rpo.iter().skip(1) {
            if let Some(d) = idom[b.idx()] {
                children[d.idx()].push(b);
            }
        }
        DomTree { idom, frontier, children, rpo_index: cfg.rpo_index.clone() }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.idx()] {
                Some(d) if d != cur => cur = d,
                _ => return cur == a,
            }
        }
    }

    /// Whether block `b` is reachable (has a computed idom).
    pub fn reachable(&self, b: BlockId) -> bool {
        self.idom[b.idx()].is_some()
    }

    /// Reverse-postorder index (useful for scheduling decisions).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b.idx()]
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header block.
    pub header: BlockId,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body (including the header).
    pub blocks: Vec<BlockId>,
    /// Loop nesting depth (outermost = 1).
    pub depth: u32,
    /// Unique preheader, if the header has exactly one out-of-loop predecessor.
    pub preheader: Option<BlockId>,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// The set of natural loops of a function.
#[derive(Debug, Clone, Default)]
pub struct LoopInfo {
    /// Loops, outermost first within a nest.
    pub loops: Vec<Loop>,
    /// Innermost loop containing each block, if any (index into `loops`).
    pub innermost: Vec<Option<usize>>,
}

impl LoopInfo {
    /// Find natural loops via back edges (edges whose target dominates source).
    pub fn compute(f: &Function, cfg: &Cfg, dom: &DomTree) -> LoopInfo {
        let n = f.blocks.len();
        // Group back edges by header.
        let mut latches_by_header: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &cfg.rpo {
            for &s in &cfg.succs[b.idx()] {
                if dom.dominates(s, b) {
                    latches_by_header.entry(s).or_default().push(b);
                }
            }
        }
        let mut loops = Vec::new();
        let mut headers_sorted: Vec<BlockId> = latches_by_header.keys().copied().collect();
        headers_sorted.sort_unstable_by_key(|b| b.0);
        for header in headers_sorted {
            let latches = latches_by_header[&header].clone();
            // Collect body: reverse reachability from latches without passing header.
            let mut body = vec![header];
            let mut stack = latches.clone();
            while let Some(b) = stack.pop() {
                if !body.contains(&b) {
                    body.push(b);
                    for &p in &cfg.preds[b.idx()] {
                        if dom.reachable(p) {
                            stack.push(p);
                        }
                    }
                }
            }
            body.sort_unstable_by_key(|b| b.0);
            // Preheader: unique out-of-loop predecessor of the header.
            let outside: Vec<BlockId> = cfg.preds[header.idx()]
                .iter()
                .copied()
                .filter(|p| !body.contains(p))
                .collect();
            let preheader = if outside.len() == 1 { Some(outside[0]) } else { None };
            loops.push(Loop { header, latches, blocks: body, depth: 1, preheader });
        }
        // Depth: number of loops containing the header.
        let headers: Vec<BlockId> = loops.iter().map(|l| l.header).collect();
        for (i, h) in headers.iter().enumerate() {
            let depth = loops.iter().filter(|l| l.contains(*h)).count() as u32;
            loops[i].depth = depth;
        }
        // Sort outermost (shallowest) first, ties by header id, so passes
        // iterate loops in a deterministic order.
        loops.sort_by_key(|l| (l.depth, l.header.0));
        let mut innermost = vec![None; n];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                match innermost[b.idx()] {
                    Some(j) if loops[j as usize].depth >= l.depth => {}
                    _ => innermost[b.idx()] = Some(i),
                }
            }
        }
        LoopInfo { loops, innermost }
    }
}

/// Definition site of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// Function parameter.
    Param,
    /// Defined by instruction `inst` of block `block`.
    Inst {
        /// Defining block.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
    },
}

/// Def/use summary: definition site and use count per value.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// Definition site of each value (`None` if never defined — verifier error).
    pub def: Vec<Option<DefSite>>,
    /// Number of uses of each value (instruction + terminator operands).
    pub uses: Vec<u32>,
}

impl DefUse {
    /// Compute def/use info for `f`.
    pub fn compute(f: &Function) -> DefUse {
        let nv = f.value_ty.len();
        let mut def = vec![None; nv];
        let mut uses = vec![0u32; nv];
        for i in 0..f.params.len() {
            def[i] = Some(DefSite::Param);
        }
        let mut count = |op: &Operand| {
            if let Operand::Value(v) = op {
                uses[v.idx()] += 1;
            }
        };
        for (b, blk) in f.iter_blocks() {
            for (i, inst) in blk.insts.iter().enumerate() {
                if let Some(d) = inst.dst() {
                    def[d.idx()] = Some(DefSite::Inst { block: b, inst: i });
                }
                inst.for_each_operand(&mut count);
            }
            blk.term.for_each_operand(&mut count);
        }
        DefUse { def, uses }
    }

    /// Whether value `v` has no uses.
    pub fn is_dead(&self, v: ValueId) -> bool {
        self.uses[v.idx()] == 0
    }
}

/// Convenience bundle of all standard analyses, recomputed on demand.
pub struct FunctionAnalysis {
    /// CFG shape.
    pub cfg: Cfg,
    /// Dominator tree and frontiers.
    pub dom: DomTree,
    /// Natural loops.
    pub loops: LoopInfo,
}

impl FunctionAnalysis {
    /// Run all analyses on `f`.
    pub fn compute(f: &Function) -> FunctionAnalysis {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let loops = LoopInfo::compute(f, &cfg, &dom);
        FunctionAnalysis { cfg, dom, loops }
    }
}

/// Find the alloca instructions of `f` along with their defining sites.
pub fn allocas(f: &Function) -> Vec<(ValueId, BlockId, usize, u32)> {
    let mut out = Vec::new();
    for (b, blk) in f.iter_blocks() {
        for (i, inst) in blk.insts.iter().enumerate() {
            if let Inst::Alloca { dst, bytes } = inst {
                out.push((*dst, b, i, *bytes));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{counted_loop_mem, FunctionBuilder};
    use crate::inst::CmpOp;
    use crate::types::I64;

    fn diamond() -> Function {
        // entry -> (t | f) -> join
        let mut b = FunctionBuilder::new("d", vec![I64], Some(I64));
        let t = b.block();
        let fb = b.block();
        let j = b.block();
        let c = b.cmp(CmpOp::Sgt, b.param(0), Operand::imm64(0));
        b.cond_br(c, t, fb);
        b.switch_to(t);
        b.br(j);
        b.switch_to(fb);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(I64, vec![(t, Operand::imm64(1)), (fb, Operand::imm64(2))]);
        b.ret(Some(p));
        b.finish()
    }

    use crate::inst::Operand;

    #[test]
    fn cfg_diamond() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs[0].len(), 2);
        assert_eq!(cfg.preds[3].len(), 2);
        assert_eq!(cfg.rpo.len(), 4);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert!(cfg.reachable(BlockId(3)));
    }

    #[test]
    fn dom_diamond() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        // entry dominates everything; join's idom is entry.
        assert_eq!(dom.idom[3], Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        // t and f have join in their dominance frontier.
        assert!(dom.frontier[1].contains(&BlockId(3)));
        assert!(dom.frontier[2].contains(&BlockId(3)));
        assert!(dom.frontier[3].is_empty());
    }

    #[test]
    fn loop_detection() {
        let mut b = FunctionBuilder::new("l", vec![I64], Some(I64));
        let n = b.param(0);
        counted_loop_mem(&mut b, n, |_, _| {});
        b.ret(Some(Operand::imm64(0)));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        let li = LoopInfo::compute(&f, &cfg, &dom);
        assert_eq!(li.loops.len(), 1);
        let l = &li.loops[0];
        assert_eq!(l.header, BlockId(1)); // the check block
        assert_eq!(l.depth, 1);
        assert_eq!(l.blocks.len(), 2); // check + body
        assert_eq!(l.preheader, Some(BlockId(0)));
    }

    #[test]
    fn nested_loop_depth() {
        let mut b = FunctionBuilder::new("n", vec![I64], Some(I64));
        let n = b.param(0);
        counted_loop_mem(&mut b, n, |b, _| {
            counted_loop_mem(b, n, |_, _| {});
        });
        b.ret(Some(Operand::imm64(0)));
        let f = b.finish();
        let a = FunctionAnalysis::compute(&f);
        assert_eq!(a.loops.loops.len(), 2);
        assert_eq!(a.loops.loops[0].depth, 1);
        assert_eq!(a.loops.loops[1].depth, 2);
        // innermost mapping points at the deeper loop for inner blocks.
        let inner = &a.loops.loops[1];
        let idx = a.loops.innermost[inner.header.idx()].unwrap();
        assert_eq!(a.loops.loops[idx].header, inner.header);
    }

    #[test]
    fn defuse_counts() {
        let f = diamond();
        let du = DefUse::compute(&f);
        // param 0 used once (in the cmp)
        assert_eq!(du.uses[0], 1);
        assert_eq!(du.def[0], Some(DefSite::Param));
        // cmp result used by terminator
        assert_eq!(du.uses[1], 1);
        // phi used by ret
        assert_eq!(du.uses[2], 1);
        assert!(!du.is_dead(ValueId(2)));
    }
}
