//! # citroen-ir
//!
//! The compiler substrate of the CITROEN reproduction: a small typed register
//! IR with SSA values, an authoring [`builder`], standard [`analysis`] passes
//! (CFG, dominators, loops, def/use), a [`verify`] pass, a textual printer (the [`mod@print`] module)
//! with stable structural fingerprints, and a reference [`interp`]reter that
//! streams dynamic events into a pluggable sink.
//!
//! The optimisation passes live in `citroen-passes`; the performance model in
//! `citroen-sim`. See the workspace `DESIGN.md` for how this substitutes for
//! LLVM in the paper's pipeline.

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod inst;
pub mod interp;
pub mod link;
pub mod module;
pub mod parse;
pub mod print;
pub mod types;
pub mod verify;

pub use inst::{BinOp, BlockId, CastKind, CmpOp, FuncId, GlobalId, Inst, Operand, Term, ValueId};
pub use link::{link, LinkError};
pub use module::{Block, FnAttrs, Function, Global, GlobalInit, Module};
pub use types::{ScalarTy, Ty};
