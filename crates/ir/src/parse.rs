//! Textual IR parser: reads the format produced by [`crate::print`], so
//! modules can be dumped, hand-edited and reloaded. Round-tripping is
//! property-tested (`print(parse(print(m))) == print(m)`).

use crate::inst::{BinOp, BlockId, CastKind, CmpOp, FuncId, GlobalId, Inst, Operand, Term, ValueId};
use crate::module::{Function, GlobalInit, Module};
use crate::types::{ScalarTy, Ty};

/// A parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

type PResult<T> = Result<T, ParseError>;

fn err<T>(line: usize, msg: impl Into<String>) -> PResult<T> {
    Err(ParseError { line, msg: msg.into() })
}

fn parse_scalar(s: &str, line: usize) -> PResult<ScalarTy> {
    match s {
        "i1" => Ok(ScalarTy::I1),
        "i8" => Ok(ScalarTy::I8),
        "i16" => Ok(ScalarTy::I16),
        "i32" => Ok(ScalarTy::I32),
        "i64" => Ok(ScalarTy::I64),
        "f64" => Ok(ScalarTy::F64),
        other => err(line, format!("unknown scalar type '{other}'")),
    }
}

fn parse_ty(s: &str, line: usize) -> PResult<Ty> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('<') {
        // `<N x scalar>`
        let inner = rest.strip_suffix('>').ok_or(ParseError {
            line,
            msg: "unterminated vector type".into(),
        })?;
        let mut parts = inner.split(" x ");
        let lanes: u8 = parts
            .next()
            .and_then(|p| p.trim().parse().ok())
            .ok_or(ParseError { line, msg: "bad lane count".into() })?;
        let scalar = parse_scalar(
            parts.next().ok_or(ParseError { line, msg: "missing vector scalar".into() })?.trim(),
            line,
        )?;
        Ok(Ty::vector(scalar, lanes))
    } else {
        Ok(Ty::scalar(parse_scalar(s, line)?))
    }
}

/// Operand grammar: `%N` | `@N` | `<ity> <int>` | `f64 <float>`.
fn parse_operand(s: &str, line: usize) -> PResult<Operand> {
    let s = s.trim();
    if let Some(v) = s.strip_prefix('%') {
        let id: u32 =
            v.parse().map_err(|_| ParseError { line, msg: format!("bad value '%{v}'") })?;
        return Ok(Operand::Value(ValueId(id)));
    }
    if let Some(g) = s.strip_prefix('@') {
        let id: u32 =
            g.parse().map_err(|_| ParseError { line, msg: format!("bad global '@{g}'") })?;
        return Ok(Operand::Global(GlobalId(id)));
    }
    let mut parts = s.splitn(2, ' ');
    let ty = parts.next().unwrap_or("");
    let val = parts.next().ok_or(ParseError { line, msg: format!("bad operand '{s}'") })?;
    if ty == "f64" {
        let x: f64 =
            val.trim().parse().map_err(|_| ParseError { line, msg: format!("bad float '{val}'") })?;
        return Ok(Operand::ImmF(x));
    }
    let scalar = parse_scalar(ty, line)?;
    let v: i64 =
        val.trim().parse().map_err(|_| ParseError { line, msg: format!("bad int '{val}'") })?;
    Ok(Operand::ImmI(scalar.sext(v), scalar))
}

fn bin_op_by_name(name: &str) -> Option<BinOp> {
    use BinOp::*;
    Some(match name {
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "sdiv" => SDiv,
        "srem" => SRem,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "ashr" => AShr,
        "lshr" => LShr,
        "fadd" => FAdd,
        "fsub" => FSub,
        "fmul" => FMul,
        "fdiv" => FDiv,
        "smin" => SMin,
        "smax" => SMax,
        _ => return None,
    })
}

fn cmp_op_by_name(name: &str) -> Option<CmpOp> {
    use CmpOp::*;
    Some(match name {
        "eq" => Eq,
        "ne" => Ne,
        "slt" => Slt,
        "sle" => Sle,
        "sgt" => Sgt,
        "sge" => Sge,
        _ => return None,
    })
}

fn cast_by_name(name: &str) -> Option<CastKind> {
    Some(match name {
        "sext" => CastKind::SExt,
        "zext" => CastKind::ZExt,
        "trunc" => CastKind::Trunc,
        "sitofp" => CastKind::SiToFp,
        "fptosi" => CastKind::FpToSi,
        _ => return None,
    })
}

/// Split a comma-separated argument list at the top level (no nesting in our
/// grammar except `[bN: op]` φ entries, handled separately).
fn split_args(s: &str) -> Vec<&str> {
    s.split(',').map(|p| p.trim()).filter(|p| !p.is_empty()).collect()
}

struct FnParser<'a> {
    f: Function,
    lines: &'a [(usize, String)],
    pos: usize,
}

impl FnParser<'_> {
    fn ensure_value(&mut self, id: ValueId, ty: Ty) {
        while self.f.value_ty.len() <= id.idx() {
            self.f.value_ty.push(Ty::scalar(ScalarTy::I64));
        }
        self.f.value_ty[id.idx()] = ty;
    }

    fn ensure_block(&mut self, b: BlockId) {
        while self.f.blocks.len() <= b.idx() {
            self.f.new_block();
        }
    }
}

/// Parse the textual form produced by [`crate::print::print_module`].
pub fn parse_module(text: &str) -> PResult<Module> {
    let lines: Vec<(usize, String)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim().to_string()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let mut i = 0;
    let (ln0, first) = lines.first().ok_or(ParseError { line: 0, msg: "empty input".into() })?;
    let name = first
        .strip_prefix("module ")
        .ok_or(ParseError { line: *ln0, msg: "expected 'module <name>'".into() })?;
    let mut m = Module::new(name.trim());
    i += 1;

    // Globals: `global @N name : kind[len]` — contents are not round-tripped
    // through the printer (it prints only shapes), so parse shape + zeros.
    while i < lines.len() && lines[i].1.starts_with("global ") {
        let (ln, l) = &lines[i];
        let rest = l.strip_prefix("global ").unwrap();
        let (head, kind) = rest
            .split_once(" : ")
            .ok_or(ParseError { line: *ln, msg: "bad global line".into() })?;
        let mut parts = head.split_whitespace();
        let _id = parts.next();
        let gname = parts.next().unwrap_or("g");
        let (kname, len_s) = kind
            .split_once('[')
            .ok_or(ParseError { line: *ln, msg: "bad global kind".into() })?;
        let len: usize = len_s
            .trim_end_matches(']')
            .parse()
            .map_err(|_| ParseError { line: *ln, msg: "bad global length".into() })?;
        let init = match kname {
            "zero" => GlobalInit::Zero(len as u32),
            "i8" => GlobalInit::I8s(vec![0; len]),
            "i16" => GlobalInit::I16s(vec![0; len]),
            "i32" => GlobalInit::I32s(vec![0; len]),
            "i64" => GlobalInit::I64s(vec![0; len]),
            "f64" => GlobalInit::F64s(vec![0.0; len]),
            other => return err(*ln, format!("unknown global kind '{other}'")),
        };
        m.add_global(gname, init, true);
        i += 1;
    }

    // Functions.
    while i < lines.len() {
        let (ln, l) = &lines[i];
        let sig = l
            .strip_prefix("func @")
            .ok_or(ParseError { line: *ln, msg: format!("expected function, got '{l}'") })?;
        let open = sig.find('(').ok_or(ParseError { line: *ln, msg: "missing '('".into() })?;
        let fname = &sig[..open];
        let close =
            sig.find(')').ok_or(ParseError { line: *ln, msg: "missing ')'".into() })?;
        let params_s = &sig[open + 1..close];
        let ret_s = sig[close + 1..]
            .trim()
            .strip_prefix("->")
            .ok_or(ParseError { line: *ln, msg: "missing '->'".into() })?
            .trim()
            .trim_end_matches('{')
            .trim();
        let params: Vec<Ty> = split_args(params_s)
            .into_iter()
            .map(|p| {
                let ty_s = p.split_whitespace().next().unwrap_or(p);
                parse_ty(ty_s, *ln)
            })
            .collect::<PResult<_>>()?;
        let ret = if ret_s == "void" { None } else { Some(parse_ty(ret_s, *ln)?) };
        let mut fp = FnParser {
            f: Function::new(fname, params, ret),
            lines: &lines,
            pos: i + 1,
        };
        fp.f.blocks.clear(); // blocks come from labels
        parse_body(&mut fp)?;
        i = fp.pos;
        m.add_func(fp.f);
    }
    Ok(m)
}

fn parse_body(fp: &mut FnParser) -> PResult<()> {
    let mut cur: Option<BlockId> = None;
    while fp.pos < fp.lines.len() {
        let (ln, l) = fp.lines[fp.pos].clone();
        fp.pos += 1;
        if l == "}" {
            return Ok(());
        }
        if let Some(lbl) = l.strip_suffix(':') {
            let id: u32 = lbl
                .strip_prefix('b')
                .and_then(|x| x.parse().ok())
                .ok_or(ParseError { line: ln, msg: format!("bad label '{l}'") })?;
            let b = BlockId(id);
            fp.ensure_block(b);
            cur = Some(b);
            continue;
        }
        let b = cur.ok_or(ParseError { line: ln, msg: "instruction before label".into() })?;
        if let Some(term) = parse_term(&l, ln)? {
            fp.f.blocks[b.idx()].term = term;
            continue;
        }
        let inst = parse_inst(fp, &l, ln)?;
        fp.f.blocks[b.idx()].insts.push(inst);
    }
    err(fp.lines.last().map(|(n, _)| *n).unwrap_or(0), "missing closing '}'")
}

fn parse_term(l: &str, ln: usize) -> PResult<Option<Term>> {
    if let Some(rest) = l.strip_prefix("br b") {
        let id: u32 =
            rest.parse().map_err(|_| ParseError { line: ln, msg: "bad br target".into() })?;
        return Ok(Some(Term::Br(BlockId(id))));
    }
    if let Some(rest) = l.strip_prefix("condbr ") {
        let args = split_args(rest);
        if args.len() != 3 {
            return err(ln, "condbr needs 3 args");
        }
        let cond = parse_operand(args[0], ln)?;
        let t = parse_block_ref(args[1], ln)?;
        let f = parse_block_ref(args[2], ln)?;
        return Ok(Some(Term::CondBr { cond, t, f }));
    }
    if l == "ret" {
        return Ok(Some(Term::Ret(None)));
    }
    if let Some(rest) = l.strip_prefix("ret ") {
        return Ok(Some(Term::Ret(Some(parse_operand(rest, ln)?))));
    }
    if l == "unreachable" {
        return Ok(Some(Term::Unreachable));
    }
    Ok(None)
}

fn parse_block_ref(s: &str, ln: usize) -> PResult<BlockId> {
    s.trim()
        .strip_prefix('b')
        .and_then(|x| x.parse().ok())
        .map(BlockId)
        .ok_or(ParseError { line: ln, msg: format!("bad block ref '{s}'") })
}

fn parse_inst(fp: &mut FnParser, l: &str, ln: usize) -> PResult<Inst> {
    // `store ty, val, addr` and `call f N(...)` have no destination.
    if let Some(rest) = l.strip_prefix("store ") {
        let args = split_args(rest);
        if args.len() != 3 {
            return err(ln, "store needs 3 args");
        }
        let ty = parse_ty(args[0], ln)?;
        let val = parse_operand(args[1], ln)?;
        let addr = parse_operand(args[2], ln)?;
        return Ok(Inst::Store { ty, val, addr });
    }
    if let Some(rest) = l.strip_prefix("call f") {
        let (callee, args) = parse_call(rest, ln)?;
        return Ok(Inst::Call { dst: None, callee, args });
    }
    // `%N = ...`
    let (dst_s, rhs) =
        l.split_once(" = ").ok_or(ParseError { line: ln, msg: format!("bad inst '{l}'") })?;
    let dst = ValueId(
        dst_s
            .trim()
            .strip_prefix('%')
            .and_then(|x| x.parse().ok())
            .ok_or(ParseError { line: ln, msg: "bad destination".into() })?,
    );
    let rhs = rhs.trim();
    let (head, tail) = rhs.split_once(' ').unwrap_or((rhs, ""));

    // op.ty form: `add.i64 a, b`
    if let Some((opname, tyname)) = head.split_once('.') {
        if let Some(op) = bin_op_by_name(opname) {
            let ty = parse_ty(tyname, ln)?;
            let args = split_args(tail);
            if args.len() != 2 {
                return err(ln, "binop needs 2 args");
            }
            fp.ensure_value(dst, ty);
            return Ok(Inst::Bin {
                dst,
                op,
                lhs: parse_operand(args[0], ln)?,
                rhs: parse_operand(args[1], ln)?,
            });
        }
        if opname == "cmp" {
            let op = cmp_op_by_name(tyname)
                .ok_or(ParseError { line: ln, msg: format!("bad cmp '{tyname}'") })?;
            let args = split_args(tail);
            fp.ensure_value(dst, Ty::scalar(ScalarTy::I1));
            return Ok(Inst::Cmp {
                dst,
                op,
                lhs: parse_operand(args[0], ln)?,
                rhs: parse_operand(args[1], ln)?,
            });
        }
        if opname == "reduce" {
            let op = bin_op_by_name(tyname)
                .ok_or(ParseError { line: ln, msg: format!("bad reduce '{tyname}'") })?;
            let src = parse_operand(tail, ln)?;
            fp.ensure_value(dst, Ty::scalar(ScalarTy::I64));
            return Ok(Inst::Reduce { dst, op, src });
        }
    }
    match head {
        "alloca" => {
            let bytes: u32 = tail
                .trim()
                .parse()
                .map_err(|_| ParseError { line: ln, msg: "bad alloca size".into() })?;
            fp.ensure_value(dst, Ty::scalar(ScalarTy::I64));
            Ok(Inst::Alloca { dst, bytes })
        }
        "load" => {
            let args = split_args(tail);
            if args.len() != 2 {
                return err(ln, "load needs 2 args");
            }
            let ty = parse_ty(args[0], ln)?;
            fp.ensure_value(dst, ty);
            Ok(Inst::Load { dst, addr: parse_operand(args[1], ln)? })
        }
        "phi" => {
            // `phi ty [bN: op], [bM: op]`
            let (ty_s, rest) = tail
                .split_once('[')
                .ok_or(ParseError { line: ln, msg: "bad phi".into() })?;
            let ty = parse_ty(ty_s.trim(), ln)?;
            fp.ensure_value(dst, ty);
            let mut incoming = Vec::new();
            for entry in rest.split('[') {
                let entry = entry.trim().trim_end_matches(',').trim();
                let entry = entry.trim_end_matches(']');
                if entry.is_empty() {
                    continue;
                }
                let (b_s, op_s) = entry
                    .split_once(':')
                    .ok_or(ParseError { line: ln, msg: "bad phi entry".into() })?;
                incoming.push((parse_block_ref(b_s, ln)?, parse_operand(op_s, ln)?));
            }
            Ok(Inst::Phi { dst, incoming })
        }
        "select" => {
            let args = split_args(tail);
            if args.len() != 3 {
                return err(ln, "select needs 3 args");
            }
            // Result type is the type of the true operand when it's a value;
            // default i64 for constants (refined by the verifier's users).
            fp.ensure_value(dst, Ty::scalar(ScalarTy::I64));
            Ok(Inst::Select {
                dst,
                cond: parse_operand(args[0], ln)?,
                t: parse_operand(args[1], ln)?,
                f: parse_operand(args[2], ln)?,
            })
        }
        "splat" => {
            let (ty_s, src_s) = tail
                .trim()
                .split_once(' ')
                .ok_or(ParseError { line: ln, msg: "bad splat".into() })?;
            let ty = parse_ty(ty_s, ln)?;
            fp.ensure_value(dst, ty);
            Ok(Inst::Splat { dst, src: parse_operand(src_s, ln)? })
        }
        "extractlane" => {
            let args = split_args(tail);
            if args.len() != 2 {
                return err(ln, "extractlane needs 2 args");
            }
            let lane: u8 = args[1]
                .parse()
                .map_err(|_| ParseError { line: ln, msg: "bad lane".into() })?;
            fp.ensure_value(dst, Ty::scalar(ScalarTy::I64));
            Ok(Inst::ExtractLane { dst, src: parse_operand(args[0], ln)?, lane })
        }
        "call" => {
            let rest = tail
                .trim()
                .strip_prefix('f')
                .ok_or(ParseError { line: ln, msg: "bad call".into() })?;
            let (callee, args) = parse_call(rest, ln)?;
            fp.ensure_value(dst, Ty::scalar(ScalarTy::I64));
            Ok(Inst::Call { dst: Some(dst), callee, args })
        }
        other => {
            if let Some(kind) = cast_by_name(other) {
                // `sext %a to i32`
                let (src_s, to_s) = tail
                    .split_once(" to ")
                    .ok_or(ParseError { line: ln, msg: "bad cast".into() })?;
                let to = parse_ty(to_s.trim(), ln)?;
                fp.ensure_value(dst, to);
                Ok(Inst::Cast { dst, kind, src: parse_operand(src_s, ln)? })
            } else {
                err(ln, format!("unknown instruction '{head}'"))
            }
        }
    }
}

fn parse_call(rest: &str, ln: usize) -> PResult<(FuncId, Vec<Operand>)> {
    let open = rest.find('(').ok_or(ParseError { line: ln, msg: "call missing '('".into() })?;
    let id: u32 = rest[..open]
        .trim()
        .parse()
        .map_err(|_| ParseError { line: ln, msg: "bad callee".into() })?;
    let inner = rest[open + 1..]
        .strip_suffix(')')
        .ok_or(ParseError { line: ln, msg: "call missing ')'".into() })?;
    let args = split_args(inner)
        .into_iter()
        .map(|a| parse_operand(a, ln))
        .collect::<PResult<Vec<_>>>()?;
    Ok((FuncId(id), args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{counted_loop_mem, FunctionBuilder};
    use crate::print::print_module;

    fn sample() -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("a", GlobalInit::I32s(vec![0; 8]), true);
        let mut b = FunctionBuilder::new("f", vec![Ty::scalar(ScalarTy::I64)], Some(Ty::scalar(ScalarTy::I64)));
        let n = b.param(0);
        let acc = b.alloca(8);
        b.store(Ty::scalar(ScalarTy::I64), Operand::imm64(0), acc);
        counted_loop_mem(&mut b, n, |b, iv| {
            let a = b.gep(Operand::Global(g), iv, 4);
            let x = b.load(Ty::scalar(ScalarTy::I32), a);
            let w = b.cast(CastKind::SExt, Ty::scalar(ScalarTy::I64), x);
            let c = b.load(Ty::scalar(ScalarTy::I64), acc);
            let s = b.bin(BinOp::Add, Ty::scalar(ScalarTy::I64), c, w);
            b.store(Ty::scalar(ScalarTy::I64), s, acc);
        });
        let r = b.load(Ty::scalar(ScalarTy::I64), acc);
        b.ret(Some(r));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn print_parse_print_roundtrips() {
        let m = sample();
        let p1 = print_module(&m);
        let parsed = parse_module(&p1).unwrap_or_else(|e| panic!("parse failed: {e}\n{p1}"));
        let p2 = print_module(&parsed);
        assert_eq!(p1, p2, "print→parse→print must be a fixpoint");
        crate::verify::assert_valid(&parsed);
    }

    #[test]
    fn parsed_module_runs_identically_modulo_global_data() {
        // The printer doesn't serialise global *contents*, so compare a
        // module with zeroed globals.
        let mut m = sample();
        m.globals[0].init = GlobalInit::I32s(vec![0; 8]);
        let parsed = parse_module(&print_module(&m)).unwrap();
        let a = crate::interp::run_counting(&m, FuncId(0), &[crate::interp::Value::I(8)]).unwrap().0;
        let b = crate::interp::run_counting(&parsed, FuncId(0), &[crate::interp::Value::I(8)])
            .unwrap()
            .0;
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "module m\nfunc @f() -> i64 {\nb0:\n  %0 = bogus 1, 2\n  ret %0\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_module("").is_err());
        assert!(parse_module("not a module").is_err());
        assert!(parse_module("module m\nfunc @f() -> i64 {\nb0:\n  ret\n").is_err()); // no '}'
    }
}
