//! Budget-convergence probe: how CITROEN's best-found speedup grows with the
//! measurement budget on three kernels (the underlying data of Fig. 5.7).
//!
//! ```sh
//! cargo run --release -p citroen-core --example budget_sweep
//! ```

use citroen_core::{run_citroen, CitroenConfig, Task, TaskConfig};
use citroen_passes::Registry;
use citroen_sim::Platform;

fn main() {
    for name in ["telecom_gsm", "consumer_jpeg_dct", "automotive_bitcount"] {
        let bench = citroen_suite::cbench()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        let mut task = Task::new(
            bench,
            Registry::full(),
            Platform::tx2(),
            TaskConfig { seq_len: 24, seed: 1, ..Default::default() },
        );
        let (trace, _) = run_citroen(&mut task, 100, &CitroenConfig { seed: 1, ..Default::default() });
        print!("{name:<22}");
        for checkpoint in [20usize, 40, 60, 80, 100] {
            print!("  @{checkpoint}: {:.3}x", task.speedup(trace.best_at(checkpoint)));
        }
        println!();
    }
}
