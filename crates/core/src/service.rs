//! Multi-tenant session plumbing for the `citroen-serve` daemon: the shared
//! state a long-running service amortises across tuning jobs, and the
//! control surface (cancel / deadline) a job lifecycle needs.
//!
//! The determinism contract that makes sharing safe: compilation is a *pure*
//! function of (source module, canonical pass sequence) — `PassManager`
//! threads no RNG and reads no globals — so a cross-tenant cache keyed by
//! (source-module fingerprint, canonical genome) returns exactly the bytes
//! the tenant would have computed locally. A session run against a pre-warmed
//! [`SharedCompileCache`] therefore produces a tuning trajectory (runtimes,
//! best history, best sequences) bit-identical to a cold standalone run at
//! the same seed; only the compile *counters* and wall-clock differ. The
//! serve smoke gate (`citroen-serve bench`) and
//! `crates/core/tests` assert this with [`trace_digest`].

use crate::cache::{BoundedCache, EvictionPolicy};
use crate::citroen::ImpactReport;
use crate::task::TuneTrace;
use citroen_ir::module::Module;
use citroen_passes::oracle::InteractionGraph;
use citroen_passes::Stats;
use citroen_rt::par::WorkerPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Shared compile cache
// ---------------------------------------------------------------------------

/// A snapshot of the shared cache's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Of those, hits on an entry a *different* tenant inserted — the
    /// cross-tenant amortisation the daemon exists for.
    pub cross_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted (LRU).
    pub evictions: u64,
    /// Current entry count.
    pub len: u64,
}

/// The cross-tenant compile cache: (source-module fingerprint, canonical
/// genome) → (owner tenant, compile result). LRU-evicting ([`BoundedCache`]
/// with [`EvictionPolicy::Lru`]): a popular module's canonical genomes keep
/// getting hit by new tenants and must not age out on insertion order.
///
/// Entries hold a full optimised [`Module`] clone, so the capacity bound is
/// load-bearing — size it like the per-session cache (~thousands), not like
/// a string cache.
pub struct SharedCompileCache {
    inner: Mutex<SharedCacheInner>,
}

struct SharedCacheInner {
    cache: BoundedCache<(u64, Vec<u16>), CacheEntry>,
    cross_hits: u64,
    insertions: u64,
}

struct CacheEntry {
    owner: u64,
    stats: Stats,
    fingerprint: u64,
    module: Module,
}

impl SharedCompileCache {
    /// An empty cache holding at most `cap` entries (`0` = unbounded).
    pub fn new(cap: usize) -> SharedCompileCache {
        SharedCompileCache {
            inner: Mutex::new(SharedCacheInner {
                cache: BoundedCache::with_policy(cap, EvictionPolicy::Lru),
                cross_hits: 0,
                insertions: 0,
            }),
        }
    }

    /// Look up a compile result for `tenant`. A hit on another tenant's
    /// entry counts towards [`SharedCacheStats::cross_hits`].
    pub fn get(
        &self,
        src_fp: u64,
        genome: &[u16],
        tenant: u64,
    ) -> Option<(Stats, u64, Module)> {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.cache.get(&(src_fp, genome.to_vec()))?;
        let owner = entry.owner;
        let out = (entry.stats.clone(), entry.fingerprint, entry.module.clone());
        if owner != tenant {
            inner.cross_hits += 1;
        }
        Some(out)
    }

    /// Publish `tenant`'s compile result. First writer wins: re-inserting an
    /// existing key is skipped entirely so the original owner attribution
    /// (and the entry's LRU position) survive concurrent racers.
    pub fn insert(
        &self,
        src_fp: u64,
        genome: Vec<u16>,
        tenant: u64,
        stats: Stats,
        fingerprint: u64,
        module: Module,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let key = (src_fp, genome);
        if inner.cache.peek(&key).is_some() {
            return;
        }
        inner.cache.insert(key, CacheEntry { owner: tenant, stats, fingerprint, module });
        inner.insertions += 1;
    }

    /// Lifetime counters (hits/misses come from the underlying
    /// [`BoundedCache`]; cross-tenant hits and insertions are tracked here).
    pub fn stats(&self) -> SharedCacheStats {
        let inner = self.inner.lock().unwrap();
        SharedCacheStats {
            hits: inner.cache.hits(),
            cross_hits: inner.cross_hits,
            misses: inner.cache.misses(),
            insertions: inner.insertions,
            evictions: inner.cache.evictions(),
            len: inner.cache.len() as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Session control
// ---------------------------------------------------------------------------

/// How a tuning session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionExit {
    /// Ran its full budget (or exhausted the search space).
    Completed,
    /// Stopped early by a cancel request.
    Cancelled,
    /// Stopped early by its deadline.
    TimedOut,
}

/// Per-session control block: tenant identity plus the cancel flag and
/// deadline the tuning loop polls between iterations. Cheap to clone — the
/// cancel flag is shared, so a clone held by the server cancels the session
/// holding the original.
#[derive(Clone, Default)]
pub struct SessionCtl {
    /// Tenant id, used for cross-tenant cache-hit attribution.
    pub tenant: u64,
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl SessionCtl {
    /// A control block for `tenant` with no deadline.
    pub fn new(tenant: u64) -> SessionCtl {
        SessionCtl { tenant, cancel: Arc::new(AtomicBool::new(false)), deadline: None }
    }

    /// This control block with an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> SessionCtl {
        self.deadline = Some(deadline);
        self
    }

    /// Request cancellation; the session observes it at its next poll.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Why the session must stop now, if it must. Checked by the tuning loop
    /// at iteration boundaries (a few ms apart), so cancellation latency is
    /// one iteration, not one job.
    pub fn interrupted(&self) -> Option<SessionExit> {
        if self.cancel.load(Ordering::SeqCst) {
            return Some(SessionExit::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(SessionExit::TimedOut);
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Session environment and result
// ---------------------------------------------------------------------------

/// Everything a daemon shares *into* a tuning session. The default (all
/// `None`, inert ctl) reproduces a standalone `run_citroen` exactly — the
/// legacy entry point is a thin wrapper over this.
#[derive(Clone, Default)]
pub struct SessionEnv {
    /// Cross-tenant compile cache, consulted before compiling any canonical
    /// genome and fed every local compile. `None` = sessions don't share.
    pub shared_cache: Option<Arc<SharedCompileCache>>,
    /// A pre-loaded interaction graph (the `citroen-analyze oracle --json`
    /// artifact), loaded once by the daemon; takes precedence over the
    /// per-session `CitroenConfig::oracle_graph` file path.
    pub graph: Option<Arc<InteractionGraph>>,
    /// A shared worker pool for the batched (`batch > 1`) loop. `None` =
    /// the session spawns its own, as standalone runs always did.
    pub pool: Option<Arc<WorkerPool>>,
    /// Cancel / deadline / tenant identity.
    pub ctl: SessionCtl,
}

/// What a session hands back to the daemon.
pub struct SessionResult {
    /// The tuning trace (runtimes, best history, best sequences).
    pub trace: TuneTrace,
    /// The ARD impact report.
    pub report: ImpactReport,
    /// How the session ended.
    pub exit: SessionExit,
}

/// A deterministic 64-bit digest of a tuning trajectory: every noisy
/// runtime (bit pattern), the best-history curve, the best sequences, and
/// the coverage-drop count. Two runs are "bit-identical" for the service
/// gates iff their digests match — f64s are hashed via [`f64::to_bits`], so
/// there is no epsilon anywhere.
pub fn trace_digest(trace: &TuneTrace) -> u64 {
    // FNV-1a, the same construction the IR fingerprinter uses.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    mix(trace.runtimes.len() as u64);
    for r in &trace.runtimes {
        mix(r.to_bits());
    }
    for b in &trace.best_history {
        mix(b.to_bits());
    }
    mix(trace.best_seqs.len() as u64);
    for seq in &trace.best_seqs {
        mix(seq.len() as u64);
        for p in seq {
            mix(p.0 as u64);
        }
    }
    mix(trace.coverage_dropped as u64);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_passes::PassId;

    fn entry(v: u64) -> (Stats, u64, Module) {
        let mut s = Stats::new();
        s.inc("gvn", "eliminated", v);
        (s, v, Module::default())
    }

    #[test]
    fn shared_cache_attributes_cross_tenant_hits() {
        let c = SharedCompileCache::new(8);
        let (s, fp, m) = entry(3);
        assert!(c.get(1, &[1, 2], 7).is_none());
        c.insert(1, vec![1, 2], 7, s, fp, m);
        // Same tenant: a hit, but not a cross hit.
        let (got, got_fp, _) = c.get(1, &[1, 2], 7).unwrap();
        assert_eq!(got_fp, 3);
        assert_eq!(got.keys(), vec!["gvn.eliminated".to_string()]);
        // Different tenant: cross hit.
        assert!(c.get(1, &[1, 2], 8).is_some());
        // Different source module: miss even with the same genome.
        assert!(c.get(2, &[1, 2], 7).is_none());
        let st = c.stats();
        assert_eq!((st.hits, st.cross_hits, st.misses), (2, 1, 2));
        assert_eq!((st.insertions, st.len), (1, 1));
    }

    #[test]
    fn shared_cache_first_writer_keeps_ownership() {
        let c = SharedCompileCache::new(8);
        let (s, fp, m) = entry(1);
        c.insert(1, vec![5], 7, s, fp, m);
        let (s2, fp2, m2) = entry(2);
        c.insert(1, vec![5], 8, s2, fp2, m2);
        // Tenant 7 still owns the entry (and its payload): 8's insert was
        // dropped, so 8 reading it is a cross hit and sees 7's value.
        let (_, got_fp, _) = c.get(1, &[5], 8).unwrap();
        assert_eq!(got_fp, 1);
        assert_eq!(c.stats().cross_hits, 1);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn session_ctl_cancel_and_deadline() {
        let ctl = SessionCtl::new(3);
        assert_eq!(ctl.interrupted(), None);
        let handle = ctl.clone();
        handle.cancel();
        assert_eq!(ctl.interrupted(), Some(SessionExit::Cancelled));

        let expired = SessionCtl::new(4).with_deadline(Instant::now());
        assert_eq!(expired.interrupted(), Some(SessionExit::TimedOut));
        // Cancel outranks deadline (it is checked first).
        expired.cancel();
        assert_eq!(expired.interrupted(), Some(SessionExit::Cancelled));
    }

    #[test]
    fn trace_digest_is_sensitive_and_stable() {
        let mut a = TuneTrace::default();
        a.record(2.0, vec![vec![PassId(1)]]);
        a.record(1.5, vec![vec![PassId(2)]]);
        let mut b = TuneTrace::default();
        b.record(2.0, vec![vec![PassId(1)]]);
        b.record(1.5, vec![vec![PassId(2)]]);
        assert_eq!(trace_digest(&a), trace_digest(&b));
        // One ULP of runtime difference flips the digest.
        let mut c = TuneTrace::default();
        c.record(2.0, vec![vec![PassId(1)]]);
        c.record(f64::from_bits(1.5f64.to_bits() + 1), vec![vec![PassId(2)]]);
        assert_ne!(trace_digest(&a), trace_digest(&c));
        // A different best sequence flips it too.
        let mut d = TuneTrace::default();
        d.record(2.0, vec![vec![PassId(1)]]);
        d.record(1.5, vec![vec![PassId(3)]]);
        assert_ne!(trace_digest(&a), trace_digest(&d));
    }
}
