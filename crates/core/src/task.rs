//! The autotuning task abstraction (paper §5.3.6): wraps a benchmark, a
//! platform and a pass registry into the two operations every tuner needs —
//! *compile* (cheap, yields compilation statistics and a binary fingerprint)
//! and *measure* (expensive, counts against the runtime-measurement budget).
//!
//! Measurements are guarded by differential testing (§5.4.1) and deduplicated
//! by binary fingerprint (identical binaries reuse the cached runtime without
//! consuming budget — the Kulkarni-style redundancy pruning CITROEN's
//! coverage handling builds on).

use citroen_ir::interp::Value;
use citroen_ir::module::Module;
use citroen_passes::{o3_pipeline, PassId, PassManager, Registry, Stats};
use citroen_sim::Platform;
use citroen_suite::Benchmark;
use citroen_rt::rng::StdRng;
use citroen_rt::rng::SeedableRng;
use citroen_telemetry as telemetry;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Task configuration.
#[derive(Debug, Clone)]
pub struct TaskConfig {
    /// Pass-sequence length (the paper uses 120; we default to 32 so the
    /// default experiment suite runs in minutes — still a ~10⁴⁹ space).
    pub seq_len: usize,
    /// Runtime measurements per evaluation, averaged (paper: 3).
    pub reps: u32,
    /// Random seed for measurement noise.
    pub seed: u64,
    /// Enforce differential testing on every measured binary.
    pub differential_testing: bool,
}

impl Default for TaskConfig {
    fn default() -> TaskConfig {
        TaskConfig { seq_len: 32, reps: 3, seed: 0, differential_testing: true }
    }
}

/// Wall-time breakdown of a tuning run (Fig. 5.12's categories).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeBreakdown {
    /// Compiling candidates + collecting statistics.
    pub compile: Duration,
    /// Executing binaries for runtime measurements (the profiling cost).
    pub measure: Duration,
    /// Everything else (surrogate model, acquisition — "algorithmic").
    pub model: Duration,
}

/// Error cases surfaced by the task.
#[derive(Debug)]
pub enum TuneError {
    /// The optimised binary behaved differently from the reference.
    DifferentialMismatch {
        /// Pass sequence (per hot module) that produced the bad binary.
        seqs: Vec<Vec<PassId>>,
    },
    /// The binary trapped at runtime.
    Trap(citroen_ir::interp::Trap),
}

/// A phase-ordering autotuning task over one benchmark.
pub struct Task {
    /// The pass registry in play.
    pub registry: Registry,
    /// Evaluation platform.
    pub platform: Platform,
    bench: Benchmark,
    cfg: TaskConfig,
    /// Indices of the modules being tuned (hot modules); all others are
    /// compiled at `-O3`.
    pub hot_modules: Vec<usize>,
    /// `-O3` modules for the cold part (and the baseline).
    o3_modules: Vec<Module>,
    /// Reference output (from the unoptimised sources).
    reference: (Option<Value>, u64),
    /// Baseline `-O3` runtime in (noise-free) seconds.
    pub o3_seconds: f64,
    /// Baseline `-O0` runtime in seconds (for sanity reporting).
    pub o0_seconds: f64,
    /// Cache: binary fingerprint → noise-free seconds.
    runtime_cache: HashMap<u64, f64>,
    rng: StdRng,
    /// Number of budget-consuming measurements so far.
    pub measurements: usize,
    /// Number of compilations so far.
    pub compilations: usize,
    /// Passes executed across all compilations so far — the compile *work*
    /// figure. Unlike `compilations`, this credits the sequence
    /// canonicalizer for shortening a genome even when the shortened form
    /// still has to be compiled.
    pub passes_executed: usize,
    /// Number of measure requests answered from the fingerprint cache.
    pub cache_hits: usize,
    /// Charge cached (duplicate-binary) measurements against the budget.
    /// Off by default (Kulkarni-style redundancy pruning); the coverage
    /// ablation turns it on so duplicated candidates genuinely waste budget,
    /// as they would without the dedup machinery (Table 5.2).
    pub charge_cached: bool,
    /// Wall-time breakdown.
    pub times: TimeBreakdown,
}

impl Task {
    /// Build a task: profile hot modules on the `-O3` build, cache baselines.
    pub fn new(bench: Benchmark, registry: Registry, platform: Platform, cfg: TaskConfig) -> Task {
        let _span = telemetry::span("task.setup");
        let pm = PassManager::new(&registry);
        let o3 = o3_pipeline(&registry);
        let o3_modules: Vec<Module> =
            bench.modules.iter().map(|m| pm.compile(m, &o3).module).collect();

        // Reference behaviour from the unoptimised build.
        let linked0 = bench.link();
        let entry0 = bench.entry_in(&linked0);
        let exec0 = platform
            .execute(&linked0, entry0, &bench.args)
            .unwrap_or_else(|t| panic!("{}: reference run trapped: {t}", bench.name));
        let reference = (exec0.output.ret, exec0.output.mem_digest);
        let o0_seconds = exec0.seconds;

        let linked3 = bench.link_with(Some(&o3_modules));
        let entry3 = bench.entry_in(&linked3);
        let exec3 = platform
            .execute(&linked3, entry3, &bench.args)
            .unwrap_or_else(|t| panic!("{}: -O3 run trapped: {t}", bench.name));
        assert_eq!(
            (exec3.output.ret, exec3.output.mem_digest),
            reference,
            "{}: -O3 build fails differential testing",
            bench.name
        );
        let o3_seconds = exec3.seconds;

        // Hot modules: perf-style profile of the -O3 build (§5.3.1).
        let prof =
            citroen_suite::profile::profile_modules(&bench, Some(&o3_modules), &platform, 0.9);
        let hot_modules = prof.hot.clone();

        Task {
            registry,
            platform,
            bench,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            hot_modules,
            o3_modules,
            reference,
            o3_seconds,
            o0_seconds,
            runtime_cache: HashMap::new(),
            measurements: 0,
            compilations: 0,
            passes_executed: 0,
            cache_hits: 0,
            charge_cached: false,
            times: TimeBreakdown::default(),
        }
    }

    /// Convenience: single hot module (the common cBench case).
    pub fn hot(&self) -> usize {
        self.hot_modules[0]
    }

    /// The benchmark under tuning.
    pub fn benchmark(&self) -> &Benchmark {
        &self.bench
    }

    /// The configured sequence length.
    pub fn seq_len(&self) -> usize {
        self.cfg.seq_len
    }

    /// Compile one hot module with `seq` (cheap; does not consume budget).
    /// Returns the per-module compilation statistics and the fingerprint of
    /// the *whole linked program* with the remaining modules at `-O3`.
    pub fn compile_hot(&mut self, module_idx: usize, seq: &[PassId]) -> (Stats, u64, Module) {
        let _span = telemetry::span("compile");
        let t0 = Instant::now();
        let out = self.compile_hot_pure(module_idx, seq);
        self.note_compilations(1, t0.elapsed());
        self.passes_executed += seq.len();
        out
    }

    /// The side-effect-free half of [`Task::compile_hot`]: compiles through a
    /// shared reference (so worker threads can run it concurrently) and emits
    /// the `task.compilations` counter, but touches no task accounting. The
    /// caller charges the work afterwards with [`Task::note_compilations`];
    /// span attribution is the caller's job too (the batched tuner opens a
    /// per-candidate `compile` span on the worker).
    pub fn compile_hot_pure(&self, module_idx: usize, seq: &[PassId]) -> (Stats, u64, Module) {
        let pm = PassManager::new(&self.registry);
        let res = pm.compile(&self.bench.modules[module_idx], seq);
        telemetry::counter("task.compilations", 1);
        (res.stats, res.fingerprint, res.module)
    }

    /// Charge `n` compilations totalling `elapsed` of wall time against the
    /// task — the sequential bookkeeping half of [`Task::compile_hot_pure`].
    pub fn note_compilations(&mut self, n: usize, elapsed: Duration) {
        self.compilations += n;
        self.times.compile += elapsed;
    }

    /// Assemble the full program with the given per-hot-module optimised
    /// modules (cold modules at `-O3`) and return its linked fingerprint.
    pub fn assemble(&self, optimised_hot: &[(usize, &Module)]) -> (Module, u64) {
        let _span = telemetry::span("link");
        let mut mods = self.o3_modules.clone();
        for (idx, m) in optimised_hot {
            mods[*idx] = (*m).clone();
        }
        let linked = self.bench.link_with(Some(&mods));
        let fp = citroen_ir::print::fingerprint(&linked);
        (linked, fp)
    }

    /// Measure a fully-assembled program. Consumes one budget unit unless
    /// the fingerprint was measured before. Returns noisy averaged seconds.
    pub fn measure_linked(&mut self, linked: &Module, fp: u64) -> Result<f64, TuneError> {
        let _span = telemetry::span("measure");
        if self.runtime_cache.contains_key(&fp) {
            return self.admit_execution(fp, None);
        }
        let outcome = self.execute_linked_pure(linked);
        self.admit_execution(fp, Some(outcome))
    }

    /// Noise-free runtime for a fingerprint measured earlier, if any.
    pub fn cached_runtime(&self, fp: u64) -> Option<f64> {
        self.runtime_cache.get(&fp).copied()
    }

    /// The side-effect-free half of [`Task::measure_linked`]: execute an
    /// assembled program and differential-test it through a shared reference
    /// (worker-thread safe). Touches no budget, cache, RNG, or counters —
    /// admit the outcome sequentially with [`Task::admit_execution`]. Both
    /// arms carry the execution wall time so admission can charge it.
    pub fn execute_linked_pure(
        &self,
        linked: &Module,
    ) -> Result<(f64, Duration), (TuneError, Duration)> {
        let t0 = Instant::now();
        let entry = self.bench.entry_in(linked);
        let exec = match self.platform.execute(linked, entry, &self.bench.args) {
            Ok(e) => e,
            Err(t) => return Err((TuneError::Trap(t), t0.elapsed())),
        };
        if self.cfg.differential_testing
            && (exec.output.ret, exec.output.mem_digest) != self.reference
        {
            return Err((TuneError::DifferentialMismatch { seqs: Vec::new() }, t0.elapsed()));
        }
        Ok((exec.seconds, t0.elapsed()))
    }

    /// Sequentially admit one execution outcome (or answer it from the
    /// fingerprint cache when `executed` is `None` or the fingerprint raced
    /// into the cache earlier in the same batch): updates budget accounting
    /// and the runtime cache, then draws the measurement noise from the task
    /// RNG. Admission order defines the noise stream, so the batched tuner
    /// admits strictly in batch order to stay deterministic.
    pub fn admit_execution(
        &mut self,
        fp: u64,
        executed: Option<Result<(f64, Duration), (TuneError, Duration)>>,
    ) -> Result<f64, TuneError> {
        if let Some(&base) = self.runtime_cache.get(&fp) {
            self.cache_hits += 1;
            telemetry::counter("task.cache_hits", 1);
            if self.charge_cached {
                self.measurements += 1;
            }
            // Cached binaries are not re-run, but we still return a noisy
            // observation of the cached ground truth.
            return Ok(self.noisy(base));
        }
        match executed.expect("uncached fingerprint needs an execution outcome") {
            Ok((seconds, elapsed)) => {
                self.runtime_cache.insert(fp, seconds);
                self.measurements += 1;
                telemetry::counter("task.measurements", 1);
                let t = self.noisy(seconds);
                self.times.measure += elapsed;
                Ok(t)
            }
            // Mirror the historical accounting exactly: a differential
            // mismatch charges its execution time, a trap does not (the
            // execute bailed before producing a comparable run).
            Err((e @ TuneError::DifferentialMismatch { .. }, elapsed)) => {
                self.times.measure += elapsed;
                Err(e)
            }
            Err((e, _)) => Err(e),
        }
    }

    fn noisy(&mut self, seconds: f64) -> f64 {
        let mut total = 0.0;
        for _ in 0..self.cfg.reps {
            let z = citroen_sim::sample_standard_normal(&mut self.rng);
            total += seconds * (self.platform.noise_sigma * z).exp();
        }
        total / self.cfg.reps as f64
    }

    /// Compile + link + measure a single-hot-module candidate sequence.
    pub fn measure_seq(&mut self, seq: &[PassId]) -> Result<f64, TuneError> {
        let hot = self.hot();
        let (_, _, module) = self.compile_hot(hot, seq);
        let (linked, fp) = self.assemble(&[(hot, &module)]);
        self.measure_linked(&linked, fp)
    }

    /// Speedup of a measured runtime relative to `-O3`.
    pub fn speedup(&self, seconds: f64) -> f64 {
        self.o3_seconds / seconds
    }

    /// Fingerprint of the *source* (unoptimised) module at `module_idx` —
    /// the module-identity half of the cross-tenant compile-cache key.
    pub fn source_fingerprint(&self, module_idx: usize) -> u64 {
        citroen_ir::print::fingerprint(&self.bench.modules[module_idx])
    }

    /// The task's statistics-space descriptor for GRACE-style transfer: the
    /// compilation statistics of the hot module under the canonical `-O3`
    /// pipeline, as name-sorted `(name, value)` pairs. Deterministic and
    /// side-effect free (no budget, no compile accounting) — it describes
    /// the *program*, not the search.
    pub fn stats_descriptor(&self) -> Vec<(String, f64)> {
        let pm = PassManager::new(&self.registry);
        let res = pm.compile(&self.bench.modules[self.hot()], &o3_pipeline(&self.registry));
        let mut v: Vec<(String, f64)> =
            res.stats.iter().map(|(p, s, n)| (format!("{p}.{s}"), n as f64)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Account model/acquisition time (tuners call this around their own work).
    pub fn add_model_time(&mut self, d: Duration) {
        self.times.model += d;
    }
}

/// A tuning trace shared by every tuner (baselines and CITROEN).
#[derive(Debug, Clone, Default)]
pub struct TuneTrace {
    /// Noisy runtime per budget-consuming measurement, in order.
    pub runtimes: Vec<f64>,
    /// Best (lowest) noisy runtime so far, per measurement.
    pub best_history: Vec<f64>,
    /// The best sequence found (per hot module).
    pub best_seqs: Vec<Vec<PassId>>,
    /// Candidates discarded by coverage filtering (Table 5.2).
    pub coverage_dropped: usize,
    /// Candidates generated in total.
    pub candidates_generated: usize,
    /// Task compile count as of each budget-consuming measurement —
    /// `compiles_history[i]` is how many compilations it took to reach
    /// `best_history[i]`. Populated by `run_citroen` (simpler tuners leave
    /// it empty); the transfer warm-start gate reads it to assert that a
    /// warm-started run reaches a target runtime with fewer compiles.
    pub compiles_history: Vec<usize>,
}

impl TuneTrace {
    /// Record a measurement.
    pub fn record(&mut self, runtime: f64, seqs: Vec<Vec<PassId>>) {
        let better = self.best_history.last().map(|b| runtime < *b).unwrap_or(true);
        self.runtimes.push(runtime);
        if better {
            self.best_seqs = seqs;
        }
        let best = self.best_history.last().copied().unwrap_or(f64::INFINITY).min(runtime);
        self.best_history.push(best);
    }

    /// Best runtime found.
    pub fn best(&self) -> f64 {
        self.best_history.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Compilations consumed up to the first measurement whose best-so-far
    /// runtime is at or below `target`. `None` when the run never reached
    /// `target`, or when the tuner didn't populate `compiles_history`.
    pub fn compiles_to_reach(&self, target: f64) -> Option<usize> {
        let i = self.best_history.iter().position(|&b| b <= target)?;
        self.compiles_history.get(i).copied()
    }

    /// Best-so-far runtime after `n` measurements (∞ if not reached).
    pub fn best_at(&self, n: usize) -> f64 {
        if n == 0 {
            return f64::INFINITY;
        }
        self.best_history.get(n.min(self.best_history.len()) - 1).copied().unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_task() -> Task {
        Task::new(
            citroen_suite::kernels::telecom_gsm(),
            Registry::full(),
            Platform::tx2(),
            TaskConfig::default(),
        )
    }

    #[test]
    fn o3_beats_o0_and_reference_checks() {
        let t = small_task();
        assert!(t.o3_seconds < t.o0_seconds, "O3 {} vs O0 {}", t.o3_seconds, t.o0_seconds);
        assert_eq!(t.hot_modules, vec![0]);
    }

    #[test]
    fn measure_counts_budget_and_caches() {
        let mut t = small_task();
        let o3 = o3_pipeline(&t.registry);
        let r1 = t.measure_seq(&o3).unwrap();
        assert_eq!(t.measurements, 1);
        // Same sequence → same binary → cache hit, no new measurement.
        let r2 = t.measure_seq(&o3).unwrap();
        assert_eq!(t.measurements, 1);
        assert_eq!(t.cache_hits, 1);
        // Both are near the baseline O3 seconds.
        for r in [r1, r2] {
            assert!((r / t.o3_seconds - 1.0).abs() < 0.05, "{r} vs {}", t.o3_seconds);
        }
        assert!(t.compilations >= 2);
        assert!(t.times.compile > Duration::ZERO);
        assert!(t.times.measure > Duration::ZERO);
    }

    #[test]
    fn differential_testing_passes_for_valid_seqs() {
        let mut t = small_task();
        let seq = t.registry.parse_seq("mem2reg,instcombine,gvn,simplifycfg").unwrap();
        let r = t.measure_seq(&seq).unwrap();
        assert!(r > 0.0);
    }

    #[test]
    fn trace_bookkeeping() {
        let mut tr = TuneTrace::default();
        tr.record(2.0, vec![vec![]]);
        tr.record(1.0, vec![vec![PassId(1)]]);
        tr.record(1.5, vec![vec![]]);
        assert_eq!(tr.best(), 1.0);
        assert_eq!(tr.best_at(1), 2.0);
        assert_eq!(tr.best_at(3), 1.0);
        assert_eq!(tr.best_seqs, vec![vec![PassId(1)]]);
    }
}
