//! Adaptive multi-module budget allocation (thesis contribution 3, §5.3.1):
//! a single global cost model over the *concatenated* per-module compilation
//! statistics decides, each iteration, which hot module's candidate is most
//! promising to measure — instead of splitting the budget uniformly or
//! round-robin across modules.

use crate::task::{Task, TuneTrace};
use citroen_bo::heuristics::DiscreteOneLambda;
use citroen_bo::Acquisition;
use citroen_gp::{Gp, GpConfig, GpHypers, Mat};
use citroen_ir::module::Module;
use citroen_passes::{PassId, Stats};
use citroen_rt::rng::StdRng;
use citroen_rt::rng::{Rng, SeedableRng};
use std::time::Instant;

/// Budget allocation policy across hot modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// Adaptive: measure the module whose best candidate has the highest
    /// acquisition value under the global model (the paper's scheme).
    Adaptive,
    /// Cycle through hot modules in order.
    RoundRobin,
    /// Uniform random module choice.
    Uniform,
}

/// Multi-module tuner configuration.
#[derive(Debug, Clone)]
pub struct MultiModuleConfig {
    /// Allocation policy.
    pub allocation: Allocation,
    /// Candidates generated per module per iteration.
    pub candidates_per_module: usize,
    /// Initial random measurements (whole-program).
    pub init_random: usize,
    /// UCB β.
    pub beta: f64,
    /// GP settings.
    pub gp: GpConfig,
    /// Refit cadence.
    pub fit_every: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for MultiModuleConfig {
    fn default() -> MultiModuleConfig {
        MultiModuleConfig {
            allocation: Allocation::Adaptive,
            candidates_per_module: 16,
            init_random: 6,
            beta: 1.96,
            gp: GpConfig { fit_iters: 20, ..Default::default() },
            fit_every: 4,
            seed: 0,
        }
    }
}

struct ModState {
    idx: usize,
    des: DiscreteOneLambda,
    /// Incumbent optimised module + stats (held while other modules change).
    inc_module: Module,
    inc_stats: Stats,
    inc_seq: Vec<PassId>,
}

/// One observation: concatenated per-module stats → runtime.
struct Obs {
    stats: Vec<Stats>,
    runtime: f64,
}

/// Result of a multi-module run.
pub struct MultiModuleResult {
    /// Standard tuning trace.
    pub trace: TuneTrace,
    /// Module index measured at each step (`usize::MAX` = joint init step).
    pub allocation_log: Vec<usize>,
}

fn measure_joint(
    task: &mut Task,
    mods: &[ModState],
    trace: &mut TuneTrace,
) -> Option<f64> {
    let opt: Vec<(usize, &Module)> = mods.iter().map(|m| (m.idx, &m.inc_module)).collect();
    let (linked, fp) = task.assemble(&opt);
    match task.measure_linked(&linked, fp) {
        Ok(t) => {
            trace.record(t, mods.iter().map(|m| m.inc_seq.clone()).collect());
            Some(t)
        }
        Err(_) => None,
    }
}

/// Run the multi-module tuner on a task with several hot modules.
pub fn run_multimodule(
    task: &mut Task,
    budget: usize,
    cfg: &MultiModuleConfig,
) -> MultiModuleResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let len = task.seq_len();
    let npasses = task.registry.len();
    let hot: Vec<usize> = task.hot_modules.clone();
    let nh = hot.len();
    let mut trace = TuneTrace::default();
    let mut allocation_log = Vec::new();

    // Per-module state.
    let mut mods: Vec<ModState> = hot
        .iter()
        .map(|&idx| {
            let des = DiscreteOneLambda::new(len, npasses, &mut rng);
            let seq: Vec<PassId> = des.incumbent.iter().map(|&v| PassId(v)).collect();
            let (stats, _, module) = task.compile_hot(idx, &seq);
            ModState { idx, des, inc_module: module, inc_stats: stats, inc_seq: seq }
        })
        .collect();

    let mut obs: Vec<Obs> = Vec::new();
    let mut key_unions: Vec<Vec<String>> = vec![Vec::new(); nh];

    // Initial design: random joint configurations.
    for _ in 0..cfg.init_random.max(1) {
        if task.measurements >= budget {
            break;
        }
        for m in &mut mods {
            let g: Vec<u16> = (0..len).map(|_| rng.gen_range(0..npasses) as u16).collect();
            let seq: Vec<PassId> = g.iter().map(|&v| PassId(v)).collect();
            let (stats, _, module) = task.compile_hot(m.idx, &seq);
            m.inc_module = module;
            m.inc_stats = stats;
            m.inc_seq = seq;
        }
        if let Some(t) = measure_joint(task, &mods, &mut trace) {
            for (mi, m) in mods.iter_mut().enumerate() {
                let g: Vec<u16> = m.inc_seq.iter().map(|p| p.0).collect();
                m.des.tell(&g, t);
                for k in m.inc_stats.keys() {
                    if !key_unions[mi].contains(&k) {
                        key_unions[mi].push(k);
                    }
                }
            }
            obs.push(Obs { stats: mods.iter().map(|m| m.inc_stats.clone()).collect(), runtime: t });
            allocation_log.push(usize::MAX);
        }
    }

    let mut hypers: Option<GpHypers> = None;
    let mut iter = 0usize;
    let mut last_meas = task.measurements;
    let mut stagnant = 0usize;
    while task.measurements < budget {
        let preset_choice = match cfg.allocation {
            Allocation::RoundRobin => Some(iter % nh),
            Allocation::Uniform => Some(rng.gen_range(0..nh)),
            Allocation::Adaptive => None,
        };

        // Fit the global model over the concatenated statistics.
        let t0 = Instant::now();
        let dims: Vec<usize> = key_unions.iter().map(|k| k.len()).collect();
        let (xmat, scales) = build_matrix(&obs, &key_unions);
        let y: Vec<f64> = obs.iter().map(|o| o.runtime).collect();
        let mut gpc = cfg.gp.clone();
        gpc.init = hypers.clone();
        if iter % cfg.fit_every != 0 && hypers.is_some() {
            gpc.fit_iters = 0;
        }
        let gp = Gp::fit(xmat, &y, gpc);
        hypers = Some(gp.hypers());
        let best_raw = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_z = gp.transform().forward(best_raw);
        let acq = Acquisition::Ucb { beta: cfg.beta };
        task.add_model_time(t0.elapsed());

        // Per-module best candidate by AF (others fixed at incumbent).
        let incumbent_stats: Vec<Stats> = mods.iter().map(|m| m.inc_stats.clone()).collect();
        let mut best_per_module: Vec<(f64, Vec<u16>, Stats, Module)> = Vec::new();
        for (mi, m) in mods.iter_mut().enumerate() {
            let cands = m.des.ask(&mut rng, cfg.candidates_per_module);
            trace.candidates_generated += cands.len();
            let mut best: Option<(f64, Vec<u16>, Stats, Module)> = None;
            for g in cands {
                let seq: Vec<PassId> = g.iter().map(|&v| PassId(v)).collect();
                let (stats, _, module) = task.compile_hot(m.idx, &seq);
                let tm = Instant::now();
                let x =
                    featurise_joint(&incumbent_stats, mi, &stats, &key_unions, &scales, &dims);
                let af = acq.eval(&gp, best_z, &x);
                task.add_model_time(tm.elapsed());
                if best.as_ref().map(|(b, ..)| af > *b).unwrap_or(true) {
                    best = Some((af, g, stats, module));
                }
            }
            best_per_module.push(best.expect("candidates generated"));
        }

        let chosen = preset_choice.unwrap_or_else(|| {
            best_per_module
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0)
        });
        let (_, g, stats, module) = best_per_module.swap_remove(chosen);
        mods[chosen].inc_module = module;
        mods[chosen].inc_stats = stats;
        mods[chosen].inc_seq = g.iter().map(|&v| PassId(v)).collect();
        if let Some(t) = measure_joint(task, &mods, &mut trace) {
            mods[chosen].des.tell(&g, t);
            for (mi, m) in mods.iter().enumerate() {
                for k in m.inc_stats.keys() {
                    if !key_unions[mi].contains(&k) {
                        key_unions[mi].push(k);
                    }
                }
            }
            obs.push(Obs {
                stats: mods.iter().map(|m| m.inc_stats.clone()).collect(),
                runtime: t,
            });
            allocation_log.push(chosen);
        }
        iter += 1;
        if task.measurements == last_meas {
            stagnant += 1;
            if stagnant > 60 {
                break;
            }
        } else {
            stagnant = 0;
            last_meas = task.measurements;
        }
        if iter > budget * 20 {
            break;
        }
    }

    MultiModuleResult { trace, allocation_log }
}

fn build_matrix(obs: &[Obs], key_unions: &[Vec<String>]) -> (Mat, Vec<Vec<f64>>) {
    let raw: Vec<Vec<f64>> = obs
        .iter()
        .map(|o| {
            let mut row = Vec::new();
            for (mi, keys) in key_unions.iter().enumerate() {
                row.extend(o.stats[mi].to_vector(keys).into_iter().map(|v| (1.0 + v).ln()));
            }
            row
        })
        .collect();
    let d = raw.first().map(|r| r.len()).unwrap_or(0);
    let mut scale = vec![1.0f64; d];
    for r in &raw {
        for (i, v) in r.iter().enumerate() {
            scale[i] = scale[i].max(v.abs());
        }
    }
    let rows: Vec<Vec<f64>> = raw
        .into_iter()
        .map(|r| r.iter().enumerate().map(|(i, v)| v / scale[i]).collect())
        .collect();
    let mut scales = Vec::new();
    let mut off = 0;
    for keys in key_unions {
        scales.push(scale[off..off + keys.len()].to_vec());
        off += keys.len();
    }
    (Mat::from_rows(rows), scales)
}

fn featurise_joint(
    incumbent: &[Stats],
    cand_slot: usize,
    cand: &Stats,
    key_unions: &[Vec<String>],
    scales: &[Vec<f64>],
    dims: &[usize],
) -> Vec<f64> {
    let mut row = Vec::new();
    for (mi, keys) in key_unions.iter().enumerate() {
        let st = if mi == cand_slot { cand } else { &incumbent[mi] };
        let mut v: Vec<f64> = st.to_vector(keys).into_iter().map(|x| (1.0 + x).ln()).collect();
        v.resize(dims[mi], 0.0);
        for (i, x) in v.iter_mut().enumerate() {
            if i < scales[mi].len() {
                *x /= scales[mi][i];
            }
        }
        row.extend(v.into_iter().take(dims[mi]));
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskConfig;
    use citroen_passes::Registry;
    use citroen_sim::Platform;

    fn two_hot_task(bench: citroen_suite::Benchmark, platform: Platform, seed: u64) -> Task {
        let mut task = Task::new(
            bench,
            Registry::full(),
            platform,
            TaskConfig { seq_len: 12, seed, ..Default::default() },
        );
        if task.hot_modules.len() < 2 {
            let extra = (0..task.benchmark().modules.len())
                .find(|i| !task.hot_modules.contains(i))
                .unwrap();
            task.hot_modules.push(extra);
        }
        task
    }

    #[test]
    fn adaptive_runs_and_logs_allocation() {
        let mut task =
            two_hot_task(citroen_suite::speclike::spec_imgproc(), Platform::tx2(), 5);
        let cfg = MultiModuleConfig {
            candidates_per_module: 6,
            init_random: 3,
            seed: 5,
            ..Default::default()
        };
        let res = run_multimodule(&mut task, 14, &cfg);
        assert_eq!(task.measurements, 14);
        assert!(res.trace.best().is_finite());
        let adaptive_steps: Vec<&usize> =
            res.allocation_log.iter().filter(|m| **m != usize::MAX).collect();
        assert!(!adaptive_steps.is_empty());
    }

    #[test]
    fn round_robin_cycles_modules() {
        let mut task =
            two_hot_task(citroen_suite::speclike::spec_compress(), Platform::amd(), 9);
        let cfg = MultiModuleConfig {
            allocation: Allocation::RoundRobin,
            candidates_per_module: 4,
            init_random: 2,
            seed: 9,
            ..Default::default()
        };
        let res = run_multimodule(&mut task, 10, &cfg);
        let steps: std::collections::HashSet<usize> = res
            .allocation_log
            .iter()
            .copied()
            .filter(|m| *m != usize::MAX)
            .collect();
        assert!(steps.len() >= 2, "round robin visited {steps:?}");
    }
}
