//! CITROEN (paper §5.3): Bayesian-optimisation phase ordering guided by
//! pass-related compilation statistics.
//!
//! Per iteration: a DES-based generator proposes candidate pass sequences
//! (§5.3.5); every candidate is *compiled* (cheap, parallelisable) to collect
//! its compilation statistics; candidates whose statistics/binaries duplicate
//! already-observed points are filtered (the coverage issue, §5.3.4 /
//! Table 5.2); a GP cost model over statistics features (§5.3.3) scores the
//! rest with a UCB acquisition; the winner is *measured* (expensive, budgeted).

use crate::cache::BoundedCache;
use crate::service::{SessionEnv, SessionExit, SessionResult};
use crate::task::{Task, TuneError, TuneTrace};
use citroen_bo::heuristics::DiscreteOneLambda;
use citroen_bo::{draw_mc_eps, greedy_batch, Acquisition, SeqCanonicalizer};
use citroen_gp::{Gp, GpConfig, GpHypers, Mat};
use citroen_ir::module::Module;
use citroen_passes::{PassId, Registry, Stats};
use citroen_rt::par::WorkerPool;
use citroen_rt::rng::StdRng;
use citroen_rt::rng::{Rng, SeedableRng};
use citroen_telemetry as telemetry;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Which features the cost model is fitted on (Fig. 5.8/5.9 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Pass-related compilation statistics (CITROEN).
    CompilationStats,
    /// Autophase-style static IR features of the optimised module.
    Autophase,
    /// The raw pass sequence itself (standard-BO features).
    RawSequence,
}

/// Candidate generator (Fig. 5.8 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Discrete 1+λ ES seeded with the search history (§5.3.5) plus a random
    /// stream for exploration — the AIBO-style ensemble.
    Des,
    /// Pure random sequences.
    Random,
}

/// CITROEN configuration.
#[derive(Debug, Clone)]
pub struct CitroenConfig {
    /// UCB exploration weight.
    pub beta: f64,
    /// Candidates generated per iteration (the paper compiles these in
    /// parallel; we do too via `citroen_rt::par` in the batch-compile path).
    pub candidates: usize,
    /// Initial random sequences measured before the model starts.
    pub init_random: usize,
    /// Feature source.
    pub features: FeatureKind,
    /// Candidate generator.
    pub generator: GeneratorKind,
    /// Filter candidates with already-seen statistics vectors / binaries.
    pub coverage_filter: bool,
    /// Refit GP hyperparameters every this many iterations.
    pub fit_every: usize,
    /// GP settings.
    pub gp: GpConfig,
    /// DES per-position mutation rate override (`None` = 2/len default).
    pub mutation_rate: Option<f64>,
    /// Warm-start the DES incumbent with a known-good sequence (e.g. the
    /// best sequence found on another program — the thesis' §6.3.2
    /// "program-independent pass correlations" future-work direction).
    pub warm_start: Option<Vec<PassId>>,
    /// Extra genomes injected into the initial design, after the DES
    /// incumbent and before the random fill (which shrinks to keep the total
    /// at `init_random`). The service layer seeds these with statistics-space
    /// nearest-neighbour transfer genomes from completed tenants. Each genome
    /// is resized to the task's sequence length; out-of-range pass ids clamp
    /// to 0. Empty by default (identical RNG stream to previous releases).
    pub init_seeds: Vec<Vec<u16>>,
    /// Canonicalise candidate sequences with the precondition oracle before
    /// compiling: passes proven `CannotFire` on the source module (and not
    /// woken by an earlier kept pass, per the interaction graph) are dropped,
    /// so genomes differing only in statically-dead passes collapse onto one
    /// compile-cache entry. Off by default (paper-faithful search).
    pub oracle_prune: bool,
    /// Append the oracle's per-pass verdict bits (computed on the *optimised*
    /// candidate module) to the GP feature vector. Off by default.
    pub oracle_features: bool,
    /// When `oracle_prune` is on, additionally collapse immediate duplicate
    /// runs of idempotent passes ([`citroen_passes::Pass::is_idempotent`])
    /// during canonicalisation, so `p,p` genomes share `p`'s compile-cache
    /// entry. No effect when `oracle_prune` is off.
    pub idem_collapse: bool,
    /// Canonicalise candidate sequences with the fuzz-verified work-class
    /// subsumption matrix ([`citroen_passes::Pass::fires_on`]): a pass whose
    /// fire classes are provably cleared by the kept prefix is dropped, so
    /// `p,p` *and* `p,q,p` no-op patterns share one compile-cache entry.
    /// Module-independent (every drop is a theorem on any input), and usable
    /// with or without `oracle_prune`. Off by default (paper-faithful).
    pub subsume_collapse: bool,
    /// Warm-start canonicalisation from a persisted `citroen-analyze oracle
    /// --json` interaction graph instead of deriving the enables edges and
    /// work model per task. Ignored (with a warning) when unreadable.
    pub oracle_graph: Option<String>,
    /// Measurements selected and profiled per model-guided iteration (q).
    /// `1` runs the historical strictly-sequential loop, bit-identical to
    /// previous releases; `q > 1` selects a greedy qUCB/qEI batch, compiles
    /// and measures it on a persistent `rt::par` worker pool, and overlaps
    /// the GP fit with the in-flight measurements (one-batch-stale model).
    /// Deterministic for a fixed seed at any q.
    pub batch: usize,
    /// Monte-Carlo samples per acquisition evaluation during greedy batch
    /// construction (only used when `batch > 1`).
    pub mc_samples: usize,
    /// Canonical-genome compile-cache capacity (entries; `0` = unbounded).
    /// Evictions are FIFO and counted on `citroen.compile_cache_evictions`.
    pub compile_cache_cap: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitroenConfig {
    fn default() -> CitroenConfig {
        CitroenConfig {
            beta: 1.96,
            candidates: 40,
            init_random: 8,
            features: FeatureKind::CompilationStats,
            generator: GeneratorKind::Des,
            coverage_filter: true,
            fit_every: 4,
            gp: GpConfig { fit_iters: 25, ..Default::default() },
            mutation_rate: None,
            warm_start: None,
            init_seeds: Vec::new(),
            oracle_prune: false,
            oracle_features: false,
            idem_collapse: true,
            subsume_collapse: false,
            oracle_graph: None,
            batch: 1,
            mc_samples: 32,
            compile_cache_cap: 1024,
            seed: 0,
        }
    }
}

/// One observed point: genome, features, runtime.
struct Observation {
    genome: Vec<u16>,
    stats: Stats,
    autophase: Vec<f64>,
    /// Oracle verdict bits of the optimised module (empty when disabled).
    oracle: Vec<f64>,
    runtime: f64,
}

/// Introspection output: the fitted cost model's most impactful statistics
/// (shortest ARD length-scales) — Table 5.5.
#[derive(Debug, Clone)]
pub struct ImpactReport {
    /// `(feature name, fitted length-scale)`, most impactful first.
    pub ranked: Vec<(String, f64)>,
}

/// Run CITROEN on `task` for `budget` runtime measurements.
///
/// Thin wrapper over [`run_citroen_session`] with a default (standalone)
/// [`SessionEnv`]: no shared cache, no preloaded graph, a private worker
/// pool, and no cancellation — byte-for-byte the historical behaviour.
pub fn run_citroen(task: &mut Task, budget: usize, cfg: &CitroenConfig) -> (TuneTrace, ImpactReport) {
    let r = run_citroen_session(task, budget, cfg, &SessionEnv::default());
    (r.trace, r.report)
}

/// Run one CITROEN session under an explicit service environment.
///
/// The environment attaches the multi-tenant daemon's shared state — a
/// cross-tenant compile cache, a once-loaded interaction graph, a shared
/// worker pool — and a [`crate::SessionCtl`] carrying the tenant id, a
/// cancellation flag, and an optional deadline. Every attachment preserves
/// the per-session trajectory bit-for-bit: compilation is a pure function of
/// (source module, canonical pass sequence), so a shared-cache hit returns
/// exactly what a local compile would have produced, and only the compile
/// counters/telemetry differ from a standalone run at the same seed.
pub fn run_citroen_session(
    task: &mut Task,
    budget: usize,
    cfg: &CitroenConfig,
    env: &SessionEnv,
) -> SessionResult {
    let _run_span = telemetry::span("citroen.run");
    // Run-level metadata event: lets trace consumers compute speedups
    // (`o3_ns / best_ns`) and budget fractions without the CSV row.
    telemetry::event(
        "run.meta",
        &[
            ("o3_ns", (task.o3_seconds * 1e9) as u64),
            ("budget", budget as u64),
            ("seq_len", task.seq_len() as u64),
            ("passes", task.registry.len() as u64),
        ],
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let len = task.seq_len();
    let npasses = task.registry.len();
    let hot = task.hot();
    let shared = env.shared_cache.clone();
    let tenant = env.ctl.tenant;
    // Namespaces this task's genomes in the cross-tenant cache; unused (0)
    // when no shared cache is attached, skipping the module print.
    let src_fp = if shared.is_some() { task.source_fingerprint(hot) } else { 0 };
    let mut exit = SessionExit::Completed;
    let mut trace = TuneTrace::default();
    let mut obs: Vec<Observation> = Vec::new();
    let mut seen_fps: HashSet<u64> = HashSet::new();
    let mut seen_stats: HashSet<String> = HashSet::new();
    let mut key_union: Vec<String> = Vec::new();

    let mut des = DiscreteOneLambda::new(len, npasses, &mut rng);
    if let Some(mr) = cfg.mutation_rate {
        des.mutation_rate = mr;
    }
    if let Some(ws) = &cfg.warm_start {
        let mut g: Vec<u16> = ws.iter().map(|p| p.0).collect();
        g.resize(len, 0);
        des.incumbent = g;
    }

    let genome_to_seq =
        |g: &[u16]| -> Vec<PassId> { g.iter().map(|&v| PassId(v)).collect() };

    // Oracle-based sequence canonicalisation (off by default): verdicts on
    // the source hot module give the dead mask; running each pass once gives
    // the module-local enables edges that keep a dead pass when an earlier
    // kept pass may wake it. A persisted interaction graph (`oracle_graph`)
    // replaces the per-task enables derivation and supplies the work model;
    // `subsume_collapse` adds the module-independent work-class dataflow.
    let graph: Option<citroen_passes::oracle::InteractionGraph> = match env.graph.as_deref() {
        // The daemon loads the persisted graph once and shares it across
        // tenants; an attached graph takes precedence over the per-run path.
        Some(g) => Some(g.clone()),
        None => cfg.oracle_graph.as_deref().and_then(|path| {
            let load = std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|t| citroen_passes::oracle::InteractionGraph::from_json(&t));
            match load {
                Ok(g) => Some(g),
                Err(e) => {
                    eprintln!("warning: ignoring oracle graph '{path}': {e}");
                    None
                }
            }
        }),
    };
    let graph_inputs = graph.as_ref().map(|g| citroen_passes::oracle::canonicalizer_inputs(&task.registry, g));
    let canon: Option<SeqCanonicalizer> = (cfg.oracle_prune || cfg.subsume_collapse).then(|| {
        let n = task.registry.len();
        let (dead, mask) = if cfg.oracle_prune {
            let src = &task.benchmark().modules[hot];
            let dead = citroen_passes::oracle::dead_mask(&citroen_passes::oracle::verdicts(
                &task.registry,
                src,
            ));
            let mask = match &graph_inputs {
                Some((enables, _)) => enables.clone(),
                None => {
                    let (enables, _) =
                        citroen_passes::oracle::interactions_for_module(&task.registry, src);
                    let mut mask = vec![0u64; n];
                    for e in &enables {
                        mask[e.from] |= 1 << e.to;
                    }
                    mask
                }
            };
            (dead, mask)
        } else {
            (vec![false; n], vec![0u64; n])
        };
        let mut c = SeqCanonicalizer::new(dead, mask);
        if cfg.oracle_prune && cfg.idem_collapse {
            c = c.with_idempotence(task.registry.idempotent_mask());
        }
        if cfg.subsume_collapse {
            let (fires, clears, produces) = match graph_inputs.as_ref().and_then(|(_, w)| w.clone())
            {
                Some(triple) => triple,
                None => (task.registry.fires_on(), task.registry.clears(), task.registry.produces()),
            };
            c = c.with_subsumption(fires, clears, produces);
        }
        c
    });
    let canon_genome = |g: &[u16]| -> Vec<u16> {
        match &canon {
            Some(c) => {
                let idx: Vec<usize> = g.iter().map(|&v| v as usize).collect();
                c.canonicalize(&idx).into_iter().map(|v| v as u16).collect()
            }
            None => g.to_vec(),
        }
    };
    // Canonical genome → compile result; only consulted when pruning is on,
    // so the paper-faithful default path is untouched. Bounded: entries hold
    // a full `Module` clone, so long-budget runs (and the daemon) must not
    // grow it without limit.
    let mut compile_cache: BoundedCache<Vec<u16>, (Stats, u64, Module)> =
        BoundedCache::new(cfg.compile_cache_cap);
    let mut compile_cache_hits: u64 = 0;

    // Compile a genome (through the local canonical-genome cache when
    // pruning is on, then the service's cross-tenant cache when attached);
    // returns (canonical genome, stats, hot-module fingerprint, module).
    macro_rules! compile_genome {
        ($genome:expr) => {{
            let eff: Vec<u16> = canon_genome($genome);
            let local: Option<(Stats, u64, Module)> =
                if canon.is_some() { compile_cache.get(&eff).cloned() } else { None };
            if let Some((stats, fp, module)) = local {
                compile_cache_hits += 1;
                telemetry::counter("citroen.compile_cache_hits", 1);
                (eff, stats, fp, module)
            } else if let Some((stats, fp, module)) =
                shared.as_ref().and_then(|c| c.get(src_fp, &eff, tenant))
            {
                // Adopting another tenant's result is trajectory-neutral:
                // compilation is a pure function of (source module,
                // canonical sequence), so this is exactly what a local
                // compile would have produced — only the compile counters
                // differ from a standalone run.
                telemetry::counter("citroen.shared_cache_hits", 1);
                (eff, stats, fp, module)
            } else {
                let seq = genome_to_seq(&eff);
                let (stats, fp, module) = task.compile_hot(hot, &seq);
                if canon.is_some()
                    && compile_cache.insert(eff.clone(), (stats.clone(), fp, module.clone()))
                {
                    telemetry::counter("citroen.compile_cache_evictions", 1);
                }
                if let Some(c) = shared.as_ref() {
                    c.insert(src_fp, eff.clone(), tenant, stats.clone(), fp, module.clone());
                }
                (eff, stats, fp, module)
            }
        }};
    }

    // Evaluate one genome end-to-end (compile + measure), updating the state.
    macro_rules! observe {
        ($genome:expr) => {{
            let genome: Vec<u16> = $genome;
            let (eff, stats, mod_fp, module) = compile_genome!(&genome);
            let seq = genome_to_seq(&eff);
            let (linked, fp) = task.assemble(&[(hot, &module)]);
            match task.measure_linked(&linked, fp) {
                Ok(runtime) => {
                    des.tell(&genome, runtime);
                    for k in stats.keys() {
                        if !key_union.contains(&k) {
                            key_union.push(k);
                        }
                    }
                    seen_fps.insert(mod_fp);
                    seen_stats.insert(stats_sig(&stats));
                    let autophase = citroen_passes::autophase::autophase_features(&module);
                    let oracle = oracle_bits(&task.registry, &module, cfg.oracle_features);
                    trace.record(runtime, vec![seq.clone()]);
                    trace.compiles_history.push(task.compilations);
                    obs.push(Observation { genome, stats, autophase, oracle, runtime });
                    true
                }
                Err(_) => {
                    // Sequences that miscompile are discarded (differential
                    // testing, §5.4.1); they cost a measurement attempt in the
                    // paper's accounting too, but we simply skip them — our
                    // passes are verified not to miscompile.
                    false
                }
            }
        }};
    }

    let mut iter = 0usize;
    // Probe the tracing env vars once per run: `var_os` takes a lock on some
    // platforms and the old code probed it (and stamped `Instant::now`) for
    // every candidate in the compile sweep.
    let trace_seq = std::env::var_os("CITROEN_TRACE_SEQ").is_some();
    let trace_iters = std::env::var_os("CITROEN_TRACE").is_some();

    // Convergence-curve event, emitted after every budget-consuming
    // measurement. Guarded on `is_enabled` so the disabled path builds no
    // field array; `best_ns == 0` never occurs (runtimes are positive), so
    // consumers can treat 0 as "no measurement yet".
    macro_rules! progress {
        () => {
            if telemetry::is_enabled() {
                telemetry::event(
                    "progress",
                    &[
                        ("iter", iter as u64),
                        ("measurements", task.measurements as u64),
                        ("compilations", task.compilations as u64),
                        ("cache_hits", compile_cache_hits),
                        ("coverage_dropped", trace.coverage_dropped as u64),
                        ("last_ns", to_ns(trace.runtimes.last().copied())),
                        ("best_ns", to_ns(trace.best_history.last().copied())),
                    ],
                );
            }
        };
    }

    // 1. Initial design: the DES incumbent, any injected transfer seeds,
    //    then a random fill up to `init_random` total. With no seeds the
    //    random stream is identical to previous releases.
    let mut first: Vec<Vec<u16>> = vec![des.incumbent.clone()];
    for s in &cfg.init_seeds {
        let mut g: Vec<u16> =
            s.iter().map(|&v| if (v as usize) < npasses { v } else { 0 }).collect();
        g.resize(len, 0);
        first.push(g);
    }
    while first.len() < cfg.init_random.max(1) {
        first.push((0..len).map(|_| rng.gen_range(0..npasses) as u16).collect());
    }
    let init_span = telemetry::span("init");
    for g in first {
        if let Some(e) = env.ctl.interrupted() {
            exit = e;
            break;
        }
        if task.measurements >= budget {
            break;
        }
        observe!(g);
        progress!();
    }
    drop(init_span);

    // 2. Model-guided search. `cfg.batch == 1` runs the historical
    // strictly-sequential loop below, bit-identical to previous releases;
    // `cfg.batch > 1` runs the batched, pipelined loop first and leaves the
    // sequential loop's entry condition false.
    let mut hypers: Option<GpHypers> = None;
    let mut stag = StagnationState::new(task.measurements);

    if cfg.batch > 1 && exit == SessionExit::Completed {
        // Per-candidate work units shipped to the worker pool: q measurement
        // jobs (assemble + execute + feature extraction for the picked
        // modules) plus one GP-fit job that overlaps with them. The fit uses
        // the observation set as of the previous barrier, so the selection
        // model is exactly one batch stale — the standard asynchronous-BO
        // trade (fresh measurements land one iteration later).
        enum Work {
            Measure(Box<(Vec<u16>, Vec<u16>, Stats, u64, Module)>),
            Fit(Mat, Vec<f64>, GpConfig),
        }
        enum Done {
            Measure {
                genome: Vec<u16>,
                eff: Vec<u16>,
                stats: Stats,
                mod_fp: u64,
                fp: u64,
                outcome: Option<Result<(f64, Duration), (TuneError, Duration)>>,
                autophase: Vec<f64>,
                oracle: Vec<f64>,
            },
            Fit(Gp),
        }

        // Persistent pool, sized for the wider of the two per-iteration
        // fan-outs (candidate compile sweep; q measurements + 1 fit).
        // Spawning per iteration would dominate at small q. The daemon
        // attaches one shared pool so N tenants don't spawn N×threads.
        let owned_pool;
        let pool: &WorkerPool = match env.pool.as_deref() {
            Some(p) => p,
            None => {
                owned_pool = WorkerPool::new(citroen_rt::par::thread_count(
                    cfg.candidates.max(cfg.batch + 1),
                ));
                &owned_pool
            }
        };
        // MC noise for greedy batch construction comes from a dedicated
        // stream so the candidate-generation RNG stays aligned with q=1.
        let mut batch_rng =
            StdRng::seed_from_u64(cfg.seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        // Selection model: (gp, feature scale), fitted one barrier back.
        let mut model: Option<(Gp, Vec<f64>)> = None;

        while task.measurements < budget {
            if let Some(e) = env.ctl.interrupted() {
                exit = e;
                break;
            }
            let _iter_span = telemetry::span("iteration");
            telemetry::counter("citroen.iterations", 1);
            let cands: Vec<Vec<u16>> = match cfg.generator {
                GeneratorKind::Des => {
                    let n_des = (cfg.candidates * 3) / 4;
                    let mut v = des.ask(&mut rng, n_des);
                    for _ in 0..cfg.candidates - n_des {
                        v.push((0..len).map(|_| rng.gen_range(0..npasses) as u16).collect());
                    }
                    v
                }
                GeneratorKind::Random => (0..cfg.candidates)
                    .map(|_| (0..len).map(|_| rng.gen_range(0..npasses) as u16).collect())
                    .collect(),
            };
            trace.candidates_generated += cands.len();

            // Parallel compile sweep. The compile cache is resolved
            // sequentially first (hit accounting stays deterministic), then
            // the unique misses compile on the pool; per-candidate `compile`
            // spans nest under this `batch` span via the worker hooks.
            let sweep_t0 = Instant::now();
            let sweep_span = telemetry::span("batch");
            let mut jobs: Vec<Vec<u16>> = Vec::new();
            let mut job_of: HashMap<Vec<u16>, usize> = HashMap::new();
            // Per candidate: Ok(cached result) | Err(index into `jobs`).
            let mut slots: Vec<Result<(Stats, u64, Module), usize>> = Vec::new();
            let mut effs: Vec<Vec<u16>> = Vec::new();
            for g in &cands {
                let eff = canon_genome(g);
                let local: Option<(Stats, u64, Module)> =
                    if canon.is_some() { compile_cache.get(&eff).cloned() } else { None };
                if let Some(hit) = local {
                    compile_cache_hits += 1;
                    telemetry::counter("citroen.compile_cache_hits", 1);
                    slots.push(Ok(hit));
                } else if let Some(hit) =
                    shared.as_ref().and_then(|c| c.get(src_fp, &eff, tenant))
                {
                    telemetry::counter("citroen.shared_cache_hits", 1);
                    slots.push(Ok(hit));
                } else if let Some(&j) = job_of.get(&eff) {
                    // Within-batch duplicate canonical genome: share the
                    // first occurrence's compile (a cache hit in the
                    // sequential loop's accounting when pruning is on).
                    if canon.is_some() {
                        compile_cache_hits += 1;
                        telemetry::counter("citroen.compile_cache_hits", 1);
                    }
                    slots.push(Err(j));
                } else {
                    let j = jobs.len();
                    job_of.insert(eff.clone(), j);
                    jobs.push(eff.clone());
                    slots.push(Err(j));
                }
                effs.push(eff);
            }
            let n_jobs = jobs.len();
            let pass_work: usize = jobs.iter().map(Vec::len).sum();
            let task_ref: &Task = task;
            let compiled_jobs: Vec<(Stats, u64, Module)> = pool.map(jobs, |eff| {
                let _c = telemetry::span("compile");
                task_ref.compile_hot_pure(hot, &genome_to_seq(&eff))
            });
            drop(sweep_span);
            // Wall-clock of the whole sweep (the honest figure for the
            // fig5_12-style proportions), not the sum of per-core times.
            task.note_compilations(n_jobs, sweep_t0.elapsed());
            task.passes_executed += pass_work;
            // Publish the sweep's unique compiles to the cross-tenant cache
            // (first writer wins; losing a race costs nothing).
            if let Some(c) = shared.as_ref() {
                for (eff, &j) in &job_of {
                    let (stats, fp, module) = &compiled_jobs[j];
                    c.insert(src_fp, eff.clone(), tenant, stats.clone(), *fp, module.clone());
                }
            }

            let mut compiled: Vec<(Vec<u16>, Vec<u16>, Stats, Vec<f64>, Vec<f64>, u64, Module)> =
                Vec::new();
            for (g, (eff, slot)) in cands.into_iter().zip(effs.into_iter().zip(slots)) {
                let (stats, mod_fp, module) = match slot {
                    Ok(hit) => hit,
                    Err(j) => compiled_jobs[j].clone(),
                };
                if canon.is_some()
                    && compile_cache.peek(&eff).is_none()
                    && compile_cache.insert(eff.clone(), (stats.clone(), mod_fp, module.clone()))
                {
                    telemetry::counter("citroen.compile_cache_evictions", 1);
                }
                let ap = if cfg.features == FeatureKind::Autophase {
                    citroen_passes::autophase::autophase_features(&module)
                } else {
                    Vec::new()
                };
                let ob = oracle_bits(&task.registry, &module, cfg.oracle_features);
                compiled.push((g, eff, stats, ap, ob, mod_fp, module));
            }

            if cfg.coverage_filter {
                let before = compiled.len();
                compiled.retain(|(_, _, stats, _, _, fp, _)| {
                    !seen_fps.contains(fp) && !seen_stats.contains(&stats_sig(stats))
                });
                retain_batch_unique(&mut compiled, |(_, _, stats, _, _, fp, _)| {
                    (stats_sig(stats), *fp)
                });
                telemetry::counter(
                    "citroen.coverage_dropped",
                    (before - compiled.len()) as u64,
                );
                trace.coverage_dropped += before - compiled.len();
            }
            if compiled.is_empty() {
                // Whole batch redundant: random probe, as in the q=1 loop.
                let g: Vec<u16> = (0..len).map(|_| rng.gen_range(0..npasses) as u16).collect();
                observe!(g);
                iter += 1;
                progress!();
                if stag.update(task.measurements, &mut des, len, npasses, &mut rng) {
                    break;
                }
                if iter > budget * 20 {
                    break;
                }
                continue;
            }

            let t_model = Instant::now();
            for (_, _, stats, _, _, _, _) in &compiled {
                for k in stats.keys() {
                    if !key_union.contains(&k) {
                        key_union.push(k);
                    }
                }
            }
            // First model-guided iteration: no overlapped fit yet — fit now.
            if model.is_none() {
                let fit_span = telemetry::span("fit");
                let (xmat, scale) = feature_matrix(&obs, &key_union, cfg.features);
                let y: Vec<f64> = obs.iter().map(|o| o.runtime).collect();
                let mut gpc = cfg.gp.clone();
                gpc.init = hypers.clone();
                let gp = Gp::fit(xmat, &y, gpc);
                hypers = Some(gp.hypers());
                model = Some((gp, scale));
                drop(fit_span);
            }

            // Greedy qUCB batch selection on the (one-batch-stale) model.
            let acquire_span = telemetry::span("acquire");
            let (gp, scale) = model.as_ref().expect("model fitted above");
            let best_raw = obs.iter().map(|o| o.runtime).fold(f64::INFINITY, f64::min);
            let best_z = gp.transform().forward(best_raw);
            let acq = Acquisition::Ucb { beta: cfg.beta };
            let xs: Vec<Vec<f64>> = compiled
                .iter()
                .map(|(g, _, stats, ap, ob, _, _)| {
                    featurise(g, stats, ap, ob, &key_union, scale, cfg.features)
                })
                .collect();
            let q_eff = cfg
                .batch
                .min(budget - task.measurements)
                .min(compiled.len())
                .max(1);
            let eps = draw_mc_eps(&mut batch_rng, cfg.mc_samples, q_eff);
            let picks = greedy_batch(gp, acq, best_z, &xs, q_eff, &eps);
            drop(acquire_span);

            // Next iteration's fit input: the observation set as of this
            // barrier (the current batch is still in flight).
            let (xmat, next_scale) = feature_matrix(&obs, &key_union, cfg.features);
            let y: Vec<f64> = obs.iter().map(|o| o.runtime).collect();
            let mut gpc = cfg.gp.clone();
            gpc.init = hypers.clone();
            if iter % cfg.fit_every != 0 && hypers.is_some() {
                gpc.fit_iters = 0;
            }
            task.add_model_time(t_model.elapsed());

            // Pull picked candidates out in pick order; the already-compiled
            // modules are reused (the q=1 loop recompiles its single pick).
            let mut entries: Vec<Option<_>> = compiled.into_iter().map(Some).collect();
            let mut items: Vec<Work> = picks
                .iter()
                .map(|&i| {
                    let (g, eff, stats, _, _, mod_fp, module) =
                        entries[i].take().expect("picks are distinct");
                    Work::Measure(Box::new((g, eff, stats, mod_fp, module)))
                })
                .collect();
            items.push(Work::Fit(xmat, y, gpc));

            // Drain the batch: measurements and the overlapped fit run
            // concurrently; results come back in input order.
            let batch_span = telemetry::span("batch");
            let task_ref: &Task = task;
            let outs: Vec<Done> = pool.map(items, |w| match w {
                Work::Measure(entry) => {
                    let (genome, eff, stats, mod_fp, module) = *entry;
                    let (linked, fp) = task_ref.assemble(&[(hot, &module)]);
                    let outcome = if task_ref.cached_runtime(fp).is_some() {
                        None
                    } else {
                        let _m = telemetry::span("measure");
                        Some(task_ref.execute_linked_pure(&linked))
                    };
                    let autophase = citroen_passes::autophase::autophase_features(&module);
                    let oracle = oracle_bits(&task_ref.registry, &module, cfg.oracle_features);
                    Done::Measure { genome, eff, stats, mod_fp, fp, outcome, autophase, oracle }
                }
                Work::Fit(xmat, y, gpc) => {
                    let _f = telemetry::span("fit");
                    Done::Fit(Gp::fit(xmat, &y, gpc))
                }
            });
            drop(batch_span);

            // Admit strictly in batch order: admission draws the measurement
            // noise from the task RNG, so this order (not worker timing)
            // defines the stream — q>1 stays deterministic for a fixed seed.
            for done in outs {
                match done {
                    Done::Measure {
                        genome, eff, stats, mod_fp, fp, outcome, autophase, oracle,
                    } => match task.admit_execution(fp, outcome) {
                        Ok(runtime) => {
                            des.tell(&genome, runtime);
                            for k in stats.keys() {
                                if !key_union.contains(&k) {
                                    key_union.push(k);
                                }
                            }
                            seen_fps.insert(mod_fp);
                            seen_stats.insert(stats_sig(&stats));
                            trace.record(runtime, vec![genome_to_seq(&eff)]);
                            trace.compiles_history.push(task.compilations);
                            obs.push(Observation { genome, stats, autophase, oracle, runtime });
                        }
                        Err(_) => {
                            // Differential-testing discard, as in the q=1
                            // loop: the candidate is dropped.
                        }
                    },
                    Done::Fit(gp) => {
                        hypers = Some(gp.hypers());
                        model = Some((gp, next_scale.clone()));
                    }
                }
            }

            iter += 1;
            progress!();
            if trace_iters {
                eprintln!(
                    "[citroen] wall {:?} iter {iter} meas {} obs {} keys {} stagnant {} t_compile {:?} t_measure {:?} t_model {:?}",
                    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap(),
                    task.measurements,
                    obs.len(),
                    key_union.len(),
                    stag.stagnant,
                    task.times.compile,
                    task.times.measure,
                    task.times.model
                );
            }
            if stag.update(task.measurements, &mut des, len, npasses, &mut rng) {
                break;
            }
            if iter > budget * 20 {
                break;
            }
        }
    }

    while exit == SessionExit::Completed && task.measurements < budget && cfg.batch <= 1 {
        if let Some(e) = env.ctl.interrupted() {
            exit = e;
            break;
        }
        let _iter_span = telemetry::span("iteration");
        telemetry::counter("citroen.iterations", 1);
        // Generate candidates.
        let mut cands: Vec<Vec<u16>> = match cfg.generator {
            GeneratorKind::Des => {
                let n_des = (cfg.candidates * 3) / 4;
                let mut v = des.ask(&mut rng, n_des);
                for _ in 0..cfg.candidates - n_des {
                    v.push((0..len).map(|_| rng.gen_range(0..npasses) as u16).collect());
                }
                v
            }
            GeneratorKind::Random => (0..cfg.candidates)
                .map(|_| (0..len).map(|_| rng.gen_range(0..npasses) as u16).collect())
                .collect(),
        };
        trace.candidates_generated += cands.len();

        // Compile all candidates to collect statistics (cheap oracle).
        // Coverage keys use the *hot module's* fingerprint: the cold part is
        // fixed, so it identifies the final binary without linking.
        let mut compiled: Vec<(Vec<u16>, Stats, Vec<f64>, Vec<f64>, u64)> = Vec::new();
        for g in cands.drain(..) {
            if trace_seq {
                eprintln!("[cand] {}", task.registry.seq_to_string(&genome_to_seq(&g)));
            }
            let t_cand = trace_seq.then(Instant::now);
            let (_eff, stats, mod_fp, module) = compile_genome!(&g);
            if let Some(t0) = t_cand {
                eprintln!("[cand-done] {:?} insts {}", t0.elapsed(), module.num_insts());
            }
            let ap = if cfg.features == FeatureKind::Autophase {
                citroen_passes::autophase::autophase_features(&module)
            } else {
                Vec::new()
            };
            let ob = oracle_bits(&task.registry, &module, cfg.oracle_features);
            compiled.push((g, stats, ap, ob, mod_fp));
        }

        // Coverage filtering (§5.3.4): duplicated binaries or statistics
        // vectors carry no new information — skip their profiling.
        if cfg.coverage_filter {
            let before = compiled.len();
            compiled.retain(|(_, stats, _, _, fp)| {
                !seen_fps.contains(fp) && !seen_stats.contains(&stats_sig(stats))
            });
            // Also dedup within the batch, on each component independently.
            retain_batch_unique(&mut compiled, |(_, stats, _, _, fp)| (stats_sig(stats), *fp));
            telemetry::counter("citroen.coverage_dropped", (before - compiled.len()) as u64);
            trace.coverage_dropped += before - compiled.len();
        }
        if compiled.is_empty() {
            // Whole batch was redundant: take a random probe to escape. The
            // stagnation bookkeeping below still runs (tiny hot modules can
            // exhaust their distinct-binary space entirely).
            let g: Vec<u16> = (0..len).map(|_| rng.gen_range(0..npasses) as u16).collect();
            observe!(g);
            iter += 1;
            progress!();
            if stag.update(task.measurements, &mut des, len, npasses, &mut rng) {
                break;
            }
            if iter > budget * 20 {
                break;
            }
            continue;
        }

        // Fit the cost model and score candidates.
        let t0 = Instant::now();
        let fit_span = telemetry::span("fit");
        for (_, stats, _, _, _) in &compiled {
            for k in stats.keys() {
                if !key_union.contains(&k) {
                    key_union.push(k);
                }
            }
        }
        let (xmat, scale) = feature_matrix(&obs, &key_union, cfg.features);
        let y: Vec<f64> = obs.iter().map(|o| o.runtime).collect();
        let mut gpc = cfg.gp.clone();
        gpc.init = hypers.clone();
        if iter % cfg.fit_every != 0 && hypers.is_some() {
            gpc.fit_iters = 0;
        }
        let gp = Gp::fit(xmat, &y, gpc);
        hypers = Some(gp.hypers());
        drop(fit_span);
        let acquire_span = telemetry::span("acquire");
        let best_raw = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_z = gp.transform().forward(best_raw);
        let acq = Acquisition::Ucb { beta: cfg.beta };

        let mut best_af = f64::NEG_INFINITY;
        let mut pick = 0usize;
        for (i, (g, stats, ap, ob, _)) in compiled.iter().enumerate() {
            let x = featurise(g, stats, ap, ob, &key_union, &scale, cfg.features);
            let af = acq.eval(&gp, best_z, &x);
            if af > best_af {
                best_af = af;
                pick = i;
            }
        }
        drop(acquire_span);
        task.add_model_time(t0.elapsed());

        let (g, _, _, _, _) = compiled.swap_remove(pick);
        observe!(g);
        iter += 1;
        progress!();
        if trace_iters {
            eprintln!(
                "[citroen] wall {:?} iter {iter} meas {} obs {} keys {} stagnant {} t_compile {:?} t_measure {:?} t_model {:?}",
                std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap(),
                task.measurements,
                obs.len(),
                key_union.len(),
                stag.stagnant,
                task.times.compile,
                task.times.measure,
                task.times.model
            );
        }
        if stag.update(task.measurements, &mut des, len, npasses, &mut rng) {
            break;
        }
        if iter > budget * 20 {
            break; // safety valve
        }
    }

    // ARD impact report (Table 5.5): shortest length-scales = most impactful.
    let report = if obs.len() >= 3 && cfg.features == FeatureKind::CompilationStats {
        let (xmat, _) = feature_matrix(&obs, &key_union, cfg.features);
        let y: Vec<f64> = obs.iter().map(|o| o.runtime).collect();
        let gp = Gp::fit(xmat, &y, GpConfig { fit_iters: 60, ..cfg.gp.clone() });
        let ls = gp.lengthscales();
        let mut ranked: Vec<(String, f64)> =
            key_union.iter().cloned().zip(ls).collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        ImpactReport { ranked }
    } else {
        ImpactReport { ranked: Vec::new() }
    };
    SessionResult { trace, report, exit }
}

/// Seconds → nanosecond event field (0 = absent; runtimes are positive).
fn to_ns(seconds: Option<f64>) -> u64 {
    seconds.map(|s| (s * 1e9) as u64).unwrap_or(0)
}

/// Oracle verdict bits of `module` (1.0 = `MayFire`), or empty when the
/// oracle-features flag is off — the empty vector keeps the paper-faithful
/// feature space untouched.
fn oracle_bits(reg: &Registry, module: &Module, enabled: bool) -> Vec<f64> {
    if !enabled {
        return Vec::new();
    }
    citroen_passes::oracle::verdict_bits(&citroen_passes::oracle::verdicts(reg, module))
}

/// Stagnation bookkeeping shared by the empty-batch arm and the loop tail
/// (previously duplicated verbatim in both, letting the arms drift): on
/// benchmarks whose hot module collapses to few distinct binaries, most
/// candidates are duplicates and cached measurements consume no budget.
/// Restart the DES incumbent to escape, and stop when the search is
/// exhausted.
struct StagnationState {
    last_meas: usize,
    stagnant: usize,
}

impl StagnationState {
    fn new(measurements: usize) -> StagnationState {
        StagnationState { last_meas: measurements, stagnant: 0 }
    }

    /// Advance after one iteration; `true` means the search looks exhausted
    /// and the loop should stop.
    fn update(
        &mut self,
        measurements: usize,
        des: &mut DiscreteOneLambda,
        len: usize,
        npasses: usize,
        rng: &mut StdRng,
    ) -> bool {
        if measurements == self.last_meas {
            self.stagnant += 1;
            if self.stagnant % 20 == 19 {
                *des = DiscreteOneLambda::new(len, npasses, rng);
            }
            self.stagnant > 80
        } else {
            self.stagnant = 0;
            self.last_meas = measurements;
            false
        }
    }
}

/// Within-batch coverage dedup (§5.3.4): a candidate is redundant if
/// *either* its statistics signature *or* its binary fingerprint duplicates
/// one already kept in this batch — matching the cross-batch filter, which
/// rejects on either component. (An earlier version keyed on the pair, so
/// two same-stats/different-binary candidates both survived.)
fn retain_batch_unique<T>(batch: &mut Vec<T>, key: impl Fn(&T) -> (String, u64)) {
    let mut sigs: HashSet<String> = HashSet::new();
    let mut fps: HashSet<u64> = HashSet::new();
    batch.retain(|item| {
        let (sig, fp) = key(item);
        if sigs.contains(&sig) || fps.contains(&fp) {
            return false;
        }
        sigs.insert(sig);
        fps.insert(fp);
        true
    });
}

/// A canonical signature of a statistics bag (for coverage dedup).
fn stats_sig(stats: &Stats) -> String {
    let mut s = String::new();
    for (p, st, v) in stats.iter() {
        use std::fmt::Write;
        let _ = write!(s, "{p}.{st}={v};");
    }
    s
}

/// Build the training matrix for the chosen feature kind. Features are
/// `log1p`-compressed and max-scaled for numeric stability.
fn feature_matrix(
    obs: &[Observation],
    keys: &[String],
    kind: FeatureKind,
) -> (Mat, Vec<f64>) {
    let raw: Vec<Vec<f64>> = obs
        .iter()
        .map(|o| raw_features(&o.genome, &o.stats, &o.autophase, &o.oracle, keys, kind))
        .collect();
    let d = raw.first().map(|r| r.len()).unwrap_or(0);
    let mut scale = vec![1.0f64; d];
    for r in &raw {
        for (i, v) in r.iter().enumerate() {
            scale[i] = scale[i].max(v.abs());
        }
    }
    let rows: Vec<Vec<f64>> = raw
        .into_iter()
        .map(|r| r.iter().enumerate().map(|(i, v)| v / scale[i]).collect())
        .collect();
    (Mat::from_rows(rows), scale)
}

fn raw_features(
    genome: &[u16],
    stats: &Stats,
    autophase: &[f64],
    oracle: &[f64],
    keys: &[String],
    kind: FeatureKind,
) -> Vec<f64> {
    let mut r: Vec<f64> = match kind {
        FeatureKind::CompilationStats => {
            stats.to_vector(keys).into_iter().map(|v| (1.0 + v).ln()).collect()
        }
        FeatureKind::Autophase => autophase.iter().map(|v| (1.0 + v).ln()).collect(),
        FeatureKind::RawSequence => genome.iter().map(|&g| g as f64).collect(),
    };
    // Oracle verdict bits ride along as extra 0/1 dimensions (empty unless
    // `CitroenConfig::oracle_features` is on).
    r.extend_from_slice(oracle);
    r
}

fn featurise(
    genome: &[u16],
    stats: &Stats,
    autophase: &[f64],
    oracle: &[f64],
    keys: &[String],
    scale: &[f64],
    kind: FeatureKind,
) -> Vec<f64> {
    let mut r = raw_features(genome, stats, autophase, oracle, keys, kind);
    for (i, v) in r.iter_mut().enumerate() {
        if i < scale.len() {
            *v /= scale[i];
        }
    }
    // Pad/truncate to the model dimensionality (keys can grow between fits;
    // the scale vector length is the fitted dimensionality).
    r.resize(scale.len(), 0.0);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskConfig;
    use citroen_passes::Registry;
    use citroen_sim::Platform;

    fn gsm_task(seed: u64) -> Task {
        Task::new(
            citroen_suite::kernels::telecom_gsm(),
            Registry::full(),
            Platform::tx2(),
            TaskConfig { seq_len: 16, seed, ..Default::default() },
        )
    }

    #[test]
    fn citroen_finds_speedup_over_o3_on_gsm() {
        // Quantile check over a 10-seed window rather than one pinned lucky
        // seed: any single seed can draw an unlucky candidate stream, but the
        // median over seeds is a stable property of the tuner. Seeds run in
        // parallel (`par_map` is sequential on single-core hosts).
        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let mut task = gsm_task(seed);
            let cfg =
                CitroenConfig { candidates: 24, init_random: 6, seed, ..Default::default() };
            let (trace, report) = run_citroen(&mut task, 30, &cfg);
            assert_eq!(task.measurements, 30);
            assert!(!report.ranked.is_empty());
            assert!(!trace.best_seqs.is_empty());
            (trace.best() / task.o3_seconds, trace.coverage_dropped)
        });
        let mut ratios: Vec<f64> = runs.iter().map(|(r, _)| *r).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("citroen best/O3 ratios over seeds: {ratios:?}");
        // With a 30-measurement budget the lower quartile must match -O3
        // within noise, the best seed must beat it outright, and even the
        // median seed must stay in -O3's neighbourhood (observed window:
        // 0.99–1.16; the paper's larger speedups need larger budgets).
        let quartile = ratios[ratios.len() / 4];
        let median = ratios[ratios.len() / 2];
        assert!(quartile < 1.02, "lower-quartile ratio {quartile} too weak: {ratios:?}");
        assert!(ratios[0] < 1.0, "no seed in the window beat -O3: {ratios:?}");
        assert!(median < 1.25, "median ratio {median} pathological: {ratios:?}");
        // Coverage filtering must fire somewhere in the window on a 16-long
        // sequence space full of no-op duplicates.
        let dropped: usize = runs.iter().map(|(_, d)| *d).sum();
        assert!(dropped > 0, "expected coverage drops across the seed window");
    }

    #[test]
    fn shared_cache_sessions_are_bit_identical_and_skip_compiles() {
        // The multi-tenant determinism invariant: attaching a shared compile
        // cache (empty or pre-warmed by another tenant) must not perturb the
        // trajectory — only the compile counters. A second tenant replaying
        // the same (spec, seed) against the warmed cache compiles ~nothing.
        use crate::service::{SessionCtl, SharedCompileCache};
        use std::sync::Arc;

        let cfg = CitroenConfig { candidates: 24, init_random: 6, seed: 3, ..Default::default() };
        let mut t1 = gsm_task(3);
        let r1 = run_citroen_session(&mut t1, 10, &cfg, &SessionEnv::default());
        assert_eq!(r1.exit, SessionExit::Completed);

        let cache = Arc::new(SharedCompileCache::new(0));
        let mut t2 = gsm_task(3);
        let env1 = SessionEnv {
            shared_cache: Some(cache.clone()),
            ctl: SessionCtl::new(1),
            ..Default::default()
        };
        let r2 = run_citroen_session(&mut t2, 10, &cfg, &env1);
        let mut t3 = gsm_task(3);
        let env2 = SessionEnv {
            shared_cache: Some(cache.clone()),
            ctl: SessionCtl::new(2),
            ..Default::default()
        };
        let r3 = run_citroen_session(&mut t3, 10, &cfg, &env2);

        let d = crate::service::trace_digest(&r1.trace);
        assert_eq!(d, crate::service::trace_digest(&r2.trace), "empty shared cache perturbed");
        assert_eq!(d, crate::service::trace_digest(&r3.trace), "warmed shared cache perturbed");
        assert!(
            t3.compilations < t2.compilations,
            "warmed tenant compiled {} vs {} — no reuse",
            t3.compilations,
            t2.compilations
        );
        let s = cache.stats();
        assert!(s.cross_hits > 0, "replay tenant never hit the other tenant's entries: {s:?}");
        // Every measurement recorded its running compile count.
        assert_eq!(r1.trace.compiles_history.len(), r1.trace.runtimes.len());
    }

    #[test]
    fn cancelled_and_deadlined_sessions_stop_early() {
        use crate::service::SessionCtl;

        let cfg = CitroenConfig { candidates: 24, init_random: 6, seed: 1, ..Default::default() };
        let ctl = SessionCtl::new(7);
        ctl.cancel();
        let mut task = gsm_task(1);
        let env = SessionEnv { ctl, ..Default::default() };
        let r = run_citroen_session(&mut task, 30, &cfg, &env);
        assert_eq!(r.exit, SessionExit::Cancelled);
        assert_eq!(task.measurements, 0, "cancelled before the first observation");

        let ctl = SessionCtl::new(8).with_deadline(std::time::Instant::now());
        let mut task = gsm_task(1);
        let env = SessionEnv { ctl, ..Default::default() };
        let r = run_citroen_session(&mut task, 30, &cfg, &env);
        assert_eq!(r.exit, SessionExit::TimedOut);
        assert!(task.measurements < 30, "expired deadline did not stop the session");
    }

    #[test]
    fn init_seeds_enter_the_initial_design() {
        // A transfer seed must actually be measured: run with a seed genome
        // and assert its canonical sequence shows up among the first
        // observations' sequences (the seed is observed second, after the
        // DES incumbent).
        let seed_genome: Vec<u16> = vec![5; 16];
        let cfg = CitroenConfig {
            candidates: 24,
            init_random: 6,
            seed: 2,
            init_seeds: vec![seed_genome.clone()],
            ..Default::default()
        };
        let mut task = gsm_task(2);
        let r = run_citroen_session(&mut task, 8, &cfg, &SessionEnv::default());
        assert_eq!(r.exit, SessionExit::Completed);
        // Cold run at the same seed: different trajectory (the seed displaced
        // one random init genome).
        let cold_cfg = CitroenConfig { init_seeds: Vec::new(), ..cfg.clone() };
        let mut cold = gsm_task(2);
        let rc = run_citroen_session(&mut cold, 8, &cold_cfg, &SessionEnv::default());
        assert_ne!(
            crate::service::trace_digest(&r.trace),
            crate::service::trace_digest(&rc.trace),
            "injected seed had no effect on the trajectory"
        );
    }

    #[test]
    fn within_batch_dedup_rejects_on_either_component() {
        // Regression: the within-batch filter used to key on the *pair*
        // `(stats_sig, fp)`, so two candidates sharing a stats signature but
        // not a fingerprint (or vice versa) both survived — contradicting
        // §5.3.4 and the cross-batch filter, which rejects on either match.
        let mut s1 = Stats::new();
        s1.inc("gvn", "eliminated", 3);
        let s2 = s1.clone();

        // Same stats signature, different binaries: one must be dropped.
        let mut batch = vec![(vec![1u16], s1.clone(), 10u64), (vec![2u16], s2.clone(), 20u64)];
        let old_pair_key = {
            let mut pairs = HashSet::new();
            let mut b = batch.clone();
            b.retain(|(_, st, fp)| pairs.insert((stats_sig(st), *fp)));
            b.len()
        };
        assert_eq!(old_pair_key, 2, "the old pair-keyed retain kept both");
        retain_batch_unique(&mut batch, |(_, st, fp)| (stats_sig(st), *fp));
        assert_eq!(batch.len(), 1, "same-stats/different-binary duplicate survived");
        assert_eq!(batch[0].2, 10, "the first occurrence must be the one kept");

        // Same binary, different stats signatures: one must be dropped.
        let mut s3 = Stats::new();
        s3.inc("dce", "removed", 1);
        let mut batch = vec![(vec![1u16], s1, 10u64), (vec![2u16], s3, 10u64)];
        retain_batch_unique(&mut batch, |(_, st, fp)| (stats_sig(st), *fp));
        assert_eq!(batch.len(), 1, "same-binary/different-stats duplicate survived");

        // Fully distinct candidates all survive.
        let mut s4 = Stats::new();
        s4.inc("licm", "hoisted", 2);
        let mut s5 = Stats::new();
        s5.inc("sccp", "folded", 5);
        let mut batch = vec![(vec![1u16], s4, 1u64), (vec![2u16], s5, 2u64)];
        retain_batch_unique(&mut batch, |(_, st, fp)| (stats_sig(st), *fp));
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn feature_kinds_produce_distinct_vectors() {
        let mut task = gsm_task(2);
        let o3 = citroen_passes::o3_pipeline(&task.registry);
        let hot = task.hot();
        let (stats, _, module) = task.compile_hot(hot, &o3);
        let ap = citroen_passes::autophase::autophase_features(&module);
        let keys = stats.keys();
        let genome: Vec<u16> = o3.iter().map(|p| p.0).collect();
        let s = raw_features(&genome, &stats, &ap, &[], &keys, FeatureKind::CompilationStats);
        let a = raw_features(&genome, &stats, &ap, &[], &keys, FeatureKind::Autophase);
        let r = raw_features(&genome, &stats, &ap, &[], &keys, FeatureKind::RawSequence);
        assert_eq!(s.len(), keys.len());
        assert_eq!(a.len(), citroen_passes::autophase::NUM_AUTOPHASE_FEATURES);
        assert_eq!(r.len(), genome.len());
        assert!(s.iter().any(|v| *v > 0.0));
        // Oracle bits extend any feature kind by exactly their own length.
        let bits = oracle_bits(&task.registry, &module, true);
        assert_eq!(bits.len(), task.registry.len());
        let so = raw_features(&genome, &stats, &ap, &bits, &keys, FeatureKind::CompilationStats);
        assert_eq!(so.len(), s.len() + bits.len());
        assert!(oracle_bits(&task.registry, &module, false).is_empty());
    }

    #[test]
    fn oracle_pruning_cuts_compiles_without_hurting_speedup() {
        // Same 10-seed quantile discipline as the headline tuner test: for
        // each seed run the identical configuration with oracle pruning off
        // and on, then compare the windows. Pruning must cut compilations by
        // ≥15% at the median (canonical-genome cache hits) while the
        // best-found runtime stays no worse at the median.
        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let run = |prune: bool| {
                let mut task = gsm_task(seed);
                let cfg = CitroenConfig {
                    candidates: 24,
                    init_random: 6,
                    oracle_prune: prune,
                    seed,
                    ..Default::default()
                };
                let (trace, _) = run_citroen(&mut task, 20, &cfg);
                (trace.best() / task.o3_seconds, task.compilations)
            };
            (run(false), run(true))
        });
        let mut reduction: Vec<f64> = runs
            .iter()
            .map(|((_, c_off), (_, c_on))| 1.0 - *c_on as f64 / *c_off as f64)
            .collect();
        reduction.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut off: Vec<f64> = runs.iter().map(|((r, _), _)| *r).collect();
        let mut on: Vec<f64> = runs.iter().map(|(_, (r, _))| *r).collect();
        off.sort_by(|a, b| a.partial_cmp(b).unwrap());
        on.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("compile reduction per seed: {reduction:?}");
        eprintln!("best/O3 off: {off:?}\nbest/O3 on:  {on:?}");
        let median_red = reduction[reduction.len() / 2];
        assert!(
            median_red >= 0.15,
            "median compile reduction {median_red:.3} < 15%: {reduction:?}"
        );
        // "No worse" with a small noise tolerance: the two searches follow
        // different candidate streams, so compare medians, not seeds.
        let (m_off, m_on) = (off[off.len() / 2], on[on.len() / 2]);
        assert!(
            m_on <= m_off * 1.05,
            "median best/O3 degraded with pruning: {m_on:.4} vs {m_off:.4}"
        );
    }

    #[test]
    fn idempotence_collapse_cuts_compiles_without_hurting_speedup() {
        // Same quantile discipline: oracle pruning on for both arms, with
        // the idempotence collapse toggled. Collapsing `p,p → p` for the 12
        // verified-idempotent cleanup passes folds more genomes onto shared
        // compile-cache entries, so compilations must drop at the median
        // while the median best-found runtime stays within noise.
        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let run = |idem: bool| {
                let mut task = gsm_task(seed);
                let cfg = CitroenConfig {
                    candidates: 24,
                    init_random: 6,
                    oracle_prune: true,
                    idem_collapse: idem,
                    seed,
                    ..Default::default()
                };
                let (trace, _) = run_citroen(&mut task, 20, &cfg);
                (trace.best() / task.o3_seconds, task.compilations)
            };
            (run(false), run(true))
        });
        let mut reduction: Vec<f64> = runs
            .iter()
            .map(|((_, c_off), (_, c_on))| 1.0 - *c_on as f64 / *c_off as f64)
            .collect();
        reduction.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut off: Vec<f64> = runs.iter().map(|((r, _), _)| *r).collect();
        let mut on: Vec<f64> = runs.iter().map(|(_, (r, _))| *r).collect();
        off.sort_by(|a, b| a.partial_cmp(b).unwrap());
        on.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("idem compile reduction per seed: {reduction:?}");
        eprintln!("best/O3 idem-off: {off:?}\nbest/O3 idem-on:  {on:?}");
        let median_red = reduction[reduction.len() / 2];
        assert!(
            median_red > 0.0,
            "median compile reduction {median_red:.3} not positive: {reduction:?}"
        );
        let (m_off, m_on) = (off[off.len() / 2], on[on.len() / 2]);
        assert!(
            m_on <= m_off * 1.05,
            "median best/O3 degraded with idempotence collapse: {m_on:.4} vs {m_off:.4}"
        );
    }

    #[test]
    fn subsumption_collapse_cuts_compiles_without_hurting_speedup() {
        // Same quantile discipline as the oracle-pruning test: for each seed
        // run the identical configuration with the work-class subsumption
        // collapse off and on. Every drop is a module-independent theorem
        // (fuzz-checked by `citroen-analyze subsume`), so compiled artifacts
        // are unchanged; the win is genomes differing only in provable
        // no-op patterns (`p,p`, `dce` after a dce-tailed pass, `p,q,p`)
        // folding onto shared compile-cache entries.
        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let run = |subsume: bool| {
                // Longer sequences than the default gsm task (provable
                // no-op patterns scale with genome length; 32 is well inside
                // the paper's explored range) and an exploitation-heavy
                // mutation rate: most DES candidates then differ from the
                // incumbent in a single position, which is exactly the regime
                // where genomes collide onto one canonical form. Both arms
                // share the config, so the comparison stays honest.
                let mut task = Task::new(
                    citroen_suite::kernels::telecom_gsm(),
                    Registry::full(),
                    Platform::tx2(),
                    TaskConfig { seq_len: 32, seed, ..Default::default() },
                );
                let cfg = CitroenConfig {
                    candidates: 24,
                    init_random: 6,
                    mutation_rate: Some(1.0 / 32.0),
                    subsume_collapse: subsume,
                    seed,
                    ..Default::default()
                };
                let (trace, _) = run_citroen(&mut task, 40, &cfg);
                (trace.best() / task.o3_seconds, task.compilations)
            };
            (run(false), run(true))
        });
        let mut reduction: Vec<f64> = runs
            .iter()
            .map(|((_, c_off), (_, c_on))| 1.0 - *c_on as f64 / *c_off as f64)
            .collect();
        reduction.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut off: Vec<f64> = runs.iter().map(|((r, _), _)| *r).collect();
        let mut on: Vec<f64> = runs.iter().map(|(_, (r, _))| *r).collect();
        off.sort_by(|a, b| a.partial_cmp(b).unwrap());
        on.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("subsume compile reduction per seed: {reduction:?}");
        eprintln!("best/O3 subsume-off: {off:?}\nbest/O3 subsume-on:  {on:?}");
        let median_red = reduction[reduction.len() / 2];
        assert!(
            median_red >= 0.10,
            "median compile reduction {median_red:.3} < 10%: {reduction:?}"
        );
        let (m_off, m_on) = (off[off.len() / 2], on[on.len() / 2]);
        assert!(
            m_on <= m_off * 1.05,
            "median best/O3 degraded with subsumption collapse: {m_on:.4} vs {m_off:.4}"
        );
    }

    #[test]
    fn sixteen_class_masks_cut_compiles_beyond_the_twelve_class_model() {
        // The four loop/CFG work classes (CFGS, LICM, IVL, ROT) gave the
        // loop passes and simplifycfg provable `fires_on` masks they did
        // not have under the previous twelve-class model. Quantify the win
        // with the quantile discipline of the other ablations, on the
        // search space where those masks carry the drops: a loop-nest
        // sub-registry (six of its eight passes own the new classes), the
        // regime the alias/dependence analyses sharpened in the first
        // place. Arm A runs the old model — the registry's work triple
        // truncated to the first twelve classes, so any mask reaching into
        // the new bits reverts to `None` (never dropped), exactly the
        // pre-growth declarations — injected through a persisted
        // interaction graph; arm B runs the same graph with the full
        // model. Same seeds, same budget: the full matrix must cut compile
        // work (passes executed — every extra drop shortens the compiled
        // canonical sequence) by >=5% more at unchanged median
        // best-speedup. (On the full 33-pass registry the delta collapses
        // to noise: every loop pass's `produces` is "everything", so with
        // loop passes at 1/33 density the new drops are almost exclusively
        // immediate duplicates, which almost never survive mutation.)
        let loop_registry = || {
            const NAMES: &[&str] = &[
                "mem2reg",
                "loop-simplify",
                "loop-rotate",
                "licm",
                "loop-unroll",
                "loop-deletion",
                "simplifycfg",
                "dce",
            ];
            Registry::from_passes(
                citroen_passes::passes::all_passes()
                    .into_iter()
                    .filter(|p| NAMES.contains(&p.name()))
                    .collect(),
            )
        };
        let reg = loop_registry();
        let task0 = Task::new(
            citroen_suite::kernels::telecom_gsm(),
            loop_registry(),
            Platform::tx2(),
            TaskConfig { seq_len: 32, seed: 1, ..Default::default() },
        );
        let hot = task0.hot();
        let g16 = citroen_passes::oracle::derive_graph(
            &reg,
            &[task0.benchmark().modules[hot].clone()],
        );
        let mut g12 = g16.clone();
        {
            const OLD: u64 = (1 << 12) - 1;
            let w = g12.work.as_mut().expect("derived graph carries a work model");
            w.classes.truncate(12);
            for f in &mut w.fires_on {
                *f = f.filter(|m| m & !OLD == 0);
            }
            for c in &mut w.clears {
                *c &= OLD;
            }
            for p in &mut w.produces {
                *p &= OLD;
            }
        }
        let dir = std::env::temp_dir();
        let p16 = dir.join(format!("citroen_g16_{}.json", std::process::id()));
        let p12 = dir.join(format!("citroen_g12_{}.json", std::process::id()));
        std::fs::write(&p16, g16.to_json()).unwrap();
        std::fs::write(&p12, g12.to_json()).unwrap();

        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let run = |graph: &std::path::Path| {
                let mut task = Task::new(
                    citroen_suite::kernels::telecom_gsm(),
                    loop_registry(),
                    Platform::tx2(),
                    TaskConfig { seq_len: 32, seed, ..Default::default() },
                );
                let cfg = CitroenConfig {
                    candidates: 24,
                    init_random: 6,
                    subsume_collapse: true,
                    oracle_graph: Some(graph.to_string_lossy().into_owned()),
                    seed,
                    ..Default::default()
                };
                let (trace, _) = run_citroen(&mut task, 40, &cfg);
                (trace.best() / task.o3_seconds, task.passes_executed)
            };
            (run(&p12), run(&p16))
        });
        let _ = std::fs::remove_file(&p16);
        let _ = std::fs::remove_file(&p12);
        let mut extra: Vec<f64> = runs
            .iter()
            .map(|((_, w12), (_, w16))| 1.0 - *w16 as f64 / *w12 as f64)
            .collect();
        extra.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut r12: Vec<f64> = runs.iter().map(|((r, _), _)| *r).collect();
        let mut r16: Vec<f64> = runs.iter().map(|(_, (r, _))| *r).collect();
        r12.sort_by(|a, b| a.partial_cmp(b).unwrap());
        r16.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("additional compile-work reduction per seed (16 vs 12 classes): {extra:?}");
        eprintln!("best/O3 12-class: {r12:?}\nbest/O3 16-class: {r16:?}");
        let median_extra = extra[extra.len() / 2];
        assert!(
            median_extra >= 0.05,
            "median additional compile-work reduction {median_extra:.3} < 5%: {extra:?}"
        );
        let (m12, m16) = (r12[r12.len() / 2], r16[r16.len() / 2]);
        assert!(
            m16 <= m12 * 1.05 && m12 <= m16 * 1.05,
            "median best/O3 moved with the grown matrix: {m16:.4} vs {m12:.4}"
        );
    }

    #[test]
    fn oracle_graph_warm_start_matches_per_task_derivation() {
        // Persist the interaction graph derived over the task's own hot
        // module, then rerun with `oracle_graph` pointing at the file: the
        // canonicalizer inputs are identical, so the whole tuning trajectory
        // (best runtime and compile count) must be bit-identical to the
        // per-task derivation.
        let seed = 7;
        let run = |graph: Option<String>| {
            let mut task = gsm_task(seed);
            let cfg = CitroenConfig {
                candidates: 12,
                init_random: 4,
                oracle_prune: true,
                subsume_collapse: true,
                oracle_graph: graph,
                seed,
                ..Default::default()
            };
            let (trace, _) = run_citroen(&mut task, 10, &cfg);
            (trace.best(), task.compilations)
        };
        let task = gsm_task(seed);
        let hot = task.hot();
        let g = citroen_passes::oracle::derive_graph(
            &task.registry,
            &[task.benchmark().modules[hot].clone()],
        );
        let path = std::env::temp_dir().join(format!("citroen_graph_{}.json", std::process::id()));
        std::fs::write(&path, g.to_json()).unwrap();
        let derived = run(None);
        let warm = run(Some(path.to_string_lossy().into_owned()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(derived, warm, "graph warm-start diverged from per-task derivation");
        // A bogus path degrades gracefully to per-task derivation.
        let fallback = run(Some("/nonexistent/citroen_graph.json".into()));
        assert_eq!(derived, fallback);
    }
}
