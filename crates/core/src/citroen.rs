//! CITROEN (paper §5.3): Bayesian-optimisation phase ordering guided by
//! pass-related compilation statistics.
//!
//! Per iteration: a DES-based generator proposes candidate pass sequences
//! (§5.3.5); every candidate is *compiled* (cheap, parallelisable) to collect
//! its compilation statistics; candidates whose statistics/binaries duplicate
//! already-observed points are filtered (the coverage issue, §5.3.4 /
//! Table 5.2); a GP cost model over statistics features (§5.3.3) scores the
//! rest with a UCB acquisition; the winner is *measured* (expensive, budgeted).

use crate::task::{Task, TuneTrace};
use citroen_bo::heuristics::DiscreteOneLambda;
use citroen_bo::{Acquisition, SeqCanonicalizer};
use citroen_gp::{Gp, GpConfig, GpHypers, Mat};
use citroen_ir::module::Module;
use citroen_passes::{PassId, Registry, Stats};
use citroen_rt::rng::StdRng;
use citroen_rt::rng::{Rng, SeedableRng};
use citroen_telemetry as telemetry;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Which features the cost model is fitted on (Fig. 5.8/5.9 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Pass-related compilation statistics (CITROEN).
    CompilationStats,
    /// Autophase-style static IR features of the optimised module.
    Autophase,
    /// The raw pass sequence itself (standard-BO features).
    RawSequence,
}

/// Candidate generator (Fig. 5.8 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Discrete 1+λ ES seeded with the search history (§5.3.5) plus a random
    /// stream for exploration — the AIBO-style ensemble.
    Des,
    /// Pure random sequences.
    Random,
}

/// CITROEN configuration.
#[derive(Debug, Clone)]
pub struct CitroenConfig {
    /// UCB exploration weight.
    pub beta: f64,
    /// Candidates generated per iteration (the paper compiles these in
    /// parallel; we do too via `citroen_rt::par` in the batch-compile path).
    pub candidates: usize,
    /// Initial random sequences measured before the model starts.
    pub init_random: usize,
    /// Feature source.
    pub features: FeatureKind,
    /// Candidate generator.
    pub generator: GeneratorKind,
    /// Filter candidates with already-seen statistics vectors / binaries.
    pub coverage_filter: bool,
    /// Refit GP hyperparameters every this many iterations.
    pub fit_every: usize,
    /// GP settings.
    pub gp: GpConfig,
    /// DES per-position mutation rate override (`None` = 2/len default).
    pub mutation_rate: Option<f64>,
    /// Warm-start the DES incumbent with a known-good sequence (e.g. the
    /// best sequence found on another program — the thesis' §6.3.2
    /// "program-independent pass correlations" future-work direction).
    pub warm_start: Option<Vec<PassId>>,
    /// Canonicalise candidate sequences with the precondition oracle before
    /// compiling: passes proven `CannotFire` on the source module (and not
    /// woken by an earlier kept pass, per the interaction graph) are dropped,
    /// so genomes differing only in statically-dead passes collapse onto one
    /// compile-cache entry. Off by default (paper-faithful search).
    pub oracle_prune: bool,
    /// Append the oracle's per-pass verdict bits (computed on the *optimised*
    /// candidate module) to the GP feature vector. Off by default.
    pub oracle_features: bool,
    /// When `oracle_prune` is on, additionally collapse immediate duplicate
    /// runs of idempotent passes ([`citroen_passes::Pass::is_idempotent`])
    /// during canonicalisation, so `p,p` genomes share `p`'s compile-cache
    /// entry. No effect when `oracle_prune` is off.
    pub idem_collapse: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitroenConfig {
    fn default() -> CitroenConfig {
        CitroenConfig {
            beta: 1.96,
            candidates: 40,
            init_random: 8,
            features: FeatureKind::CompilationStats,
            generator: GeneratorKind::Des,
            coverage_filter: true,
            fit_every: 4,
            gp: GpConfig { fit_iters: 25, ..Default::default() },
            mutation_rate: None,
            warm_start: None,
            oracle_prune: false,
            oracle_features: false,
            idem_collapse: true,
            seed: 0,
        }
    }
}

/// One observed point: genome, features, runtime.
struct Observation {
    genome: Vec<u16>,
    stats: Stats,
    autophase: Vec<f64>,
    /// Oracle verdict bits of the optimised module (empty when disabled).
    oracle: Vec<f64>,
    runtime: f64,
}

/// Introspection output: the fitted cost model's most impactful statistics
/// (shortest ARD length-scales) — Table 5.5.
#[derive(Debug, Clone)]
pub struct ImpactReport {
    /// `(feature name, fitted length-scale)`, most impactful first.
    pub ranked: Vec<(String, f64)>,
}

/// Run CITROEN on `task` for `budget` runtime measurements.
pub fn run_citroen(task: &mut Task, budget: usize, cfg: &CitroenConfig) -> (TuneTrace, ImpactReport) {
    let _run_span = telemetry::span("citroen.run");
    // Run-level metadata event: lets trace consumers compute speedups
    // (`o3_ns / best_ns`) and budget fractions without the CSV row.
    telemetry::event(
        "run.meta",
        &[
            ("o3_ns", (task.o3_seconds * 1e9) as u64),
            ("budget", budget as u64),
            ("seq_len", task.seq_len() as u64),
            ("passes", task.registry.len() as u64),
        ],
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let len = task.seq_len();
    let npasses = task.registry.len();
    let hot = task.hot();
    let mut trace = TuneTrace::default();
    let mut obs: Vec<Observation> = Vec::new();
    let mut seen_fps: HashSet<u64> = HashSet::new();
    let mut seen_stats: HashSet<String> = HashSet::new();
    let mut key_union: Vec<String> = Vec::new();

    let mut des = DiscreteOneLambda::new(len, npasses, &mut rng);
    if let Some(mr) = cfg.mutation_rate {
        des.mutation_rate = mr;
    }
    if let Some(ws) = &cfg.warm_start {
        let mut g: Vec<u16> = ws.iter().map(|p| p.0).collect();
        g.resize(len, 0);
        des.incumbent = g;
    }

    let genome_to_seq =
        |g: &[u16]| -> Vec<PassId> { g.iter().map(|&v| PassId(v)).collect() };

    // Oracle-based sequence canonicalisation (off by default): verdicts on
    // the source hot module give the dead mask; running each pass once gives
    // the module-local enables edges that keep a dead pass when an earlier
    // kept pass may wake it.
    let canon: Option<SeqCanonicalizer> = cfg.oracle_prune.then(|| {
        let src = &task.benchmark().modules[hot];
        let dead = citroen_passes::oracle::dead_mask(&citroen_passes::oracle::verdicts(
            &task.registry,
            src,
        ));
        let (enables, _) = citroen_passes::oracle::interactions_for_module(&task.registry, src);
        let mut mask = vec![0u64; task.registry.len()];
        for e in &enables {
            mask[e.from] |= 1 << e.to;
        }
        let c = SeqCanonicalizer::new(dead, mask);
        if cfg.idem_collapse {
            c.with_idempotence(task.registry.idempotent_mask())
        } else {
            c
        }
    });
    let canon_genome = |g: &[u16]| -> Vec<u16> {
        match &canon {
            Some(c) => {
                let idx: Vec<usize> = g.iter().map(|&v| v as usize).collect();
                c.canonicalize(&idx).into_iter().map(|v| v as u16).collect()
            }
            None => g.to_vec(),
        }
    };
    // Canonical genome → compile result; only consulted when pruning is on,
    // so the paper-faithful default path is untouched.
    let mut compile_cache: HashMap<Vec<u16>, (Stats, u64, Module)> = HashMap::new();
    let mut compile_cache_hits: u64 = 0;

    // Compile a genome (through the canonical-genome cache when pruning is
    // on); returns (canonical genome, stats, hot-module fingerprint, module).
    macro_rules! compile_genome {
        ($genome:expr) => {{
            let eff: Vec<u16> = canon_genome($genome);
            if let Some((stats, fp, module)) =
                canon.is_some().then(|| compile_cache.get(&eff)).flatten()
            {
                compile_cache_hits += 1;
                telemetry::counter("citroen.compile_cache_hits", 1);
                (eff, stats.clone(), *fp, module.clone())
            } else {
                let seq = genome_to_seq(&eff);
                let (stats, fp, module) = task.compile_hot(hot, &seq);
                if canon.is_some() {
                    compile_cache.insert(eff.clone(), (stats.clone(), fp, module.clone()));
                }
                (eff, stats, fp, module)
            }
        }};
    }

    // Evaluate one genome end-to-end (compile + measure), updating the state.
    macro_rules! observe {
        ($genome:expr) => {{
            let genome: Vec<u16> = $genome;
            let (eff, stats, mod_fp, module) = compile_genome!(&genome);
            let seq = genome_to_seq(&eff);
            let (linked, fp) = task.assemble(&[(hot, &module)]);
            match task.measure_linked(&linked, fp) {
                Ok(runtime) => {
                    des.tell(&genome, runtime);
                    for k in stats.keys() {
                        if !key_union.contains(&k) {
                            key_union.push(k);
                        }
                    }
                    seen_fps.insert(mod_fp);
                    seen_stats.insert(stats_sig(&stats));
                    let autophase = citroen_passes::autophase::autophase_features(&module);
                    let oracle = oracle_bits(&task.registry, &module, cfg.oracle_features);
                    trace.record(runtime, vec![seq.clone()]);
                    obs.push(Observation { genome, stats, autophase, oracle, runtime });
                    true
                }
                Err(_) => {
                    // Sequences that miscompile are discarded (differential
                    // testing, §5.4.1); they cost a measurement attempt in the
                    // paper's accounting too, but we simply skip them — our
                    // passes are verified not to miscompile.
                    false
                }
            }
        }};
    }

    let mut iter = 0usize;

    // Convergence-curve event, emitted after every budget-consuming
    // measurement. Guarded on `is_enabled` so the disabled path builds no
    // field array; `best_ns == 0` never occurs (runtimes are positive), so
    // consumers can treat 0 as "no measurement yet".
    macro_rules! progress {
        () => {
            if telemetry::is_enabled() {
                telemetry::event(
                    "progress",
                    &[
                        ("iter", iter as u64),
                        ("measurements", task.measurements as u64),
                        ("compilations", task.compilations as u64),
                        ("cache_hits", compile_cache_hits),
                        ("coverage_dropped", trace.coverage_dropped as u64),
                        ("last_ns", to_ns(trace.runtimes.last().copied())),
                        ("best_ns", to_ns(trace.best_history.last().copied())),
                    ],
                );
            }
        };
    }

    // 1. Initial random design (plus the DES incumbent itself).
    let mut first: Vec<Vec<u16>> = vec![des.incumbent.clone()];
    for _ in 1..cfg.init_random.max(1) {
        first.push((0..len).map(|_| rng.gen_range(0..npasses) as u16).collect());
    }
    let init_span = telemetry::span("init");
    for g in first {
        if task.measurements >= budget {
            break;
        }
        observe!(g);
        progress!();
    }
    drop(init_span);

    // 2. Model-guided search.
    let mut hypers: Option<GpHypers> = None;
    let mut last_meas = task.measurements;
    let mut stagnant = 0usize;
    while task.measurements < budget {
        let _iter_span = telemetry::span("iteration");
        telemetry::counter("citroen.iterations", 1);
        // Generate candidates.
        let mut cands: Vec<Vec<u16>> = match cfg.generator {
            GeneratorKind::Des => {
                let n_des = (cfg.candidates * 3) / 4;
                let mut v = des.ask(&mut rng, n_des);
                for _ in 0..cfg.candidates - n_des {
                    v.push((0..len).map(|_| rng.gen_range(0..npasses) as u16).collect());
                }
                v
            }
            GeneratorKind::Random => (0..cfg.candidates)
                .map(|_| (0..len).map(|_| rng.gen_range(0..npasses) as u16).collect())
                .collect(),
        };
        trace.candidates_generated += cands.len();

        // Compile all candidates to collect statistics (cheap oracle).
        // Coverage keys use the *hot module's* fingerprint: the cold part is
        // fixed, so it identifies the final binary without linking.
        let mut compiled: Vec<(Vec<u16>, Stats, Vec<f64>, Vec<f64>, u64)> = Vec::new();
        for g in cands.drain(..) {
            let trace_seq = std::env::var_os("CITROEN_TRACE_SEQ").is_some();
            if trace_seq {
                eprintln!("[cand] {}", task.registry.seq_to_string(&genome_to_seq(&g)));
            }
            let t_cand = std::time::Instant::now();
            let (_eff, stats, mod_fp, module) = compile_genome!(&g);
            if trace_seq {
                eprintln!("[cand-done] {:?} insts {}", t_cand.elapsed(), module.num_insts());
            }
            let ap = if cfg.features == FeatureKind::Autophase {
                citroen_passes::autophase::autophase_features(&module)
            } else {
                Vec::new()
            };
            let ob = oracle_bits(&task.registry, &module, cfg.oracle_features);
            compiled.push((g, stats, ap, ob, mod_fp));
        }

        // Coverage filtering (§5.3.4): duplicated binaries or statistics
        // vectors carry no new information — skip their profiling.
        if cfg.coverage_filter {
            let before = compiled.len();
            compiled.retain(|(_, stats, _, _, fp)| {
                !seen_fps.contains(fp) && !seen_stats.contains(&stats_sig(stats))
            });
            // Also dedup within the batch.
            let mut batch_sigs = HashSet::new();
            compiled.retain(|(_, stats, _, _, fp)| {
                batch_sigs.insert((stats_sig(stats), *fp))
            });
            telemetry::counter("citroen.coverage_dropped", (before - compiled.len()) as u64);
            trace.coverage_dropped += before - compiled.len();
        }
        if compiled.is_empty() {
            // Whole batch was redundant: take a random probe to escape. The
            // stagnation bookkeeping below still runs (tiny hot modules can
            // exhaust their distinct-binary space entirely).
            let g: Vec<u16> = (0..len).map(|_| rng.gen_range(0..npasses) as u16).collect();
            observe!(g);
            iter += 1;
            progress!();
            if task.measurements == last_meas {
                stagnant += 1;
                if stagnant % 20 == 19 {
                    des = DiscreteOneLambda::new(len, npasses, &mut rng);
                }
                if stagnant > 80 {
                    break;
                }
            } else {
                stagnant = 0;
                last_meas = task.measurements;
            }
            if iter > budget * 20 {
                break;
            }
            continue;
        }

        // Fit the cost model and score candidates.
        let t0 = Instant::now();
        let fit_span = telemetry::span("fit");
        for (_, stats, _, _, _) in &compiled {
            for k in stats.keys() {
                if !key_union.contains(&k) {
                    key_union.push(k);
                }
            }
        }
        let (xmat, scale) = feature_matrix(&obs, &key_union, cfg.features);
        let y: Vec<f64> = obs.iter().map(|o| o.runtime).collect();
        let mut gpc = cfg.gp.clone();
        gpc.init = hypers.clone();
        if iter % cfg.fit_every != 0 && hypers.is_some() {
            gpc.fit_iters = 0;
        }
        let gp = Gp::fit(xmat, &y, gpc);
        hypers = Some(gp.hypers());
        drop(fit_span);
        let acquire_span = telemetry::span("acquire");
        let best_raw = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_z = gp.transform().forward(best_raw);
        let acq = Acquisition::Ucb { beta: cfg.beta };

        let mut best_af = f64::NEG_INFINITY;
        let mut pick = 0usize;
        for (i, (g, stats, ap, ob, _)) in compiled.iter().enumerate() {
            let x = featurise(g, stats, ap, ob, &key_union, &scale, cfg.features);
            let af = acq.eval(&gp, best_z, &x);
            if af > best_af {
                best_af = af;
                pick = i;
            }
        }
        drop(acquire_span);
        task.add_model_time(t0.elapsed());

        let (g, _, _, _, _) = compiled.swap_remove(pick);
        observe!(g);
        iter += 1;
        progress!();
        if std::env::var_os("CITROEN_TRACE").is_some() {
            eprintln!(
                "[citroen] wall {:?} iter {iter} meas {} obs {} keys {} stagnant {stagnant} t_compile {:?} t_measure {:?} t_model {:?}",
                std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap(),
                task.measurements,
                obs.len(),
                key_union.len(),
                task.times.compile,
                task.times.measure,
                task.times.model
            );
        }
        // Stagnation handling: on benchmarks whose hot module collapses to
        // few distinct binaries, most candidates are duplicates and cached
        // measurements consume no budget. Restart the DES incumbent to
        // escape, and stop when the search is exhausted.
        if task.measurements == last_meas {
            stagnant += 1;
            if stagnant % 20 == 19 {
                des = DiscreteOneLambda::new(len, npasses, &mut rng);
            }
            if stagnant > 80 {
                break;
            }
        } else {
            stagnant = 0;
            last_meas = task.measurements;
        }
        if iter > budget * 20 {
            break; // safety valve
        }
    }

    // ARD impact report (Table 5.5): shortest length-scales = most impactful.
    let report = if obs.len() >= 3 && cfg.features == FeatureKind::CompilationStats {
        let (xmat, _) = feature_matrix(&obs, &key_union, cfg.features);
        let y: Vec<f64> = obs.iter().map(|o| o.runtime).collect();
        let gp = Gp::fit(xmat, &y, GpConfig { fit_iters: 60, ..cfg.gp.clone() });
        let ls = gp.lengthscales();
        let mut ranked: Vec<(String, f64)> =
            key_union.iter().cloned().zip(ls).collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        ImpactReport { ranked }
    } else {
        ImpactReport { ranked: Vec::new() }
    };
    (trace, report)
}

/// Seconds → nanosecond event field (0 = absent; runtimes are positive).
fn to_ns(seconds: Option<f64>) -> u64 {
    seconds.map(|s| (s * 1e9) as u64).unwrap_or(0)
}

/// Oracle verdict bits of `module` (1.0 = `MayFire`), or empty when the
/// oracle-features flag is off — the empty vector keeps the paper-faithful
/// feature space untouched.
fn oracle_bits(reg: &Registry, module: &Module, enabled: bool) -> Vec<f64> {
    if !enabled {
        return Vec::new();
    }
    citroen_passes::oracle::verdict_bits(&citroen_passes::oracle::verdicts(reg, module))
}

/// A canonical signature of a statistics bag (for coverage dedup).
fn stats_sig(stats: &Stats) -> String {
    let mut s = String::new();
    for (p, st, v) in stats.iter() {
        use std::fmt::Write;
        let _ = write!(s, "{p}.{st}={v};");
    }
    s
}

/// Build the training matrix for the chosen feature kind. Features are
/// `log1p`-compressed and max-scaled for numeric stability.
fn feature_matrix(
    obs: &[Observation],
    keys: &[String],
    kind: FeatureKind,
) -> (Mat, Vec<f64>) {
    let raw: Vec<Vec<f64>> = obs
        .iter()
        .map(|o| raw_features(&o.genome, &o.stats, &o.autophase, &o.oracle, keys, kind))
        .collect();
    let d = raw.first().map(|r| r.len()).unwrap_or(0);
    let mut scale = vec![1.0f64; d];
    for r in &raw {
        for (i, v) in r.iter().enumerate() {
            scale[i] = scale[i].max(v.abs());
        }
    }
    let rows: Vec<Vec<f64>> = raw
        .into_iter()
        .map(|r| r.iter().enumerate().map(|(i, v)| v / scale[i]).collect())
        .collect();
    (Mat::from_rows(rows), scale)
}

fn raw_features(
    genome: &[u16],
    stats: &Stats,
    autophase: &[f64],
    oracle: &[f64],
    keys: &[String],
    kind: FeatureKind,
) -> Vec<f64> {
    let mut r: Vec<f64> = match kind {
        FeatureKind::CompilationStats => {
            stats.to_vector(keys).into_iter().map(|v| (1.0 + v).ln()).collect()
        }
        FeatureKind::Autophase => autophase.iter().map(|v| (1.0 + v).ln()).collect(),
        FeatureKind::RawSequence => genome.iter().map(|&g| g as f64).collect(),
    };
    // Oracle verdict bits ride along as extra 0/1 dimensions (empty unless
    // `CitroenConfig::oracle_features` is on).
    r.extend_from_slice(oracle);
    r
}

fn featurise(
    genome: &[u16],
    stats: &Stats,
    autophase: &[f64],
    oracle: &[f64],
    keys: &[String],
    scale: &[f64],
    kind: FeatureKind,
) -> Vec<f64> {
    let mut r = raw_features(genome, stats, autophase, oracle, keys, kind);
    for (i, v) in r.iter_mut().enumerate() {
        if i < scale.len() {
            *v /= scale[i];
        }
    }
    // Pad/truncate to the model dimensionality (keys can grow between fits;
    // the scale vector length is the fitted dimensionality).
    r.resize(scale.len(), 0.0);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskConfig;
    use citroen_passes::Registry;
    use citroen_sim::Platform;

    fn gsm_task(seed: u64) -> Task {
        Task::new(
            citroen_suite::kernels::telecom_gsm(),
            Registry::full(),
            Platform::tx2(),
            TaskConfig { seq_len: 16, seed, ..Default::default() },
        )
    }

    #[test]
    fn citroen_finds_speedup_over_o3_on_gsm() {
        // Quantile check over a 10-seed window rather than one pinned lucky
        // seed: any single seed can draw an unlucky candidate stream, but the
        // median over seeds is a stable property of the tuner. Seeds run in
        // parallel (`par_map` is sequential on single-core hosts).
        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let mut task = gsm_task(seed);
            let cfg =
                CitroenConfig { candidates: 24, init_random: 6, seed, ..Default::default() };
            let (trace, report) = run_citroen(&mut task, 30, &cfg);
            assert_eq!(task.measurements, 30);
            assert!(!report.ranked.is_empty());
            assert!(!trace.best_seqs.is_empty());
            (trace.best() / task.o3_seconds, trace.coverage_dropped)
        });
        let mut ratios: Vec<f64> = runs.iter().map(|(r, _)| *r).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("citroen best/O3 ratios over seeds: {ratios:?}");
        // With a 30-measurement budget the lower quartile must match -O3
        // within noise, the best seed must beat it outright, and even the
        // median seed must stay in -O3's neighbourhood (observed window:
        // 0.99–1.16; the paper's larger speedups need larger budgets).
        let quartile = ratios[ratios.len() / 4];
        let median = ratios[ratios.len() / 2];
        assert!(quartile < 1.02, "lower-quartile ratio {quartile} too weak: {ratios:?}");
        assert!(ratios[0] < 1.0, "no seed in the window beat -O3: {ratios:?}");
        assert!(median < 1.25, "median ratio {median} pathological: {ratios:?}");
        // Coverage filtering must fire somewhere in the window on a 16-long
        // sequence space full of no-op duplicates.
        let dropped: usize = runs.iter().map(|(_, d)| *d).sum();
        assert!(dropped > 0, "expected coverage drops across the seed window");
    }

    #[test]
    fn feature_kinds_produce_distinct_vectors() {
        let mut task = gsm_task(2);
        let o3 = citroen_passes::o3_pipeline(&task.registry);
        let hot = task.hot();
        let (stats, _, module) = task.compile_hot(hot, &o3);
        let ap = citroen_passes::autophase::autophase_features(&module);
        let keys = stats.keys();
        let genome: Vec<u16> = o3.iter().map(|p| p.0).collect();
        let s = raw_features(&genome, &stats, &ap, &[], &keys, FeatureKind::CompilationStats);
        let a = raw_features(&genome, &stats, &ap, &[], &keys, FeatureKind::Autophase);
        let r = raw_features(&genome, &stats, &ap, &[], &keys, FeatureKind::RawSequence);
        assert_eq!(s.len(), keys.len());
        assert_eq!(a.len(), citroen_passes::autophase::NUM_AUTOPHASE_FEATURES);
        assert_eq!(r.len(), genome.len());
        assert!(s.iter().any(|v| *v > 0.0));
        // Oracle bits extend any feature kind by exactly their own length.
        let bits = oracle_bits(&task.registry, &module, true);
        assert_eq!(bits.len(), task.registry.len());
        let so = raw_features(&genome, &stats, &ap, &bits, &keys, FeatureKind::CompilationStats);
        assert_eq!(so.len(), s.len() + bits.len());
        assert!(oracle_bits(&task.registry, &module, false).is_empty());
    }

    #[test]
    fn oracle_pruning_cuts_compiles_without_hurting_speedup() {
        // Same 10-seed quantile discipline as the headline tuner test: for
        // each seed run the identical configuration with oracle pruning off
        // and on, then compare the windows. Pruning must cut compilations by
        // ≥15% at the median (canonical-genome cache hits) while the
        // best-found runtime stays no worse at the median.
        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let run = |prune: bool| {
                let mut task = gsm_task(seed);
                let cfg = CitroenConfig {
                    candidates: 24,
                    init_random: 6,
                    oracle_prune: prune,
                    seed,
                    ..Default::default()
                };
                let (trace, _) = run_citroen(&mut task, 20, &cfg);
                (trace.best() / task.o3_seconds, task.compilations)
            };
            (run(false), run(true))
        });
        let mut reduction: Vec<f64> = runs
            .iter()
            .map(|((_, c_off), (_, c_on))| 1.0 - *c_on as f64 / *c_off as f64)
            .collect();
        reduction.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut off: Vec<f64> = runs.iter().map(|((r, _), _)| *r).collect();
        let mut on: Vec<f64> = runs.iter().map(|(_, (r, _))| *r).collect();
        off.sort_by(|a, b| a.partial_cmp(b).unwrap());
        on.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("compile reduction per seed: {reduction:?}");
        eprintln!("best/O3 off: {off:?}\nbest/O3 on:  {on:?}");
        let median_red = reduction[reduction.len() / 2];
        assert!(
            median_red >= 0.15,
            "median compile reduction {median_red:.3} < 15%: {reduction:?}"
        );
        // "No worse" with a small noise tolerance: the two searches follow
        // different candidate streams, so compare medians, not seeds.
        let (m_off, m_on) = (off[off.len() / 2], on[on.len() / 2]);
        assert!(
            m_on <= m_off * 1.05,
            "median best/O3 degraded with pruning: {m_on:.4} vs {m_off:.4}"
        );
    }

    #[test]
    fn idempotence_collapse_cuts_compiles_without_hurting_speedup() {
        // Same quantile discipline: oracle pruning on for both arms, with
        // the idempotence collapse toggled. Collapsing `p,p → p` for the 12
        // verified-idempotent cleanup passes folds more genomes onto shared
        // compile-cache entries, so compilations must drop at the median
        // while the median best-found runtime stays within noise.
        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let run = |idem: bool| {
                let mut task = gsm_task(seed);
                let cfg = CitroenConfig {
                    candidates: 24,
                    init_random: 6,
                    oracle_prune: true,
                    idem_collapse: idem,
                    seed,
                    ..Default::default()
                };
                let (trace, _) = run_citroen(&mut task, 20, &cfg);
                (trace.best() / task.o3_seconds, task.compilations)
            };
            (run(false), run(true))
        });
        let mut reduction: Vec<f64> = runs
            .iter()
            .map(|((_, c_off), (_, c_on))| 1.0 - *c_on as f64 / *c_off as f64)
            .collect();
        reduction.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut off: Vec<f64> = runs.iter().map(|((r, _), _)| *r).collect();
        let mut on: Vec<f64> = runs.iter().map(|(_, (r, _))| *r).collect();
        off.sort_by(|a, b| a.partial_cmp(b).unwrap());
        on.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("idem compile reduction per seed: {reduction:?}");
        eprintln!("best/O3 idem-off: {off:?}\nbest/O3 idem-on:  {on:?}");
        let median_red = reduction[reduction.len() / 2];
        assert!(
            median_red > 0.0,
            "median compile reduction {median_red:.3} not positive: {reduction:?}"
        );
        let (m_off, m_on) = (off[off.len() / 2], on[on.len() / 2]);
        assert!(
            m_on <= m_off * 1.05,
            "median best/O3 degraded with idempotence collapse: {m_on:.4} vs {m_off:.4}"
        );
    }
}
