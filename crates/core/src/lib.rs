//! # citroen-core
//!
//! CITROEN — the paper's primary contribution: compilation-statistics-guided
//! Bayesian optimisation for compiler phase ordering, plus the autotuning
//! [`task`] framework (compile/measure abstraction, differential testing,
//! budget accounting) and the adaptive [`multimodule`] budget allocator.

#![warn(missing_docs)]

pub mod cache;
pub mod citroen;
pub mod multimodule;
pub mod service;
pub mod task;

pub use cache::{BoundedCache, EvictionPolicy};
pub use citroen::{
    run_citroen, run_citroen_session, CitroenConfig, FeatureKind, GeneratorKind, ImpactReport,
};
pub use service::{
    trace_digest, SessionCtl, SessionEnv, SessionExit, SessionResult, SharedCacheStats,
    SharedCompileCache,
};
pub use multimodule::{run_multimodule, Allocation, MultiModuleConfig, MultiModuleResult};
pub use task::{Task, TaskConfig, TimeBreakdown, TuneError, TuneTrace};
