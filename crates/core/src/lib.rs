//! # citroen-core
//!
//! CITROEN — the paper's primary contribution: compilation-statistics-guided
//! Bayesian optimisation for compiler phase ordering, plus the autotuning
//! [`task`] framework (compile/measure abstraction, differential testing,
//! budget accounting) and the adaptive [`multimodule`] budget allocator.

#![warn(missing_docs)]

pub mod cache;
pub mod citroen;
pub mod multimodule;
pub mod task;

pub use cache::BoundedCache;
pub use citroen::{run_citroen, CitroenConfig, FeatureKind, GeneratorKind, ImpactReport};
pub use multimodule::{run_multimodule, Allocation, MultiModuleConfig, MultiModuleResult};
pub use task::{Task, TaskConfig, TimeBreakdown, TuneError, TuneTrace};
