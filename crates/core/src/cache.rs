//! A bounded map with pluggable eviction for the tuner's compile caches.
//!
//! The canonical-genome compile cache used to be a plain `HashMap` holding a
//! full [`citroen_ir::module::Module`] clone per entry and growing without
//! bound — harmless for a 30-measurement test run, a leak for long-budget
//! runs and the multi-tenant daemon. Two policies:
//!
//! - **FIFO** (insertion order): right for a single tuning session, whose
//!   cache hits are dominated by *recently generated* duplicates (DES
//!   mutants of the current incumbent), so the oldest entry is the cheapest
//!   to lose.
//! - **LRU** (least recently used): right for the long-lived cross-tenant
//!   cache in `citroen-serve`, where an old entry that tenants keep hitting
//!   (a popular module's canonical genome) must not be evicted just because
//!   it was inserted first.
//!
//! Both policies share one representation: every entry carries the tick at
//! which it was last "touched" (inserted for FIFO; inserted *or* read for
//! LRU), and eviction removes the entry with the smallest tick. Ticks are
//! unique, so the victim is deterministic. Lookups are O(1); the eviction
//! scan is O(n) but only runs when the cache is full, and hits never pay it.

use std::collections::HashMap;
use std::hash::Hash;

/// Which entry a full [`BoundedCache`] evicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the oldest *inserted* entry (reads don't refresh).
    Fifo,
    /// Evict the least recently *used* entry (reads refresh recency).
    Lru,
}

/// A `HashMap` with a capacity cap, FIFO or LRU eviction, and hit/miss/
/// eviction counters.
pub struct BoundedCache<K, V> {
    map: HashMap<K, (V, u64)>,
    policy: EvictionPolicy,
    cap: usize,
    /// Monotonic touch clock; every insert (and, under LRU, every hit)
    /// stamps the entry with the next tick.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> BoundedCache<K, V> {
    /// An empty FIFO cache holding at most `cap` entries (`0` = unbounded).
    pub fn new(cap: usize) -> BoundedCache<K, V> {
        BoundedCache::with_policy(cap, EvictionPolicy::Fifo)
    }

    /// An empty cache with an explicit eviction policy (`0` = unbounded).
    pub fn with_policy(cap: usize, policy: EvictionPolicy) -> BoundedCache<K, V> {
        BoundedCache {
            map: HashMap::new(),
            policy,
            cap,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, counting the hit or miss. Under LRU a hit refreshes
    /// the entry's recency (which is why lookups take `&mut self`).
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let lru = self.policy == EvictionPolicy::Lru;
        match self.map.get_mut(key) {
            Some((v, tick)) => {
                self.hits += 1;
                if lru {
                    self.tick += 1;
                    *tick = self.tick;
                }
                Some(&*v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up `key` without counting a hit/miss or refreshing recency —
    /// for bookkeeping probes ("is this already cached?") that are not
    /// semantically cache *uses*.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Insert `key → value`; returns `true` when this insert evicted an
    /// entry to stay within the cap. Re-inserting an existing key replaces
    /// the value without touching its eviction position.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(slot) = self.map.get_mut(&key) {
            slot.0 = value;
            return false;
        }
        self.tick += 1;
        self.map.insert(key, (value, self.tick));
        if self.cap > 0 && self.map.len() > self.cap {
            // Victim: smallest touch tick (oldest insert under FIFO, least
            // recently used under LRU). Ticks are unique, so this is
            // deterministic regardless of map iteration order.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone())
                .expect("cache over cap cannot be empty");
            self.map.remove(&victim);
            self.evictions += 1;
            return true;
        }
        false
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Lookups answered from the cache over its lifetime.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing over the cache's lifetime.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_and_evicts_in_insertion_order() {
        let mut c: BoundedCache<u32, &str> = BoundedCache::new(2);
        assert!(!c.insert(1, "a"));
        assert!(!c.insert(2, "b"));
        assert!(c.insert(3, "c"), "third insert must evict");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), None, "oldest entry evicted first");
        assert_eq!(c.get(&2), Some(&"b"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.evictions(), 1);
        assert!(c.insert(4, "d"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn fifo_reads_do_not_refresh() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // read the oldest...
        assert!(c.insert(3, 30));
        assert_eq!(c.get(&1), None, "FIFO evicts the oldest insert regardless of reads");
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn lru_reads_refresh_recency() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::with_policy(2, EvictionPolicy::Lru);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 1 is now the most recently used
        assert!(c.insert(3, 30));
        assert_eq!(c.peek(&1), Some(&10), "recently-read entry survives under LRU");
        assert_eq!(c.peek(&2), None, "least recently used entry evicted");
        assert_eq!(c.peek(&3), Some(&30));
    }

    #[test]
    fn counters_track_hits_misses_evictions() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::with_policy(2, EvictionPolicy::Lru);
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&2), None);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!((c.hits(), c.misses(), c.evictions()), (1, 2, 1));
        // peek is invisible to the counters.
        let _ = c.peek(&3);
        assert_eq!((c.hits(), c.misses()), (1, 2));
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(!c.insert(1, 11), "replacing an existing key never evicts");
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        // The replaced key kept its original eviction position.
        assert!(c.insert(3, 30));
        assert_eq!(c.get(&1), None, "re-inserted key still evicts at its original position");
    }

    #[test]
    fn zero_cap_is_unbounded() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(0);
        for i in 0..1000 {
            assert!(!c.insert(i, i));
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
    }
}
