//! A bounded insertion-order map for the tuner's compile cache.
//!
//! The canonical-genome compile cache used to be a plain `HashMap` holding a
//! full [`citroen_ir::module::Module`] clone per entry and growing without
//! bound — harmless for a 30-measurement test run, a leak for long-budget
//! runs and the future multi-tenant daemon. This cap evicts in insertion
//! order (FIFO): the tuner's cache hits are dominated by *recently generated*
//! duplicates (DES mutants of the current incumbent), so the oldest entry is
//! the cheapest to lose.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A `HashMap` with a capacity cap and FIFO (insertion-order) eviction.
pub struct BoundedCache<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    cap: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> BoundedCache<K, V> {
    /// An empty cache holding at most `cap` entries (`0` = unbounded).
    pub fn new(cap: usize) -> BoundedCache<K, V> {
        BoundedCache { map: HashMap::new(), order: VecDeque::new(), cap, evictions: 0 }
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Insert `key → value`; returns `true` when this insert evicted the
    /// oldest entry to stay within the cap. Re-inserting an existing key
    /// replaces the value without touching its eviction position.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.map.insert(key.clone(), value).is_some() {
            return false;
        }
        self.order.push_back(key);
        if self.cap > 0 && self.map.len() > self.cap {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.evictions += 1;
                return true;
            }
        }
        false
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_and_evicts_in_insertion_order() {
        let mut c: BoundedCache<u32, &str> = BoundedCache::new(2);
        assert!(!c.insert(1, "a"));
        assert!(!c.insert(2, "b"));
        assert!(c.insert(3, "c"), "third insert must evict");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), None, "oldest entry evicted first");
        assert_eq!(c.get(&2), Some(&"b"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.evictions(), 1);
        assert!(c.insert(4, "d"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(!c.insert(1, 11), "replacing an existing key never evicts");
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn zero_cap_is_unbounded() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(0);
        for i in 0..1000 {
            assert!(!c.insert(i, i));
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
    }
}
