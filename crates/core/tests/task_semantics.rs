//! Task-framework semantics: budget charging modes, warm starts, per-module
//! assembly, and the differential-testing guard.

use citroen_core::{run_citroen, CitroenConfig, Task, TaskConfig};
use citroen_passes::{o3_pipeline, Registry};
use citroen_sim::Platform;

fn crc_task(seed: u64) -> Task {
    Task::new(
        citroen_suite::kernels::telecom_crc32(),
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: 10, seed, ..Default::default() },
    )
}

#[test]
fn cached_measurements_are_free_by_default() {
    let mut t = crc_task(0);
    let o3 = o3_pipeline(&t.registry);
    t.measure_seq(&o3).unwrap();
    t.measure_seq(&o3).unwrap();
    t.measure_seq(&o3).unwrap();
    assert_eq!(t.measurements, 1);
    assert_eq!(t.cache_hits, 2);
}

#[test]
fn charge_cached_makes_duplicates_cost_budget() {
    let mut t = crc_task(0);
    t.charge_cached = true;
    let o3 = o3_pipeline(&t.registry);
    t.measure_seq(&o3).unwrap();
    t.measure_seq(&o3).unwrap();
    assert_eq!(t.measurements, 2);
    assert_eq!(t.cache_hits, 1);
}

#[test]
fn noisy_measurements_vary_but_track_ground_truth() {
    let mut t = crc_task(1);
    let o3 = o3_pipeline(&t.registry);
    let samples: Vec<f64> = (0..8).map(|_| t.measure_seq(&o3).unwrap()).collect();
    let distinct: std::collections::HashSet<u64> =
        samples.iter().map(|s| s.to_bits()).collect();
    assert!(distinct.len() > 1, "repeated measurements must be noisy");
    for s in &samples {
        assert!((s / t.o3_seconds - 1.0).abs() < 0.05, "{s} vs {}", t.o3_seconds);
    }
}

#[test]
fn warm_start_seeds_the_incumbent() {
    // Warm-starting with the O3 pipeline prefix means the very first
    // measured candidate is already O3-quality.
    let mut t = crc_task(2);
    let o3: Vec<_> = o3_pipeline(&t.registry).into_iter().take(10).collect();
    let cfg = CitroenConfig {
        warm_start: Some(o3),
        init_random: 1, // only the incumbent
        candidates: 8,
        seed: 2,
        ..Default::default()
    };
    let (trace, _) = run_citroen(&mut t, 4, &cfg);
    // The first observation comes from the warm incumbent.
    let first = trace.runtimes[0];
    assert!(
        first < t.o0_seconds * 0.9,
        "warm-started first candidate should already be optimised: {first} vs O0 {}",
        t.o0_seconds
    );
}

#[test]
fn differential_guard_rejects_wrong_binaries() {
    // Sabotage: hand the task a module that returns the wrong value by
    // linking a modified hot module. We simulate a miscompile by editing the
    // optimised module's constant directly.
    let mut t = crc_task(3);
    let hot = t.hot();
    let seq = o3_pipeline(&t.registry);
    let (_, _, mut module) = t.compile_hot(hot, &seq);
    // Flip an immediate somewhere to change behaviour.
    'outer: for f in &mut module.funcs {
        for blk in &mut f.blocks {
            for inst in &mut blk.insts {
                let mut changed = false;
                inst.for_each_operand_mut(|op| {
                    if let citroen_ir::Operand::ImmI(v, s) = op {
                        if *v == 0xEDB8_8320 {
                            *op = citroen_ir::Operand::ImmI(v.wrapping_add(2), *s);
                            changed = true;
                        }
                    }
                });
                if changed {
                    break 'outer;
                }
            }
        }
    }
    let (linked, fp) = t.assemble(&[(hot, &module)]);
    let res = t.measure_linked(&linked, fp);
    assert!(
        matches!(res, Err(citroen_core::TuneError::DifferentialMismatch { .. })),
        "sabotaged binary must be rejected, got {res:?}"
    );
    // And it must not have been recorded as a measurement.
    assert_eq!(t.measurements, 0);
}

#[test]
fn speedup_is_relative_to_o3() {
    let t = crc_task(4);
    assert!((t.speedup(t.o3_seconds) - 1.0).abs() < 1e-12);
    assert!(t.speedup(t.o3_seconds / 2.0) > 1.9);
}
