//! End-to-end reproducibility: two CITROEN runs with the same seed must
//! produce bit-identical trajectories. This is the contract that lets every
//! figure in EXPERIMENTS.md be regenerated exactly, and it depends on the
//! in-tree `citroen_rt::rng` stream being stable across platforms (no
//! external PRNG crate whose stream could shift under a version bump).

use citroen_core::{Task, TaskConfig};
use citroen_passes::Registry;
use citroen_sim::Platform;
use citroen_tuners::{CitroenTuner, SeqTuner};

fn gsm_task(seed: u64) -> Task {
    Task::new(
        citroen_suite::kernels::telecom_gsm(),
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: 12, seed, ..Default::default() },
    )
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let tuner = CitroenTuner { seed: 9, cfg: None };
    let mut t1 = gsm_task(9);
    let mut t2 = gsm_task(9);
    let a = tuner.run(&mut t1, 12);
    let b = tuner.run(&mut t2, 12);
    assert_eq!(a.runtimes, b.runtimes, "measured runtimes must replay exactly");
    assert_eq!(a.best_history, b.best_history, "best-so-far curve must replay exactly");
    assert_eq!(a.best_seqs, b.best_seqs, "winning sequences must replay exactly");
    assert_eq!(a.coverage_dropped, b.coverage_dropped);
    assert_eq!(a.candidates_generated, b.candidates_generated);
    assert_eq!(t1.measurements, t2.measurements);
    assert_eq!(t1.compilations, t2.compilations);
}

#[test]
fn different_seeds_diverge() {
    let mut t1 = gsm_task(9);
    let mut t2 = gsm_task(10);
    let a = CitroenTuner { seed: 9, cfg: None }.run(&mut t1, 12);
    let b = CitroenTuner { seed: 10, cfg: None }.run(&mut t2, 12);
    assert_ne!(a.runtimes, b.runtimes, "distinct seeds must explore differently");
}
