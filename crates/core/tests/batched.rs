//! Properties of the batched (q > 1) tuning loop: fixed-seed determinism,
//! 10-seed quality parity with the sequential loop, budget accounting, and
//! the bounded compile cache.

use citroen_core::{run_citroen, CitroenConfig, Task, TaskConfig};
use citroen_passes::Registry;
use citroen_sim::Platform;

fn gsm_task(seed: u64) -> Task {
    Task::new(
        citroen_suite::kernels::telecom_gsm(),
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: 16, seed, ..Default::default() },
    )
}

fn cfg(seed: u64, batch: usize) -> CitroenConfig {
    CitroenConfig { candidates: 24, init_random: 6, batch, seed, ..Default::default() }
}

fn ratio_window(q: usize, budget: usize) -> Vec<f64> {
    let seeds: Vec<u64> = (1..=10).collect();
    let mut ratios = citroen_rt::par::par_map(seeds, |seed| {
        let mut task = gsm_task(seed);
        let (trace, _) = run_citroen(&mut task, budget, &cfg(seed, q));
        assert_eq!(
            task.measurements, budget,
            "q={q} seed={seed} must consume the whole measurement budget"
        );
        trace.best() / task.o3_seconds
    });
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ratios
}

#[test]
fn batched_median_speedup_matches_sequential() {
    // The batch sizes trade selection freshness for throughput; the paper's
    // quality metric (best-found speedup) must not degrade. Compare 10-seed
    // medians, not per-seed values: q changes the candidate stream, so
    // individual seeds legitimately diverge. The budget gives q=4 a dozen
    // model-guided iterations — at starvation budgets the one-batch-stale
    // model has too few selections for the comparison to be meaningful.
    let r1 = ratio_window(1, 48);
    let r2 = ratio_window(2, 48);
    let r4 = ratio_window(4, 48);
    let med = |v: &[f64]| v[v.len() / 2];
    eprintln!("q=1 ratios: {r1:?}\nq=2 ratios: {r2:?}\nq=4 ratios: {r4:?}");
    eprintln!("medians: q1={} q2={} q4={}", med(&r1), med(&r2), med(&r4));
    for (q, r) in [(2usize, &r2), (4, &r4)] {
        let (m, m1) = (med(r), med(&r1));
        assert!(
            m <= m1 * 1.05,
            "q={q} median best/O3 degraded vs q=1: {m:.4} vs {m1:.4}"
        );
        // And the batched windows must stay anchored to -O3 on their own
        // terms, mirroring the sequential headline test's bounds.
        assert!(r[r.len() / 4] < 1.05, "q={q} lower quartile too weak: {r:?}");
    }
}

#[test]
fn batched_runs_are_deterministic_for_fixed_seed() {
    // Worker timing must not leak into results: selection, admission order,
    // and noise draws are all pinned by the seed.
    let run = || {
        let mut task = gsm_task(7);
        let (trace, _) = run_citroen(&mut task, 24, &cfg(7, 4));
        (
            trace.runtimes,
            trace.best_history,
            trace.best_seqs,
            trace.coverage_dropped,
            task.measurements,
            task.compilations,
            task.cache_hits,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two q=4 runs with the same seed diverged");
}

/// The cache tests toggle process-global telemetry state, so they must not
/// interleave under the parallel test harness.
static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn compile_cache_cap_evicts_and_counts() {
    // A tiny cap forces FIFO evictions mid-run; the run must still complete
    // its budget (evicted entries recompile) and the eviction counter must
    // fire. Uses oracle pruning, the only mode that populates the cache.
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    citroen_telemetry::enable();
    let mut task = gsm_task(3);
    let config = CitroenConfig {
        oracle_prune: true,
        compile_cache_cap: 4,
        ..cfg(3, 1)
    };
    let (trace, _) = run_citroen(&mut task, 12, &config);
    let t = citroen_telemetry::take_trace().expect("trace recorded");
    assert_eq!(task.measurements, 12);
    assert!(trace.best().is_finite());
    let evictions = t.counters.get("citroen.compile_cache_evictions").copied().unwrap_or(0);
    assert!(evictions > 0, "cap of 4 entries must evict during a 12-measurement run");
}

#[test]
fn compile_cache_cap_interacts_with_canonicalizer_modes() {
    // `subsume_collapse` + `oracle_prune` combined canonicalize candidate
    // sequences before the cache lookup, which both shrinks the key space
    // (collapsed duplicates share entries) and changes which keys are live.
    // The eviction counter was previously never asserted under this
    // combination: a tiny cap must still evict, the run must still consume
    // its budget, and canonicalization must not corrupt cache identity —
    // pinned by re-running the same seed and demanding identical results.
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = || {
        citroen_telemetry::enable();
        let mut task = gsm_task(5);
        let config = CitroenConfig {
            oracle_prune: true,
            subsume_collapse: true,
            compile_cache_cap: 2,
            ..cfg(5, 2)
        };
        let (trace, _) = run_citroen(&mut task, 12, &config);
        let t = citroen_telemetry::take_trace().expect("trace recorded");
        (trace, task.measurements, task.cache_hits, t)
    };
    let (trace, measurements, cache_hits, t) = run();
    assert_eq!(measurements, 12);
    assert!(trace.best().is_finite());
    let evictions = t.counters.get("citroen.compile_cache_evictions").copied().unwrap_or(0);
    assert!(
        evictions > 0,
        "cap of 2 entries must evict under subsume_collapse + oracle_prune"
    );

    // Same seed, same cap, same modes: evictions and hits are part of the
    // deterministic contract, not timing accidents.
    let (trace2, measurements2, cache_hits2, t2) = run();
    assert_eq!(measurements2, measurements);
    assert_eq!(cache_hits2, cache_hits);
    assert_eq!(trace2.runtimes, trace.runtimes);
    assert_eq!(
        t2.counters.get("citroen.compile_cache_evictions"),
        t.counters.get("citroen.compile_cache_evictions"),
        "eviction count must be deterministic for a fixed seed"
    );
}
