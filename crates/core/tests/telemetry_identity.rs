//! The telemetry non-interference contract: instrumenting the tuning loop
//! must not change what it computes. Telemetry never touches the RNG, the
//! search state, or the measurement path — so a tuning run with the sink
//! installed must produce *bit-identical* results to the same run with
//! telemetry disabled, across a seed window. This is the counterpart of the
//! `micro --telemetry-gate` overhead bound: one pins the cost, this pins the
//! semantics.

use citroen_core::{run_citroen, CitroenConfig, Task, TaskConfig, TuneTrace};
use citroen_passes::Registry;
use citroen_sim::Platform;
use citroen_telemetry as telemetry;

fn tune_batched(seed: u64, batch: usize) -> (TuneTrace, usize) {
    let mut task = Task::new(
        citroen_suite::kernels::telecom_gsm(),
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: 16, seed, ..Default::default() },
    );
    let cfg = CitroenConfig {
        candidates: 16,
        init_random: 4,
        oracle_prune: true, // exercise the canonicalizer counters too
        batch,
        seed,
        ..Default::default()
    };
    let (trace, _) = run_citroen(&mut task, 8, &cfg);
    (trace, task.compilations)
}

fn tune(seed: u64) -> (TuneTrace, usize) {
    tune_batched(seed, 1)
}

/// The tests toggle process-global telemetry state, so they must not
/// interleave under the parallel test harness.
static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn enabled_sink_is_result_identical_to_disabled() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Sequential on purpose: the runs toggle process-global telemetry state.
    let seeds: Vec<u64> = (1..=10).collect();
    for &seed in &seeds {
        telemetry::disable();
        let (off, compiles_off) = tune(seed);

        telemetry::enable();
        let (on, compiles_on) = tune(seed);
        let telem = telemetry::take_trace().expect("sink must hold a trace");
        telemetry::disable();

        // Third arm: the same run under the streaming JSONL sink.
        let path = std::env::temp_dir()
            .join(format!("citroen-identity-{}-{seed}.jsonl", std::process::id()));
        telemetry::enable_stream(&path).expect("stream sink");
        let (streamed, compiles_streamed) = tune(seed);
        drop(telemetry::disable()); // joins the writer, flushes the file
        let jsonl = std::fs::read_to_string(&path).expect("trace file");
        std::fs::remove_file(&path).ok();

        // Bit-identical: same noisy runtimes (f64 equality), same best
        // sequences, same bookkeeping, same compile counts — across the
        // disabled, memory-sink, and stream-sink arms.
        assert_eq!(off.runtimes, on.runtimes, "seed {seed}: runtimes diverged");
        assert_eq!(off.best_history, on.best_history, "seed {seed}");
        assert_eq!(off.best_seqs, on.best_seqs, "seed {seed}");
        assert_eq!(off.coverage_dropped, on.coverage_dropped, "seed {seed}");
        assert_eq!(off.candidates_generated, on.candidates_generated, "seed {seed}");
        assert_eq!(compiles_off, compiles_on, "seed {seed}: compile counts diverged");
        assert_eq!(off.runtimes, streamed.runtimes, "seed {seed}: stream arm diverged");
        assert_eq!(off.best_history, streamed.best_history, "seed {seed}: stream arm");
        assert_eq!(off.best_seqs, streamed.best_seqs, "seed {seed}: stream arm");
        assert_eq!(compiles_off, compiles_streamed, "seed {seed}: stream arm compiles");

        // And the enabled run must actually have recorded the tuning loop.
        assert!(telem.spans.iter().any(|s| s.name == "citroen.run"), "seed {seed}");
        assert!(telem.spans.iter().any(|s| s.name == "iteration"), "seed {seed}");
        assert!(telem.counters.get("task.measurements").copied().unwrap_or(0) > 0);

        // The streamed file replays to an equivalent trace: same counters,
        // enough iteration coverage for `citroen-trace check` to accept it.
        let replayed = telemetry::Trace::parse_jsonl(&jsonl)
            .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e}"));
        assert_eq!(replayed.counters, telem.counters, "seed {seed}: counters diverged");
        assert!(!replayed.events.is_empty(), "seed {seed}: no progress events streamed");
        let cov = replayed
            .coverage("iteration", &["compile", "measure", "fit", "acquire", "batch"])
            .unwrap_or_else(|| panic!("seed {seed}: no iteration spans in replay"));
        assert!(cov >= 0.9, "seed {seed}: iteration coverage {cov:.3} < 0.9");
    }
}

#[test]
fn batched_loop_keeps_the_identity_and_coverage_contract() {
    // The q>1 loop moves compile/measure/fit onto pool workers; telemetry
    // still must not perturb results, and the trace must keep enough
    // `iteration` coverage (via the `batch` spans) for `citroen-trace check`.
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for &seed in &[1u64, 5, 9] {
        telemetry::disable();
        let (off, compiles_off) = tune_batched(seed, 4);

        telemetry::enable();
        let (on, compiles_on) = tune_batched(seed, 4);
        let telem = telemetry::take_trace().expect("sink must hold a trace");
        telemetry::disable();

        assert_eq!(off.runtimes, on.runtimes, "seed {seed}: q=4 runtimes diverged");
        assert_eq!(off.best_history, on.best_history, "seed {seed}: q=4");
        assert_eq!(off.best_seqs, on.best_seqs, "seed {seed}: q=4");
        assert_eq!(off.coverage_dropped, on.coverage_dropped, "seed {seed}: q=4");
        assert_eq!(compiles_off, compiles_on, "seed {seed}: q=4 compile counts");

        assert!(telem.spans.iter().any(|s| s.name == "batch"), "seed {seed}: no batch spans");
        let cov = telem
            .coverage("iteration", &["compile", "measure", "fit", "acquire", "batch"])
            .unwrap_or_else(|| panic!("seed {seed}: no iteration spans"));
        assert!(cov >= 0.9, "seed {seed}: q=4 iteration coverage {cov:.3} < 0.9");
    }
}
