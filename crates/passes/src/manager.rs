//! Pass registry, pass manager and the reference optimisation pipelines.
//!
//! The tuners search over *sequences of pass ids* ([`PassSeq`]); the manager
//! applies a sequence to a module, collecting per-pass [`Stats`]. This is the
//! stand-in for driving `opt -stats -stats-json` (DESIGN.md §1).

use crate::passes;
use crate::stats::Stats;
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::module::Module;
use citroen_ir::verify;
use citroen_telemetry as telemetry;

/// A transformation pass.
pub trait Pass: Sync + Send {
    /// Stable pass name (used in statistics keys and pipelines).
    fn name(&self) -> &'static str;
    /// Transform `m`, recording statistics.
    fn run(&self, m: &mut Module, stats: &mut Stats);
    /// Static applicability oracle. [`Verdict::CannotFire`] is a *theorem*:
    /// `run` on this exact module must change nothing (same fingerprint) and
    /// record zero statistics — the `citroen-analyze oracle` fuzz campaign
    /// executes every `CannotFire` verdict and fails on a contradiction.
    /// The default is the always-sound conservative answer.
    fn precondition(&self, _m: &Module, _facts: &Facts) -> Verdict {
        Verdict::may("no precondition analysis for this pass")
    }
    /// Whether running this pass twice in a row is always equivalent to
    /// running it once (`run; run` leaves the same module as `run`, with the
    /// second run recording zero statistics). Like [`Pass::precondition`]'s
    /// `CannotFire`, `true` is a *theorem* — the pass suite's idempotence
    /// test executes it on the whole benchmark corpus and on fuzzed
    /// intermediate modules. The tuner's `SeqCanonicalizer` collapses
    /// immediate duplicates of idempotent passes so the duplicated genomes
    /// share one compile-cache entry. The default is the always-sound `false`.
    fn is_idempotent(&self) -> bool {
        false
    }
    /// Work classes ([`crate::work`]) whose presence is *necessary* for this
    /// pass to change anything. `Some(mask)` is a theorem: on a module with
    /// none of those classes present, `run` must leave the fingerprint
    /// unchanged and record zero statistics — the `citroen-analyze subsume`
    /// fuzz campaign executes every claim. `None` (the default) means
    /// unknown; such a pass is never dropped by the subsumption collapse.
    fn fires_on(&self) -> Option<u64> {
        None
    }
    /// Work classes provably *absent* after this pass runs, on any input.
    /// Also a fuzz-checked theorem; the always-sound default is "none".
    fn clears(&self) -> u64 {
        0
    }
    /// Work classes this pass may *create*. The always-sound default is
    /// "all of them"; narrow only with an argument (see [`crate::work`]).
    fn produces(&self) -> u64 {
        crate::work::ALL
    }
}

/// Index of a pass in the [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PassId(pub u16);

/// A pass sequence — the genome the phase-ordering tuners search over.
pub type PassSeq = Vec<PassId>;

/// The set of passes available to the tuner.
pub struct Registry {
    passes: Vec<Box<dyn Pass>>,
}

impl Registry {
    /// The full registry (every pass in this crate), mirroring the paper's
    /// "76 passes of LLVM 17 -O3" universe (Table 5.3).
    pub fn full() -> Registry {
        Registry { passes: passes::all_passes() }
    }

    /// A registry over an explicit pass list. Used by tests that need extra
    /// (e.g. deliberately broken) passes alongside the real ones.
    pub fn from_passes(passes: Vec<Box<dyn Pass>>) -> Registry {
        Registry { passes }
    }

    /// A reduced registry standing in for the older "LLVM 10" pass universe
    /// used in Fig. 5.10 (no vectorisers beyond basic SLP, no aggressive
    /// combines, no modern loop passes).
    pub fn llvm10() -> Registry {
        let keep = [
            "mem2reg",
            "sroa",
            "simplifycfg",
            "instcombine",
            "instsimplify",
            "early-cse",
            "gvn",
            "sccp",
            "dce",
            "adce",
            "dse",
            "reassociate",
            "licm",
            "loop-simplify",
            "loop-rotate",
            "loop-unroll",
            "loop-deletion",
            "indvars",
            "inline",
            "jump-threading",
            "constprop",
            "sink",
            "slp-vectorizer",
            "tailcallelim",
        ];
        let passes = passes::all_passes()
            .into_iter()
            .filter(|p| keep.contains(&p.name()))
            .collect();
        Registry { passes }
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Pass by id.
    pub fn pass(&self, id: PassId) -> &dyn Pass {
        self.passes[id.0 as usize].as_ref()
    }

    /// Name of a pass id.
    pub fn name(&self, id: PassId) -> &'static str {
        self.pass(id).name()
    }

    /// Find a pass id by name.
    pub fn by_name(&self, name: &str) -> Option<PassId> {
        self.passes.iter().position(|p| p.name() == name).map(|i| PassId(i as u16))
    }

    /// All pass ids.
    pub fn ids(&self) -> Vec<PassId> {
        (0..self.passes.len()).map(|i| PassId(i as u16)).collect()
    }

    /// All pass names, in id order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Per-pass idempotence bits ([`Pass::is_idempotent`]), in id order.
    pub fn idempotent_mask(&self) -> Vec<bool> {
        self.passes.iter().map(|p| p.is_idempotent()).collect()
    }

    /// Per-pass fire masks ([`Pass::fires_on`]), in id order.
    pub fn fires_on(&self) -> Vec<Option<u64>> {
        self.passes.iter().map(|p| p.fires_on()).collect()
    }

    /// Per-pass clear masks ([`Pass::clears`]), in id order.
    pub fn clears(&self) -> Vec<u64> {
        self.passes.iter().map(|p| p.clears()).collect()
    }

    /// Per-pass produce masks ([`Pass::produces`]), in id order.
    pub fn produces(&self) -> Vec<u64> {
        self.passes.iter().map(|p| p.produces()).collect()
    }

    /// Parse a comma/space separated list of pass names into a sequence.
    pub fn parse_seq(&self, s: &str) -> Result<PassSeq, String> {
        s.split(|c| c == ',' || c == ' ')
            .filter(|t| !t.is_empty())
            .map(|t| self.by_name(t).ok_or_else(|| format!("unknown pass '{t}'")))
            .collect()
    }

    /// Render a sequence as comma-separated names.
    pub fn seq_to_string(&self, seq: &[PassId]) -> String {
        seq.iter().map(|id| self.name(*id)).collect::<Vec<_>>().join(",")
    }
}

/// Outcome of compiling a module with a pass sequence.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The optimised module.
    pub module: Module,
    /// Compilation statistics collected across the sequence.
    pub stats: Stats,
    /// Structural fingerprint of the optimised module (the "binary hash").
    pub fingerprint: u64,
}

/// Why a compilation was rejected mid-pipeline.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// A pass left the module structurally malformed.
    Verify {
        /// Name of the offending pass.
        pass: &'static str,
        /// Verifier diagnostics.
        errors: Vec<verify::VerifyError>,
    },
    /// A pass kept the module well-formed but the translation-validation
    /// sanitizer proved it changed observable semantics.
    Sanitize {
        /// Name of the offending pass.
        pass: &'static str,
        /// Sanitizer contradictions.
        violations: Vec<citroen_analyze::sanitize::Violation>,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Verify { pass, errors } => {
                let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
                write!(f, "pass '{pass}' broke the IR: {}", msgs.join("; "))
            }
            CompileError::Sanitize { pass, violations } => {
                let msgs: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
                write!(f, "pass '{pass}' failed translation validation: {}", msgs.join("; "))
            }
        }
    }
}

/// Applies pass sequences to modules.
pub struct PassManager<'r> {
    registry: &'r Registry,
    /// Verify the module after every pass (slower; used by tests and fuzzing).
    pub verify_each: bool,
    /// Run the translation-validation sanitizer after every pass (slower
    /// still). Defaults to the `verify_each` default; `CITROEN_SANITIZE=1`/`0`
    /// overrides in either direction.
    pub sanitize: bool,
}

impl<'r> PassManager<'r> {
    /// Manager over `registry`. Verification and sanitizing between passes
    /// are enabled in debug builds by default; `CITROEN_SANITIZE` overrides
    /// the latter.
    pub fn new(registry: &'r Registry) -> PassManager<'r> {
        let sanitize = match std::env::var("CITROEN_SANITIZE").ok().as_deref() {
            Some("0") => false,
            Some(_) => true,
            None => cfg!(debug_assertions),
        };
        PassManager { registry, verify_each: cfg!(debug_assertions), sanitize }
    }

    /// Apply `seq` to a copy of `m`, returning the optimised module, the
    /// collected statistics, and the binary fingerprint. Panics if a pass
    /// breaks verification or translation validation — the contract every
    /// pass must uphold; use [`PassManager::compile_result`] to observe the
    /// failure instead (the fuzzer does).
    pub fn compile(&self, m: &Module, seq: &[PassId]) -> CompileResult {
        match self.compile_result(m, seq) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Apply `seq` to a copy of `m`; a verifier or sanitizer rejection is
    /// returned as an error naming the offending pass.
    pub fn compile_result(&self, m: &Module, seq: &[PassId]) -> Result<CompileResult, CompileError> {
        let mut module = m.clone();
        let mut stats = Stats::new();
        let trace = std::env::var_os("CITROEN_TRACE_PASS").is_some();
        let mut facts =
            if self.sanitize { Some(citroen_analyze::sanitize::module_facts(&module)) } else { None };
        // Sanitizer-guided scheduling: a pass that recorded zero statistics
        // *and* left the module fingerprint unchanged provably changed
        // nothing, so the S1–S8 re-analysis is a tautology (pre == post) and
        // is skipped. The fingerprint re-check (not the stats alone) keeps
        // the skip sound against a pass that mutates without counting.
        let mut fp_before = facts.as_ref().map(|_| citroen_ir::print::fingerprint(&module));
        for &id in seq {
            let pass = self.registry.pass(id);
            if trace {
                let max_blocks = module.funcs.iter().map(|f| f.blocks.len()).max().unwrap_or(0);
                let max_vals = module.funcs.iter().map(|f| f.value_ty.len()).max().unwrap_or(0);
                eprintln!(
                    "[pass] {} (insts {}, max blocks {}, max vals {})",
                    pass.name(),
                    module.num_insts(),
                    max_blocks,
                    max_vals
                );
            }
            let stats_total_before = stats.total();
            {
                let _pass_span = telemetry::span_dyn(|| format!("pass.{}", pass.name()));
                let stats_before = telemetry::is_enabled().then(|| stats.total());
                pass.run(&mut module, &mut stats);
                if let Some(before) = stats_before {
                    telemetry::counter(&format!("pass.{}.runs", pass.name()), 1);
                    telemetry::counter(
                        &format!("pass.{}.stats", pass.name()),
                        stats.total() - before,
                    );
                }
            }
            if self.verify_each {
                let _verify_span = telemetry::span("verify");
                let errors = verify::verify_module(&module);
                if !errors.is_empty() {
                    return Err(CompileError::Verify { pass: pass.name(), errors });
                }
            }
            if let Some(pre) = &facts {
                let _sanitize_span = telemetry::span("sanitize");
                let fp_now = citroen_ir::print::fingerprint(&module);
                if stats.total() == stats_total_before && Some(fp_now) == fp_before {
                    telemetry::counter("citroen.sanitize.skips", 1);
                } else {
                    telemetry::counter("citroen.sanitize.runs", 1);
                    let post = citroen_analyze::sanitize::module_facts(&module);
                    let violations = citroen_analyze::sanitize::check(pre, &post);
                    if !violations.is_empty() {
                        return Err(CompileError::Sanitize { pass: pass.name(), violations });
                    }
                    facts = Some(post);
                    fp_before = Some(fp_now);
                }
            }
        }
        let fingerprint = citroen_ir::print::fingerprint(&module);
        Ok(CompileResult { module, stats, fingerprint })
    }

    /// Apply a sequence given by pass names.
    pub fn compile_named(&self, m: &Module, names: &str) -> Result<CompileResult, String> {
        let seq = self.registry.parse_seq(names)?;
        Ok(self.compile(m, &seq))
    }
}

/// The reference `-O3`-style pipeline over the full registry. This is the
/// baseline every speedup in the experiments is measured against, mirroring
/// the structure (not the exact content) of LLVM's -O3: scalar cleanup,
/// inlining, loop canonicalisation + transforms, redundancy elimination,
/// vectorisation, late cleanup.
pub fn o3_pipeline(reg: &Registry) -> PassSeq {
    const NAMES: &[&str] = &[
        "mem2reg",
        "early-cse",
        "simplifycfg",
        "instcombine",
        "inline",
        "function-attrs",
        "sroa",
        "mem2reg",
        "early-cse",
        "jump-threading",
        "correlated-propagation",
        "simplifycfg",
        "instcombine",
        "tailcallelim",
        "reassociate",
        "loop-simplify",
        "loop-rotate",
        "licm",
        "simplifycfg",
        "instcombine",
        "indvars",
        "loop-idiom",
        "loop-deletion",
        "loop-unroll",
        "gvn",
        "sccp",
        "instcombine",
        "jump-threading",
        "correlated-propagation",
        "dse",
        "licm",
        "adce",
        "simplifycfg",
        "instcombine",
        "loop-vectorize",
        "slp-vectorizer",
        "vector-combine",
        "instcombine",
        "strength-reduce",
        "div-rem-pairs",
        "simplifycfg",
        "sink",
        "adce",
        "constprop",
    ];
    // Passes absent from a reduced registry (e.g. the LLVM-10-style subset)
    // are simply skipped — that registry's own "-O3".
    NAMES.iter().filter_map(|n| reg.by_name(n)).collect()
}

/// A shorter `-O1`-style cleanup pipeline.
pub fn o1_pipeline(reg: &Registry) -> PassSeq {
    const NAMES: &[&str] =
        &["mem2reg", "simplifycfg", "instcombine", "early-cse", "dce", "simplifycfg"];
    NAMES.iter().map(|n| reg.by_name(n).expect("O1 pass missing")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_everything_o3_needs() {
        let reg = Registry::full();
        assert!(reg.len() >= 30, "registry too small: {}", reg.len());
        let o3 = o3_pipeline(&reg);
        assert!(o3.len() >= 40);
        // names round-trip
        let s = reg.seq_to_string(&o3);
        let back = reg.parse_seq(&s).unwrap();
        assert_eq!(back, o3);
    }

    #[test]
    fn llvm10_registry_is_a_subset() {
        let full = Registry::full();
        let old = Registry::llvm10();
        assert!(old.len() < full.len());
        assert!(old.by_name("loop-vectorize").is_none());
        assert!(old.by_name("mem2reg").is_some());
    }

    #[test]
    fn unknown_pass_is_an_error() {
        let reg = Registry::full();
        assert!(reg.parse_seq("mem2reg,bogus").is_err());
    }
}
