//! Work classes: the bit universe behind the pass-subsumption matrix.
//!
//! Each class-owning pass has one bit naming the kind of transformable
//! work it consumes (dead pure code, const-foldable ops, promotable
//! allocas, rotatable loop headers, …). Three per-pass masks over this
//! universe drive the static subsumption derivation and the
//! `SeqCanonicalizer` dataflow (DESIGN.md §9–10):
//!
//! - [`crate::Pass::fires_on`] — the classes whose presence is *necessary*
//!   for the pass to change anything. `Some(mask)` is a theorem: on a
//!   module with none of those classes present, `run` must be a no-op.
//!   A pass declares a mask when its precondition mirror replays the fire
//!   test exactly — usually because the pass is idempotent, but not
//!   necessarily (`loop-rotate` consumes while-shaped headers it never
//!   recreates, so [`ROT`] is a sound fire class even though rotation is
//!   not an idempotent rewrite). Everything else answers `None` (unknown —
//!   never dropped).
//! - [`crate::Pass::clears`] — classes *provably absent* after the pass
//!   runs, regardless of input. Every idempotent pass clears its own bit
//!   (that is the idempotence theorem restated); a non-idempotent owner
//!   clears its bit only if it provably exhausts the class; passes ending
//!   in an unconditional `dce_function` sweep additionally clear [`DEAD`].
//! - [`crate::Pass::produces`] — classes the pass may *create*. The
//!   always-sound default is "everything"; it is narrowed only where the
//!   pass's edit set makes the claim easy (e.g. `sink` moves pure
//!   scalar instructions and therefore cannot mint dead code).
//!
//! Soundness discipline mirrors PR 3's `CannotFire`: every consequence of
//! these masks is fuzz-executed as a theorem (`citroen-analyze subsume`),
//! and a violated claim fails CI rather than silently mis-pruning.

/// Unused pure instructions (what `dce` removes).
pub const DEAD: u64 = 1 << 0;
/// Instructions dead only through cycles/control (what `adce` removes
/// beyond [`DEAD`]).
pub const ADCE: u64 = 1 << 1;
/// Stores overwritten before any read (what `dse` removes).
pub const DSE: u64 = 1 << 2;
/// Pure instructions sinkable into their single use block.
pub const SINK: u64 = 1 << 3;
/// Lattice-provable constants and one-way branches (what `sccp` rewrites).
pub const SCCP: u64 = 1 << 4;
/// Promotable allocas and unreachable blocks (what `mem2reg` consumes).
pub const M2R: u64 = 1 << 5;
/// Instructions with all-constant operands (what `constprop` folds).
pub const CP: u64 = 1 << 6;
/// Block-local redundant pure expressions (what `early-cse` unifies).
pub const ECSE: u64 = 1 << 7;
/// Underivable function attributes (what `function-attrs` infers).
pub const FA: u64 = 1 << 8;
/// Self-recursive calls in tail position (what `tailcallelim` marks).
pub const TCE: u64 = 1 << 9;
/// Loops lacking preheaders/dedicated exits (what `loop-simplify` fixes).
pub const LS: u64 = 1 << 10;
/// Side-effect-free loops with unused results (what `loop-deletion` drops).
pub const LD: u64 = 1 << 11;
/// Foldable branches, unreachable/mergeable/forwarding blocks and
/// single-incoming φs (what `simplifycfg` rewrites).
pub const CFGS: u64 = 1 << 12;
/// Loop-invariant hoistable instructions (what `licm` moves to preheaders).
pub const LICM: u64 = 1 << 13;
/// Constant-trip induction loops within the unroll budget (what
/// `loop-unroll` expands).
pub const IVL: u64 = 1 << 14;
/// While-shaped rotatable headers (what `loop-rotate` converts to do-while).
pub const ROT: u64 = 1 << 15;

/// Every tracked work class.
pub const ALL: u64 = (1 << 16) - 1;

/// Number of tracked classes.
pub const NUM_CLASSES: u32 = 16;

/// Short stable names, bit-index order (used in the interaction-graph JSON).
pub const NAMES: [&str; NUM_CLASSES as usize] = [
    "dead", "adce", "dse", "sink", "sccp", "m2r", "cp", "ecse", "fa", "tce", "ls", "ld",
    "cfgs", "licm", "ivl", "rot",
];

/// Render a mask as `dead|cp|…` (or `-` when empty, `*` when ALL).
pub fn mask_names(mask: u64) -> String {
    if mask == 0 {
        return "-".into();
    }
    if mask & ALL == ALL {
        return "*".into();
    }
    let mut out = Vec::new();
    for (i, n) in NAMES.iter().enumerate() {
        if mask & (1 << i) != 0 {
            out.push(*n);
        }
    }
    out.join("|")
}

/// Parse the output of [`mask_names`] back into a mask.
pub fn mask_from_names(s: &str) -> Option<u64> {
    match s {
        "-" => Some(0),
        "*" => Some(ALL),
        _ => {
            let mut mask = 0u64;
            for part in s.split('|') {
                let i = NAMES.iter().position(|n| *n == part)?;
                mask |= 1 << i;
            }
            Some(mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_are_distinct_and_covered_by_all() {
        let bits =
            [DEAD, ADCE, DSE, SINK, SCCP, M2R, CP, ECSE, FA, TCE, LS, LD, CFGS, LICM, IVL, ROT];
        let mut seen = 0u64;
        for b in bits {
            assert_eq!(seen & b, 0, "duplicate bit {b:#x}");
            seen |= b;
        }
        assert_eq!(seen, ALL);
    }

    #[test]
    fn mask_names_round_trip() {
        for mask in [0, ALL, DEAD, DEAD | CP | LD, ADCE | FA, CFGS | LICM, IVL | ROT] {
            assert_eq!(mask_from_names(&mask_names(mask)), Some(mask));
        }
        assert_eq!(mask_from_names("bogus"), None);
        assert_eq!(mask_from_names("dead|bogus"), None);
    }
}
