//! # citroen-passes
//!
//! The optimiser substrate: ~32 transformation passes over `citroen-ir`, a
//! pass [`manager`] that applies arbitrary pass sequences and collects
//! per-pass compilation [`stats`] (LLVM `-stats-json` style), the reference
//! `-O3` pipeline, and the [`autophase`] static-feature extractor used as the
//! alternative-features baseline.

#![warn(missing_docs)]

pub mod autophase;
pub mod manager;
pub mod oracle;
pub mod passes;
pub mod stats;
pub mod testing;
pub mod util;
pub mod work;

pub use manager::{
    o1_pipeline, o3_pipeline, CompileError, CompileResult, Pass, PassId, PassManager, PassSeq,
    Registry,
};
pub use stats::Stats;
