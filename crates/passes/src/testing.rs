//! Deliberately broken passes for sanitizer and fuzzer tests.
//!
//! These are NOT registered in any production [`Registry`](crate::Registry);
//! tests build private registries around them (via
//! [`Registry::from_passes`](crate::Registry::from_passes)) to prove the
//! translation-validation layer catches well-formed miscompiles. The bug
//! modelled here is the PR 1 partial-unroll regression: a loop-boundary
//! clone that silently drops the side effects of the block it copies.

use crate::manager::Pass;
use crate::stats::Stats;
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::analysis::{Cfg, DomTree, LoopInfo};
use citroen_ir::inst::{Inst, Term};
use citroen_ir::module::Module;

/// A miscompiling "unroll": for the first loop whose exit block has no φs and
/// defines no values, it clones the exit block *without its stores* and
/// redirects the loop's exit edge to the clone. The result is structurally
/// valid — every verifier check passes — but any side effect of the original
/// exit block is lost, exactly the shape of bug the sanitizer exists for.
pub struct BrokenUnroll;

impl Pass for BrokenUnroll {
    fn name(&self) -> &'static str {
        "broken-unroll"
    }

    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            if f.is_decl() {
                continue;
            }
            let cfg = Cfg::compute(f);
            let dom = DomTree::compute(f, &cfg);
            let li = LoopInfo::compute(f, &cfg, &dom);

            // Find a loop exit edge (from, to) leaving the loop whose target
            // is φ-free and defines nothing (so cloning needs no renaming).
            let mut edge = None;
            'outer: for l in &li.loops {
                for &b in &l.blocks {
                    for &s in &cfg.succs[b.idx()] {
                        if !l.contains(s)
                            && f.blocks[s.idx()].insts.iter().all(|i| i.dst().is_none())
                        {
                            edge = Some((b, s));
                            break 'outer;
                        }
                    }
                }
            }
            let Some((from, to)) = edge else { continue };

            // Clone the exit block minus its stores, then retarget the edge.
            let mut clone = f.blocks[to.idx()].clone();
            clone.insts.retain(|i| !matches!(i, Inst::Store { .. }));
            let new_b = f.new_block();
            f.blocks[new_b.idx()] = clone;
            f.blocks[from.idx()].term.for_each_successor_mut(&mut |s: &mut citroen_ir::inst::BlockId| {
                if *s == to {
                    *s = new_b;
                }
            });
            // φs in the *successors of the exit block* would now see a new
            // predecessor; the φ-free/def-free constraint plus terminator
            // cloning keeps those successors' φ edges matched only if they
            // had none from `to` — restrict to exits ending in ret to stay
            // verifier-clean in every case.
            if !matches!(f.blocks[new_b.idx()].term, Term::Ret(_)) {
                // Revert: not the shape this bug needs.
                f.blocks[from.idx()].term.for_each_successor_mut(&mut |s: &mut citroen_ir::inst::BlockId| {
                    if *s == new_b {
                        *s = to;
                    }
                });
                f.blocks.pop();
                continue;
            }
            stats.inc(self.name(), "exit_blocks_cloned", 1);
        }
    }
}

/// A pass whose precondition lies: it always claims
/// [`CannotFire`](Verdict::CannotFire), yet `run` always records a statistic
/// and, when a commutable `Bin` instruction exists, swaps its operands —
/// changing the module fingerprint while preserving semantics. The bug is
/// invisible to the verifier *and* the sanitizer; only the oracle soundness
/// campaign (`citroen-analyze oracle`) can convict it, which is exactly what
/// the regression tests use it to prove.
pub struct LyingPrecondition;

impl Pass for LyingPrecondition {
    fn name(&self) -> &'static str {
        "lying-precondition"
    }

    fn run(&self, m: &mut Module, stats: &mut Stats) {
        // Always-nonzero stats: already a theorem violation on its own.
        stats.inc(self.name(), "invocations", 1);
        'swap: for f in &mut m.funcs {
            for b in &mut f.blocks {
                for i in &mut b.insts {
                    if let Inst::Bin { op, lhs, rhs, .. } = i {
                        if op.commutative() && lhs != rhs {
                            std::mem::swap(lhs, rhs);
                            stats.inc(self.name(), "operands_swapped", 1);
                            break 'swap;
                        }
                    }
                }
            }
        }
    }

    fn precondition(&self, _m: &Module, _facts: &Facts) -> Verdict {
        Verdict::CannotFire
    }
}

/// A pass whose work-class model lies: [`clears`](Pass::clears) claims every
/// work class is exhausted after it runs, yet `run` changes nothing — so any
/// later pass the subsumption canonicalizer drops on its account can still
/// fire. The pass itself is semantics-preserving, verifier-clean,
/// sanitizer-clean, and even upholds its (trivial) precondition; only the
/// subsumption soundness campaign (`citroen-analyze subsume`) can convict
/// the false theorem, which is exactly what the regression tests use it for.
pub struct LyingSubsumption;

impl Pass for LyingSubsumption {
    fn name(&self) -> &'static str {
        "lying-subsumption"
    }

    fn run(&self, _m: &mut Module, _stats: &mut Stats) {}

    fn clears(&self) -> u64 {
        crate::work::ALL // the lie: "nothing can fire after me"
    }

    fn produces(&self) -> u64 {
        0
    }
}

/// A loop whose exit block stores a sentinel to `@out` and returns — the
/// minimal shape [`BrokenUnroll`] miscompiles. Shared by the sanitizer and
/// reducer tests.
pub fn victim_module() -> Module {
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::Operand;
    use citroen_ir::module::GlobalInit;
    use citroen_ir::types::I64;
    let mut m = Module::new("victim");
    let g = m.add_global("out", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
    let n = b.param(0);
    counted_loop_mem(&mut b, n, |_, _| {});
    b.store(I64, Operand::imm64(42), Operand::Global(g));
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    m
}

/// [`victim_module`] with the exit-block store writing a *computed* value
/// (the loop's induction load) instead of a constant. The dropped store then
/// dangles a value the correspondence map can still match, which is what
/// lets the sanitizer's S7 rule localise the miscompile to a value id.
pub fn victim_module_computed() -> Module {
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::Operand;
    use citroen_ir::module::GlobalInit;
    use citroen_ir::types::I64;
    let mut m = Module::new("victim_computed");
    let g = m.add_global("out", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
    let n = b.param(0);
    // A value with a unique dataflow fingerprint (the two induction loads
    // collide with each other, so they cannot anchor the correspondence).
    // Defined in the entry block, it dominates the exit — the exit block
    // itself stays def-free so the broken unroll still fires on it.
    let k = b.bin(citroen_ir::inst::BinOp::Mul, I64, n, Operand::imm64(7));
    counted_loop_mem(&mut b, n, |_, _| {});
    b.store(I64, k, Operand::Global(g));
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::verify::verify_module;

    #[test]
    fn broken_unroll_is_verifier_clean_but_drops_the_store() {
        let mut m = victim_module();
        let stores = |m: &Module| {
            m.funcs[0]
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|i| matches!(i, Inst::Store { .. }))
                .count()
        };
        let before = stores(&m);
        let mut stats = Stats::new();
        BrokenUnroll.run(&mut m, &mut stats);
        // The bug is invisible to the structural verifier...
        assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
        // ...but the observable store on the hot exit path is gone.
        assert!(stores(&m) < before + 1, "clone should not add stores");
        use citroen_ir::inst::FuncId;
        use citroen_ir::interp::{run_counting, Value};
        let (out, _) = run_counting(&m, FuncId(0), &[Value::I(7)]).expect("runs fine");
        let (clean, _) =
            run_counting(&victim_module(), FuncId(0), &[Value::I(7)]).expect("runs fine");
        assert_ne!(out.mem_digest, clean.mem_digest, "the miscompile must be observable");
    }

    #[test]
    fn lying_precondition_is_convicted_by_the_oracle_checker() {
        // Semantics-preserving, verifier-clean, sanitizer-clean — but the
        // CannotFire theorem is violated and the checker must say so.
        let verdict = crate::oracle::check_cannot_fire(&LyingPrecondition, &victim_module());
        let msg = verdict.expect("oracle checker must convict the lying pass");
        assert!(msg.contains("lying-precondition"), "{msg}");

        // Sanity: the honest registry stays clean on the same module, so the
        // conviction above is about the lie, not the module.
        let reg = crate::Registry::full();
        assert_eq!(crate::oracle::check_registry(&reg, &victim_module()), None);
    }
}
