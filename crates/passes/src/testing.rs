//! Deliberately broken passes for sanitizer and fuzzer tests.
//!
//! These are NOT registered in any production [`Registry`](crate::Registry);
//! tests build private registries around them (via
//! [`Registry::from_passes`](crate::Registry::from_passes)) to prove the
//! translation-validation layer catches well-formed miscompiles. The bug
//! modelled here is the PR 1 partial-unroll regression: a loop-boundary
//! clone that silently drops the side effects of the block it copies.

use crate::manager::Pass;
use crate::stats::Stats;
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::analysis::{Cfg, DomTree, LoopInfo};
use citroen_ir::inst::{Inst, Term};
use citroen_ir::module::Module;

/// A miscompiling "unroll": for the first loop whose exit block has no φs and
/// defines no values, it clones the exit block *without its stores* and
/// redirects the loop's exit edge to the clone. The result is structurally
/// valid — every verifier check passes — but any side effect of the original
/// exit block is lost, exactly the shape of bug the sanitizer exists for.
pub struct BrokenUnroll;

impl Pass for BrokenUnroll {
    fn name(&self) -> &'static str {
        "broken-unroll"
    }

    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            if f.is_decl() {
                continue;
            }
            let cfg = Cfg::compute(f);
            let dom = DomTree::compute(f, &cfg);
            let li = LoopInfo::compute(f, &cfg, &dom);

            // Find a loop exit edge (from, to) leaving the loop whose target
            // is φ-free and defines nothing (so cloning needs no renaming).
            let mut edge = None;
            'outer: for l in &li.loops {
                for &b in &l.blocks {
                    for &s in &cfg.succs[b.idx()] {
                        if !l.contains(s)
                            && f.blocks[s.idx()].insts.iter().all(|i| i.dst().is_none())
                        {
                            edge = Some((b, s));
                            break 'outer;
                        }
                    }
                }
            }
            let Some((from, to)) = edge else { continue };

            // Clone the exit block minus its stores, then retarget the edge.
            let mut clone = f.blocks[to.idx()].clone();
            clone.insts.retain(|i| !matches!(i, Inst::Store { .. }));
            let new_b = f.new_block();
            f.blocks[new_b.idx()] = clone;
            f.blocks[from.idx()].term.for_each_successor_mut(&mut |s: &mut citroen_ir::inst::BlockId| {
                if *s == to {
                    *s = new_b;
                }
            });
            // φs in the *successors of the exit block* would now see a new
            // predecessor; the φ-free/def-free constraint plus terminator
            // cloning keeps those successors' φ edges matched only if they
            // had none from `to` — restrict to exits ending in ret to stay
            // verifier-clean in every case.
            if !matches!(f.blocks[new_b.idx()].term, Term::Ret(_)) {
                // Revert: not the shape this bug needs.
                f.blocks[from.idx()].term.for_each_successor_mut(&mut |s: &mut citroen_ir::inst::BlockId| {
                    if *s == new_b {
                        *s = to;
                    }
                });
                f.blocks.pop();
                continue;
            }
            stats.inc(self.name(), "exit_blocks_cloned", 1);
        }
    }
}

/// A pass whose precondition lies: it always claims
/// [`CannotFire`](Verdict::CannotFire), yet `run` always records a statistic
/// and, when a commutable `Bin` instruction exists, swaps its operands —
/// changing the module fingerprint while preserving semantics. The bug is
/// invisible to the verifier *and* the sanitizer; only the oracle soundness
/// campaign (`citroen-analyze oracle`) can convict it, which is exactly what
/// the regression tests use it to prove.
pub struct LyingPrecondition;

impl Pass for LyingPrecondition {
    fn name(&self) -> &'static str {
        "lying-precondition"
    }

    fn run(&self, m: &mut Module, stats: &mut Stats) {
        // Always-nonzero stats: already a theorem violation on its own.
        stats.inc(self.name(), "invocations", 1);
        'swap: for f in &mut m.funcs {
            for b in &mut f.blocks {
                for i in &mut b.insts {
                    if let Inst::Bin { op, lhs, rhs, .. } = i {
                        if op.commutative() && lhs != rhs {
                            std::mem::swap(lhs, rhs);
                            stats.inc(self.name(), "operands_swapped", 1);
                            break 'swap;
                        }
                    }
                }
            }
        }
    }

    fn precondition(&self, _m: &Module, _facts: &Facts) -> Verdict {
        Verdict::CannotFire
    }
}

/// A pass whose `CannotFire` claim rests on an unsound *alias* judgment.
/// `run` performs honest store→load forwarding — a load whose address is the
/// structurally identical operand of an earlier same-block store, with no
/// intervening store or call, provably reads the stored value, so every use
/// of the load is rewritten to the store's operand (semantics-preserving,
/// verifier-clean) — and records, as statistics, every computed-address load
/// its alias scan examined along the way. The precondition mirrors the scan
/// but only believes an address can be alias-relevant when it is a *literal
/// global*, silently assuming computed addresses (allocas, pointer
/// arithmetic) never resolve to anything. On any module whose memory traffic
/// flows through computed addresses the verdict is a lie, and only the
/// oracle soundness campaign (`citroen-analyze oracle`) can convict it.
pub struct LyingAliasPrecondition;

/// Same-block store→load forwarding candidates over structurally identical
/// address operands. `globals_only` is the lie: restricting the scan to
/// literal-global addresses is exactly the unsound "computed addresses never
/// must-alias" assumption the precondition makes.
fn forwarding_candidate(m: &Module, globals_only: bool) -> Option<(usize, usize, usize)> {
    use citroen_ir::inst::Operand;
    for (fi, f) in m.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for (li, inst) in b.insts.iter().enumerate() {
                let Inst::Load { dst, addr } = inst else { continue };
                if globals_only && !matches!(addr, Operand::Global(_)) {
                    continue;
                }
                let lty = f.ty(*dst);
                for j in (0..li).rev() {
                    match &b.insts[j] {
                        Inst::Store { ty, addr: saddr, .. } => {
                            if saddr == addr && *ty == lty {
                                return Some((fi, bi, li));
                            }
                            break; // any other store: stop, could clobber
                        }
                        Inst::Call { .. } => break,
                        _ => {}
                    }
                }
            }
        }
    }
    None
}

impl Pass for LyingAliasPrecondition {
    fn name(&self) -> &'static str {
        "lying-alias-precondition"
    }

    fn run(&self, m: &mut Module, stats: &mut Stats) {
        // The census the precondition's model forgets: every computed-address
        // load is an access the alias scan had to examine (and could, in a
        // sharper module state, forward through).
        let examined: usize = m
            .funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(i, Inst::Load { addr: citroen_ir::inst::Operand::Value(_), .. })
            })
            .count();
        if examined > 0 {
            stats.inc(self.name(), "computed_loads_examined", examined as u64);
        }
        let Some((fi, bi, li)) = forwarding_candidate(m, false) else { return };
        let f = &mut m.funcs[fi];
        let (dst, val) = {
            let insts = &f.blocks[bi].insts;
            let Inst::Load { dst, .. } = &insts[li] else { unreachable!() };
            let store = insts[..li]
                .iter()
                .rev()
                .find_map(|i| if let Inst::Store { val, .. } = i { Some(*val) } else { None });
            (*dst, store.expect("candidate has a store"))
        };
        for b in &mut f.blocks {
            for i in &mut b.insts {
                i.for_each_operand_mut(|op| {
                    if *op == citroen_ir::inst::Operand::Value(dst) {
                        *op = val;
                    }
                });
            }
            b.term.for_each_operand_mut(|op| {
                if *op == citroen_ir::inst::Operand::Value(dst) {
                    *op = val;
                }
            });
        }
        stats.inc(self.name(), "loads_forwarded", 1);
    }

    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        if forwarding_candidate(m, true).is_some() {
            Verdict::MayFire { evidence: "literal-global forwarding candidate".to_string() }
        } else {
            Verdict::CannotFire // the lie, whenever a computed-address candidate exists
        }
    }
}

/// A pass whose work-class model lies: [`clears`](Pass::clears) claims every
/// work class is exhausted after it runs, yet `run` changes nothing — so any
/// later pass the subsumption canonicalizer drops on its account can still
/// fire. The pass itself is semantics-preserving, verifier-clean,
/// sanitizer-clean, and even upholds its (trivial) precondition; only the
/// subsumption soundness campaign (`citroen-analyze subsume`) can convict
/// the false theorem, which is exactly what the regression tests use it for.
pub struct LyingSubsumption;

impl Pass for LyingSubsumption {
    fn name(&self) -> &'static str {
        "lying-subsumption"
    }

    fn run(&self, _m: &mut Module, _stats: &mut Stats) {}

    fn clears(&self) -> u64 {
        crate::work::ALL // the lie: "nothing can fire after me"
    }

    fn produces(&self) -> u64 {
        0
    }
}

/// A loop whose exit block stores a sentinel to `@out` and returns — the
/// minimal shape [`BrokenUnroll`] miscompiles. Shared by the sanitizer and
/// reducer tests.
pub fn victim_module() -> Module {
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::Operand;
    use citroen_ir::module::GlobalInit;
    use citroen_ir::types::I64;
    let mut m = Module::new("victim");
    let g = m.add_global("out", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
    let n = b.param(0);
    counted_loop_mem(&mut b, n, |_, _| {});
    b.store(I64, Operand::imm64(42), Operand::Global(g));
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    m
}

/// [`victim_module`] with the exit-block store writing a *computed* value
/// (the loop's induction load) instead of a constant. The dropped store then
/// dangles a value the correspondence map can still match, which is what
/// lets the sanitizer's S7 rule localise the miscompile to a value id.
pub fn victim_module_computed() -> Module {
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::Operand;
    use citroen_ir::module::GlobalInit;
    use citroen_ir::types::I64;
    let mut m = Module::new("victim_computed");
    let g = m.add_global("out", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
    let n = b.param(0);
    // A value with a unique dataflow fingerprint (the two induction loads
    // collide with each other, so they cannot anchor the correspondence).
    // Defined in the entry block, it dominates the exit — the exit block
    // itself stays def-free so the broken unroll still fires on it.
    let k = b.bin(citroen_ir::inst::BinOp::Mul, I64, n, Operand::imm64(7));
    counted_loop_mem(&mut b, n, |_, _| {});
    b.store(I64, k, Operand::Global(g));
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::verify::verify_module;

    #[test]
    fn broken_unroll_is_verifier_clean_but_drops_the_store() {
        let mut m = victim_module();
        let stores = |m: &Module| {
            m.funcs[0]
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|i| matches!(i, Inst::Store { .. }))
                .count()
        };
        let before = stores(&m);
        let mut stats = Stats::new();
        BrokenUnroll.run(&mut m, &mut stats);
        // The bug is invisible to the structural verifier...
        assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
        // ...but the observable store on the hot exit path is gone.
        assert!(stores(&m) < before + 1, "clone should not add stores");
        use citroen_ir::inst::FuncId;
        use citroen_ir::interp::{run_counting, Value};
        let (out, _) = run_counting(&m, FuncId(0), &[Value::I(7)]).expect("runs fine");
        let (clean, _) =
            run_counting(&victim_module(), FuncId(0), &[Value::I(7)]).expect("runs fine");
        assert_ne!(out.mem_digest, clean.mem_digest, "the miscompile must be observable");
    }

    #[test]
    fn lying_alias_precondition_is_convicted_by_the_oracle_checker() {
        // A store→load pair through an alloca: the honest forwarding in
        // `run` fires, but the precondition's "computed addresses never
        // must-alias" rule sees no literal-global candidate and claims
        // CannotFire. The oracle checker must observe the contradiction.
        use citroen_ir::builder::FunctionBuilder;
        use citroen_ir::inst::Operand;
        use citroen_ir::module::GlobalInit;
        use citroen_ir::types::I64;
        let mut m = Module::new("alias_victim");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("main", vec![], Some(I64));
        let a = b.alloca(8);
        b.store(I64, Operand::imm64(42), a);
        let v = b.load(I64, a);
        b.store(I64, v, Operand::Global(g));
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());

        let verdict = crate::oracle::check_cannot_fire(&LyingAliasPrecondition, &m);
        let msg = verdict.expect("oracle checker must convict the alias lie");
        assert!(msg.contains("lying-alias-precondition"), "{msg}");

        // The transform itself is honest: forwarding preserves semantics.
        use citroen_ir::inst::FuncId;
        use citroen_ir::interp::{run_counting, Value};
        let mut fwd = m.clone();
        let mut stats = Stats::new();
        LyingAliasPrecondition.run(&mut fwd, &mut stats);
        assert!(!stats.is_empty(), "run must fire on the victim");
        assert!(verify_module(&fwd).is_empty(), "{:?}", verify_module(&fwd));
        let (before, _) = run_counting(&m, FuncId(0), &[]).expect("runs fine");
        let (after, _) = run_counting(&fwd, FuncId(0), &[]).expect("runs fine");
        assert_eq!(before.mem_digest, after.mem_digest, "forwarding is semantics-preserving");
    }

    #[test]
    fn lying_precondition_is_convicted_by_the_oracle_checker() {
        // Semantics-preserving, verifier-clean, sanitizer-clean — but the
        // CannotFire theorem is violated and the checker must say so.
        let verdict = crate::oracle::check_cannot_fire(&LyingPrecondition, &victim_module());
        let msg = verdict.expect("oracle checker must convict the lying pass");
        assert!(msg.contains("lying-precondition"), "{msg}");

        // Sanity: the honest registry stays clean on the same module, so the
        // conviction above is about the lie, not the module.
        let reg = crate::Registry::full();
        assert_eq!(crate::oracle::check_registry(&reg, &victim_module()), None);
    }
}
