//! Pass-related compilation statistics — the feature source CITROEN is built
//! around (paper §5.2, Table 5.1).
//!
//! Every pass increments named counters while it transforms the IR, exactly
//! like LLVM's `-stats`. [`Stats::to_json`] mirrors the `-stats-json` format
//! the paper's tooling consumes: a list of `{ "pass.stat": value }` entries.

use citroen_rt::json;
use std::collections::BTreeMap;

/// A bag of `pass.statistic → count` entries collected during compilation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    map: BTreeMap<(String, String), u64>,
}

impl Stats {
    /// Empty statistics.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Increment `pass.stat` by `n`.
    pub fn inc(&mut self, pass: &str, stat: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self.map.entry((pass.to_string(), stat.to_string())).or_insert(0) += n;
    }

    /// Current value of `pass.stat` (0 if never incremented).
    pub fn get(&self, pass: &str, stat: &str) -> u64 {
        self.map.get(&(pass.to_string(), stat.to_string())).copied().unwrap_or(0)
    }

    /// Number of distinct counters recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no counter was recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(pass, stat, value)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.map.iter().map(|((p, s), v)| (p.as_str(), s.as_str(), *v))
    }

    /// Sum of every counter value (the "how much fired" scalar the
    /// per-pass telemetry counters are built from).
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// Merge another stats bag into this one (summing counters). Used when a
    /// pass sequence applies the same pass several times, and when multi-module
    /// programs concatenate per-module statistics.
    pub fn merge(&mut self, other: &Stats) {
        for ((p, s), v) in &other.map {
            *self.map.entry((p.clone(), s.clone())).or_insert(0) += v;
        }
    }

    /// Sorted list of `pass.stat` keys.
    pub fn keys(&self) -> Vec<String> {
        self.map.keys().map(|(p, s)| format!("{p}.{s}")).collect()
    }

    /// Value by dotted key `pass.stat`.
    pub fn get_dotted(&self, key: &str) -> u64 {
        match key.split_once('.') {
            Some((p, s)) => self.get(p, s),
            None => 0,
        }
    }

    /// Dense feature vector aligned to a caller-provided key universe (the
    /// union-alignment step of CITROEN's feature pipeline): missing keys are 0.
    pub fn to_vector(&self, keys: &[String]) -> Vec<f64> {
        keys.iter().map(|k| self.get_dotted(k) as f64).collect()
    }

    /// Serialise in LLVM `-stats-json` style:
    /// `{ "mem2reg.NumPromoted": 21, ... }`.
    pub fn to_json(&self) -> String {
        let obj: BTreeMap<String, u64> =
            self.map.iter().map(|((p, s), v)| (format!("{p}.{s}"), *v)).collect();
        json::emit_object_pretty(&obj)
    }

    /// Parse the `-stats-json` style object produced by [`Stats::to_json`].
    pub fn from_json(s: &str) -> Result<Stats, json::JsonError> {
        let obj: BTreeMap<String, u64> = json::parse_object(s)?;
        let mut out = Stats::new();
        for (k, v) in obj {
            if let Some((p, st)) = k.split_once('.') {
                out.inc(p, st, v);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_get_merge() {
        let mut s = Stats::new();
        s.inc("mem2reg", "NumPromoted", 3);
        s.inc("mem2reg", "NumPromoted", 2);
        s.inc("slp", "NumVectorInstructions", 0); // no-op
        assert_eq!(s.get("mem2reg", "NumPromoted"), 5);
        assert_eq!(s.get("slp", "NumVectorInstructions"), 0);
        assert_eq!(s.len(), 1);

        let mut t = Stats::new();
        t.inc("mem2reg", "NumPromoted", 1);
        t.inc("gvn", "NumGVNInstr", 7);
        s.merge(&t);
        assert_eq!(s.get("mem2reg", "NumPromoted"), 6);
        assert_eq!(s.get("gvn", "NumGVNInstr"), 7);
    }

    #[test]
    fn json_roundtrip() {
        let mut s = Stats::new();
        s.inc("mem2reg", "NumPromoted", 21);
        s.inc("slp", "NumVectorInstructions", 14);
        let j = s.to_json();
        assert!(j.contains("\"mem2reg.NumPromoted\": 21"));
        let back = Stats::from_json(&j).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn feature_vector_alignment() {
        let mut s = Stats::new();
        s.inc("a", "X", 2);
        s.inc("b", "Y", 5);
        let keys = vec!["b.Y".to_string(), "missing.Z".to_string(), "a.X".to_string()];
        assert_eq!(s.to_vector(&keys), vec![5.0, 0.0, 2.0]);
    }
}
