//! `mem2reg` — promote memory slots to SSA registers — and `sroa` — scalar
//! replacement of aggregates. These are the gatekeeper passes of the paper's
//! motivating example (Fig. 5.1): SLP vectorisation can only see values that
//! live in registers, so `mem2reg` must run before `slp-vectorizer`.

use crate::manager::Pass;
use crate::stats::Stats;
use crate::util::{
    addr_expr, def_sites, has_unreachable_blocks, remove_unreachable_blocks, replace_uses,
};
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::analysis::{Cfg, DomTree};
use citroen_ir::inst::{BlockId, Inst, Operand, ValueId};
use citroen_ir::module::{Function, Module};
use citroen_ir::types::{ScalarTy, Ty};
use std::collections::{HashMap, HashSet};

/// The `mem2reg` pass.
pub struct Mem2Reg;

impl Pass for Mem2Reg {
    fn name(&self) -> &'static str {
        "mem2reg"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::M2R)
    }
    fn clears(&self) -> u64 {
        crate::work::M2R
    }
    fn produces(&self) -> u64 {
        // Promotion deletes loads/stores/allocas and inserts φs — that can
        // enable nearly anything — but it adds no CFG edges, and stripping
        // unreachable blocks only ever removes loops, so loop-simplify work
        // cannot appear.
        crate::work::ALL & !(crate::work::M2R | crate::work::LS)
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            promote_function(f, stats);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // `promote_function` unconditionally strips unreachable blocks before
        // promoting, so both halves must be no-ops for CannotFire.
        for f in &m.funcs {
            if has_unreachable_blocks(f) {
                return Verdict::may(format!("{}: unreachable blocks to strip", f.name));
            }
            let n = find_promotable(f).len();
            if n > 0 {
                return Verdict::may(format!("{}: {n} promotable alloca(s)", f.name));
            }
        }
        Verdict::CannotFire
    }
}

struct Promotable {
    alloca: ValueId,
    ty: Ty,
    def_blocks: Vec<BlockId>,
}

/// Find allocas whose address is used *only* directly as the pointer operand
/// of scalar loads/stores of one consistent type.
fn find_promotable(f: &Function) -> Vec<Promotable> {
    // usage[v] = (ok_so_far, access type, def blocks)
    let mut cands: HashMap<ValueId, (Option<Ty>, Vec<BlockId>, u32)> = HashMap::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Inst::Alloca { dst, bytes } = inst {
                cands.insert(*dst, (None, Vec::new(), *bytes));
            }
        }
    }
    if cands.is_empty() {
        return Vec::new();
    }
    let mut disqualified: HashSet<ValueId> = HashSet::new();
    let observe = |cands: &mut HashMap<ValueId, (Option<Ty>, Vec<BlockId>, u32)>,
                       disq: &mut HashSet<ValueId>,
                       v: ValueId,
                       access: Option<(Ty, Option<BlockId>)>| {
        if let Some((ty_slot, defs, bytes)) = cands.get_mut(&v) {
            match access {
                None => {
                    disq.insert(v);
                }
                Some((ty, store_block)) => {
                    if ty.is_vector() || ty.bytes() > *bytes {
                        disq.insert(v);
                        return;
                    }
                    match ty_slot {
                        None => *ty_slot = Some(ty),
                        Some(t) if *t != ty => {
                            disq.insert(v);
                            return;
                        }
                        _ => {}
                    }
                    if let Some(b) = store_block {
                        defs.push(b);
                    }
                }
            }
        }
    };

    for (b, blk) in f.iter_blocks() {
        for inst in &blk.insts {
            match inst {
                Inst::Load { dst, addr } => {
                    if let Some(v) = addr.as_value() {
                        observe(&mut cands, &mut disqualified, v, Some((f.ty(*dst), None)));
                    }
                }
                Inst::Store { ty, val, addr } => {
                    // The address may be stored as a value — that's an escape.
                    if let Some(v) = val.as_value() {
                        observe(&mut cands, &mut disqualified, v, None);
                    }
                    if let Some(v) = addr.as_value() {
                        observe(&mut cands, &mut disqualified, v, Some((*ty, Some(b))));
                    }
                }
                other => {
                    other.for_each_operand(|op| {
                        if let Some(v) = op.as_value() {
                            observe(&mut cands, &mut disqualified, v, None);
                        }
                    });
                }
            }
        }
        blk.term.for_each_operand(|op| {
            if let Some(v) = op.as_value() {
                observe(&mut cands, &mut disqualified, v, None);
            }
        });
    }
    let mut out: Vec<Promotable> = cands
        .into_iter()
        .filter(|(v, _)| !disqualified.contains(v))
        .filter_map(|(v, (ty, defs, _))| {
            // Allocas never accessed: droppable by DCE; don't bother here.
            ty.map(|ty| Promotable { alloca: v, ty, def_blocks: defs })
        })
        .collect();
    out.sort_by_key(|p| p.alloca);
    out
}

fn promote_function(f: &mut Function, stats: &mut Stats) {
    // φ placement requires every pred of a reachable block to be visited.
    remove_unreachable_blocks(f);
    let promotable = find_promotable(f);
    if promotable.is_empty() {
        return;
    }
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);

    // Insert φs at the iterated dominance frontier of each alloca's stores.
    // phi_of[(block, cand_idx)] -> φ value.
    let mut phi_of: HashMap<(BlockId, usize), ValueId> = HashMap::new();
    let mut num_phis = 0u64;
    for (ci, cand) in promotable.iter().enumerate() {
        let mut work: Vec<BlockId> = cand.def_blocks.clone();
        let mut placed: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            for &df in &dom.frontier[b.idx()] {
                if placed.insert(df) {
                    let v = f.new_value(cand.ty);
                    // Placeholder φ; incomings filled during renaming.
                    f.blocks[df.idx()]
                        .insts
                        .insert(0, Inst::Phi { dst: v, incoming: Vec::new() });
                    phi_of.insert((df, ci), v);
                    num_phis += 1;
                    work.push(df);
                }
            }
        }
    }

    // Renaming walk over the dominator tree.
    let idx_of: HashMap<ValueId, usize> =
        promotable.iter().enumerate().map(|(i, p)| (p.alloca, i)).collect();
    let zero_of = |ty: Ty| -> Operand {
        if ty.scalar == ScalarTy::F64 {
            Operand::ImmF(0.0)
        } else {
            Operand::ImmI(0, ty.scalar)
        }
    };
    // Allocas are zero-initialised by the interpreter, so the incoming value
    // at the entry is a typed zero, keeping load-before-store semantics exact.
    let mut stacks: Vec<Vec<Operand>> =
        promotable.iter().map(|p| vec![zero_of(p.ty)]).collect();

    // Collected rewrites: load value -> replacement operand.
    let mut load_subst: Vec<(ValueId, Operand)> = Vec::new();
    // (block, inst-index) of loads/stores/allocas to delete.
    let mut to_delete: HashSet<(u32, usize)> = HashSet::new();
    // φ incoming fills: (block, φ value, pred, operand).
    let mut phi_fill: Vec<(BlockId, ValueId, BlockId, Operand)> = Vec::new();

    // Iterative DFS preorder with explicit push/pop of value stacks.
    enum Action {
        Visit(BlockId),
        Pop(Vec<usize>), // candidate indices whose stacks to pop once
    }
    let mut agenda = vec![Action::Visit(BlockId(0))];
    while let Some(action) = agenda.pop() {
        match action {
            Action::Pop(cis) => {
                for ci in cis {
                    stacks[ci].pop();
                }
            }
            Action::Visit(b) => {
                let mut pushed: Vec<usize> = Vec::new();
                // φs inserted for candidates define new current values first.
                for (key, v) in phi_of.iter() {
                    if key.0 == b {
                        stacks[key.1].push(Operand::Value(*v));
                        pushed.push(key.1);
                    }
                }
                for (i, inst) in f.blocks[b.idx()].insts.iter().enumerate() {
                    match inst {
                        Inst::Alloca { dst, .. } => {
                            if idx_of.contains_key(dst) {
                                to_delete.insert((b.0, i));
                            }
                        }
                        Inst::Load { dst, addr } => {
                            if let Some(ci) =
                                addr.as_value().and_then(|v| idx_of.get(&v)).copied()
                            {
                                let cur = *stacks[ci].last().unwrap();
                                load_subst.push((*dst, cur));
                                to_delete.insert((b.0, i));
                            }
                        }
                        Inst::Store { val, addr, .. } => {
                            if let Some(ci) =
                                addr.as_value().and_then(|v| idx_of.get(&v)).copied()
                            {
                                stacks[ci].push(*val);
                                pushed.push(ci);
                                to_delete.insert((b.0, i));
                            }
                        }
                        _ => {}
                    }
                }
                // Fill φ incomings of successors for this edge.
                for s in f.blocks[b.idx()].term.successors() {
                    for (key, v) in phi_of.iter() {
                        if key.0 == s {
                            let cur = *stacks[key.1].last().unwrap();
                            phi_fill.push((s, *v, b, cur));
                        }
                    }
                }
                // Schedule stack pops after the subtree, then visit dom children.
                agenda.push(Action::Pop(pushed));
                for &c in &dom.children[b.idx()] {
                    agenda.push(Action::Visit(c));
                }
            }
        }
    }

    // Apply φ fills. A load replaced by another promoted load's value chains
    // through load_subst, so resolve substitutions transitively first.
    let subst_map: HashMap<ValueId, Operand> = load_subst.iter().cloned().collect();
    let resolve = |mut op: Operand| -> Operand {
        for _ in 0..subst_map.len() + 1 {
            match op {
                Operand::Value(v) => match subst_map.get(&v) {
                    Some(next) => op = *next,
                    None => break,
                },
                _ => break,
            }
        }
        op
    };
    for (blk, phi, pred, op) in phi_fill {
        let op = resolve(op);
        for inst in &mut f.blocks[blk.idx()].insts {
            if let Inst::Phi { dst, incoming } = inst {
                if *dst == phi {
                    incoming.push((pred, op));
                    break;
                }
            }
        }
    }
    // Rewrite load uses.
    for (from, _) in &load_subst {
        let to = resolve(Operand::Value(*from));
        replace_uses(f, *from, to);
    }
    // φ operands that referenced promoted loads also need resolution (handled
    // above because replace_uses rewrites φ operands too).

    // Delete the promoted loads/stores/allocas (descending index per block).
    let mut by_block: HashMap<u32, Vec<usize>> = HashMap::new();
    for (b, i) in to_delete {
        by_block.entry(b).or_default().push(i);
    }
    for (b, mut idxs) in by_block {
        idxs.sort_unstable_by(|a, c| c.cmp(a));
        for i in idxs {
            f.blocks[b as usize].insts.remove(i);
        }
    }
    // φs whose incomings are all identical (or single-pred) simplify away.
    crate::util::simplify_single_incoming_phis(f);

    stats.inc("mem2reg", "NumPromoted", promotable.len() as u64);
    stats.inc("mem2reg", "NumPHIInsert", num_phis);
}

/// The `sroa` pass: split allocas accessed at constant offsets into scalar
/// allocas, so `mem2reg` can promote them.
pub struct Sroa;

impl Pass for Sroa {
    fn name(&self) -> &'static str {
        "sroa"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            sroa_function(f, stats);
        }
        // SROA's job in LLVM includes promotion; keep ours minimal (split
        // only) — the split slots are then promoted by a later mem2reg.
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // `sroa_function` bails before doing anything unless some alloca is
        // larger than a scalar slot (8 bytes).
        for f in &m.funcs {
            for blk in &f.blocks {
                for inst in &blk.insts {
                    if let Inst::Alloca { bytes, .. } = inst {
                        if *bytes > 8 {
                            return Verdict::may(format!(
                                "{}: {bytes}-byte alloca is splittable",
                                f.name
                            ));
                        }
                    }
                }
            }
        }
        Verdict::CannotFire
    }
}

fn sroa_function(f: &mut Function, stats: &mut Stats) {
    let sites = def_sites(f);
    // Find allocas > 8 bytes whose every use is an address chain ending in a
    // scalar access at a constant offset.
    let mut alloca_list: Vec<(ValueId, u32)> = Vec::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Inst::Alloca { dst, bytes } = inst {
                if *bytes > 8 {
                    alloca_list.push((*dst, *bytes));
                }
            }
        }
    }
    if alloca_list.is_empty() {
        return;
    }

    // Collect accesses by walking loads/stores and decomposing addresses.
    // accesses[alloca] -> Vec<(offset, ty)>
    let mut accesses: HashMap<ValueId, Vec<(i64, Ty)>> = HashMap::new();
    let mut bad: HashSet<ValueId> = HashSet::new();
    let allocas: HashSet<ValueId> = alloca_list.iter().map(|(v, _)| *v).collect();

    for blk in &f.blocks {
        for inst in &blk.insts {
            match inst {
                Inst::Load { dst, addr } => {
                    let e = addr_expr(f, &sites, addr);
                    if let Some(v) = e.single_base().and_then(|b| b.as_value()) {
                        if allocas.contains(&v) {
                            accesses.entry(v).or_default().push((e.offset, f.ty(*dst)));
                        }
                    }
                }
                Inst::Store { ty, val, addr } => {
                    let e = addr_expr(f, &sites, addr);
                    if let Some(v) = e.single_base().and_then(|b| b.as_value()) {
                        if allocas.contains(&v) {
                            accesses.entry(v).or_default().push((e.offset, *ty));
                        }
                    }
                    // Storing a derived pointer escapes the alloca.
                    let ev = addr_expr(f, &sites, val);
                    if let Some(v) = ev.single_base().and_then(|b| b.as_value()) {
                        if allocas.contains(&v) {
                            bad.insert(v);
                        }
                    }
                }
                other => {
                    // Any other use of the alloca or a derived pointer is only
                    // acceptable if it is the `add` forming an access chain —
                    // approximated by allowing adds with const and rejecting
                    // everything else that isn't consumed as an address.
                    if !matches!(other, Inst::Bin { op: citroen_ir::inst::BinOp::Add, .. }
                        | Inst::Bin { op: citroen_ir::inst::BinOp::Sub, .. })
                    {
                        other.for_each_operand(|op| {
                            let e = addr_expr(f, &sites, op);
                            if let Some(v) = e.single_base().and_then(|b| b.as_value()) {
                                if allocas.contains(&v) {
                                    bad.insert(v);
                                }
                            }
                        });
                    }
                }
            }
        }
        blk.term.for_each_operand(|op| {
            let e = addr_expr(f, &sites, op);
            if let Some(v) = e.single_base().and_then(|b| b.as_value()) {
                if allocas.contains(&v) {
                    bad.insert(v);
                }
            }
        });
    }

    let mut split = 0u64;
    for (alloca, bytes) in alloca_list {
        if bad.contains(&alloca) {
            continue;
        }
        let Some(accs) = accesses.get(&alloca) else { continue };
        // Group by offset; require type consistency and disjoint ranges.
        let mut slots: HashMap<i64, Ty> = HashMap::new();
        let mut ok = true;
        for (off, ty) in accs {
            if ty.is_vector() || *off < 0 || *off + ty.bytes() as i64 > bytes as i64 {
                ok = false;
                break;
            }
            match slots.get(off) {
                None => {
                    slots.insert(*off, *ty);
                }
                Some(t) if t != ty => {
                    ok = false;
                    break;
                }
                _ => {}
            }
        }
        if !ok || slots.is_empty() {
            continue;
        }
        let mut ranges: Vec<(i64, i64)> =
            slots.iter().map(|(o, t)| (*o, *o + t.bytes() as i64)).collect();
        ranges.sort_unstable();
        if ranges.windows(2).any(|w| w[0].1 > w[1].0) {
            continue; // overlapping accesses — leave to the conservative path
        }

        // Create one alloca per slot (inserted right after the original).
        let Some(&(ab, ai)) = sites.get(&alloca) else { continue };
        let mut offsets: Vec<i64> = slots.keys().copied().collect();
        offsets.sort_unstable();
        let mut slot_value: HashMap<i64, ValueId> = HashMap::new();
        for (k, off) in offsets.iter().enumerate() {
            let ty = slots[off];
            let v = f.new_value(citroen_ir::types::I64);
            f.blocks[ab.idx()]
                .insts
                .insert(ai + 1 + k, Inst::Alloca { dst: v, bytes: ty.bytes() });
            slot_value.insert(*off, v);
        }
        // Rewrite each access's address operand to the matching slot value.
        // Phase 1 (immutable): find (block, inst) accesses of this alloca and
        // their offsets. Phase 2 (mutable): patch the address operands.
        let sites2 = def_sites(f);
        let mut patches: Vec<(usize, usize, ValueId)> = Vec::new();
        for (bi, blk) in f.blocks.iter().enumerate() {
            for (ii, inst) in blk.insts.iter().enumerate() {
                if let Inst::Load { addr, .. } | Inst::Store { addr, .. } = inst {
                    let e = addr_expr(f, &sites2, addr);
                    if e.single_base().and_then(|b| b.as_value()) == Some(alloca) {
                        if let Some(nv) = slot_value.get(&e.offset) {
                            patches.push((bi, ii, *nv));
                        }
                    }
                }
            }
        }
        for (bi, ii, nv) in patches {
            match &mut f.blocks[bi].insts[ii] {
                Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                    *addr = Operand::Value(nv);
                }
                _ => unreachable!(),
            }
        }
        split += 1;
        stats.inc("sroa", "NumSlots", slots.len() as u64);
    }
    if split > 0 {
        // The original allocas and their address arithmetic are now dead.
        crate::util::dce_function(f);
    }
    stats.inc("sroa", "NumReplaced", split);
}
