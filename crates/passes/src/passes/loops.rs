//! Loop passes: `loop-simplify`, `loop-rotate`, `licm`, `indvars`,
//! `loop-unroll`, `loop-deletion`, `strength-reduce`.
//!
//! The transforms handle the canonical shapes our front end produces: the
//! two-block while-loop that `counted_loop_mem` + `mem2reg` yield, and the
//! single-block do-while ("self-loop") that `loop-rotate` produces. The
//! enabling chains mirror LLVM's: *rotate* turns while-loops into do-whiles,
//! which lets *licm* hoist loads (guaranteed-to-execute) and gives *unroll* /
//! the vectorisers their canonical single-block form.

use crate::manager::Pass;
use crate::stats::Stats;
use crate::util::{
    dce_function, has_simplifiable_phi, replace_uses, simplify_single_incoming_phis, would_dce,
};
use citroen_analyze::alias::access_bytes;
use citroen_analyze::memeffects::{MemEffects, Root};
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_analyze::{AliasAnalysis, AliasResult, ModuleEffects, ModuleIntervals};
use citroen_ir::analysis::{Cfg, DomTree, Loop, LoopInfo};
use citroen_ir::inst::{BinOp, BlockId, CmpOp, Inst, Operand, Term, ValueId};
use citroen_ir::module::{Function, Module};
use citroen_ir::types::I64;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Shared loop-shape analysis
// ---------------------------------------------------------------------------

/// A single-block rotated loop: `H: φs; insts; condbr c, H, E`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SelfLoop {
    pub header: BlockId,
    pub preheader: BlockId,
    pub exit: BlockId,
}

/// Find self-loops with a unique preheader.
pub(crate) fn find_self_loops(f: &Function) -> Vec<SelfLoop> {
    let cfg = Cfg::compute(f);
    let mut out = Vec::new();
    for (b, blk) in f.iter_blocks() {
        if !cfg.reachable(b) {
            continue;
        }
        let Term::CondBr { t, f: fb, .. } = blk.term else { continue };
        let (back, exit) = if t == b && fb != b {
            (t, fb)
        } else if fb == b && t != b {
            (fb, t)
        } else {
            continue;
        };
        let _ = back;
        // Unique out-of-loop predecessor.
        let outside: Vec<BlockId> =
            cfg.preds[b.idx()].iter().copied().filter(|p| *p != b).collect();
        if outside.len() != 1 {
            continue;
        }
        out.push(SelfLoop { header: b, preheader: outside[0], exit });
    }
    out
}

/// Induction variable of a self-loop.
#[derive(Debug, Clone)]
pub(crate) struct IvInfo {
    /// The φ holding the IV.
    pub phi: ValueId,
    /// Initial value (preheader incoming).
    pub init: Operand,
    /// `next = phi + step`.
    pub next: ValueId,
    /// Constant step.
    pub step: i64,
    /// Comparison predicate of the latch condition.
    pub cmp_op: CmpOp,
    /// Loop bound operand.
    pub bound: Operand,
    /// Whether the comparison tests `next` (true) or `phi` (false).
    pub cmp_on_next: bool,
    /// Whether the `true` edge of the condbr continues the loop.
    pub true_continues: bool,
}

/// Recognise the canonical IV of a self-loop: a φ whose back edge is
/// `add(phi, const)` and whose (or whose successor's) comparison controls the
/// latch.
pub(crate) fn analyze_iv(f: &Function, sl: &SelfLoop) -> Option<IvInfo> {
    let blk = &f.blocks[sl.header.idx()];
    let Term::CondBr { cond, t, .. } = &blk.term else { return None };
    let cond_v = cond.as_value()?;
    let true_continues = *t == sl.header;
    // The latch condition must be a cmp defined in the header.
    let (cmp_op, cmp_lhs, bound) = blk.insts.iter().find_map(|i| match i {
        Inst::Cmp { dst, op, lhs, rhs } if *dst == cond_v => Some((*op, *lhs, *rhs)),
        _ => None,
    })?;
    // Try each φ as the IV.
    for inst in blk.insts.iter().take_while(|i| i.is_phi()) {
        let Inst::Phi { dst: phi, incoming } = inst else { continue };
        if incoming.len() != 2 {
            continue;
        }
        let init = incoming.iter().find(|(p, _)| *p == sl.preheader)?.1;
        let back = incoming.iter().find(|(p, _)| *p == sl.header)?.1;
        let next = back.as_value()?;
        // next = add(phi, step)
        let step = blk.insts.iter().find_map(|i| match i {
            Inst::Bin { dst, op: BinOp::Add, lhs, rhs } if *dst == next => {
                match (lhs.as_value(), rhs.as_const_int()) {
                    (Some(l), Some(c)) if l == *phi => Some(c),
                    _ => match (lhs.as_const_int(), rhs.as_value()) {
                        (Some(c), Some(r)) if r == *phi => Some(c),
                        _ => None,
                    },
                }
            }
            _ => None,
        });
        let Some(step) = step else { continue };
        if step == 0 {
            continue;
        }
        let cmp_on_next = if cmp_lhs.as_value() == Some(next) {
            true
        } else if cmp_lhs.as_value() == Some(*phi) {
            false
        } else {
            continue;
        };
        // Bound must be loop-invariant: a constant or defined outside the header.
        if let Some(bv) = bound.as_value() {
            let defined_in_header =
                blk.insts.iter().any(|i| i.dst() == Some(bv));
            if defined_in_header {
                continue;
            }
        }
        return Some(IvInfo {
            phi: *phi,
            init,
            next,
            step,
            cmp_op,
            bound,
            cmp_on_next,
            true_continues,
        });
    }
    None
}

/// Compute the constant trip count of a self-loop by symbolic simulation,
/// bounded to `limit` iterations. Requires constant init and bound.
pub(crate) fn const_trip_count(iv: &IvInfo, limit: u64) -> Option<u64> {
    let init = iv.init.as_const_int()?;
    let bound = iv.bound.as_const_int()?;
    let mut i = init;
    let mut trips = 0u64;
    loop {
        // One iteration executes, then the latch test decides continuation.
        trips += 1;
        if trips > limit {
            return None;
        }
        let next = i.wrapping_add(iv.step);
        let probe = if iv.cmp_on_next { next } else { i };
        let c = match iv.cmp_op {
            CmpOp::Eq => probe == bound,
            CmpOp::Ne => probe != bound,
            CmpOp::Slt => probe < bound,
            CmpOp::Sle => probe <= bound,
            CmpOp::Sgt => probe > bound,
            CmpOp::Sge => probe >= bound,
        };
        let continue_loop = if iv.true_continues { c } else { !c };
        if !continue_loop {
            return Some(trips);
        }
        i = next;
    }
}

/// Clone the non-φ body of a self-loop header once, appending the clones to
/// `out` with fresh destinations; `env` maps original values to their
/// current-iteration operands and is updated with the new φ values afterwards.
fn clone_body_once(
    f: &mut Function,
    header: BlockId,
    env: &mut HashMap<ValueId, Operand>,
    out: &mut Vec<Inst>,
) {
    let insts: Vec<Inst> = f.blocks[header.idx()].insts.clone();
    let remap = |env: &HashMap<ValueId, Operand>, op: &Operand| -> Operand {
        match op {
            Operand::Value(v) => env.get(v).copied().unwrap_or(*op),
            other => *other,
        }
    };
    for inst in insts.iter().skip_while(|i| i.is_phi()) {
        let mut cloned = inst.clone();
        cloned.for_each_operand_mut(|op| *op = remap(env, op));
        if let Some(old_dst) = inst.dst() {
            let new_dst = f.new_value(f.ty(old_dst));
            set_dst(&mut cloned, new_dst);
            env.insert(old_dst, Operand::Value(new_dst));
        }
        out.push(cloned);
    }
    // Advance φs: their next-iteration value is the remapped back-edge operand.
    let mut phi_updates: Vec<(ValueId, Operand)> = Vec::new();
    for inst in insts.iter().take_while(|i| i.is_phi()) {
        if let Inst::Phi { dst, incoming } = inst {
            let back = incoming
                .iter()
                .find(|(p, _)| *p == header)
                .map(|(_, v)| remap(env, v))
                .expect("self-loop phi has a back edge");
            phi_updates.push((*dst, back));
        }
    }
    for (d, v) in phi_updates {
        env.insert(d, v);
    }
}

pub(crate) fn set_dst(inst: &mut Inst, new: ValueId) {
    match inst {
        Inst::Bin { dst, .. }
        | Inst::Cmp { dst, .. }
        | Inst::Cast { dst, .. }
        | Inst::Alloca { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::Phi { dst, .. }
        | Inst::Select { dst, .. }
        | Inst::Splat { dst, .. }
        | Inst::ExtractLane { dst, .. }
        | Inst::Reduce { dst, .. } => *dst = new,
        Inst::Call { dst, .. } => {
            if let Some(d) = dst {
                *d = new;
            }
        }
        Inst::Store { .. } => {}
    }
}

// ---------------------------------------------------------------------------
// loop-simplify
// ---------------------------------------------------------------------------

/// The `loop-simplify` pass: give every natural loop a dedicated preheader.
pub struct LoopSimplify;

impl Pass for LoopSimplify {
    fn name(&self) -> &'static str {
        "loop-simplify"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::LS)
    }
    fn clears(&self) -> u64 {
        crate::work::LS
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for _ in 0..8 {
                if !insert_one_preheader(f) {
                    break;
                }
                n += 1;
            }
            stats.inc("loop-simplify", "NumPreheaders", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact mirror of `insert_one_preheader`'s candidate test.
        for f in &m.funcs {
            if needs_preheader(f) {
                return Verdict::may(format!("{}: loop without preheader", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// Read-only mirror of `insert_one_preheader`: a natural loop lacking a
/// preheader with ≥2 outside predecessors.
fn needs_preheader(f: &Function) -> bool {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let li = LoopInfo::compute(f, &cfg, &dom);
    li.loops.iter().any(|l| {
        l.preheader.is_none()
            && cfg.preds[l.header.idx()]
                .iter()
                .filter(|p| !l.contains(**p))
                .count()
                >= 2
    })
}

fn insert_one_preheader(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let li = LoopInfo::compute(f, &cfg, &dom);
    for l in &li.loops {
        if l.preheader.is_some() {
            continue;
        }
        let header = l.header;
        let outside: Vec<BlockId> = cfg.preds[header.idx()]
            .iter()
            .copied()
            .filter(|p| !l.contains(*p))
            .collect();
        if outside.len() < 2 {
            continue; // entry-block header (no outside pred) — leave alone
        }
        // New preheader P: outside preds retarget to P; P br H; φ split.
        let p = f.new_block();
        f.blocks[p.idx()].term = Term::Br(header);
        for &q in &outside {
            f.blocks[q.idx()].term.for_each_successor_mut(|s| {
                if *s == header {
                    *s = p;
                }
            });
        }
        // Split header φs: entries from outside preds move into a φ in P.
        let mut new_phis: Vec<Inst> = Vec::new();
        let mut hdr_rewrites: Vec<(usize, Vec<(BlockId, Operand)>)> = Vec::new();
        let header_phis: Vec<(usize, Inst)> = f.blocks[header.idx()]
            .insts
            .iter()
            .enumerate()
            .take_while(|(_, i)| i.is_phi())
            .map(|(i, inst)| (i, inst.clone()))
            .collect();
        for (pi, inst) in header_phis {
            let Inst::Phi { dst, incoming } = inst else { unreachable!() };
            let (out_in, keep): (Vec<_>, Vec<_>) =
                incoming.into_iter().partition(|(q, _)| outside.contains(q));
            let ty = f.ty(dst);
            let pv = f.new_value(ty);
            new_phis.push(Inst::Phi { dst: pv, incoming: out_in });
            let mut merged = keep;
            merged.push((p, Operand::Value(pv)));
            hdr_rewrites.push((pi, merged));
        }
        for (pi, merged) in hdr_rewrites {
            if let Inst::Phi { incoming, .. } = &mut f.blocks[header.idx()].insts[pi] {
                *incoming = merged;
            }
        }
        f.blocks[p.idx()].insts = new_phis;
        simplify_single_incoming_phis(f);
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// loop-rotate
// ---------------------------------------------------------------------------

/// The `loop-rotate` pass: turn two-block while-loops into guarded do-whiles.
pub struct LoopRotate;

impl Pass for LoopRotate {
    fn name(&self) -> &'static str {
        "loop-rotate"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for _ in 0..8 {
                // Rotation redirects exit edges, which can strip the next
                // loop's preheader; restore loop-simplify form as we go
                // (bounded — preheader insertion can ping-pong on irregular
                // CFGs produced by adversarial pass orders).
                for _ in 0..16 {
                    if !insert_one_preheader(f) {
                        break;
                    }
                }
                if !rotate_one(f) {
                    break;
                }
                n += 1;
            }
            if n > 0 {
                // Fold the now φ-only header into the body so the loop takes
                // its canonical single-block form (LLVM's rotate does the
                // same via its SimplifyCFG utilities).
                crate::passes::simplifycfg::merge_straightline(f);
            }
            simplify_single_incoming_phis(f);
            dce_function(f);
            stats.inc("loop-rotate", "NumRotated", n);
        }
    }
    fn fires_on(&self) -> Option<u64> {
        // Every edit path of `run` demands one of these classes: rotation
        // proper (`plan_rotate` ↦ ROT), preheader restoration
        // (`needs_preheader` ↦ LS), the φ cleanup (single-incoming φs are
        // simplifycfg work ↦ CFGS) and the dce tail (↦ DEAD).
        Some(crate::work::ROT | crate::work::LS | crate::work::CFGS | crate::work::DEAD)
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact mirror of `run`: preheader restoration, the rotation search
        // and both unconditional cleanups each have read-only mirrors; when
        // none of them finds work the whole pass is provably a no-op.
        for f in &m.funcs {
            if needs_preheader(f) {
                return Verdict::may(format!("{}: loop without preheader", f.name));
            }
            if plan_rotate(f).is_some() {
                return Verdict::may(format!("{}: rotatable while-loop", f.name));
            }
            if has_simplifiable_phi(f) {
                return Verdict::may(format!("{}: single-incoming φ (cleanup)", f.name));
            }
            if would_dce(f) {
                return Verdict::may(format!("{}: dead instructions (cleanup dce)", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// Everything `rotate_one` needs to rewrite a rotatable while-loop, gathered
/// by the read-only search [`plan_rotate`].
struct RotatePlan {
    h: BlockId,
    pre: BlockId,
    latch: BlockId,
    exit: BlockId,
    body_succ: BlockId,
    /// Whether the `true` edge of the header condbr enters the loop body.
    enter_on_true: bool,
    cond: Operand,
    /// Header φs as `(dst, init-from-preheader, back-from-latch)`.
    phis: Vec<(ValueId, Operand, Operand)>,
    /// Header non-φ instructions (the latch-condition computation).
    cond_insts: Vec<Inst>,
    loop_blocks: Vec<BlockId>,
}

/// Read-only mirror of the rotation candidate test: the first natural loop
/// passing every legality check, with the data the rewrite needs. `None` is
/// a proof that `rotate_one` cannot change `f`.
fn plan_rotate(f: &Function) -> Option<RotatePlan> {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let li = LoopInfo::compute(f, &cfg, &dom);

    for l in &li.loops {
        let h = l.header;
        // While-shape: header exits the loop.
        let Term::CondBr { cond, t, f: fb } = f.blocks[h.idx()].term.clone() else { continue };
        let (body_succ, exit) = if l.contains(t) && !l.contains(fb) {
            (t, fb)
        } else if l.contains(fb) && !l.contains(t) {
            (fb, t)
        } else {
            continue;
        };
        if body_succ == h {
            continue; // already a do-while self-loop
        }
        let Some(pre) = l.preheader else { continue };
        // The guard is spliced into the preheader, replacing its terminator —
        // only legal when the preheader unconditionally enters this loop
        // (loop-simplify form). A conditional preheader (e.g. the latch of a
        // preceding loop) must not be clobbered.
        if !matches!(f.blocks[pre.idx()].term, Term::Br(b) if b == h) {
            continue;
        }
        if l.latches.len() != 1 {
            continue;
        }
        let latch = l.latches[0];
        if latch == h {
            continue;
        }
        // The latch must end in an unconditional branch to the header.
        if !matches!(f.blocks[latch.idx()].term, Term::Br(b) if b == h) {
            continue;
        }
        // Exit must have no other in-loop preds.
        if cfg.preds[exit.idx()].iter().any(|p| l.contains(*p) && *p != h) {
            continue;
        }
        // Header non-φ instructions may only be used by the header itself.
        let hdr_defs: Vec<ValueId> = f.blocks[h.idx()]
            .insts
            .iter()
            .skip_while(|i| i.is_phi())
            .filter_map(|i| i.dst())
            .collect();
        let mut used_outside = false;
        for (b, blk) in f.iter_blocks() {
            if b == h {
                continue;
            }
            for inst in &blk.insts {
                inst.for_each_operand(|op| {
                    if let Some(v) = op.as_value() {
                        used_outside |= hdr_defs.contains(&v);
                    }
                });
            }
            blk.term.for_each_operand(|op| {
                if let Some(v) = op.as_value() {
                    used_outside |= hdr_defs.contains(&v);
                }
            });
        }
        if used_outside {
            continue;
        }
        // Header loads can trap; cloning them into the guard would execute
        // them when the loop may not run — only pure header bodies rotate.
        if f.blocks[h.idx()]
            .insts
            .iter()
            .skip_while(|i| i.is_phi())
            .any(|i| i.has_side_effects() || i.reads_memory() || matches!(i, Inst::Alloca { .. }))
        {
            continue;
        }

        // Gather φ info: (dst, init operand from pre, back operand from latch).
        let mut phis: Vec<(ValueId, Operand, Operand)> = Vec::new();
        let mut bad_phi = false;
        for inst in f.blocks[h.idx()].insts.iter().take_while(|i| i.is_phi()) {
            let Inst::Phi { dst, incoming } = inst else { unreachable!() };
            let init = incoming.iter().find(|(p, _)| *p == pre).map(|(_, v)| *v);
            let back = incoming.iter().find(|(p, _)| *p == latch).map(|(_, v)| *v);
            match (init, back) {
                (Some(i), Some(b)) if incoming.len() == 2 => phis.push((*dst, i, b)),
                _ => bad_phi = true,
            }
        }
        if bad_phi {
            continue;
        }
        let cond_insts: Vec<Inst> = f.blocks[h.idx()]
            .insts
            .iter()
            .skip_while(|i| i.is_phi())
            .cloned()
            .collect();
        return Some(RotatePlan {
            h,
            pre,
            latch,
            exit,
            body_succ,
            enter_on_true: body_succ == t,
            cond,
            phis,
            cond_insts,
            loop_blocks: l.blocks.clone(),
        });
    }
    None
}

fn rotate_one(f: &mut Function) -> bool {
    let Some(plan) = plan_rotate(f) else { return false };
    let RotatePlan {
        h,
        pre,
        latch,
        exit,
        body_succ,
        enter_on_true,
        cond,
        phis,
        cond_insts,
        loop_blocks,
    } = plan;
    {
        // 1. Clone cond computation into the preheader with φ→init.
        let init_env: HashMap<ValueId, Operand> =
            phis.iter().map(|(d, i, _)| (*d, *i)).collect();
        let mut guard_env = init_env.clone();
        let mut guard_out: Vec<Inst> = Vec::new();
        clone_insts(f, &cond_insts, &mut guard_env, &mut guard_out);
        let guard_cond = map_operand(&guard_env, &cond);
        f.blocks[pre.idx()].insts.extend(guard_out);
        // The guard enters the loop through the header (which keeps the φs
        // and falls through to the body), or skips to the exit.
        f.blocks[pre.idx()].term = if enter_on_true {
            Term::CondBr { cond: guard_cond, t: h, f: exit }
        } else {
            Term::CondBr { cond: guard_cond, t: exit, f: h }
        };

        // 2. Clone cond computation into the latch with φ→back, replacing its br.
        let back_env: HashMap<ValueId, Operand> =
            phis.iter().map(|(d, _, b)| (*d, *b)).collect();
        let mut latch_env = back_env.clone();
        let mut latch_out: Vec<Inst> = Vec::new();
        clone_insts(f, &cond_insts, &mut latch_env, &mut latch_out);
        let latch_cond = map_operand(&latch_env, &cond);
        f.blocks[latch.idx()].insts.extend(latch_out);
        f.blocks[latch.idx()].term = if enter_on_true {
            Term::CondBr { cond: latch_cond, t: h, f: exit }
        } else {
            Term::CondBr { cond: latch_cond, t: exit, f: h }
        };

        // 3. Header: keep φs, drop cond insts, fall through to the body.
        let keep: Vec<Inst> =
            f.blocks[h.idx()].insts.iter().take_while(|i| i.is_phi()).cloned().collect();
        f.blocks[h.idx()].insts = keep;
        f.blocks[h.idx()].term = Term::Br(body_succ);

        // 4. Exit φs: preds change from {h, ...} to {pre, latch, ...}. For
        //    entries from h with value v: v is an h-φ (split into init/back
        //    substitutions) or loop-invariant (duplicated).
        let phi_map_init: HashMap<ValueId, Operand> = init_env;
        let phi_map_back: HashMap<ValueId, Operand> = back_env;
        for inst in &mut f.blocks[exit.idx()].insts {
            if let Inst::Phi { incoming, .. } = inst {
                if let Some(pos) = incoming.iter().position(|(p, _)| *p == h) {
                    let (_, v) = incoming.remove(pos);
                    let vi = map_operand(&phi_map_init, &v);
                    let vb = map_operand(&phi_map_back, &v);
                    incoming.push((pre, vi));
                    incoming.push((latch, vb));
                }
            }
        }
        // 5. Uses of h-φs outside the loop (beyond the exit φs we just fixed)
        //    need merge φs in the exit block.
        let loop_blocks: HashSet<u32> = loop_blocks.iter().map(|b| b.0).collect();
        for (d, i, b) in &phis {
            let mut outside_use = false;
            for (bb, blk) in f.iter_blocks() {
                if loop_blocks.contains(&bb.0) {
                    continue;
                }
                for inst in &blk.insts {
                    if inst.is_phi() && bb == exit {
                        continue; // already rewritten
                    }
                    inst.for_each_operand(|op| outside_use |= op.as_value() == Some(*d));
                }
                blk.term.for_each_operand(|op| outside_use |= op.as_value() == Some(*d));
            }
            if outside_use {
                let ty = f.ty(*d);
                let merged = f.new_value(ty);
                f.blocks[exit.idx()]
                    .insts
                    .insert(0, Inst::Phi { dst: merged, incoming: vec![(pre, *i), (latch, *b)] });
                // Replace uses outside the loop and outside this new φ.
                let mut patch: Vec<(usize, usize)> = Vec::new();
                for (bb, blk) in f.iter_blocks() {
                    if loop_blocks.contains(&bb.0) {
                        continue;
                    }
                    for (ii, inst) in blk.insts.iter().enumerate() {
                        if bb == exit && ii == 0 {
                            continue;
                        }
                        let mut uses = false;
                        inst.for_each_operand(|op| uses |= op.as_value() == Some(*d));
                        if uses {
                            patch.push((bb.idx(), ii));
                        }
                    }
                }
                for (bb, ii) in patch {
                    f.blocks[bb].insts[ii].for_each_operand_mut(|op| {
                        if op.as_value() == Some(*d) {
                            *op = Operand::Value(merged);
                        }
                    });
                }
                for bb in 0..f.blocks.len() {
                    if loop_blocks.contains(&(bb as u32)) {
                        continue;
                    }
                    f.blocks[bb].term.for_each_operand_mut(|op| {
                        if op.as_value() == Some(*d) {
                            *op = Operand::Value(merged);
                        }
                    });
                }
            }
        }
    }
    true
}

fn clone_insts(
    f: &mut Function,
    insts: &[Inst],
    env: &mut HashMap<ValueId, Operand>,
    out: &mut Vec<Inst>,
) {
    for inst in insts {
        let mut cloned = inst.clone();
        cloned.for_each_operand_mut(|op| *op = map_operand(env, op));
        if let Some(old) = inst.dst() {
            let nv = f.new_value(f.ty(old));
            set_dst(&mut cloned, nv);
            env.insert(old, Operand::Value(nv));
        }
        out.push(cloned);
    }
}

fn map_operand(env: &HashMap<ValueId, Operand>, op: &Operand) -> Operand {
    match op {
        Operand::Value(v) => env.get(v).copied().unwrap_or(*op),
        other => *other,
    }
}

// ---------------------------------------------------------------------------
// licm
// ---------------------------------------------------------------------------

/// The `licm` pass: hoist loop-invariant computation to the preheader. Pure
/// ops hoist from any loop position; loads additionally require (a) that no
/// store or call in the loop can write the loaded bytes — stores must be
/// provably `NoAlias` by the alias analysis and callees provably unable to
/// touch the load's root region per their memory-effect summaries — and (b)
/// a block that dominates every exit (guaranteed to execute per iteration),
/// which in practice means rotated loops — the classic rotate→licm synergy.
pub struct Licm;

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::LICM)
    }
    fn clears(&self) -> u64 {
        crate::work::LICM
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for fi in 0..m.funcs.len() {
            let mut hoisted = 0u64;
            let mut loads = 0u64;
            // Every hoist moves one instruction out of a loop and never adds
            // one, so the in-loop instruction count strictly decreases:
            // bounding rounds by the function size guarantees a true
            // fixpoint (the clears/idempotence theorems above).
            let bound = m.funcs[fi].num_insts() + 1;
            for _ in 0..bound {
                let (h, l) = hoist_one(m, fi);
                hoisted += h;
                loads += l;
                if h + l == 0 {
                    break;
                }
            }
            stats.inc("licm", "NumHoisted", hoisted + loads);
            stats.inc("licm", "NumHoistedLoads", loads);
        }
    }
    fn precondition(&self, m: &Module, facts: &Facts) -> Verdict {
        // Exact mirror: `run` edits iff `find_hoistable` finds a candidate
        // under the same interval/effect facts it recomputes itself.
        for fidx in 0..m.funcs.len() {
            if find_hoistable(m, fidx, &facts.intervals, &facts.effects).is_some() {
                return Verdict::may(format!(
                    "{}: hoistable loop-invariant instruction",
                    m.funcs[fidx].name
                ));
            }
        }
        Verdict::CannotFire
    }
}

fn hoist_one(m: &mut Module, fidx: usize) -> (u64, u64) {
    let intervals = citroen_analyze::interval_analysis(m);
    let effects = citroen_analyze::memeffects::analyze_module(m, &intervals);
    match find_hoistable(m, fidx, &intervals, &effects) {
        Some((pre, b, ii, is_load)) => {
            let f = &mut m.funcs[fidx];
            let moved = f.blocks[b.idx()].insts.remove(ii);
            f.blocks[pre.idx()].insts.push(moved);
            if is_load {
                (0, 1)
            } else {
                (1, 0)
            }
        }
        None => (0, 0),
    }
}

/// Read-only mirror of `hoist_one`'s search: the first hoistable instruction
/// across the loops of function `fidx`, as `(preheader, block, index,
/// is_load)`. `None` is a proof that `hoist_one` cannot change the function.
fn find_hoistable(
    m: &Module,
    fidx: usize,
    intervals: &ModuleIntervals,
    effects: &ModuleEffects,
) -> Option<(BlockId, BlockId, usize, bool)> {
    let f = &m.funcs[fidx];
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let li = LoopInfo::compute(f, &cfg, &dom);
    let aa = AliasAnalysis::new(m, f, &intervals.funcs[fidx]);

    for l in &li.loops {
        let Some(pre) = l.preheader else { continue };
        // Values defined inside the loop.
        let mut defined_in: HashSet<ValueId> = HashSet::new();
        for &b in &l.blocks {
            for inst in &f.blocks[b.idx()].insts {
                if let Some(d) = inst.dst() {
                    defined_in.insert(d);
                }
            }
        }
        let invariant_op = |op: &Operand, defined_in: &HashSet<ValueId>| match op {
            Operand::Value(v) => !defined_in.contains(v),
            _ => true,
        };
        // Blocks with an edge leaving the loop: a hoisted trapping op is only
        // safe if its block dominates all of them (guaranteed to execute).
        let exiting: Vec<BlockId> = l
            .blocks
            .iter()
            .copied()
            .filter(|&b| {
                f.blocks[b.idx()].term.successors().iter().any(|s| !l.contains(*s))
            })
            .collect();

        for &b in &l.blocks {
            for (ii, inst) in f.blocks[b.idx()].insts.iter().enumerate() {
                if inst.is_phi() || matches!(inst, Inst::Alloca { .. }) {
                    continue;
                }
                let mut ops_invariant = true;
                inst.for_each_operand(|op| ops_invariant &= invariant_op(op, &defined_in));
                if !ops_invariant {
                    continue;
                }
                let hoistable = if inst.has_side_effects() {
                    false
                } else if let Inst::Load { .. } = inst {
                    // Loads: guaranteed to execute (dominates every exit) so
                    // no new trap appears, and nothing in the loop can write
                    // the loaded bytes, so every iteration reloads the value
                    // the preheader would produce.
                    exiting.iter().all(|&x| dom.dominates(b, x))
                        && no_aliasing_writes(f, &aa, effects, l, inst)
                } else if let Inst::Bin { op, rhs, .. } = inst {
                    // Division hoisting may introduce a trap on a path that
                    // never executed it; require a non-zero constant divisor
                    // or guaranteed execution.
                    if matches!(op, BinOp::SDiv | BinOp::SRem) {
                        matches!(rhs.as_const_int(), Some(c) if c != 0)
                            || exiting.iter().all(|&x| dom.dominates(b, x))
                    } else {
                        true
                    }
                } else {
                    !inst.reads_memory()
                };
                if hoistable {
                    return Some((pre, b, ii, matches!(inst, Inst::Load { .. })));
                }
            }
        }
    }
    None
}

/// Whether no store or call anywhere in loop `l` can write the bytes read by
/// `load`: every store must be provably `NoAlias` and every callee provably
/// unable to write the load's location.
fn no_aliasing_writes(
    f: &Function,
    aa: &AliasAnalysis,
    effects: &ModuleEffects,
    l: &Loop,
    load: &Inst,
) -> bool {
    let Some((laddr, lbytes)) = access_bytes(f, load) else { return false };
    for &b in &l.blocks {
        for inst in &f.blocks[b.idx()].insts {
            match inst {
                Inst::Store { .. } => {
                    let Some((saddr, sbytes)) = access_bytes(f, inst) else { return false };
                    if aa.alias(&laddr, lbytes, &saddr, sbytes) != AliasResult::No {
                        return false;
                    }
                }
                Inst::Call { callee, .. } => {
                    if call_may_clobber(aa, &effects.funcs[callee.idx()], &laddr, lbytes) {
                        return false;
                    }
                }
                _ => {}
            }
        }
    }
    true
}

/// Whether calling the function summarised by `ce` can write the `bytes` at
/// `addr` (caller view). Callee stack frames are bump-allocated strictly
/// above the caller's live frame, so a load confined to an in-bounds global
/// or caller alloca only sees callee writes that provably reach that region;
/// an unconfined address can collide with any write at all.
fn call_may_clobber(aa: &AliasAnalysis, ce: &MemEffects, addr: &Operand, bytes: u32) -> bool {
    match aa.confined_root(addr, bytes) {
        Some((Root::Global(g), touched)) => !ce.cannot_write_range(g, touched.lo, touched.hi),
        Some((Root::Stack(_), _)) => ce.writes_unknown,
        _ => ce.writes_unknown || ce.writes_stack || !ce.may_write.is_empty(),
    }
}

// ---------------------------------------------------------------------------
// indvars
// ---------------------------------------------------------------------------

/// The `indvars` pass: canonicalise latch predicates (`!=` → `slt` when
/// provably equivalent) and delete dead induction φ cycles.
pub struct IndVars;

impl Pass for IndVars {
    fn name(&self) -> &'static str {
        "indvars"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut lftr = 0u64;
            for sl in find_self_loops(f) {
                let Some(iv) = analyze_iv(f, &sl) else { continue };
                // `next != bound` with positive step, const init/bound, and
                // bound reachable exactly (divisibility) rewrites to slt.
                if iv.cmp_op == CmpOp::Ne && iv.true_continues && iv.step > 0 {
                    if let (Some(i0), Some(bnd)) =
                        (iv.init.as_const_int(), iv.bound.as_const_int())
                    {
                        let span = bnd.wrapping_sub(i0);
                        if span > 0 && span % iv.step == 0 {
                            // find the cmp inst and flip Ne -> Slt
                            let blk = &mut f.blocks[sl.header.idx()].insts;
                            for inst in blk.iter_mut() {
                                if let Inst::Cmp { op, .. } = inst {
                                    if *op == CmpOp::Ne {
                                        *op = CmpOp::Slt;
                                        lftr += 1;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Dead IV cycles: φ used only by its own update add.
            let dead = remove_dead_iv_cycles(f);
            stats.inc("indvars", "NumLFTR", lftr);
            stats.inc("indvars", "NumElimIV", dead);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Both the LFTR rewrite and dead-IV-cycle removal act on φs; a
        // φ-free function is untouchable.
        for f in &m.funcs {
            if f.blocks.iter().any(|b| b.insts.iter().any(|i| i.is_phi())) {
                return Verdict::may(format!("{}: φ instructions present", f.name));
            }
        }
        Verdict::CannotFire
    }
}

fn remove_dead_iv_cycles(f: &mut Function) -> u64 {
    let mut removed = 0u64;
    loop {
        // uses excluding φ self-cycles
        let mut uses: HashMap<ValueId, Vec<ValueId>> = HashMap::new(); // used value -> users
        let mut def_inst: HashMap<ValueId, Inst> = HashMap::new();
        for blk in &f.blocks {
            for inst in &blk.insts {
                if let Some(d) = inst.dst() {
                    def_inst.insert(d, inst.clone());
                }
                let user = inst.dst();
                inst.for_each_operand(|op| {
                    if let (Some(v), Some(u)) = (op.as_value(), user) {
                        uses.entry(v).or_default().push(u);
                    }
                });
            }
            blk.term.for_each_operand(|op| {
                if let Some(v) = op.as_value() {
                    uses.entry(v).or_default().push(v); // terminator marker (self)
                }
            });
        }
        let mut victim: Option<(ValueId, ValueId)> = None;
        for (v, inst) in &def_inst {
            let Inst::Phi { incoming, .. } = inst else { continue };
            // φ v whose only user is an add `a`, and a's only user is v.
            let users = uses.get(v).cloned().unwrap_or_default();
            let distinct: HashSet<ValueId> = users.iter().copied().collect();
            if distinct.len() != 1 {
                continue;
            }
            let a = *distinct.iter().next().unwrap();
            if a == *v {
                continue;
            }
            let Some(Inst::Bin { .. }) = def_inst.get(&a) else { continue };
            let a_users: HashSet<ValueId> =
                uses.get(&a).cloned().unwrap_or_default().into_iter().collect();
            if a_users.len() == 1 && a_users.contains(v) {
                // the add must be the φ's back edge
                if incoming.iter().any(|(_, op)| op.as_value() == Some(a)) {
                    victim = Some((*v, a));
                    break;
                }
            }
        }
        match victim {
            None => break,
            Some((v, a)) => {
                for blk in &mut f.blocks {
                    blk.insts.retain(|i| i.dst() != Some(v) && i.dst() != Some(a));
                }
                removed += 1;
            }
        }
    }
    removed
}

// ---------------------------------------------------------------------------
// loop-unroll
// ---------------------------------------------------------------------------

/// The `loop-unroll` pass: fully unroll small constant-trip self-loops, and
/// 4× partial-unroll larger ones with divisible trip counts. Unrolling is the
/// main producer of the straight-line isomorphic code SLP feeds on.
pub struct LoopUnroll;

/// Full-unroll limit on `trip * body size`.
const FULL_UNROLL_BUDGET: u64 = 256;
/// Maximum trip count considered for full unrolling.
const FULL_UNROLL_TRIP: u64 = 64;
/// Partial unroll factor.
const PARTIAL_FACTOR: u64 = 4;
/// Maximum body size for partial unrolling.
const PARTIAL_BODY: usize = 24;

impl Pass for LoopUnroll {
    fn name(&self) -> &'static str {
        "loop-unroll"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::IVL)
    }
    fn clears(&self) -> u64 {
        crate::work::IVL
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut full = 0u64;
            let mut partial = 0u64;
            // Unrolling never creates a self-loop (full unrolls straighten
            // one; partials only grow a body), and per loop at most a few
            // partial rounds fit the budget before body size or trip
            // divisibility gives out — so the candidate supply is bounded by
            // the initial self-loop count. The cleanup sweeps can unlock a
            // candidate (e.g. dce removing an unused alloca from a body), so
            // re-run the search after each cleanup until nothing fires: the
            // final state provably holds no candidate (clears/idempotence).
            let outer = find_self_loops(f).len() as u64 * 8 + 1;
            for _ in 0..outer {
                let mut n = 0u64;
                loop {
                    match unroll_one(f) {
                        Some(true) => {
                            full += 1;
                            n += 1;
                        }
                        Some(false) => {
                            partial += 1;
                            n += 1;
                        }
                        None => break,
                    }
                }
                if n == 0 {
                    break;
                }
                simplify_single_incoming_phis(f);
                dce_function(f);
            }
            stats.inc("loop-unroll", "NumFullyUnrolled", full);
            stats.inc("loop-unroll", "NumUnrolled", full + partial);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact mirror: the cleanup sweeps only run after a successful
        // unroll, so no candidate means the whole pass is a no-op.
        for f in &m.funcs {
            if find_unrollable(f).is_some() {
                return Verdict::may(format!("{}: unrollable constant-trip loop", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// Read-only mirror of `unroll_one`'s search: the first self-loop passing
/// the IV/body/trip screens, as `(loop, trip, full?)`.
fn find_unrollable(f: &Function) -> Option<(SelfLoop, u64, bool)> {
    for sl in find_self_loops(f) {
        let Some(iv) = analyze_iv(f, &sl) else { continue };
        let body_len =
            f.blocks[sl.header.idx()].insts.iter().filter(|i| !i.is_phi()).count();
        // Calls make cloning legal but budget-hostile; skip bodies with calls.
        if f.blocks[sl.header.idx()]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Call { .. } | Inst::Alloca { .. }))
        {
            continue;
        }
        let trip = const_trip_count(&iv, FULL_UNROLL_TRIP.max(4096));
        if let Some(trip) = trip {
            if trip <= FULL_UNROLL_TRIP && trip * body_len as u64 <= FULL_UNROLL_BUDGET {
                return Some((sl, trip, true));
            }
            if trip % PARTIAL_FACTOR == 0 && body_len <= PARTIAL_BODY {
                return Some((sl, trip, false));
            }
        }
    }
    None
}

/// Returns Some(true) for a full unroll, Some(false) for partial, None if no
/// loop was transformed.
fn unroll_one(f: &mut Function) -> Option<bool> {
    let (sl, trip, is_full) = find_unrollable(f)?;
    if is_full {
        full_unroll(f, &sl, trip);
        Some(true)
    } else {
        partial_unroll(f, &sl, PARTIAL_FACTOR);
        Some(false)
    }
}

fn full_unroll(f: &mut Function, sl: &SelfLoop, trip: u64) {
    let h = sl.header;
    // Initial env: φ → preheader incoming.
    let mut env: HashMap<ValueId, Operand> = HashMap::new();
    let mut phi_ids: Vec<ValueId> = Vec::new();
    for inst in f.blocks[h.idx()].insts.iter().take_while(|i| i.is_phi()) {
        if let Inst::Phi { dst, incoming } = inst {
            let init = incoming
                .iter()
                .find(|(p, _)| *p == sl.preheader)
                .map(|(_, v)| *v)
                .expect("preheader incoming");
            env.insert(*dst, init);
            phi_ids.push(*dst);
        }
    }
    let mut out: Vec<Inst> = Vec::new();
    // Outside uses of a φ mean "its value during the final iteration", i.e.
    // the value entering the last body copy — snapshot it before that copy
    // advances the φs one step further (using the post-loop value instead
    // would be off by one iteration).
    let mut phi_at_last: HashMap<ValueId, Operand> = HashMap::new();
    for k in 0..trip {
        if k == trip - 1 {
            phi_at_last = phi_ids.iter().map(|p| (*p, env[p])).collect();
        }
        clone_body_once(f, h, &mut env, &mut out);
    }
    // Replace the header contents with the straight line and branch to exit.
    let originals: Vec<ValueId> =
        f.blocks[h.idx()].insts.iter().filter_map(|i| i.dst()).collect();
    f.blocks[h.idx()].insts = out;
    f.blocks[h.idx()].term = Term::Br(sl.exit);
    // Outside uses of loop-defined values: body values resolve through the
    // final env (last executed copy); φs through the final-iteration snapshot.
    for v in originals {
        let rep = phi_at_last.get(&v).copied().or_else(|| env.get(&v).copied());
        if let Some(final_op) = rep {
            replace_uses(f, v, final_op);
        }
    }
    // Exit φs: the edge is still from h; incomings were rewritten above.
}

fn partial_unroll(f: &mut Function, sl: &SelfLoop, factor: u64) {
    let h = sl.header;
    let phis: Vec<Inst> =
        f.blocks[h.idx()].insts.iter().take_while(|i| i.is_phi()).cloned().collect();
    let body: Vec<Inst> =
        f.blocks[h.idx()].insts.iter().skip_while(|i| i.is_phi()).cloned().collect();
    // env starts as identity on φs (iteration state stays in the φs).
    let mut env: HashMap<ValueId, Operand> = HashMap::new();
    let mut phi_ids: Vec<ValueId> = Vec::new();
    for inst in &phis {
        if let Inst::Phi { dst, .. } = inst {
            env.insert(*dst, Operand::Value(*dst));
            phi_ids.push(*dst);
        }
    }
    // `factor - 1` fresh-id copies for the leading iterations of each group…
    let mut out: Vec<Inst> = Vec::new();
    for _ in 0..factor - 1 {
        clone_body_once(f, h, &mut env, &mut out);
    }
    // φ values entering the final copy of the group (see outside-use fix-up).
    let phi_at_last: HashMap<ValueId, Operand> =
        phi_ids.iter().map(|p| (*p, env[p])).collect();
    // …then the final copy KEEPS the original instructions and dst ids, with
    // operands remapped to the previous copy. Every use outside the loop —
    // exit-φ incomings and directly dominated uses alike — therefore still
    // names a defined value, and it is the value of the last executed
    // iteration, exactly as before unrolling. The φ back edges and the latch
    // condition also reference those original ids, so both stay untouched.
    for inst in &body {
        let mut cloned = inst.clone();
        cloned.for_each_operand_mut(|op| *op = map_operand(&env, op));
        if let Some(d) = inst.dst() {
            // Later body insts must read THIS copy's result, not the
            // previous clone's: the original id is live again from here on.
            env.insert(d, Operand::Value(d));
        }
        out.push(cloned);
    }
    let mut insts = phis;
    insts.extend(out);
    f.blocks[h.idx()].insts = insts;
    // Outside uses of a φ mean "its value during the final iteration", which
    // after unrolling is the φ advanced through the factor-1 leading copies
    // (the φ itself now only carries the value at each group entry). Uses
    // inside the rebuilt header (first copy, φ back edges) must keep reading
    // the φ, so the rewrite skips the header block.
    for (p, rep) in &phi_at_last {
        if matches!(rep, Operand::Value(v) if v == p) {
            continue; // factor == 1: nothing advanced
        }
        let rewrite = |op: &mut Operand| {
            if op.as_value() == Some(*p) {
                *op = *rep;
            }
        };
        for bi in 0..f.blocks.len() {
            if bi == h.idx() {
                continue;
            }
            for inst in &mut f.blocks[bi].insts {
                inst.for_each_operand_mut(rewrite);
            }
            f.blocks[bi].term.for_each_operand_mut(rewrite);
        }
    }
}

// ---------------------------------------------------------------------------
// loop-deletion
// ---------------------------------------------------------------------------

/// The `loop-deletion` pass: remove provably-finite self-loops with no side
/// effects whose values are unused outside.
pub struct LoopDeletion;

impl Pass for LoopDeletion {
    fn name(&self) -> &'static str {
        "loop-deletion"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::LD)
    }
    fn clears(&self) -> u64 {
        crate::work::LD
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            // Each deletion consumes one header block, so the candidate
            // supply is bounded by the block count; iterating one past that
            // guarantees the final round found nothing (clears = LD).
            for _ in 0..=f.blocks.len() {
                let Some(sl) = deletion_candidate(f) else { break };
                let h = sl.header;
                // Delete: preheader jumps straight to the exit.
                f.blocks[sl.preheader.idx()].term.for_each_successor_mut(|s| {
                    if *s == h {
                        *s = sl.exit;
                    }
                });
                // Exit φs: entries from h replaced by entries from preheader.
                for inst in &mut f.blocks[sl.exit.idx()].insts {
                    if let Inst::Phi { incoming, .. } = inst {
                        for (p, _) in incoming.iter_mut() {
                            if *p == h {
                                *p = sl.preheader;
                            }
                        }
                    }
                }
                crate::util::remove_unreachable_blocks(f);
                n += 1;
            }
            stats.inc("loop-deletion", "NumDeleted", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact mirror: the deletion loop fires iff a candidate exists.
        for f in &m.funcs {
            if deletion_candidate(f).is_some() {
                return Verdict::may(format!("{}: deletable side-effect-free loop", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// Read-only mirror of `LoopDeletion`'s search: the first self-loop that is
/// pure, provably finite, and whose values never escape the header.
fn deletion_candidate(f: &Function) -> Option<SelfLoop> {
    for sl in find_self_loops(f) {
        let h = sl.header;
        let blk = &f.blocks[h.idx()];
        if blk.insts.iter().any(|i| {
            i.has_side_effects() || i.reads_memory() || matches!(i, Inst::Alloca { .. })
        }) {
            continue;
        }
        // Finite?
        let Some(iv) = analyze_iv(f, &sl) else { continue };
        if const_trip_count(&iv, 1 << 20).is_none() {
            continue;
        }
        // No loop value used outside.
        let defs: HashSet<ValueId> = blk.insts.iter().filter_map(|i| i.dst()).collect();
        let mut escaped = false;
        for (b, oblk) in f.iter_blocks() {
            if b == h {
                continue;
            }
            for inst in &oblk.insts {
                inst.for_each_operand(|op| {
                    if let Some(v) = op.as_value() {
                        escaped |= defs.contains(&v);
                    }
                });
            }
            oblk.term.for_each_operand(|op| {
                if let Some(v) = op.as_value() {
                    escaped |= defs.contains(&v);
                }
            });
        }
        if escaped {
            continue;
        }
        return Some(sl);
    }
    None
}

// ---------------------------------------------------------------------------
// strength-reduce
// ---------------------------------------------------------------------------

/// The `strength-reduce` pass: `mul(iv, c)` inside a self-loop becomes an
/// incrementally updated secondary induction variable (classic LSR).
pub struct StrengthReduce;

impl Pass for StrengthReduce {
    fn name(&self) -> &'static str {
        "strength-reduce"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for _ in 0..4 {
                if !reduce_one(f) {
                    break;
                }
                n += 1;
            }
            stats.inc("strength-reduce", "NumReduced", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Mirror `reduce_one`'s search: a header `mul(iv, c≠0)` / `shl(iv, k)`
        // whose destination is scalar i64.
        for f in &m.funcs {
            for sl in find_self_loops(f) {
                let Some(iv) = analyze_iv(f, &sl) else { continue };
                let found = f.blocks[sl.header.idx()].insts.iter().any(|inst| match inst {
                    Inst::Bin { dst, op: BinOp::Mul, lhs, rhs } => {
                        matches!(
                            (lhs.as_value(), rhs.as_const_int()),
                            (Some(l), Some(c)) if l == iv.phi && c != 0
                        ) && f.ty(*dst) == I64
                    }
                    Inst::Bin { dst, op: BinOp::Shl, lhs, rhs } => {
                        matches!(
                            (lhs.as_value(), rhs.as_const_int()),
                            (Some(l), Some(k)) if l == iv.phi && (0..32).contains(&k)
                        ) && f.ty(*dst) == I64
                    }
                    _ => false,
                });
                if found {
                    return Verdict::may(format!("{}: reducible IV multiply", f.name));
                }
            }
        }
        Verdict::CannotFire
    }
}

fn reduce_one(f: &mut Function) -> bool {
    for sl in find_self_loops(f) {
        let Some(iv) = analyze_iv(f, &sl) else { continue };
        let h = sl.header;
        // Find `mul(iv.phi, c)` in the body.
        let found = f.blocks[h.idx()].insts.iter().enumerate().find_map(|(ii, inst)| {
            match inst {
                Inst::Bin { dst, op: BinOp::Mul, lhs, rhs } => {
                    match (lhs.as_value(), rhs.as_const_int()) {
                        (Some(l), Some(c)) if l == iv.phi && c != 0 => Some((ii, *dst, c)),
                        _ => None,
                    }
                }
                Inst::Bin { dst, op: BinOp::Shl, lhs, rhs } => {
                    match (lhs.as_value(), rhs.as_const_int()) {
                        (Some(l), Some(k)) if l == iv.phi && (0..32).contains(&k) => {
                            Some((ii, *dst, 1i64 << k))
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        });
        let Some((ii, dst, c)) = found else { continue };
        let ty = f.ty(dst);
        if ty != I64 {
            continue;
        }
        // j = phi [pre: init*c], [h: j + step*c]; replace the mul with j.
        let j = f.new_value(ty);
        let jnext = f.new_value(ty);
        let init_c = match iv.init {
            Operand::ImmI(v, s) => Operand::ImmI(s.wrap(v.wrapping_mul(c)), s),
            other => {
                // init*c must be computed in the preheader.
                let pv = f.new_value(ty);
                f.blocks[sl.preheader.idx()].insts.push(Inst::Bin {
                    dst: pv,
                    op: BinOp::Mul,
                    lhs: other,
                    rhs: Operand::ImmI(c, ty.scalar),
                });
                Operand::Value(pv)
            }
        };
        let step_c = iv.step.wrapping_mul(c);
        let hdr = &mut f.blocks[h.idx()].insts;
        // Replace the mul with `jnext = add j, step*c` is wrong — the mul
        // equals j (current iteration), so substitute dst -> j and keep the
        // increment separate.
        hdr[ii] = Inst::Bin {
            dst: jnext,
            op: BinOp::Add,
            lhs: Operand::Value(j),
            rhs: Operand::ImmI(step_c, ty.scalar),
        };
        hdr.insert(
            0,
            Inst::Phi {
                dst: j,
                incoming: vec![(sl.preheader, init_c), (h, Operand::Value(jnext))],
            },
        );
        replace_uses(f, dst, Operand::Value(j));
        return true;
    }
    false
}
