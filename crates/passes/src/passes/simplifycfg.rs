//! Control-flow simplification: constant-branch folding, block merging,
//! forwarding-block elimination — plus a simple `jump-threading` pass.

use crate::manager::Pass;
use crate::stats::Stats;
use crate::util::{
    has_simplifiable_phi, has_unreachable_blocks, is_forwarding_block,
    remove_unreachable_blocks, simplify_single_incoming_phis,
};
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::analysis::Cfg;
use citroen_ir::inst::{BlockId, Inst, Operand, Term};
use citroen_ir::module::{Function, Module};
use std::collections::HashSet;

/// The `simplifycfg` pass.
pub struct SimplifyCfg;

impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            // Iterate the local simplifications to a true fixpoint. The bound
            // is a termination measure, not a heuristic: every one of the five
            // rewrites strictly decreases `blocks + condbrs + φs` and none of
            // them ever increases it, so `measure + 1` rounds always reach the
            // fixpoint — which is what makes `clears = CFGS` and idempotence
            // theorems rather than hopes.
            let measure = f.blocks.len()
                + f.blocks
                    .iter()
                    .map(|b| {
                        b.num_phis()
                            + usize::from(matches!(b.term, Term::CondBr { .. }))
                    })
                    .sum::<usize>();
            for _ in 0..=measure {
                let mut changed = 0;
                changed += fold_constant_branches(f);
                changed += remove_unreachable_blocks(f);
                changed += merge_straightline(f);
                changed += bypass_forwarding_blocks(f);
                changed += simplify_single_incoming_phis(f);
                n += changed as u64;
                if changed == 0 {
                    break;
                }
            }
            stats.inc("simplifycfg", "NumSimpl", n);
        }
    }
    fn is_idempotent(&self) -> bool {
        true
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::CFGS)
    }
    fn clears(&self) -> u64 {
        crate::work::CFGS
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Mirror the first fixpoint round: if none of the five local
        // simplifications finds work, the round reports 0 changes, the loop
        // exits, and the stat increments by 0 (unrecorded).
        for f in &m.funcs {
            if let Some(ev) = simplifycfg_evidence(f) {
                return Verdict::may(format!("{}: {ev}", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// Read-only mirror of one `SimplifyCfg` round: what (if anything) the first
/// of its five rewrites would act on.
fn simplifycfg_evidence(f: &Function) -> Option<String> {
    // fold_constant_branches: condbr with equal arms or a constant condition.
    for blk in &f.blocks {
        if let Term::CondBr { cond, t, f: fb } = &blk.term {
            if t == fb {
                return Some("condbr with equal targets".into());
            }
            if matches!(cond, Operand::ImmI(..)) {
                return Some("condbr on a constant".into());
            }
        }
    }
    if has_unreachable_blocks(f) {
        return Some("unreachable blocks".into());
    }
    // merge_straightline candidate.
    let cfg = Cfg::compute(f);
    for (b, blk) in f.iter_blocks() {
        if !cfg.reachable(b) {
            continue;
        }
        if let Term::Br(s) = blk.term {
            if s != b && cfg.preds[s.idx()].len() == 1 && f.blocks[s.idx()].num_phis() == 0 {
                return Some(format!("straight-line merge b{}→b{}", b.0, s.0));
            }
        }
    }
    // bypass_forwarding_blocks candidate.
    for ei in 0..f.blocks.len() {
        let e = BlockId(ei as u32);
        let Some(t) = is_forwarding_block(f, e) else { continue };
        if !cfg.reachable(e) {
            continue;
        }
        let preds_e = &cfg.preds[e.idx()];
        let preds_t: HashSet<BlockId> = cfg.preds[t.idx()].iter().copied().collect();
        if preds_e.is_empty() || e == t {
            continue;
        }
        if preds_e.iter().any(|p| preds_t.contains(p) || *p == e) {
            continue;
        }
        return Some(format!("forwarding block b{}", e.0));
    }
    if has_simplifiable_phi(f) {
        return Some("single-incoming φ".into());
    }
    None
}

/// `condbr const, T, F` → `br` (and `condbr c, T, T` → `br T`), dropping the
/// dead edge from the φs of the no-longer-successor.
pub(crate) fn fold_constant_branches(f: &mut Function) -> usize {
    let mut n = 0;
    for bi in 0..f.blocks.len() {
        let b = BlockId(bi as u32);
        let (taken, dead) = match &f.blocks[bi].term {
            Term::CondBr { cond, t, f: fb } => {
                if t == fb {
                    (*t, None)
                } else if let Operand::ImmI(c, _) = cond {
                    if *c != 0 {
                        (*t, Some(*fb))
                    } else {
                        (*fb, Some(*t))
                    }
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        f.blocks[bi].term = Term::Br(taken);
        if let Some(d) = dead {
            remove_phi_edge(f, d, b);
        }
        n += 1;
    }
    n
}

/// Remove the incoming entry for `pred` from every φ of `block`.
fn remove_phi_edge(f: &mut Function, block: BlockId, pred: BlockId) {
    for inst in &mut f.blocks[block.idx()].insts {
        if let Inst::Phi { incoming, .. } = inst {
            incoming.retain(|(p, _)| *p != pred);
        }
    }
}

/// Merge `b -> s` when `s` is `b`'s unique successor and `b` is `s`'s unique
/// predecessor. φ incomings referring to `s` in `s`'s successors are renamed.
pub(crate) fn merge_straightline(f: &mut Function) -> usize {
    let mut n = 0;
    loop {
        let cfg = Cfg::compute(f);
        let mut candidate: Option<(BlockId, BlockId)> = None;
        for (b, blk) in f.iter_blocks() {
            if !cfg.reachable(b) {
                continue;
            }
            if let Term::Br(s) = blk.term {
                if s != b && cfg.preds[s.idx()].len() == 1 && f.blocks[s.idx()].num_phis() == 0 {
                    candidate = Some((b, s));
                    break;
                }
            }
        }
        let Some((b, s)) = candidate else { break };
        let succ_insts = std::mem::take(&mut f.blocks[s.idx()].insts);
        let succ_term = std::mem::replace(&mut f.blocks[s.idx()].term, Term::Unreachable);
        f.blocks[b.idx()].insts.extend(succ_insts);
        f.blocks[b.idx()].term = succ_term;
        // Successors of s now see b as the pred.
        for t in f.blocks[b.idx()].term.successors() {
            for inst in &mut f.blocks[t.idx()].insts {
                if let Inst::Phi { incoming, .. } = inst {
                    for (p, _) in incoming.iter_mut() {
                        if *p == s {
                            *p = b;
                        }
                    }
                }
            }
        }
        remove_unreachable_blocks(f);
        n += 1;
    }
    n
}

/// Retarget edges that go through an empty `br`-only block, when doing so
/// keeps φ incoming lists valid.
pub(crate) fn bypass_forwarding_blocks(f: &mut Function) -> usize {
    let mut n = 0;
    let nb = f.blocks.len();
    for ei in 0..nb {
        let e = BlockId(ei as u32);
        let Some(t) = is_forwarding_block(f, e) else { continue };
        let cfg = Cfg::compute(f);
        if !cfg.reachable(e) {
            continue;
        }
        // The forwarding block must not be a φ-relevant merge point we can't
        // preserve: every pred p of e must not already be a pred of t.
        let preds_e: Vec<BlockId> = cfg.preds[e.idx()].clone();
        let preds_t: HashSet<BlockId> = cfg.preds[t.idx()].iter().copied().collect();
        if preds_e.is_empty() || e == t {
            continue;
        }
        if preds_e.iter().any(|p| preds_t.contains(p) || *p == e) {
            continue;
        }
        // Rewrite each pred's terminator e -> t.
        for &p in &preds_e {
            f.blocks[p.idx()].term.for_each_successor_mut(|s| {
                if *s == e {
                    *s = t;
                }
            });
        }
        // t's φs: replace the entry from e with one entry per pred of e.
        for inst in &mut f.blocks[t.idx()].insts {
            if let Inst::Phi { incoming, .. } = inst {
                if let Some(pos) = incoming.iter().position(|(p, _)| *p == e) {
                    let (_, val) = incoming.remove(pos);
                    for &p in &preds_e {
                        incoming.push((p, val));
                    }
                }
            }
        }
        remove_unreachable_blocks(f);
        n += 1;
        // Block ids shifted; restart scanning from a consistent state.
        return n + bypass_forwarding_blocks(f);
    }
    n
}

/// The `jump-threading` pass: when a block consists solely of φs and a condbr
/// whose condition is one of the φs with constant incomings, thread each
/// constant-pred edge directly to its known destination.
pub struct JumpThreading;

impl Pass for JumpThreading {
    fn name(&self) -> &'static str {
        "jump-threading"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for _ in 0..4 {
                let t = thread_once(f);
                n += t as u64;
                if t == 0 {
                    break;
                }
            }
            stats.inc("jump-threading", "NumThreads", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Mirror `thread_once`'s candidate search up to (but not including)
        // the duplicate-pred safety check: a candidate that fails that check
        // yields a harmless MayFire over-approximation.
        for f in &m.funcs {
            let cfg = Cfg::compute(f);
            for (b, blk) in f.iter_blocks() {
                if !cfg.reachable(b) || blk.insts.len() != 1 {
                    continue;
                }
                let Inst::Phi { dst, incoming } = &blk.insts[0] else { continue };
                let Term::CondBr { cond, t, f: fb } = &blk.term else { continue };
                if cond.as_value() != Some(*dst) || t == fb || *t == b || *fb == b {
                    continue;
                }
                if incoming.iter().any(|(_, op)| op.as_const_int().is_some()) {
                    return Verdict::may(format!(
                        "{}: threadable φ-condbr at b{}",
                        f.name, b.0
                    ));
                }
            }
        }
        Verdict::CannotFire
    }
}

fn thread_once(f: &mut Function) -> usize {
    let cfg = Cfg::compute(f);
    // Find: block B with exactly one φ, no other insts, condbr on that φ.
    let mut found: Option<(BlockId, citroen_ir::inst::ValueId, Vec<(BlockId, BlockId)>)> = None;
    for (b, blk) in f.iter_blocks() {
        if !cfg.reachable(b) || blk.insts.len() != 1 {
            continue;
        }
        let Inst::Phi { dst, incoming } = &blk.insts[0] else { continue };
        let Term::CondBr { cond, t, f: fb } = &blk.term else { continue };
        if cond.as_value() != Some(*dst) || t == fb || *t == b || *fb == b {
            continue;
        }
        let (t, fb) = (*t, *fb);
        // Preds with a constant incoming can be threaded.
        let threadable: Vec<(BlockId, BlockId)> = incoming
            .iter()
            .filter_map(|(p, op)| {
                op.as_const_int().map(|c| (*p, if c != 0 { t } else { fb }))
            })
            .collect();
        if threadable.is_empty() {
            continue;
        }
        // Safety: the target must not end up with duplicate preds, and the
        // targets' φs must be extendable (they gain an edge from p with the
        // same value they had from B).
        let preds_t: HashSet<BlockId> = cfg.preds[t.idx()].iter().copied().collect();
        let preds_f: HashSet<BlockId> = cfg.preds[fb.idx()].iter().copied().collect();
        let ok = threadable.iter().all(|(p, dest)| {
            let existing = if *dest == t { &preds_t } else { &preds_f };
            !existing.contains(p) && *p != b
        });
        // Also require each threaded pred appear once (condbr t==f already excluded).
        if !ok {
            continue;
        }
        found = Some((b, *dst, threadable));
        break;
    }
    if let Some((b_id, b_phi, threadable)) = found {
        // Apply: for each (p, dest): p's edge b -> dest; dest's φs gain an
        // entry (p, value-they-had-for-b), with references to B's φ replaced
        // by the constant p carried; B's φ loses its entry for p.
        for (p, dest) in &threadable {
            let carried = f.blocks[b_id.idx()]
                .insts
                .first()
                .and_then(|inst| match inst {
                    Inst::Phi { incoming, .. } => {
                        incoming.iter().find(|(q, _)| q == p).map(|(_, v)| *v)
                    }
                    _ => None,
                })
                .expect("threaded pred must have a phi entry");
            f.blocks[p.idx()].term.for_each_successor_mut(|s| {
                if *s == b_id {
                    *s = *dest;
                }
            });
            for inst in &mut f.blocks[dest.idx()].insts {
                if let Inst::Phi { incoming, .. } = inst {
                    if let Some((_, v)) = incoming.iter().find(|(q, _)| *q == b_id).copied() {
                        let val = match v {
                            Operand::Value(vid) if vid == b_phi => carried,
                            other => other,
                        };
                        incoming.push((*p, val));
                    }
                }
            }
            if let Inst::Phi { incoming, .. } = &mut f.blocks[b_id.idx()].insts[0] {
                incoming.retain(|(q, _)| q != p);
            }
        }
        simplify_single_incoming_phis(f);
        remove_unreachable_blocks(f);
        1
    } else {
        0
    }
}
