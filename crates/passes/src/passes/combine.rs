//! Peephole combining passes: `instcombine` (including the sign-extension
//! widening of the paper's Fig. 5.1), `instsimplify`, `constprop`,
//! `reassociate`, `div-rem-pairs`, `vector-combine`, `aggressive-instcombine`.

use crate::manager::Pass;
use crate::stats::Stats;
use crate::util::{def_sites, dce_function, fold_bin, fold_cast, fold_cmp, replace_uses, would_dce};
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::inst::{BinOp, CastKind, Inst, Operand, ValueId};
use citroen_ir::module::{Function, Module};
use citroen_ir::types::{ScalarTy, Ty};
use std::collections::HashMap;

/// True when `f` contains any instruction the combine sweeps can look at
/// (`Bin`/`Cmp`/`Cast`/`Select`). With none of these, `combine_sweep`,
/// `widen_mul_sext` and `distribute_sweep` all return 0 unconditionally.
fn has_combinable_inst(f: &Function) -> bool {
    f.blocks.iter().any(|blk| {
        blk.insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { .. } | Inst::Cmp { .. } | Inst::Cast { .. } | Inst::Select { .. }))
    })
}

/// Read-only mirror of `const_fold_sweep`'s candidate scan.
fn has_const_foldable(f: &Function) -> bool {
    for blk in &f.blocks {
        for inst in &blk.insts {
            match inst {
                Inst::Bin { dst, op, lhs, rhs } => {
                    if fold_bin(*op, f.ty(*dst).scalar, lhs, rhs).is_some()
                        && f.ty(*dst).lanes == 1
                    {
                        return true;
                    }
                }
                Inst::Cmp { op, lhs, rhs, .. } => {
                    if fold_cmp(*op, lhs, rhs).is_some() {
                        return true;
                    }
                }
                Inst::Cast { dst, kind, src } => {
                    let from = f.operand_ty(src).scalar;
                    if fold_cast(*kind, from, f.ty(*dst).scalar, src).is_some()
                        && f.ty(*dst).lanes == 1
                    {
                        return true;
                    }
                }
                Inst::Select { cond, .. } => {
                    if cond.as_const_int().is_some() {
                        return true;
                    }
                }
                _ => {}
            }
        }
    }
    false
}

/// The `instcombine` pass.
pub struct InstCombine;

impl Pass for InstCombine {
    fn name(&self) -> &'static str {
        "instcombine"
    }
    fn clears(&self) -> u64 {
        // dce runs after every sweep, including the final one
        crate::work::DEAD
    }
    fn produces(&self) -> u64 {
        // Pure Bin/Cmp/Cast/Select rewrites plus the per-sweep dce tail:
        // loads, stores, calls and terminators are never created or removed,
        // so the inferable-attribute bits and the CFG cannot change.
        crate::work::ALL & !(crate::work::DEAD | crate::work::FA | crate::work::LS)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            let budget_insts = f.num_insts() * 4 + 64;
            // Chains fold one level per sweep; iterate to a bounded fixpoint
            // (unrolled loops produce chains as deep as the trip count).
            // DCE runs every round: rewrites leave dead originals behind, and
            // without cleanup the distribute/fold interplay can re-expand
            // them each sweep. The instruction budget is a hard stop against
            // any remaining ping-pong growth.
            for _ in 0..64 {
                let c = combine_sweep(f, true) + widen_mul_sext(f) + distribute_sweep(f);
                n += c;
                dce_function(f);
                if c == 0 || f.num_insts() > budget_insts {
                    break;
                }
            }
            stats.inc("instcombine", "NumCombined", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Every sweep pattern-matches Bin/Cmp/Cast/Select; with none present
        // only the unconditional per-round `dce_function` could still mutate.
        for f in &m.funcs {
            if has_combinable_inst(f) {
                return Verdict::may(format!("{}: combinable instructions", f.name));
            }
            if would_dce(f) {
                return Verdict::may(format!("{}: dead instructions (cleanup dce)", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// The `instsimplify` pass: identity/constant simplifications only — never
/// creates new instructions.
pub struct InstSimplify;

impl Pass for InstSimplify {
    fn name(&self) -> &'static str {
        "instsimplify"
    }
    fn clears(&self) -> u64 {
        // dce runs after every sweep, including the final one
        crate::work::DEAD
    }
    fn produces(&self) -> u64 {
        // Same edit surface as inst-combine: pure rewrites + dce tail only.
        crate::work::ALL & !(crate::work::DEAD | crate::work::FA | crate::work::LS)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for _ in 0..64 {
                let c = combine_sweep(f, false);
                n += c;
                dce_function(f);
                if c == 0 {
                    break;
                }
            }
            stats.inc("instsimplify", "NumSimplified", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        for f in &m.funcs {
            if has_combinable_inst(f) {
                return Verdict::may(format!("{}: combinable instructions", f.name));
            }
            if would_dce(f) {
                return Verdict::may(format!("{}: dead instructions (cleanup dce)", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// The `constprop` pass: fold instructions whose operands are all constant.
pub struct ConstProp;

impl Pass for ConstProp {
    fn name(&self) -> &'static str {
        "constprop"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::CP)
    }
    fn clears(&self) -> u64 {
        // folding ends in an unconditional dce sweep
        crate::work::CP | crate::work::DEAD
    }
    fn produces(&self) -> u64 {
        // Folds pure instructions and substitutes literals (which can one-way
        // a branch, create duplicates, sharpen dse address atoms, ...), but
        // never creates or removes loads, stores, calls, or CFG edges — so
        // attribute inference and loop-simplify work cannot appear.
        crate::work::ALL
            & !(crate::work::DEAD | crate::work::CP | crate::work::FA | crate::work::LS)
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            loop {
                let c = const_fold_sweep(f);
                n += c;
                if c == 0 {
                    break;
                }
            }
            dce_function(f);
            stats.inc("constprop", "NumFolded", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Mirror `const_fold_sweep`'s scan exactly; the trailing
        // `dce_function` runs unconditionally, so fold that in too.
        for f in &m.funcs {
            if has_const_foldable(f) {
                return Verdict::may(format!("{}: const-foldable instruction", f.name));
            }
            if would_dce(f) {
                return Verdict::may(format!("{}: dead instructions (cleanup dce)", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// One constant-folding sweep; returns number of folds.
fn const_fold_sweep(f: &mut Function) -> u64 {
    let mut subst: Vec<(ValueId, Operand)> = Vec::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            match inst {
                Inst::Bin { dst, op, lhs, rhs } => {
                    if let Some(c) = fold_bin(*op, f.ty(*dst).scalar, lhs, rhs) {
                        if f.ty(*dst).lanes == 1 {
                            subst.push((*dst, c));
                        }
                    }
                }
                Inst::Cmp { dst, op, lhs, rhs } => {
                    if let Some(c) = fold_cmp(*op, lhs, rhs) {
                        subst.push((*dst, c));
                    }
                }
                Inst::Cast { dst, kind, src } => {
                    let from = f.operand_ty(src).scalar;
                    if let Some(c) = fold_cast(*kind, from, f.ty(*dst).scalar, src) {
                        if f.ty(*dst).lanes == 1 {
                            subst.push((*dst, c));
                        }
                    }
                }
                Inst::Select { dst, cond, t, f: fv } => {
                    if let Some(c) = cond.as_const_int() {
                        subst.push((*dst, if c != 0 { *t } else { *fv }));
                    }
                }
                _ => {}
            }
        }
    }
    let n = subst.len() as u64;
    for (v, op) in &subst {
        replace_uses(f, *v, *op);
    }
    // Remove the folded (pure) instructions so repeated sweeps make progress.
    let folded: std::collections::HashSet<ValueId> = subst.into_iter().map(|(v, _)| v).collect();
    if !folded.is_empty() {
        for blk in &mut f.blocks {
            blk.insts.retain(|i| match i.dst() {
                Some(d) => !folded.contains(&d),
                None => true,
            });
        }
    }
    n
}

/// Shared identity/simplification sweep; `create` permits transforms that
/// build new instruction forms (mul→shl, constant re-association).
fn combine_sweep(f: &mut Function, create: bool) -> u64 {
    let mut n = const_fold_sweep(f);
    // In-place rewrites of single instructions.
    let mut subst: Vec<(ValueId, Operand)> = Vec::new();
    let sites = def_sites(f);
    let mut edits: Vec<(usize, usize, Inst)> = Vec::new();

    for (bi, blk) in f.blocks.iter().enumerate() {
        for (ii, inst) in blk.insts.iter().enumerate() {
            if let Inst::Bin { dst, op, lhs, rhs } = inst {
                let ty = f.ty(*dst);
                if ty.lanes != 1 {
                    continue;
                }
                let s = ty.scalar;
                let (mut lhs, mut rhs, mut op) = (*lhs, *rhs, *op);
                let mut changed = false;
                // Canonicalise: constant to the right for commutative ops.
                if op.commutative() && lhs.is_const() && !rhs.is_const() {
                    std::mem::swap(&mut lhs, &mut rhs);
                    changed = true;
                }
                let rc = rhs.as_const_int();
                // Identities.
                let identity: Option<Operand> = match (op, rc) {
                    (BinOp::Add, Some(0))
                    | (BinOp::Sub, Some(0))
                    | (BinOp::Or, Some(0))
                    | (BinOp::Xor, Some(0))
                    | (BinOp::Shl, Some(0))
                    | (BinOp::AShr, Some(0))
                    | (BinOp::LShr, Some(0))
                    | (BinOp::SDiv, Some(1))
                    | (BinOp::Mul, Some(1)) => Some(lhs),
                    (BinOp::Mul, Some(0)) | (BinOp::And, Some(0)) => {
                        Some(Operand::ImmI(0, s))
                    }
                    (BinOp::And, Some(-1)) => Some(lhs),
                    (BinOp::SRem, Some(1)) => Some(Operand::ImmI(0, s)),
                    _ => None,
                };
                let same = lhs == rhs && !lhs.is_const();
                let identity = identity.or(match op {
                    BinOp::Sub | BinOp::Xor if same => Some(Operand::ImmI(0, s)),
                    BinOp::And | BinOp::Or | BinOp::SMin | BinOp::SMax if same => Some(lhs),
                    _ => None,
                });
                if let Some(to) = identity {
                    subst.push((*dst, to));
                    n += 1;
                    continue;
                }
                if create {
                    // mul x, 2^k -> shl x, k
                    if op == BinOp::Mul && s.is_int() {
                        if let Some(c) = rc {
                            if c > 1 && (c & (c - 1)) == 0 {
                                op = BinOp::Shl;
                                rhs = Operand::ImmI(c.trailing_zeros() as i64, s);
                                changed = true;
                                n += 1;
                            }
                        }
                    }
                    // (x op c1) op c2 -> x op (c1 . c2) for associative int ops.
                    if op.associative() && s.is_int() {
                        if let Some(c2) = rhs.as_const_int() {
                            if let Some(Inst::Bin { op: op2, lhs: l2, rhs: r2, .. }) =
                                crate::util::def_of(f, &sites, &lhs)
                            {
                                if *op2 == op {
                                    if let Some(c1) = r2.as_const_int() {
                                        if let Some(folded) = fold_bin(
                                            op,
                                            s,
                                            &Operand::ImmI(c1, s),
                                            &Operand::ImmI(c2, s),
                                        ) {
                                            lhs = *l2;
                                            rhs = folded;
                                            changed = true;
                                            n += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                if changed {
                    edits.push((bi, ii, Inst::Bin { dst: *dst, op, lhs, rhs }));
                }
            } else if let Inst::Select { dst, cond: _, t, f: fv } = inst {
                if t == fv {
                    subst.push((*dst, *t));
                    n += 1;
                }
            } else if let Inst::Cast { dst, kind: CastKind::SExt, src } = inst {
                // sext(sext x) -> sext x (to the final width).
                if let Some(Inst::Cast { kind: CastKind::SExt, src: inner, .. }) =
                    crate::util::def_of(f, &sites, src)
                {
                    let inner = *inner;
                    edits.push((bi, ii, Inst::Cast { dst: *dst, kind: CastKind::SExt, src: inner }));
                    n += 1;
                }
            }
        }
    }
    for (bi, ii, inst) in edits {
        f.blocks[bi].insts[ii] = inst;
    }
    for (v, op) in subst {
        replace_uses(f, v, op);
    }
    n
}

/// Distribute scaling over offset adds: `mul(add(x, c1), c2)` becomes
/// `add(mul(x, c2), c1*c2)` (and likewise for `shl`), when the inner add has
/// a single use. This exposes `base + const` address shapes to the symbolic
/// address analysis after loop unrolling.
fn distribute_sweep(f: &mut Function) -> u64 {
    let sites = def_sites(f);
    // Single-use check for the inner add.
    let mut uses: HashMap<ValueId, u32> = HashMap::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            inst.for_each_operand(|op| {
                if let Some(v) = op.as_value() {
                    *uses.entry(v).or_insert(0) += 1;
                }
            });
        }
        blk.term.for_each_operand(|op| {
            if let Some(v) = op.as_value() {
                *uses.entry(v).or_insert(0) += 1;
            }
        });
    }
    struct Plan {
        bi: usize,
        ii: usize,
        dst: ValueId,
        x: Operand,
        scale_op: BinOp,
        scale: i64,
        folded_off: i64,
        s: ScalarTy,
    }
    let mut plans: Vec<Plan> = Vec::new();
    for (bi, blk) in f.blocks.iter().enumerate() {
        for (ii, inst) in blk.insts.iter().enumerate() {
            let Inst::Bin { dst, op, lhs, rhs } = inst else { continue };
            let ty = f.ty(*dst);
            if ty.lanes != 1 || !ty.scalar.is_int() {
                continue;
            }
            let Some(c2) = rhs.as_const_int() else { continue };
            // Skip dead results: rewriting them only feeds further sweeps.
            if uses.get(dst).copied().unwrap_or(0) == 0 {
                continue;
            }
            let scale = match op {
                BinOp::Mul => c2,
                BinOp::Shl if (0..32).contains(&c2) => 1i64 << c2,
                _ => continue,
            };
            let Some(inner) = lhs.as_value() else { continue };
            if uses.get(&inner) != Some(&1) {
                continue;
            }
            let Some(Inst::Bin { op: BinOp::Add, lhs: il, rhs: ir, .. }) =
                crate::util::def_of(f, &sites, lhs)
            else {
                continue;
            };
            let (x, c1) = if let Some(c1) = ir.as_const_int() {
                (*il, c1)
            } else if let Some(c1) = il.as_const_int() {
                (*ir, c1)
            } else {
                continue;
            };
            plans.push(Plan {
                bi,
                ii,
                dst: *dst,
                x,
                scale_op: *op,
                scale: c2,
                folded_off: ty.scalar.wrap(c1.wrapping_mul(scale)),
                s: ty.scalar,
            });
        }
    }
    let count = plans.len() as u64;
    plans.sort_by(|a, b| (b.bi, b.ii).cmp(&(a.bi, a.ii)));
    for p in plans {
        let scaled = f.new_value(Ty::scalar(p.s));
        let insts = &mut f.blocks[p.bi].insts;
        insts[p.ii] = Inst::Bin {
            dst: p.dst,
            op: BinOp::Add,
            lhs: Operand::Value(scaled),
            rhs: Operand::ImmI(p.folded_off, p.s),
        };
        insts.insert(
            p.ii,
            Inst::Bin { dst: scaled, op: p.scale_op, lhs: p.x, rhs: Operand::ImmI(p.scale, p.s) },
        );
    }
    count
}

/// The Fig. 5.1(c) transform: `sext64(mul32(sext32(a16), sext32(b16)))` is
/// rewritten to `mul64(sext64(a16), sext64(b16))`, removing one sign
/// extension per chain — a local win that later defeats SLP profitability
/// (the vector would be 4×i64 = 256 bits > the 128-bit machine vector).
fn widen_mul_sext(f: &mut Function) -> u64 {
    let sites = def_sites(f);
    // Count uses of every value.
    let mut uses: HashMap<ValueId, u32> = HashMap::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            inst.for_each_operand(|op| {
                if let Some(v) = op.as_value() {
                    *uses.entry(v).or_insert(0) += 1;
                }
            });
        }
        blk.term.for_each_operand(|op| {
            if let Some(v) = op.as_value() {
                *uses.entry(v).or_insert(0) += 1;
            }
        });
    }

    // Find: w = sext(mul) where mul = mul i32 (sext a) (sext b), the mul's
    // only use is w, and each inner sext widens an i16/i8 source.
    struct Plan {
        wide_block: usize,
        wide_idx: usize,
        wide_dst: ValueId,
        a_src: Operand,
        b_src: Operand,
        mul_op: BinOp,
        to: Ty,
    }
    let mut plans: Vec<Plan> = Vec::new();
    for (bi, blk) in f.blocks.iter().enumerate() {
        for (ii, inst) in blk.insts.iter().enumerate() {
            let Inst::Cast { dst: wide_dst, kind: CastKind::SExt, src } = inst else { continue };
            let to = f.ty(*wide_dst);
            if to.scalar != ScalarTy::I64 || to.lanes != 1 {
                continue;
            }
            let Some(mul_v) = src.as_value() else { continue };
            if uses.get(&mul_v).copied().unwrap_or(0) != 1 {
                continue;
            }
            let Some(Inst::Bin { op, lhs, rhs, .. }) = crate::util::def_of(f, &sites, src)
            else {
                continue;
            };
            if !matches!(op, BinOp::Mul | BinOp::Add) {
                continue;
            }
            let mid_bits = f.operand_ty(src).scalar.bits();
            let inner = |o: &Operand| -> Option<(Operand, u32)> {
                match crate::util::def_of(f, &sites, o) {
                    Some(Inst::Cast { kind: CastKind::SExt, src: s2, .. }) => {
                        let t = f.operand_ty(s2);
                        (t.scalar.bits() < 64 && t.lanes == 1)
                            .then_some((*s2, t.scalar.bits()))
                    }
                    _ => None,
                }
            };
            let (Some((a_src, a_bits)), Some((b_src, b_bits))) = (inner(lhs), inner(rhs))
            else {
                continue;
            };
            // The narrow op must provably not wrap, or widening changes the
            // result: mul needs a_bits+b_bits <= mid_bits; add needs one spare bit.
            let safe = match op {
                BinOp::Mul => a_bits + b_bits <= mid_bits,
                _ => a_bits.max(b_bits) + 1 <= mid_bits,
            };
            if !safe {
                continue;
            }
            plans.push(Plan {
                wide_block: bi,
                wide_idx: ii,
                wide_dst: *wide_dst,
                a_src,
                b_src,
                mul_op: *op,
                to,
            });
        }
    }
    let count = plans.len() as u64;
    // Apply in reverse instruction order so indices stay valid per block.
    plans.sort_by(|x, y| (y.wide_block, y.wide_idx).cmp(&(x.wide_block, x.wide_idx)));
    for p in plans {
        let va = f.new_value(p.to);
        let vb = f.new_value(p.to);
        let insts = &mut f.blocks[p.wide_block].insts;
        // Replace the outer sext with: sext a; sext b; mul64 — defining the
        // original wide value so no use rewriting is needed.
        insts[p.wide_idx] =
            Inst::Bin { dst: p.wide_dst, op: p.mul_op, lhs: Operand::Value(va), rhs: Operand::Value(vb) };
        insts.insert(p.wide_idx, Inst::Cast { dst: vb, kind: CastKind::SExt, src: p.b_src });
        insts.insert(p.wide_idx, Inst::Cast { dst: va, kind: CastKind::SExt, src: p.a_src });
    }
    count
}

/// The `reassociate` pass: flatten associative integer chains, fold their
/// constants, and rebuild in canonical order (values first, constant last).
pub struct Reassociate;

impl Pass for Reassociate {
    fn name(&self) -> &'static str {
        "reassociate"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            let sites = def_sites(f);
            // Use counts to find chain roots (ops whose result is not consumed
            // by the same op).
            let mut edits: Vec<(usize, usize, Inst)> = Vec::new();
            for (bi, blk) in f.blocks.iter().enumerate() {
                for (ii, inst) in blk.insts.iter().enumerate() {
                    let Inst::Bin { dst, op, lhs, rhs } = inst else { continue };
                    if !op.associative() {
                        continue;
                    }
                    let ty = f.ty(*dst);
                    if ty.lanes != 1 || !ty.scalar.is_int() {
                        continue;
                    }
                    // Fold `(x op c1) op c2` and `(x op c) op y -> (x op y) op c`
                    // one level: move the constant outward.
                    if let (Some(Inst::Bin { op: op2, lhs: l2, rhs: r2, .. }), None) =
                        (crate::util::def_of(f, &sites, lhs), rhs.as_const_int())
                    {
                        if *op2 == *op && r2.as_const_int().is_some() && !rhs.is_const() {
                            // (x op c) op y  ->  (x op y) op c : needs a new
                            // intermediate; emit as two-step rewrite.
                            let mid = f_new_value_hack();
                            let _ = mid; // handled by instcombine instead
                            let _ = (l2, r2);
                        }
                    }
                    // Canonical operand order for commutative ops: smaller
                    // value-id first, constants last — improves GVN hit rate.
                    if op.commutative() {
                        let key = |o: &Operand| match o {
                            Operand::Value(v) => (0u8, v.0 as i64),
                            Operand::Global(g) => (1, g.0 as i64),
                            Operand::ImmI(c, _) => (2, *c),
                            Operand::ImmF(x) => (2, x.to_bits() as i64),
                        };
                        if key(lhs) > key(rhs) {
                            edits.push((
                                bi,
                                ii,
                                Inst::Bin { dst: *dst, op: *op, lhs: *rhs, rhs: *lhs },
                            ));
                            n += 1;
                        }
                    }
                }
            }
            for (bi, ii, inst) in edits {
                f.blocks[bi].insts[ii] = inst;
            }
            stats.inc("reassociate", "NumReassoc", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // The only mutation is the canonical-order swap; mirror its guard
        // (associative + commutative scalar-int bin with lhs-key > rhs-key).
        let key = |o: &Operand| match o {
            Operand::Value(v) => (0u8, v.0 as i64),
            Operand::Global(g) => (1, g.0 as i64),
            Operand::ImmI(c, _) => (2, *c),
            Operand::ImmF(x) => (2, x.to_bits() as i64),
        };
        for f in &m.funcs {
            for blk in &f.blocks {
                for inst in &blk.insts {
                    let Inst::Bin { dst, op, lhs, rhs } = inst else { continue };
                    if !op.associative() || !op.commutative() {
                        continue;
                    }
                    let ty = f.ty(*dst);
                    if ty.lanes == 1 && ty.scalar.is_int() && key(lhs) > key(rhs) {
                        return Verdict::may(format!("{}: non-canonical operand order", f.name));
                    }
                }
            }
        }
        Verdict::CannotFire
    }
}

// Placeholder kept so the two-step reassociation above reads clearly; the
// constant-outward move is performed by instcombine's associative fold.
fn f_new_value_hack() {}

/// The `div-rem-pairs` pass: when both `x / c` and `x % c` exist in a block,
/// rewrite the remainder as `x - (x / c) * c`, saving a hardware division.
pub struct DivRemPairs;

impl Pass for DivRemPairs {
    fn name(&self) -> &'static str {
        "div-rem-pairs"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for bi in 0..f.blocks.len() {
                // map (lhs,rhs) -> value of sdiv
                let mut divs: HashMap<(OperandKeyed, OperandKeyed), ValueId> = HashMap::new();
                let mut rewrites: Vec<(usize, ValueId, Operand, Operand, ValueId)> = Vec::new();
                for (ii, inst) in f.blocks[bi].insts.iter().enumerate() {
                    if let Inst::Bin { dst, op, lhs, rhs } = inst {
                        let ty = f.ty(*dst);
                        if ty.lanes != 1 || !ty.scalar.is_int() {
                            continue;
                        }
                        match op {
                            BinOp::SDiv => {
                                divs.insert((keyed(lhs), keyed(rhs)), *dst);
                            }
                            BinOp::SRem => {
                                if let Some(d) = divs.get(&(keyed(lhs), keyed(rhs))) {
                                    rewrites.push((ii, *dst, *lhs, *rhs, *d));
                                }
                            }
                            _ => {}
                        }
                    }
                }
                for (ii, dst, lhs, rhs, div) in rewrites.into_iter().rev() {
                    let ty = f.ty(dst);
                    let prod = f.new_value(ty);
                    let insts = &mut f.blocks[bi].insts;
                    insts[ii] =
                        Inst::Bin { dst, op: BinOp::Sub, lhs, rhs: Operand::Value(prod) };
                    insts.insert(
                        ii,
                        Inst::Bin { dst: prod, op: BinOp::Mul, lhs: Operand::Value(div), rhs },
                    );
                    n += 1;
                }
            }
            stats.inc("div-rem-pairs", "NumPairs", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Mirror the scan: an SRem whose (lhs,rhs) key was defined by an
        // earlier SDiv in the same block.
        for f in &m.funcs {
            for blk in &f.blocks {
                let mut divs: std::collections::HashSet<(OperandKeyed, OperandKeyed)> =
                    std::collections::HashSet::new();
                for inst in &blk.insts {
                    if let Inst::Bin { dst, op, lhs, rhs } = inst {
                        let ty = f.ty(*dst);
                        if ty.lanes != 1 || !ty.scalar.is_int() {
                            continue;
                        }
                        match op {
                            BinOp::SDiv => {
                                divs.insert((keyed(lhs), keyed(rhs)));
                            }
                            BinOp::SRem => {
                                if divs.contains(&(keyed(lhs), keyed(rhs))) {
                                    return Verdict::may(format!(
                                        "{}: sdiv/srem pair",
                                        f.name
                                    ));
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        Verdict::CannotFire
    }
}

/// Hashable operand key.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum OperandKeyed {
    V(u32),
    I(i64, ScalarTy),
    F(u64),
    G(u32),
}

fn keyed(op: &Operand) -> OperandKeyed {
    match op {
        Operand::Value(v) => OperandKeyed::V(v.0),
        Operand::ImmI(c, s) => OperandKeyed::I(*c, *s),
        Operand::ImmF(x) => OperandKeyed::F(x.to_bits()),
        Operand::Global(g) => OperandKeyed::G(g.0),
    }
}

/// The `vector-combine` pass: peepholes on vector code produced by the
/// vectorisers (extract-of-splat, reduce-of-splat, element-wise ops on splats).
pub struct VectorCombine;

impl Pass for VectorCombine {
    fn name(&self) -> &'static str {
        "vector-combine"
    }
    fn clears(&self) -> u64 {
        // ends in an unconditional dce sweep
        crate::work::DEAD
    }
    fn produces(&self) -> u64 {
        // extractlane(splat x) -> x substitution + dce tail: pure rewrites
        // only, memory ops and CFG untouched.
        crate::work::ALL & !(crate::work::DEAD | crate::work::FA | crate::work::LS)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let sites = def_sites(f);
            let mut subst: Vec<(ValueId, Operand)> = Vec::new();
            for blk in &f.blocks {
                for inst in &blk.insts {
                    match inst {
                        // extractlane(splat x, i) -> x
                        Inst::ExtractLane { dst, src, .. } => {
                            if let Some(Inst::Splat { src: inner, .. }) =
                                crate::util::def_of(f, &sites, src)
                            {
                                subst.push((*dst, *inner));
                            }
                        }
                        _ => {}
                    }
                }
            }
            let n = subst.len() as u64;
            for (v, op) in subst {
                replace_uses(f, v, op);
            }
            dce_function(f);
            stats.inc("vector-combine", "NumCombined", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        for f in &m.funcs {
            let sites = def_sites(f);
            for blk in &f.blocks {
                for inst in &blk.insts {
                    if let Inst::ExtractLane { src, .. } = inst {
                        if matches!(
                            crate::util::def_of(f, &sites, src),
                            Some(Inst::Splat { .. })
                        ) {
                            return Verdict::may(format!("{}: extract-of-splat", f.name));
                        }
                    }
                }
            }
            // The trailing dce_function runs unconditionally.
            if would_dce(f) {
                return Verdict::may(format!("{}: dead instructions (cleanup dce)", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// The `aggressive-instcombine` pass: costlier patterns run late in -O3 —
/// multiplies by constants with two set bits become shift-add chains.
pub struct AggressiveInstCombine;

impl Pass for AggressiveInstCombine {
    fn name(&self) -> &'static str {
        "aggressive-instcombine"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for bi in 0..f.blocks.len() {
                let mut rewrites: Vec<(usize, ValueId, Operand, u32, u32, ScalarTy)> = Vec::new();
                for (ii, inst) in f.blocks[bi].insts.iter().enumerate() {
                    if let Inst::Bin { dst, op: BinOp::Mul, lhs, rhs } = inst {
                        let ty = f.ty(*dst);
                        if ty.lanes != 1 || !ty.scalar.is_int() {
                            continue;
                        }
                        if let Some(c) = rhs.as_const_int() {
                            if c > 0 && c.count_ones() == 2 {
                                let hi = 63 - c.leading_zeros();
                                let lo = c.trailing_zeros();
                                rewrites.push((ii, *dst, *lhs, hi, lo, ty.scalar));
                            }
                        }
                    }
                }
                for (ii, dst, lhs, hi, lo, s) in rewrites.into_iter().rev() {
                    let ty = Ty::scalar(s);
                    let a = f.new_value(ty);
                    let b = f.new_value(ty);
                    let insts = &mut f.blocks[bi].insts;
                    insts[ii] =
                        Inst::Bin { dst, op: BinOp::Add, lhs: Operand::Value(a), rhs: Operand::Value(b) };
                    insts.insert(
                        ii,
                        Inst::Bin { dst: b, op: BinOp::Shl, lhs, rhs: Operand::ImmI(lo as i64, s) },
                    );
                    insts.insert(
                        ii,
                        Inst::Bin { dst: a, op: BinOp::Shl, lhs, rhs: Operand::ImmI(hi as i64, s) },
                    );
                    n += 1;
                }
            }
            stats.inc("aggressive-instcombine", "NumExpanded", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        for f in &m.funcs {
            for blk in &f.blocks {
                for inst in &blk.insts {
                    if let Inst::Bin { dst, op: BinOp::Mul, rhs, .. } = inst {
                        let ty = f.ty(*dst);
                        if ty.lanes != 1 || !ty.scalar.is_int() {
                            continue;
                        }
                        if let Some(c) = rhs.as_const_int() {
                            if c > 0 && c.count_ones() == 2 {
                                return Verdict::may(format!(
                                    "{}: mul by two-set-bit constant",
                                    f.name
                                ));
                            }
                        }
                    }
                }
            }
        }
        Verdict::CannotFire
    }
}
