//! Redundancy elimination: `gvn`, `early-cse`, `sccp`, `dce`, `adce`, `dse`,
//! `sink` and `correlated-propagation`.
//!
//! GVN honours function attributes: calls to `readnone` functions are pure
//! and value-numberable, and `readonly`/`readnone` calls do not clobber load
//! equivalence — this is the `function-attrs` interaction the paper uses to
//! argue that compilation statistics see transformations that IR-syntax
//! features cannot (§3.4).

use crate::manager::Pass;
use crate::stats::Stats;
use crate::util::{
    addr_expr, def_sites, dce_function, fold_bin, fold_cast, fold_cmp, has_unreachable_blocks,
    may_alias, remove_unreachable_blocks, replace_uses, would_dce, AddrExpr,
};
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::analysis::{Cfg, DomTree};
use citroen_ir::inst::{BlockId, CastKind, Inst, Operand, Term, ValueId};
use citroen_ir::module::{Function, Module};
use citroen_ir::types::Ty;
use std::collections::{HashMap, HashSet};

/// Hashable canonical operand.
#[derive(PartialEq, Eq, Hash, Clone, Copy, Debug, PartialOrd, Ord)]
enum OpKey {
    V(u32),
    I(i64, u8),
    F(u64),
    G(u32),
}

fn opkey(op: &Operand) -> OpKey {
    match op {
        Operand::Value(v) => OpKey::V(v.0),
        Operand::ImmI(c, s) => OpKey::I(*c, s.bits() as u8),
        Operand::ImmF(x) => OpKey::F(x.to_bits()),
        Operand::Global(g) => OpKey::G(g.0),
    }
}

/// Canonical hashable key of a pure instruction.
#[derive(PartialEq, Eq, Hash, Clone, Debug)]
enum InstKey {
    Bin(citroen_ir::inst::BinOp, Ty, OpKey, OpKey),
    Cmp(citroen_ir::inst::CmpOp, OpKey, OpKey),
    Cast(CastKind, Ty, OpKey),
    Select(OpKey, OpKey, OpKey),
    Splat(Ty, OpKey),
    Extract(OpKey, u8),
    Reduce(citroen_ir::inst::BinOp, OpKey),
    PureCall(u32, Vec<OpKey>),
    #[allow(dead_code)] // reserved for cross-block load numbering
    Load(Ty, OpKey, i64, u64),
}

fn pure_key(f: &Function, m: &Module, inst: &Inst) -> Option<(InstKey, ValueId)> {
    match inst {
        Inst::Bin { dst, op, lhs, rhs } => {
            let (mut a, mut b) = (opkey(lhs), opkey(rhs));
            if op.commutative() && a > b {
                std::mem::swap(&mut a, &mut b);
            }
            Some((InstKey::Bin(*op, f.ty(*dst), a, b), *dst))
        }
        Inst::Cmp { dst, op, lhs, rhs } => {
            Some((InstKey::Cmp(*op, opkey(lhs), opkey(rhs)), *dst))
        }
        Inst::Cast { dst, kind, src } => Some((InstKey::Cast(*kind, f.ty(*dst), opkey(src)), *dst)),
        Inst::Select { dst, cond, t, f: fv } => {
            Some((InstKey::Select(opkey(cond), opkey(t), opkey(fv)), *dst))
        }
        Inst::Splat { dst, src } => Some((InstKey::Splat(f.ty(*dst), opkey(src)), *dst)),
        Inst::ExtractLane { dst, src, lane } => Some((InstKey::Extract(opkey(src), *lane), *dst)),
        Inst::Reduce { dst, op, src } => Some((InstKey::Reduce(*op, opkey(src)), *dst)),
        Inst::Call { dst: Some(d), callee, args } => {
            if m.funcs[callee.idx()].attrs.readnone {
                Some((InstKey::PureCall(callee.0, args.iter().map(opkey).collect()), *d))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Exact read-only mirror of `gvn_function` up to its *first* rewrite.
///
/// Until the first substitution fires, `gvn_function`'s `known` map is
/// empty, so its operand resolution and key remapping are the identity —
/// which means this replay (which never substitutes) tracks the live
/// pure-value table and per-block load-availability state exactly until
/// that first fire. A hit here is therefore the same first hit there, and
/// no hit here means the live run never substitutes anything. The trailing
/// `dce_function` runs unconditionally either way, so the pass is a no-op
/// iff this replay finds nothing and `would_dce` is false.
fn gvn_may_fire(m: &Module, f: &Function, block_scope: bool) -> bool {
    if f.is_decl() {
        return false;
    }
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let sites = def_sites(f);
    let dom_scoped = !block_scope;
    let mut table: HashSet<InstKey> = HashSet::new();
    enum Step {
        Enter(BlockId),
        Undo(Vec<InstKey>),
    }
    let order: Vec<BlockId> = if dom_scoped { vec![BlockId(0)] } else { cfg.rpo.clone() };
    let mut agenda: Vec<Step> = order.into_iter().rev().map(Step::Enter).collect();
    while let Some(step) = agenda.pop() {
        match step {
            Step::Undo(keys) => {
                for k in keys {
                    table.remove(&k);
                }
            }
            Step::Enter(b) => {
                if !dom_scoped {
                    table.clear();
                }
                let mut undo: Vec<InstKey> = Vec::new();
                let mut memgen = 0u64;
                let mut avail_loads: HashMap<(Vec<(OpKey, i64)>, i64, u8), u64> = HashMap::new();
                for inst in &f.blocks[b.idx()].insts {
                    match inst {
                        Inst::Load { dst, addr } => {
                            let e = addr_expr(f, &sites, addr);
                            let ty = f.ty(*dst);
                            let key = (
                                e.atoms.iter().map(|(a, c)| (opkey(a), *c)).collect::<Vec<_>>(),
                                e.offset,
                                ty.bytes() as u8,
                            );
                            match avail_loads.get(&key) {
                                Some(g) if *g == memgen && ty.lanes == 1 => return true,
                                _ => {
                                    avail_loads.insert(key, memgen);
                                }
                            }
                        }
                        Inst::Store { ty, addr, .. } => {
                            let e = addr_expr(f, &sites, addr);
                            memgen += 1;
                            let key = (
                                e.atoms.iter().map(|(a, c)| (opkey(a), *c)).collect::<Vec<_>>(),
                                e.offset,
                                ty.bytes() as u8,
                            );
                            avail_loads.insert(key, memgen);
                        }
                        other => {
                            if let Inst::Call { callee, .. } = other {
                                let attrs = m.funcs[callee.idx()].attrs;
                                if !attrs.readnone && !attrs.readonly {
                                    memgen += 1;
                                }
                            }
                            if let Some((key, _)) = pure_key(f, m, other) {
                                if table.contains(&key) {
                                    return true;
                                }
                                undo.push(key.clone());
                                table.insert(key);
                            }
                        }
                    }
                }
                if dom_scoped {
                    agenda.push(Step::Undo(undo));
                    for &c in dom.children[b.idx()].iter().rev() {
                        agenda.push(Step::Enter(c));
                    }
                }
            }
        }
    }
    would_dce(f)
}

/// The `gvn` pass: dominator-scoped value numbering of pure instructions plus
/// block-local redundant-load elimination and store-to-load forwarding.
pub struct Gvn;

impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }
    fn clears(&self) -> u64 {
        // gvn_function ends in an unconditional dce sweep; the dominator
        // scope is a strict superset of early-cse's block-local tables (a
        // block dominates itself), load CSE / store-to-load forwarding is
        // the same block-local logic in both, and both share the dce tail —
        // so early-cse immediately after gvn is a no-op.
        crate::work::DEAD | crate::work::ECSE
    }
    fn produces(&self) -> u64 {
        // Substitution + removal + dce tail: no CFG edit (loop-simplify
        // untouched) and no new block-local CSE work beyond what it just
        // exhausted. Store-to-load forwarding can inject literals anywhere,
        // so every other class stays on the table.
        crate::work::ALL & !(crate::work::DEAD | crate::work::ECSE | crate::work::LS)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for fi in 0..m.funcs.len() {
            let (ni, nl) = gvn_function(m, fi, true);
            stats.inc("gvn", "NumGVNInstr", ni);
            stats.inc("gvn", "NumGVNLoad", nl);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        for f in &m.funcs {
            if gvn_may_fire(m, f, false) {
                return Verdict::may(format!("{}: value-numbering candidates", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// The `early-cse` pass: the block-local version of GVN.
pub struct EarlyCse;

impl Pass for EarlyCse {
    fn name(&self) -> &'static str {
        "early-cse"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::ECSE)
    }
    fn clears(&self) -> u64 {
        // block-local CSE; gvn_function ends in an unconditional dce sweep
        crate::work::ECSE | crate::work::DEAD
    }
    fn produces(&self) -> u64 {
        // Same shape as gvn: pure rewrites plus the dce tail, no CFG edit,
        // and its own block-local tables are exhausted on exit.
        crate::work::ALL & !(crate::work::DEAD | crate::work::ECSE | crate::work::LS)
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for fi in 0..m.funcs.len() {
            let (ni, nl) = gvn_function(m, fi, false);
            stats.inc("early-cse", "NumCSE", ni + nl);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        for f in &m.funcs {
            if gvn_may_fire(m, f, true) {
                return Verdict::may(format!("{}: block-local CSE candidates", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// Returns (pure insts eliminated, loads eliminated/forwarded).
fn gvn_function(m: &mut Module, fi: usize, dom_scoped: bool) -> (u64, u64) {
    let f = &m.funcs[fi];
    if f.is_decl() {
        return (0, 0);
    }
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let sites = def_sites(f);

    // Substitutions found; applied at the end.
    let mut subst: Vec<(ValueId, Operand)> = Vec::new();
    let mut loads = 0u64;
    let mut pures = 0u64;

    // Dominator-tree walk with scoped pure-value table.
    let mut table: HashMap<InstKey, Operand> = HashMap::new();
    enum Step {
        Enter(BlockId),
        Undo(Vec<(InstKey, Option<Operand>)>),
    }
    let order: Vec<BlockId> = if dom_scoped {
        // preorder DFS of the dom tree via explicit agenda below
        vec![BlockId(0)]
    } else {
        cfg.rpo.clone()
    };
    let mut agenda: Vec<Step> = order.into_iter().rev().map(Step::Enter).collect();
    let known_subst: HashMap<ValueId, Operand> = HashMap::new();
    let mut known = known_subst;

    while let Some(step) = agenda.pop() {
        match step {
            Step::Undo(entries) => {
                for (k, old) in entries {
                    match old {
                        Some(v) => {
                            table.insert(k, v);
                        }
                        None => {
                            table.remove(&k);
                        }
                    }
                }
            }
            Step::Enter(b) => {
                if !dom_scoped {
                    table.clear();
                }
                let mut undo: Vec<(InstKey, Option<Operand>)> = Vec::new();
                // Block-local memory state.
                let mut memgen = 0u64;
                let mut avail_loads: HashMap<(Vec<(OpKey, i64)>, i64, u8), (Operand, u64)> = HashMap::new();
                let f = &m.funcs[fi];
                for inst in &f.blocks[b.idx()].insts {
                    // Resolve operands through already-found substitutions so
                    // chains collapse in one pass.
                    let resolve = |op: &Operand| -> Operand {
                        let mut cur = *op;
                        for _ in 0..8 {
                            match cur {
                                Operand::Value(v) => match known.get(&v) {
                                    Some(n) => cur = *n,
                                    None => break,
                                },
                                _ => break,
                            }
                        }
                        cur
                    };
                    match inst {
                        Inst::Load { dst, addr } => {
                            let a = resolve(addr);
                            let e = addr_expr(f, &sites, &a);
                            let ty = f.ty(*dst);
                            let key = (e.atoms.iter().map(|(a, c)| (opkey(a), *c)).collect::<Vec<_>>(), e.offset, ty.bytes() as u8);
                            match avail_loads.get(&key) {
                                Some((v, g)) if *g == memgen && ty.lanes == 1 => {
                                    subst.push((*dst, *v));
                                    known.insert(*dst, *v);
                                    loads += 1;
                                }
                                _ => {
                                    avail_loads.insert(key, (Operand::Value(*dst), memgen));
                                }
                            }
                        }
                        Inst::Store { ty, val, addr } => {
                            let a = resolve(addr);
                            let e = addr_expr(f, &sites, &a);
                            memgen += 1;
                            // Forward the stored value to later loads.
                            let key = (e.atoms.iter().map(|(a, c)| (opkey(a), *c)).collect::<Vec<_>>(), e.offset, ty.bytes() as u8);
                            avail_loads.insert(key, (resolve(val), memgen));
                        }
                        Inst::Call { callee, .. } => {
                            let attrs = m.funcs[callee.idx()].attrs;
                            if !attrs.readnone && !attrs.readonly {
                                memgen += 1; // may write anywhere
                            }
                            if let Some((key, d)) = pure_key(f, m, inst) {
                                let key = remap_key(key, &known);
                                match table.get(&key) {
                                    Some(v) => {
                                        subst.push((d, *v));
                                        known.insert(d, *v);
                                        pures += 1;
                                    }
                                    None => {
                                        undo.push((key.clone(), table.get(&key).cloned()));
                                        table.insert(key, Operand::Value(d));
                                    }
                                }
                            }
                        }
                        other => {
                            if let Some((key, d)) = pure_key(f, m, other) {
                                let key = remap_key(key, &known);
                                match table.get(&key) {
                                    Some(v) => {
                                        subst.push((d, *v));
                                        known.insert(d, *v);
                                        pures += 1;
                                    }
                                    None => {
                                        undo.push((key.clone(), None));
                                        table.insert(key, Operand::Value(d));
                                    }
                                }
                            }
                        }
                    }
                }
                if dom_scoped {
                    agenda.push(Step::Undo(undo));
                    for &c in dom.children[b.idx()].iter().rev() {
                        agenda.push(Step::Enter(c));
                    }
                }
            }
        }
    }

    let f = &mut m.funcs[fi];
    for (v, op) in &subst {
        // Resolve transitively to the final representative.
        let mut to = *op;
        for _ in 0..subst.len() {
            match to {
                Operand::Value(x) => match known.get(&x) {
                    Some(n) if *n != to => to = *n,
                    _ => break,
                },
                _ => break,
            }
        }
        replace_uses(f, *v, to);
    }
    // Delete the replaced definitions outright — including redundant loads,
    // which plain DCE conservatively keeps (they read memory) but which are
    // provably equivalent to their replacement here.
    if !subst.is_empty() {
        let dead: std::collections::HashSet<ValueId> =
            subst.iter().map(|(v, _)| *v).collect();
        for blk in &mut f.blocks {
            blk.insts.retain(|i| match i.dst() {
                Some(d) => !dead.contains(&d),
                None => true,
            });
        }
    }
    dce_function(f);
    (pures, loads)
}

/// Rewrite value references inside a key through the substitution map, so
/// `add(x, y)` and `add(x', y)` unify once `x' → x` is known.
fn remap_key(key: InstKey, known: &HashMap<ValueId, Operand>) -> InstKey {
    let r = |k: OpKey| -> OpKey {
        match k {
            OpKey::V(v) => {
                let mut cur = ValueId(v);
                for _ in 0..8 {
                    match known.get(&cur) {
                        Some(Operand::Value(n)) => cur = *n,
                        Some(other) => return opkey(other),
                        None => break,
                    }
                }
                OpKey::V(cur.0)
            }
            other => other,
        }
    };
    match key {
        InstKey::Bin(op, ty, a, b) => {
            let (mut a, mut b) = (r(a), r(b));
            if op.commutative() && a > b {
                std::mem::swap(&mut a, &mut b);
            }
            InstKey::Bin(op, ty, a, b)
        }
        InstKey::Cmp(op, a, b) => InstKey::Cmp(op, r(a), r(b)),
        InstKey::Cast(k, t, a) => InstKey::Cast(k, t, r(a)),
        InstKey::Select(c, t, f) => InstKey::Select(r(c), r(t), r(f)),
        InstKey::Splat(t, a) => InstKey::Splat(t, r(a)),
        InstKey::Extract(a, l) => InstKey::Extract(r(a), l),
        InstKey::Reduce(op, a) => InstKey::Reduce(op, r(a)),
        InstKey::PureCall(c, args) => InstKey::PureCall(c, args.into_iter().map(r).collect()),
        InstKey::Load(t, b, o, g) => InstKey::Load(t, r(b), o, g),
    }
}

/// The `dce` pass: remove unused pure instructions.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::DEAD)
    }
    fn clears(&self) -> u64 {
        // removes exactly the DEAD class, to fixpoint
        crate::work::DEAD
    }
    fn produces(&self) -> u64 {
        // Removal-only, to a fixpoint, and never touches loads, stores,
        // calls, or terminators (`has_side_effects`/`reads_memory` retain
        // them). Removing a use can newly enable sinking (single-use-block),
        // promotion (an escaping pure use of an alloca address), tail
        // position (trailing pure insts after a self-call), loop deletion
        // (an outside use of a loop value), block forwarding (emptying a
        // block down to its `Br` — cfgs), unrolling (an unused alloca gone
        // from a self-loop body — the body screen skips alloca-bearing
        // loops), and rotation (a header shape screen unblocked). It cannot
        // create lattice/foldable/duplicate instructions, change the dse
        // scan (memory ops untouched), hoistability (stores, calls and
        // operand def sites untouched — licm), or the inferable attribute
        // bits, and it leaves no orphans (fixpoint), so every
        // would_dce-based fire condition stays false.
        crate::work::SINK
            | crate::work::M2R
            | crate::work::TCE
            | crate::work::LD
            | crate::work::CFGS
            | crate::work::IVL
            | crate::work::ROT
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let n = dce_function(f) as u64;
            stats.inc("dce", "NumRemoved", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        for f in &m.funcs {
            if would_dce(f) {
                return Verdict::may(format!("{}: dead instructions", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// The `adce` pass: aggressive DCE — liveness is seeded only from
/// side-effecting roots, so dead loads and dead pure call results die too.
pub struct Adce;

impl Pass for Adce {
    fn name(&self) -> &'static str {
        "adce"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::ADCE)
    }
    fn clears(&self) -> u64 {
        // transitive liveness removal is a superset of dce's pure-unused sweep
        crate::work::ADCE | crate::work::DEAD
    }
    fn produces(&self) -> u64 {
        // Removal-only like dce, but the live set is rooted (stores,
        // non-readnone calls, terminators), so adce can additionally remove
        // loads and readnone calls: that can un-kill an overwritten store
        // (dse), drop the reads/writes bits behind attribute inference
        // (fa), empty a block down to its `Br` (cfgs), strip a readnone
        // call or alloca from a self-loop body (the unroll body screen —
        // ivl), unblock a rotate header shape (rot), and remove an
        // own-stack-writing readnone call that was pinning a loop load
        // (licm). Surviving instructions are transitively rooted, so no
        // orphans remain and every would_dce-based fire condition stays
        // false; CFG and remaining operands are untouched.
        crate::work::DSE
            | crate::work::SINK
            | crate::work::M2R
            | crate::work::FA
            | crate::work::TCE
            | crate::work::LD
            | crate::work::CFGS
            | crate::work::LICM
            | crate::work::IVL
            | crate::work::ROT
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        // Liveness of calls depends on callee attributes.
        for fi in 0..m.funcs.len() {
            let n = adce_function(m, fi);
            stats.inc("adce", "NumRemoved", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        for f in &m.funcs {
            if adce_would_remove(m, f) {
                return Verdict::may(format!("{}: root-dead instructions", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// Read-only mirror of `adce_function`: exactly its liveness computation,
/// reporting whether the retain sweep would drop anything.
fn adce_would_remove(m: &Module, f: &Function) -> bool {
    let nv = f.value_ty.len();
    let mut live = vec![false; nv];
    let mut work: Vec<ValueId> = Vec::new();
    let mark = |v: &Operand, live: &mut Vec<bool>, work: &mut Vec<ValueId>| {
        if let Operand::Value(x) = v {
            if !live[x.idx()] {
                live[x.idx()] = true;
                work.push(*x);
            }
        }
    };
    for blk in &f.blocks {
        blk.term.for_each_operand(|op| mark(op, &mut live, &mut work));
        for inst in &blk.insts {
            let rooted = match inst {
                Inst::Store { .. } => true,
                Inst::Call { callee, .. } => !m.funcs[callee.idx()].attrs.readnone,
                _ => false,
            };
            if rooted {
                inst.for_each_operand(|op| mark(op, &mut live, &mut work));
                if let Some(d) = inst.dst() {
                    live[d.idx()] = true;
                }
            }
        }
    }
    let sites = def_sites(f);
    while let Some(v) = work.pop() {
        if let Some((b, i)) = sites.get(&v) {
            f.blocks[b.idx()].insts[*i].for_each_operand(|op| mark(op, &mut live, &mut work));
        }
    }
    f.blocks.iter().any(|blk| {
        blk.insts.iter().any(|inst| match inst.dst() {
            Some(d) => !live[d.idx()] && !matches!(inst, Inst::Store { .. }),
            None => false,
        })
    })
}

fn adce_function(m: &mut Module, fi: usize) -> u64 {
    let f = &m.funcs[fi];
    let nv = f.value_ty.len();
    let mut live = vec![false; nv];
    let mut work: Vec<ValueId> = Vec::new();
    let mark = |v: &Operand, live: &mut Vec<bool>, work: &mut Vec<ValueId>| {
        if let Operand::Value(x) = v {
            if !live[x.idx()] {
                live[x.idx()] = true;
                work.push(*x);
            }
        }
    };
    // Roots: terminator operands, stores, non-pure calls (their args).
    for blk in &f.blocks {
        blk.term.for_each_operand(|op| mark(op, &mut live, &mut work));
        for inst in &blk.insts {
            let rooted = match inst {
                Inst::Store { .. } => true,
                Inst::Call { callee, .. } => !m.funcs[callee.idx()].attrs.readnone,
                _ => false,
            };
            if rooted {
                inst.for_each_operand(|op| mark(op, &mut live, &mut work));
                if let Some(d) = inst.dst() {
                    live[d.idx()] = true;
                }
            }
        }
    }
    let sites = def_sites(f);
    while let Some(v) = work.pop() {
        if let Some((b, i)) = sites.get(&v) {
            f.blocks[b.idx()].insts[*i].for_each_operand(|op| mark(op, &mut live, &mut work));
        }
    }
    let f = &mut m.funcs[fi];
    let mut removed = 0u64;
    for blk in &mut f.blocks {
        let before = blk.insts.len();
        blk.insts.retain(|inst| match inst.dst() {
            Some(d) => live[d.idx()] || matches!(inst, Inst::Store { .. }),
            None => true,
        });
        removed += (before - blk.insts.len()) as u64;
    }
    removed
}

/// The `dse` pass: block-local dead-store elimination.
pub struct Dse;

impl Pass for Dse {
    fn name(&self) -> &'static str {
        "dse"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::DSE)
    }
    fn clears(&self) -> u64 {
        crate::work::DSE
    }
    fn produces(&self) -> u64 {
        // Removing a store orphans its value chain (would_dce and every fire
        // condition that folds it in), can un-escape an alloca address, and
        // can turn a self-call into the last instruction of its block. The
        // one thing store removal cannot do is edit the CFG, and the
        // backward overwritten-range scan is a one-sweep fixpoint (removing
        // a covered store neither covers nor uncovers another).
        crate::work::ALL & !(crate::work::DSE | crate::work::LS)
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for fi in 0..m.funcs.len() {
            let mut n = 0u64;
            let f = &m.funcs[fi];
            let sites = def_sites(f);
            let mut dead: Vec<(usize, usize)> = Vec::new();
            for (bi, blk) in f.blocks.iter().enumerate() {
                // Backward scan: `overwritten` holds store ranges that will be
                // written again before any possible read.
                let mut overwritten: Vec<(AddrExpr, u32)> = Vec::new();
                for (ii, inst) in blk.insts.iter().enumerate().rev() {
                    match inst {
                        Inst::Store { ty, addr, .. } => {
                            let e = addr_expr(f, &sites, addr);
                            let sz = ty.bytes();
                            let covered = overwritten.iter().any(|(o, osz)| {
                                o.atoms == e.atoms
                                    && o.offset <= e.offset
                                    && o.offset + *osz as i64 >= e.offset + sz as i64
                            });
                            if covered {
                                dead.push((bi, ii));
                                n += 1;
                            } else {
                                overwritten.push((e, sz));
                            }
                        }
                        Inst::Load { addr, .. } => {
                            let e = addr_expr(f, &sites, addr);
                            let lsz = f
                                .ty(inst.dst().unwrap())
                                .bytes();
                            overwritten.retain(|(o, osz)| !may_alias(o, *osz, &e, lsz));
                        }
                        Inst::Call { callee, .. } => {
                            if !m.funcs[callee.idx()].attrs.readnone {
                                overwritten.clear();
                            }
                        }
                        _ => {}
                    }
                }
            }
            let f = &mut m.funcs[fi];
            // Remove in descending instruction order per block.
            dead.sort_unstable_by(|a, b| b.cmp(a));
            for (bi, ii) in dead {
                f.blocks[bi].insts.remove(ii);
            }
            stats.inc("dse", "NumFastStores", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact read-only replay of the backward overwritten-range scan.
        for f in &m.funcs {
            let sites = def_sites(f);
            for blk in &f.blocks {
                let mut overwritten: Vec<(AddrExpr, u32)> = Vec::new();
                for inst in blk.insts.iter().rev() {
                    match inst {
                        Inst::Store { ty, addr, .. } => {
                            let e = addr_expr(f, &sites, addr);
                            let sz = ty.bytes();
                            let covered = overwritten.iter().any(|(o, osz)| {
                                o.atoms == e.atoms
                                    && o.offset <= e.offset
                                    && o.offset + *osz as i64 >= e.offset + sz as i64
                            });
                            if covered {
                                return Verdict::may(format!("{}: dead store", f.name));
                            }
                            overwritten.push((e, sz));
                        }
                        Inst::Load { addr, .. } => {
                            let e = addr_expr(f, &sites, addr);
                            let lsz = f.ty(inst.dst().unwrap()).bytes();
                            overwritten.retain(|(o, osz)| !may_alias(o, *osz, &e, lsz));
                        }
                        Inst::Call { callee, .. } => {
                            if !m.funcs[callee.idx()].attrs.readnone {
                                overwritten.clear();
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        Verdict::CannotFire
    }
}

/// The `sink` pass: move pure single-block-use instructions into the unique
/// successor that uses them, off the other branch path.
pub struct Sink;

impl Pass for Sink {
    fn name(&self) -> &'static str {
        "sink"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::SINK)
    }
    fn clears(&self) -> u64 {
        crate::work::SINK
    }
    fn produces(&self) -> u64 {
        // Moves pure scalar insts only: use counts, operands, CFG, stores
        // and attrs are untouched, so most fire conditions cannot flip on.
        // The exceptions all come from the *move itself*: block-local
        // duplicates (moved into the use block — ecse), loop deletability
        // (a result use sunk out of its loop — ld), hoistability (a pure
        // inst with loop-invariant operands sunk into a loop body — licm),
        // unroll budgets (an inst sunk out of a self-loop body shrinks it
        // under the size screens — ivl), and rotate header shape screens
        // (header contents changed — rot). Source blocks end in a condbr so
        // they never become forwarding blocks, and no CFG edit or operand
        // rewrite happens, so cfgs stays off the table.
        crate::work::ECSE
            | crate::work::LD
            | crate::work::LICM
            | crate::work::IVL
            | crate::work::ROT
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            let cfg = Cfg::compute(f);
            // For each block with a condbr, find sinkable insts.
            let mut moves: Vec<(usize, usize, usize)> = Vec::new(); // (from_block, inst, to_block)
            for (b, blk) in f.iter_blocks() {
                let Term::CondBr { t, f: fb, .. } = blk.term else { continue };
                if t == fb {
                    continue;
                }
                for (ii, inst) in blk.insts.iter().enumerate() {
                    if inst.has_side_effects() || inst.reads_memory() || inst.is_phi() {
                        continue;
                    }
                    let Some(d) = inst.dst() else { continue };
                    if matches!(inst, Inst::Alloca { .. }) {
                        continue;
                    }
                    // All uses must live in exactly one successor with a single pred.
                    let mut use_blocks: HashSet<u32> = HashSet::new();
                    for (ub, ublk) in f.iter_blocks() {
                        let mut used = false;
                        for i2 in &ublk.insts {
                            i2.for_each_operand(|op| used |= op.as_value() == Some(d));
                        }
                        ublk.term.for_each_operand(|op| used |= op.as_value() == Some(d));
                        if used {
                            use_blocks.insert(ub.0);
                        }
                    }
                    if use_blocks.len() != 1 {
                        continue;
                    }
                    let target = BlockId(*use_blocks.iter().next().unwrap());
                    if (target == t || target == fb)
                        && cfg.preds[target.idx()].len() == 1
                        && f.blocks[target.idx()].num_phis() == 0
                    {
                        // Later instructions of b must not depend on d (pure
                        // chains are handled one inst per run).
                        let later_use = blk.insts[ii + 1..]
                            .iter()
                            .any(|i2| {
                                let mut u = false;
                                i2.for_each_operand(|op| u |= op.as_value() == Some(d));
                                u
                            });
                        let term_use = {
                            let mut u = false;
                            blk.term.for_each_operand(|op| u |= op.as_value() == Some(d));
                            u
                        };
                        if !later_use && !term_use && target != b {
                            moves.push((b.idx(), ii, target.idx()));
                        }
                    }
                }
            }
            // Apply one move per source block per run (indices shift otherwise).
            let mut seen: HashSet<usize> = HashSet::new();
            moves.retain(|(fb, _, _)| seen.insert(*fb));
            for (fb, ii, tb) in moves {
                let inst = f.blocks[fb].insts.remove(ii);
                f.blocks[tb].insts.insert(0, inst);
                n += 1;
            }
            stats.inc("sink", "NumSunk", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact read-only replay of the sinkable-candidate search.
        for f in &m.funcs {
            let cfg = Cfg::compute(f);
            for (b, blk) in f.iter_blocks() {
                let Term::CondBr { t, f: fb, .. } = blk.term else { continue };
                if t == fb {
                    continue;
                }
                for (ii, inst) in blk.insts.iter().enumerate() {
                    if inst.has_side_effects() || inst.reads_memory() || inst.is_phi() {
                        continue;
                    }
                    let Some(d) = inst.dst() else { continue };
                    if matches!(inst, Inst::Alloca { .. }) {
                        continue;
                    }
                    let mut use_blocks: HashSet<u32> = HashSet::new();
                    for (ub, ublk) in f.iter_blocks() {
                        let mut used = false;
                        for i2 in &ublk.insts {
                            i2.for_each_operand(|op| used |= op.as_value() == Some(d));
                        }
                        ublk.term.for_each_operand(|op| used |= op.as_value() == Some(d));
                        if used {
                            use_blocks.insert(ub.0);
                        }
                    }
                    if use_blocks.len() != 1 {
                        continue;
                    }
                    let target = BlockId(*use_blocks.iter().next().unwrap());
                    if (target == t || target == fb)
                        && cfg.preds[target.idx()].len() == 1
                        && f.blocks[target.idx()].num_phis() == 0
                    {
                        let later_use = blk.insts[ii + 1..].iter().any(|i2| {
                            let mut u = false;
                            i2.for_each_operand(|op| u |= op.as_value() == Some(d));
                            u
                        });
                        let term_use = {
                            let mut u = false;
                            blk.term.for_each_operand(|op| u |= op.as_value() == Some(d));
                            u
                        };
                        if !later_use && !term_use && target != b {
                            return Verdict::may(format!("{}: sinkable instruction", f.name));
                        }
                    }
                }
            }
        }
        Verdict::CannotFire
    }
}

/// The `correlated-propagation` pass: on the taken edge of `x == c`, replace
/// dominated uses of `x` with `c` (and symmetrically for `!=` on the false edge).
pub struct CorrelatedPropagation;

impl Pass for CorrelatedPropagation {
    fn name(&self) -> &'static str {
        "correlated-propagation"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            let cfg = Cfg::compute(f);
            let dom = DomTree::compute(f, &cfg);
            let sites = def_sites(f);
            // (value to replace, constant, subtree root)
            let mut facts: Vec<(ValueId, Operand, BlockId)> = Vec::new();
            for (_b, blk) in f.iter_blocks() {
                let Term::CondBr { cond, t, f: fb } = &blk.term else { continue };
                let Some(Inst::Cmp { op, lhs, rhs, .. }) =
                    crate::util::def_of(f, &sites, cond)
                else {
                    continue;
                };
                let (var, konst) = match (lhs.as_value(), rhs.is_const()) {
                    (Some(v), true) => (v, *rhs),
                    _ => continue,
                };
                use citroen_ir::inst::CmpOp::*;
                let (edge_target, holds_eq) = match op {
                    Eq => (*t, true),
                    Ne => (*fb, true),
                    _ => continue,
                };
                if !holds_eq {
                    continue;
                }
                // The fact holds in blocks dominated by edge_target only if
                // edge_target's sole pred is this block (edge dominance).
                if cfg.preds[edge_target.idx()].len() == 1 {
                    facts.push((var, konst, edge_target));
                }
            }
            for (var, konst, root) in facts {
                // Collect dom subtree of root.
                let mut subtree: Vec<BlockId> = vec![root];
                let mut i = 0;
                while i < subtree.len() {
                    for &c in &dom.children[subtree[i].idx()] {
                        subtree.push(c);
                    }
                    i += 1;
                }
                let inside: HashSet<u32> = subtree.iter().map(|b| b.0).collect();
                for bi in 0..f.blocks.len() {
                    let in_subtree = inside.contains(&(bi as u32));
                    for inst in &mut f.blocks[bi].insts {
                        if let Inst::Phi { incoming, .. } = inst {
                            for (p, op) in incoming.iter_mut() {
                                if inside.contains(&p.0) && op.as_value() == Some(var) {
                                    *op = konst;
                                    n += 1;
                                }
                            }
                        } else if in_subtree {
                            inst.for_each_operand_mut(|op| {
                                if op.as_value() == Some(var) {
                                    *op = konst;
                                    n += 1;
                                }
                            });
                        }
                    }
                    if in_subtree {
                        f.blocks[bi].term.for_each_operand_mut(|op| {
                            if op.as_value() == Some(var) {
                                *op = konst;
                                n += 1;
                            }
                        });
                    }
                }
            }
            stats.inc("correlated-propagation", "NumReplaced", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Over-approximation: a usable equality fact exists (a condbr on an
        // edge-dominating `x == c` / `x != c` comparison). Whether any use of
        // `x` actually sits in the dominated subtree is left to MayFire.
        for f in &m.funcs {
            let cfg = Cfg::compute(f);
            let sites = def_sites(f);
            for (_b, blk) in f.iter_blocks() {
                let Term::CondBr { cond, t, f: fb } = &blk.term else { continue };
                let Some(Inst::Cmp { op, lhs, rhs, .. }) = crate::util::def_of(f, &sites, cond)
                else {
                    continue;
                };
                if lhs.as_value().is_none() || !rhs.is_const() {
                    continue;
                }
                use citroen_ir::inst::CmpOp::*;
                let edge_target = match op {
                    Eq => *t,
                    Ne => *fb,
                    _ => continue,
                };
                if cfg.preds[edge_target.idx()].len() == 1 {
                    return Verdict::may(format!("{}: equality-guarded edge", f.name));
                }
            }
        }
        Verdict::CannotFire
    }
}

/// The `sccp` pass: sparse conditional constant propagation with CFG
/// reachability (constants discovered through branches feed back into the
/// lattice).
pub struct Sccp;

#[derive(Clone, Copy, PartialEq, Debug)]
enum Lattice {
    Top,
    Const(OperandConst),
    Bottom,
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct OperandConst(Operand);

impl Pass for Sccp {
    fn name(&self) -> &'static str {
        "sccp"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::SCCP)
    }
    fn clears(&self) -> u64 {
        // epilogue ends in an unconditional dce sweep
        crate::work::SCCP | crate::work::DEAD
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let (ni, nb) = sccp_function(f);
            stats.inc("sccp", "NumInstRemoved", ni);
            stats.inc("sccp", "NumDeadBlocks", nb);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // With no Phi/Bin/Cmp/Cast/Select the lattice can never reach a
        // constant (every other def is Bottom), so `consts` stays empty and
        // no branch folds unless a condbr condition is a literal constant.
        // The epilogue (unreachable removal, φ-simplify, dce) still runs
        // unconditionally, so fold those in too.
        for f in &m.funcs {
            for blk in &f.blocks {
                for inst in &blk.insts {
                    if matches!(
                        inst,
                        Inst::Phi { .. }
                            | Inst::Bin { .. }
                            | Inst::Cmp { .. }
                            | Inst::Cast { .. }
                            | Inst::Select { .. }
                    ) {
                        return Verdict::may(format!("{}: lattice-evaluable instruction", f.name));
                    }
                }
                if let Term::CondBr { cond, .. } = &blk.term {
                    // op_state maps every non-Value operand (imm or global)
                    // to a lattice constant, which one-ways the branch.
                    if !matches!(cond, Operand::Value(_)) {
                        return Verdict::may(format!("{}: constant condbr", f.name));
                    }
                }
            }
            if has_unreachable_blocks(f) {
                return Verdict::may(format!("{}: unreachable blocks", f.name));
            }
            if would_dce(f) {
                return Verdict::may(format!("{}: dead instructions (cleanup dce)", f.name));
            }
        }
        Verdict::CannotFire
    }
}

fn sccp_function(f: &mut Function) -> (u64, u64) {
    if f.is_decl() {
        return (0, 0);
    }
    let trace = std::env::var_os("CITROEN_TRACE_PASS").is_some();
    if trace {
        eprintln!("[sccp] fn {} blocks {}", f.name, f.blocks.len());
    }
    let nv = f.value_ty.len();
    let mut state: Vec<Lattice> = vec![Lattice::Top; nv];
    for i in 0..f.params.len() {
        state[i] = Lattice::Bottom;
    }
    let mut block_exec = vec![false; f.blocks.len()];
    block_exec[0] = true;
    let mut edge_exec: HashSet<(u32, u32)> = HashSet::new();

    let op_state = |op: &Operand, state: &[Lattice]| -> Lattice {
        match op {
            Operand::Value(v) => state[v.idx()],
            c => Lattice::Const(OperandConst(*c)),
        }
    };
    let meet = |a: Lattice, b: Lattice| -> Lattice {
        match (a, b) {
            (Lattice::Top, x) | (x, Lattice::Top) => x,
            (Lattice::Const(x), Lattice::Const(y)) if x == y => a,
            _ => Lattice::Bottom,
        }
    };

    // Fixpoint iteration (functions are small; simple re-sweeping converges fast).
    for _round in 0..64 {
        let mut changed = false;
        for (b, blk) in f.iter_blocks() {
            if !block_exec[b.idx()] {
                continue;
            }
            for inst in &blk.insts {
                let new = match inst {
                    Inst::Phi { dst, incoming } => {
                        let mut acc = Lattice::Top;
                        for (p, op) in incoming {
                            if edge_exec.contains(&(p.0, b.0)) {
                                acc = meet(acc, op_state(op, &state));
                            }
                        }
                        Some((*dst, acc))
                    }
                    Inst::Bin { dst, op, lhs, rhs } => {
                        let (a, c) = (op_state(lhs, &state), op_state(rhs, &state));
                        let v = match (a, c) {
                            (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
                            (Lattice::Const(x), Lattice::Const(y)) => {
                                match fold_bin(*op, f.ty(*dst).scalar, &x.0, &y.0) {
                                    Some(r) if f.ty(*dst).lanes == 1 => {
                                        Lattice::Const(OperandConst(r))
                                    }
                                    _ => Lattice::Bottom,
                                }
                            }
                            _ => Lattice::Top,
                        };
                        Some((*dst, v))
                    }
                    Inst::Cmp { dst, op, lhs, rhs } => {
                        let (a, c) = (op_state(lhs, &state), op_state(rhs, &state));
                        let v = match (a, c) {
                            (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
                            (Lattice::Const(x), Lattice::Const(y)) => match fold_cmp(*op, &x.0, &y.0)
                            {
                                Some(r) => Lattice::Const(OperandConst(r)),
                                None => Lattice::Bottom,
                            },
                            _ => Lattice::Top,
                        };
                        Some((*dst, v))
                    }
                    Inst::Cast { dst, kind, src } => {
                        let a = op_state(src, &state);
                        let from = f.operand_ty(src).scalar;
                        let v = match a {
                            Lattice::Bottom => Lattice::Bottom,
                            Lattice::Const(x) => {
                                match fold_cast(*kind, from, f.ty(*dst).scalar, &x.0) {
                                    Some(r) if f.ty(*dst).lanes == 1 => {
                                        Lattice::Const(OperandConst(r))
                                    }
                                    _ => Lattice::Bottom,
                                }
                            }
                            Lattice::Top => Lattice::Top,
                        };
                        Some((*dst, v))
                    }
                    Inst::Select { dst, cond, t, f: fv } => {
                        let v = match op_state(cond, &state) {
                            Lattice::Bottom => meet(op_state(t, &state), op_state(fv, &state))
                                .bottom_if_top(),
                            Lattice::Const(c) => {
                                if matches!(c.0.as_const_int(), Some(x) if x != 0) {
                                    op_state(t, &state)
                                } else {
                                    op_state(fv, &state)
                                }
                            }
                            Lattice::Top => Lattice::Top,
                        };
                        Some((*dst, v))
                    }
                    // Memory/calls/vector introduce unknowns.
                    other => other.dst().map(|d| (d, Lattice::Bottom)),
                };
                if let Some((d, v)) = new {
                    let merged = match (state[d.idx()], v) {
                        (Lattice::Top, x) => x,
                        (cur, x) => meet(cur, x),
                    };
                    if merged != state[d.idx()] {
                        state[d.idx()] = merged;
                        changed = true;
                    }
                }
            }
            // Terminator → edge executability.
            let mark_edge = |p: BlockId, s: BlockId,
                                 block_exec: &mut Vec<bool>,
                                 edge_exec: &mut HashSet<(u32, u32)>,
                                 changed: &mut bool| {
                if edge_exec.insert((p.0, s.0)) {
                    *changed = true;
                }
                if !block_exec[s.idx()] {
                    block_exec[s.idx()] = true;
                    *changed = true;
                }
            };
            match &blk.term {
                Term::Br(s) => mark_edge(b, *s, &mut block_exec, &mut edge_exec, &mut changed),
                Term::CondBr { cond, t, f: fb } => match op_state(cond, &state) {
                    Lattice::Const(c) => {
                        let s = if matches!(c.0.as_const_int(), Some(x) if x != 0) { *t } else { *fb };
                        mark_edge(b, s, &mut block_exec, &mut edge_exec, &mut changed);
                    }
                    Lattice::Bottom => {
                        mark_edge(b, *t, &mut block_exec, &mut edge_exec, &mut changed);
                        mark_edge(b, *fb, &mut block_exec, &mut edge_exec, &mut changed);
                    }
                    Lattice::Top => {}
                },
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Apply: substitute constants, rewrite provably-one-way branches.
    let mut n_inst = 0u64;
    let mut consts: Vec<(ValueId, Operand)> = Vec::new();
    for (i, s) in state.iter().enumerate() {
        if let Lattice::Const(c) = s {
            if i >= f.params.len() {
                consts.push((ValueId(i as u32), c.0));
            }
        }
    }
    for (v, c) in &consts {
        replace_uses(f, *v, *c);
        n_inst += 1;
    }
    // Branch folding from edge executability.
    for bi in 0..f.blocks.len() {
        if !block_exec[bi] {
            continue;
        }
        let b = BlockId(bi as u32);
        if let Term::CondBr { t, f: fb, .. } = f.blocks[bi].term.clone() {
            let te = edge_exec.contains(&(b.0, t.0));
            let fe = edge_exec.contains(&(b.0, fb.0));
            if te != fe {
                let (live, dead) = if te { (t, fb) } else { (fb, t) };
                f.blocks[bi].term = Term::Br(live);
                if live != dead {
                    for inst in &mut f.blocks[dead.idx()].insts {
                        if let Inst::Phi { incoming, .. } = inst {
                            incoming.retain(|(p, _)| *p != b);
                        }
                    }
                }
            }
        }
    }
    if trace {
        eprintln!("[sccp] fn {} fixpoint done", f.name);
    }
    let nb = remove_unreachable_blocks(f) as u64;
    if trace {
        eprintln!("[sccp] fn {} unreachable removed", f.name);
    }
    crate::util::simplify_single_incoming_phis(f);
    if trace {
        eprintln!("[sccp] fn {} phis simplified", f.name);
    }
    let removed = dce_function(f) as u64;
    (n_inst.max(removed), nb)
}

trait BottomIfTop {
    fn bottom_if_top(self) -> Lattice;
}
impl BottomIfTop for Lattice {
    fn bottom_if_top(self) -> Lattice {
        match self {
            Lattice::Top => Lattice::Top,
            x => x,
        }
    }
}
