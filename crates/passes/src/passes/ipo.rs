//! Interprocedural passes: `inline`, `function-attrs`, `tailcallelim`.
//!
//! `function-attrs` is the paper's example (§3.4) of a transformation whose
//! effect is invisible to syntax-level IR features: it only flips attribute
//! bits, but those bits unlock GVN/LICM/ADCE treatment of calls and reduce
//! the simulator's call cost. Its compilation statistics are the only static
//! signal that it did anything.

use crate::manager::Pass;
use crate::stats::Stats;
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::inst::{BlockId, FuncId, Inst, Operand, Term, ValueId};
use citroen_ir::module::{Function, Module};
use std::collections::HashMap;

/// Maximum callee size (instructions) eligible for inlining.
const INLINE_THRESHOLD: usize = 48;
/// Maximum number of inlines per module per pass run.
const INLINE_BUDGET: usize = 24;

/// The `inline` pass.
pub struct Inline;

impl Pass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        let mut n = 0u64;
        for _ in 0..INLINE_BUDGET {
            if !inline_one(m) {
                break;
            }
            n += 1;
        }
        stats.inc("inline", "NumInlined", n);
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact mirror of `inline_one`'s site search.
        for (fi, f) in m.funcs.iter().enumerate() {
            for blk in &f.blocks {
                for inst in &blk.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if inlinable(m, FuncId(fi as u32), *callee) {
                            return Verdict::may(format!(
                                "{}: inlinable call to {}",
                                f.name,
                                m.funcs[callee.idx()].name
                            ));
                        }
                    }
                }
            }
        }
        Verdict::CannotFire
    }
}

fn inlinable(m: &Module, caller: FuncId, callee: FuncId) -> bool {
    if caller == callee {
        return false;
    }
    let f = &m.funcs[callee.idx()];
    if f.is_decl() || f.attrs.noinline || f.num_insts() > INLINE_THRESHOLD {
        return false;
    }
    // Direct self-recursion in the callee keeps it out too.
    let self_call = f.blocks.iter().any(|b| {
        b.insts.iter().any(|i| matches!(i, Inst::Call { callee: c, .. } if *c == callee))
    });
    if self_call {
        return false;
    }
    // Allocas in the callee would need hoist-and-clear treatment when the
    // call site sits in a loop; mem2reg usually removes them first — the
    // mem2reg→inline enabling chain.
    let has_alloca =
        f.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i, Inst::Alloca { .. })));
    !has_alloca
}

fn inline_one(m: &mut Module) -> bool {
    // Find a call site with an inlinable callee.
    let mut site: Option<(usize, BlockId, usize, FuncId)> = None;
    'outer: for (fi, f) in m.funcs.iter().enumerate() {
        for (b, blk) in f.iter_blocks() {
            for (ii, inst) in blk.insts.iter().enumerate() {
                if let Inst::Call { callee, .. } = inst {
                    if inlinable(m, FuncId(fi as u32), *callee) {
                        site = Some((fi, b, ii, *callee));
                        break 'outer;
                    }
                }
            }
        }
    }
    let Some((fi, b, ii, callee_id)) = site else { return false };
    let callee = m.funcs[callee_id.idx()].clone();
    let caller = &mut m.funcs[fi];

    // Remove the call; remember its pieces.
    let Inst::Call { dst: call_dst, args, .. } = caller.blocks[b.idx()].insts.remove(ii) else {
        unreachable!()
    };

    // Split block b at the (removed) call: `cont` gets the tail + b's term.
    let cont = caller.new_block();
    let tail: Vec<Inst> = caller.blocks[b.idx()].insts.split_off(ii);
    let old_term = std::mem::replace(&mut caller.blocks[b.idx()].term, Term::Unreachable);
    caller.blocks[cont.idx()].insts = tail;
    caller.blocks[cont.idx()].term = old_term;
    // φs in b's former successors now see `cont` as the predecessor.
    let succs: Vec<BlockId> = caller.blocks[cont.idx()].term.successors();
    for s in succs {
        for inst in &mut caller.blocks[s.idx()].insts {
            if let Inst::Phi { incoming, .. } = inst {
                for (p, _) in incoming.iter_mut() {
                    if *p == b {
                        *p = cont;
                    }
                }
            }
        }
    }

    // Clone callee blocks/values into the caller.
    let mut val_map: HashMap<ValueId, Operand> = HashMap::new();
    for (pi, arg) in args.iter().enumerate() {
        val_map.insert(ValueId(pi as u32), *arg);
    }
    let block_base = caller.blocks.len() as u32;
    let block_map = |cb: BlockId| BlockId(block_base + cb.0);
    for _ in 0..callee.blocks.len() {
        caller.new_block();
    }
    // Fresh values for callee-defined values.
    for (vi, ty) in callee.value_ty.iter().enumerate().skip(callee.params.len()) {
        let nv = caller.new_value(*ty);
        val_map.insert(ValueId(vi as u32), Operand::Value(nv));
    }
    let map_op = |val_map: &HashMap<ValueId, Operand>, op: &Operand| -> Operand {
        match op {
            Operand::Value(v) => val_map[v],
            other => *other,
        }
    };
    let mut rets: Vec<(BlockId, Option<Operand>)> = Vec::new();
    for (cb, cblk) in callee.iter_blocks() {
        let nb = block_map(cb);
        let mut insts = Vec::with_capacity(cblk.insts.len());
        for inst in &cblk.insts {
            let mut cloned = inst.clone();
            cloned.for_each_operand_mut(|op| *op = map_op(&val_map, op));
            if let Some(d) = inst.dst() {
                let Operand::Value(nd) = val_map[&d] else { unreachable!() };
                super::loops::set_dst(&mut cloned, nd);
            }
            if let Inst::Phi { incoming, .. } = &mut cloned {
                for (p, _) in incoming.iter_mut() {
                    *p = block_map(*p);
                }
            }
            insts.push(cloned);
        }
        let term = match &cblk.term {
            Term::Br(t) => Term::Br(block_map(*t)),
            Term::CondBr { cond, t, f } => Term::CondBr {
                cond: map_op(&val_map, cond),
                t: block_map(*t),
                f: block_map(*f),
            },
            Term::Ret(v) => {
                let mapped = v.as_ref().map(|op| map_op(&val_map, op));
                rets.push((nb, mapped));
                Term::Br(cont)
            }
            Term::Unreachable => Term::Unreachable,
        };
        caller.blocks[nb.idx()].insts = insts;
        caller.blocks[nb.idx()].term = term;
    }
    // Enter the inlined body.
    caller.blocks[b.idx()].term = Term::Br(block_map(callee.entry()));

    // Wire the return value.
    if let Some(dst) = call_dst {
        let ret_op = match rets.len() {
            0 => None,
            1 => rets[0].1,
            _ => {
                // Merge with a φ in `cont`.
                let ty = caller.ty(dst);
                let merged = caller.new_value(ty);
                let incoming: Vec<(BlockId, Operand)> = rets
                    .iter()
                    .map(|(rb, v)| (*rb, v.expect("non-void callee must return values")))
                    .collect();
                caller.blocks[cont.idx()].insts.insert(0, Inst::Phi { dst: merged, incoming });
                Some(Operand::Value(merged))
            }
        };
        if let Some(op) = ret_op {
            crate::util::replace_uses(caller, dst, op);
        }
    }
    crate::util::remove_unreachable_blocks(caller);
    true
}

/// The `function-attrs` pass: infer `readnone`/`readonly` bottom-up.
pub struct FunctionAttrs;

impl Pass for FunctionAttrs {
    fn name(&self) -> &'static str {
        "function-attrs"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::FA)
    }
    fn clears(&self) -> u64 {
        crate::work::FA
    }
    fn produces(&self) -> u64 {
        // Writes only function attributes; the only fire conditions that
        // consult attrs are adce liveness roots, dse/loop-deletion clobber
        // summaries and call CSE — dce purity, folding, the sccp lattice,
        // promotability, sinking and tail-call position are attribute-blind.
        crate::work::ADCE | crate::work::DSE | crate::work::ECSE | crate::work::LD
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        // Start optimistic (readnone) and knock bits off to a fixpoint.
        // Unknown (declaration) bodies are assumed to read and write memory;
        // allocas imply local traffic which loads/stores already capture.
        let (reads, writes) = infer_memory_bits(m);
        let mut newly_readnone = 0u64;
        let mut newly_readonly = 0u64;
        for (fi, f) in m.funcs.iter_mut().enumerate() {
            let rn = !reads[fi] && !writes[fi];
            let ro = !writes[fi] && !rn;
            if rn && !f.attrs.readnone {
                f.attrs.readnone = true;
                newly_readnone += 1;
            }
            if ro && !f.attrs.readonly {
                f.attrs.readonly = true;
                newly_readonly += 1;
            }
        }
        stats.inc("function-attrs", "NumReadNone", newly_readnone);
        stats.inc("function-attrs", "NumReadOnly", newly_readonly);
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact replay of the reads/writes fixpoint; MayFire iff a bit would
        // newly be set.
        let (reads, writes) = infer_memory_bits(m);
        for (fi, f) in m.funcs.iter().enumerate() {
            let rn = !reads[fi] && !writes[fi];
            let ro = !writes[fi] && !rn;
            if (rn && !f.attrs.readnone) || (ro && !f.attrs.readonly) {
                return Verdict::may(format!("{}: inferable memory attribute", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// The bottom-up reads/writes inference shared by `function-attrs`' run and
/// its precondition.
fn infer_memory_bits(m: &Module) -> (Vec<bool>, Vec<bool>) {
    let n = m.funcs.len();
    let mut reads = vec![false; n];
    let mut writes = vec![false; n];
    for (fi, f) in m.funcs.iter().enumerate() {
        if f.is_decl() {
            reads[fi] = true;
            writes[fi] = true;
            continue;
        }
        for blk in &f.blocks {
            for inst in &blk.insts {
                match inst {
                    Inst::Load { .. } => reads[fi] = true,
                    Inst::Store { .. } => writes[fi] = true,
                    _ => {}
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for (fi, f) in m.funcs.iter().enumerate() {
            for blk in &f.blocks {
                for inst in &blk.insts {
                    if let Inst::Call { callee, .. } = inst {
                        let c = callee.idx();
                        if reads[c] && !reads[fi] {
                            reads[fi] = true;
                            changed = true;
                        }
                        if writes[c] && !writes[fi] {
                            writes[fi] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    (reads, writes)
}

/// The `tailcallelim` pass: turn direct tail recursion into a loop.
pub struct TailCallElim;

impl Pass for TailCallElim {
    fn name(&self) -> &'static str {
        "tailcallelim"
    }
    fn fires_on(&self) -> Option<u64> {
        Some(crate::work::TCE)
    }
    fn clears(&self) -> u64 {
        crate::work::TCE
    }
    fn is_idempotent(&self) -> bool {
        true // runs to fixpoint in one invocation (tests/idempotence.rs verifies)
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        let mut n = 0u64;
        for fi in 0..m.funcs.len() {
            n += tce_function(&mut m.funcs[fi], FuncId(fi as u32));
        }
        stats.inc("tailcallelim", "NumEliminated", n);
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact mirror of `tce_function`'s tail-site scan.
        for (fi, f) in m.funcs.iter().enumerate() {
            if f.is_decl() {
                continue;
            }
            let self_id = FuncId(fi as u32);
            for blk in &f.blocks {
                let Some(Inst::Call { dst, callee, .. }) = blk.insts.last() else { continue };
                if *callee != self_id {
                    continue;
                }
                let tail = match (&blk.term, dst) {
                    (Term::Ret(Some(Operand::Value(rv))), Some(d)) => rv == d,
                    (Term::Ret(None), None) => true,
                    _ => false,
                };
                if tail {
                    return Verdict::may(format!("{}: tail-recursive call", f.name));
                }
            }
        }
        Verdict::CannotFire
    }
}

fn tce_function(f: &mut Function, self_id: FuncId) -> u64 {
    if f.is_decl() {
        return 0;
    }
    // Find tail sites: last inst is `call self`, terminator returns its result
    // (or both are void).
    let mut sites: Vec<BlockId> = Vec::new();
    for (b, blk) in f.iter_blocks() {
        let Some(Inst::Call { dst, callee, .. }) = blk.insts.last() else { continue };
        if *callee != self_id {
            continue;
        }
        let tail = match (&blk.term, dst) {
            (Term::Ret(Some(Operand::Value(rv))), Some(d)) => rv == d,
            (Term::Ret(None), None) => true,
            _ => false,
        };
        if tail {
            sites.push(b);
        }
    }
    if sites.is_empty() {
        return 0;
    }
    // New header: move the entry block's body into a fresh block H; the entry
    // becomes `br H`. Parameters become φs in H.
    let entry = f.entry();
    let h = f.new_block();
    let insts = std::mem::take(&mut f.blocks[entry.idx()].insts);
    let term = std::mem::replace(&mut f.blocks[entry.idx()].term, Term::Br(h));
    f.blocks[h.idx()].insts = insts;
    f.blocks[h.idx()].term = term;
    // Successor φs referencing entry as pred now come from H.
    let succs = f.blocks[h.idx()].term.successors();
    for s in succs {
        for inst in &mut f.blocks[s.idx()].insts {
            if let Inst::Phi { incoming, .. } = inst {
                for (p, _) in incoming.iter_mut() {
                    if *p == entry {
                        *p = h;
                    }
                }
            }
        }
    }
    // `sites` listing entry must be remapped (its body now lives in H).
    let sites: Vec<BlockId> =
        sites.into_iter().map(|b| if b == entry { h } else { b }).collect();

    // Param φs: fresh values, then rewrite all param uses, then fix incomings.
    let params: Vec<ValueId> = (0..f.params.len() as u32).map(ValueId).collect();
    let mut phi_of: HashMap<ValueId, ValueId> = HashMap::new();
    for &p in &params {
        let ty = f.ty(p);
        let v = f.new_value(ty);
        phi_of.insert(p, v);
    }
    for (&p, &v) in &phi_of {
        crate::util::replace_uses(f, p, Operand::Value(v));
    }
    // Tail sites: capture args (already rewritten to use φ values), drop the
    // call, branch back to H.
    let mut site_args: Vec<(BlockId, Vec<Operand>)> = Vec::new();
    for &sb in &sites {
        let Some(Inst::Call { args, .. }) = f.blocks[sb.idx()].insts.pop() else {
            unreachable!()
        };
        site_args.push((sb, args));
        f.blocks[sb.idx()].term = Term::Br(h);
    }
    // Build the φs (inserted at the top of H).
    for (pi, &p) in params.iter().enumerate().rev() {
        let v = phi_of[&p];
        let mut incoming = vec![(entry, Operand::Value(p))];
        for (sb, args) in &site_args {
            incoming.push((*sb, args[pi]));
        }
        f.blocks[h.idx()].insts.insert(0, Inst::Phi { dst: v, incoming });
    }
    sites.len() as u64
}
