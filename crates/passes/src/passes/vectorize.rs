//! Vectorisation: `slp-vectorizer`, `loop-vectorize` and `loop-idiom`.
//!
//! The SLP vectoriser implements the paper's motivating pattern (Fig. 5.1):
//! a sum-reduction over isomorphic multiplies fed by consecutive loads becomes
//! vector loads + a vector multiply + a horizontal reduction — but only when
//! the widest lane type fits the machine vector (W × bits ≤ 128). That
//! profitability check is exactly what `instcombine`'s sign-extension widening
//! defeats when it runs between `mem2reg` and `slp-vectorizer`.

use crate::manager::Pass;
use crate::stats::Stats;
use crate::util::{addr_expr, dce_function, def_sites, replace_uses};
use citroen_analyze::oracle::{Facts, Verdict};
use citroen_ir::inst::{BinOp, CastKind, CmpOp, Inst, Operand, ValueId};
use citroen_ir::module::{Function, Module};
use citroen_ir::types::{ScalarTy, Ty};
use std::collections::{HashMap, HashSet};

/// Machine vector width assumed by profitability checks (bits). Matches the
/// 128-bit NEON/SSE class vectors of the paper's evaluation platforms.
pub const VECTOR_BITS: u32 = 128;
/// SLP group width.
const W: usize = 4;

// ---------------------------------------------------------------------------
// slp-vectorizer
// ---------------------------------------------------------------------------

/// The `slp-vectorizer` pass.
pub struct SlpVectorizer;

impl Pass for SlpVectorizer {
    fn name(&self) -> &'static str {
        "slp-vectorizer"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut emitted = 0u64;
            let mut chains = 0u64;
            for _ in 0..8 {
                let e = slp_reduce_once(f);
                if e == 0 {
                    break;
                }
                emitted += e;
                chains += 1;
                // The replaced scalar chain is dead but still present; clean
                // it up so the next round doesn't re-vectorise dead code.
                dce_function(f);
            }
            stats.inc("slp", "NumVectorInstructions", emitted);
            stats.inc("slp", "NumVectorized", chains);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Necessary shape for a W-wide reduction: a block holding an add
        // chain of ≥W terms (≥W-1 adds) whose lanes each consume a distinct
        // single-use scalar load.
        for f in &m.funcs {
            for blk in &f.blocks {
                let mut adds = 0usize;
                let mut loads = 0usize;
                for inst in &blk.insts {
                    match inst {
                        Inst::Bin { dst, op: BinOp::Add, .. } => {
                            let ty = f.ty(*dst);
                            if ty.lanes == 1 && ty.scalar.is_int() {
                                adds += 1;
                            }
                        }
                        Inst::Load { dst, .. } => {
                            let ty = f.ty(*dst);
                            if ty.lanes == 1 && ty.scalar.is_int() {
                                loads += 1;
                            }
                        }
                        _ => {}
                    }
                }
                if adds >= W - 1 && loads >= W {
                    return Verdict::may(format!("{}: add chain over loads", f.name));
                }
            }
        }
        Verdict::CannotFire
    }
}

/// One lane of a reduction chain: `mul(sext?(load a), sext?(load b))`,
/// `mul(load, load)`, or a bare (possibly sign-extended) load.
#[derive(Debug, Clone)]
struct Lane {
    /// Load of the first input (block inst index).
    a_load: usize,
    /// Element scalar type of the first input.
    a_elem: ScalarTy,
    /// Symbolic base (atoms key) + offset of the first input.
    a_base: String,
    a_off: i64,
    /// Second input, if the lane is a multiply.
    b: Option<(usize, ScalarTy, String, i64)>,
    /// The type multiplication/summation happens in (widest type in the tree).
    work: ScalarTy,
    /// Whether the loads are widened by sext before the multiply.
    sexted: bool,
    /// The lane's root value (term of the add chain).
    root: ValueId,
}

/// Try to vectorise one sum-reduction chain in some block; returns the number
/// of vector instructions emitted (0 = nothing found).
fn slp_reduce_once(f: &mut Function) -> u64 {
    let sites = def_sites(f);
    // Count uses (a chain element must have exactly one use: the next add).
    let mut uses: HashMap<ValueId, u32> = HashMap::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            inst.for_each_operand(|op| {
                if let Some(v) = op.as_value() {
                    *uses.entry(v).or_insert(0) += 1;
                }
            });
        }
        blk.term.for_each_operand(|op| {
            if let Some(v) = op.as_value() {
                *uses.entry(v).or_insert(0) += 1;
            }
        });
    }

    for bi in 0..f.blocks.len() {
        // Linearise add chains rooted in this block.
        let blk = &f.blocks[bi];
        let in_block: HashSet<ValueId> = blk.insts.iter().filter_map(|i| i.dst()).collect();
        for (ri, root_inst) in blk.insts.iter().enumerate() {
            let Inst::Bin { dst: root, op: BinOp::Add, .. } = root_inst else { continue };
            let ty = f.ty(*root);
            if ty.lanes != 1 || !ty.scalar.is_int() {
                continue;
            }
            // Root: an add not consumed by another same-type add in this block.
            let consumed_by_add = blk.insts.iter().any(|i| match i {
                Inst::Bin { op: BinOp::Add, lhs, rhs, dst } => {
                    f.ty(*dst).scalar == ty.scalar
                        && (lhs.as_value() == Some(*root) || rhs.as_value() == Some(*root))
                }
                _ => false,
            });
            if consumed_by_add {
                continue;
            }
            // Collect chain terms by walking left spine of single-use adds.
            let mut terms: Vec<Operand> = Vec::new();
            let mut stack = vec![Operand::Value(*root)];
            let mut chain_members: HashSet<ValueId> = HashSet::new();
            while let Some(op) = stack.pop() {
                let is_chain_add = op.as_value().filter(|v| in_block.contains(v)).and_then(|v| {
                    match crate::util::def_of(f, &sites, &Operand::Value(v)) {
                        Some(Inst::Bin { op: BinOp::Add, lhs, rhs, dst })
                            if f.ty(*dst).scalar == ty.scalar
                                && (*dst == *root || uses.get(dst) == Some(&1)) =>
                        {
                            Some((v, *lhs, *rhs))
                        }
                        _ => None,
                    }
                });
                match is_chain_add {
                    Some((v, l, r)) => {
                        chain_members.insert(v);
                        stack.push(l);
                        stack.push(r);
                    }
                    None => terms.push(op),
                }
            }
            if terms.len() < W {
                continue;
            }
            // Classify each term as a Lane if possible.
            let lanes: Vec<Option<Lane>> = terms
                .iter()
                .map(|t| classify_lane(f, &sites, &uses, &in_block, t, ty.scalar))
                .collect();
            // Greedily group W consecutive-memory lanes.
            let candidates: Vec<&Lane> = lanes.iter().flatten().collect();
            let Some(group) = find_group(&candidates) else { continue };
            // Profitability: W lanes of the work type must fit the machine.
            let work_bits = group[0].work.bits();
            if work_bits * W as u32 > VECTOR_BITS {
                continue; // e.g. 4×i64 after instcombine widening — rejected
            }
            // Safety: no store/call between the earliest involved load and root.
            let mut min_idx = ri;
            for l in &group {
                min_idx = min_idx.min(l.a_load);
                if let Some((bidx, ..)) = l.b {
                    min_idx = min_idx.min(bidx);
                }
            }
            let unsafe_between = f.blocks[bi].insts[min_idx..ri]
                .iter()
                .any(|i| matches!(i, Inst::Store { .. } | Inst::Call { .. }));
            if unsafe_between {
                continue;
            }

            // Emit the vector code before the root.
            let emitted = emit_reduction(f, bi, ri, *root, &group, &terms, ty.scalar);
            return emitted;
        }
    }
    0
}

fn classify_lane(
    f: &Function,
    sites: &HashMap<ValueId, (citroen_ir::inst::BlockId, usize)>,
    uses: &HashMap<ValueId, u32>,
    in_block: &HashSet<ValueId>,
    term: &Operand,
    sum_ty: ScalarTy,
) -> Option<Lane> {
    let v = term.as_value()?;
    if !in_block.contains(&v) || uses.get(&v) != Some(&1) {
        return None;
    }
    let inst = crate::util::def_of(f, sites, term)?;
    // Widening-reduction lane: `sext(mul)` — the multiply runs in a narrow
    // type and each product is sign-extended before summation. Hardware
    // supports this directly (widening multiply-accumulate), so the lane's
    // work type is the *multiply's* type; the reduce widens. This is the
    // exact Fig. 5.1 shape, and what instcombine's widening destroys.
    if let Inst::Cast { kind: CastKind::SExt, src, dst } = inst {
        if f.ty(*dst).scalar == sum_ty {
            if let Some(mv) = src.as_value() {
                if in_block.contains(&mv) && uses.get(&mv) == Some(&1) {
                    if let Some(Inst::Bin { op: BinOp::Mul, lhs, rhs, dst: mdst }) =
                        crate::util::def_of(f, sites, src)
                    {
                        let work = f.ty(*mdst).scalar;
                        let a = lane_input(f, sites, uses, in_block, lhs)?;
                        let b = lane_input(f, sites, uses, in_block, rhs)?;
                        if a.3 != b.3 {
                            return None;
                        }
                        return Some(Lane {
                            a_load: a.0,
                            a_elem: a.1,
                            a_base: a.2 .0.clone(),
                            a_off: a.2 .1,
                            b: Some((b.0, b.1, b.2 .0.clone(), b.2 .1)),
                            work,
                            sexted: a.3,
                            root: v,
                        });
                    }
                }
            }
        }
    }
    match inst {
        Inst::Bin { op: BinOp::Mul, lhs, rhs, dst } => {
            let work = f.ty(*dst).scalar;
            if work != sum_ty {
                return None;
            }
            let a = lane_input(f, sites, uses, in_block, lhs)?;
            let b = lane_input(f, sites, uses, in_block, rhs)?;
            if a.3 != b.3 {
                return None; // both sexted or both direct
            }
            Some(Lane {
                a_load: a.0,
                a_elem: a.1,
                a_base: a.2 .0.clone(),
                a_off: a.2 .1,
                b: Some((b.0, b.1, b.2 .0.clone(), b.2 .1)),
                work,
                sexted: a.3,
                root: v,
            })
        }
        _ => {
            let a = lane_input(f, sites, uses, in_block, term)?;
            if a.1 != sum_ty && !a.3 {
                return None;
            }
            Some(Lane {
                a_load: a.0,
                a_elem: a.1,
                a_base: a.2 .0.clone(),
                a_off: a.2 .1,
                b: None,
                work: sum_ty,
                sexted: a.3,
                root: v,
            })
        }
    }
}

/// An input to a lane: a load, optionally behind a single-use sext.
/// Returns (load inst index, element type, (base, offset), was_sexted).
fn lane_input(
    f: &Function,
    sites: &HashMap<ValueId, (citroen_ir::inst::BlockId, usize)>,
    uses: &HashMap<ValueId, u32>,
    in_block: &HashSet<ValueId>,
    op: &Operand,
) -> Option<(usize, ScalarTy, (String, i64), bool)> {
    let v = op.as_value()?;
    if !in_block.contains(&v) || uses.get(&v) != Some(&1) {
        return None;
    }
    match crate::util::def_of(f, sites, op)? {
        Inst::Load { dst, addr } => {
            let ty = f.ty(*dst);
            if ty.lanes != 1 || !ty.scalar.is_int() {
                return None;
            }
            let (_, idx) = sites.get(dst)?;
            let e = addr_expr(f, sites, addr);
            Some((*idx, ty.scalar, (e.atoms_key(), e.offset), false))
        }
        Inst::Cast { kind: CastKind::SExt, src, .. } => {
            let lv = src.as_value()?;
            if uses.get(&lv) != Some(&1) {
                return None;
            }
            match crate::util::def_of(f, sites, src)? {
                Inst::Load { dst, addr } => {
                    let ty = f.ty(*dst);
                    if ty.lanes != 1 || !ty.scalar.is_int() {
                        return None;
                    }
                    let (_, idx) = sites.get(dst)?;
                    let e = addr_expr(f, sites, addr);
                    Some((*idx, ty.scalar, (e.atoms_key(), e.offset), true))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Find W lanes whose `a` (and `b`, if present) loads are consecutive.
fn find_group(cands: &[&Lane]) -> Option<Vec<Lane>> {
    if cands.len() < W {
        return None;
    }
    // Sort by a-offset within the same base; try windows of W.
    let mut sorted: Vec<&Lane> = cands.to_vec();
    sorted.sort_by(|x, y| (x.a_base.as_str(), x.a_off).cmp(&(y.a_base.as_str(), y.a_off)));
    for win in sorted.windows(W) {
        let a0 = win[0];
        let step = a0.a_elem.bytes() as i64;
        let shapes_match = win.iter().all(|l| {
            l.a_elem == a0.a_elem
                && l.work == a0.work
                && l.sexted == a0.sexted
                && l.b.is_some() == a0.b.is_some()
                && l.a_base == a0.a_base
        });
        if !shapes_match {
            continue;
        }
        let consecutive_a =
            win.iter().enumerate().all(|(i, l)| l.a_off == a0.a_off + step * i as i64);
        if !consecutive_a {
            continue;
        }
        if let Some((_, b_elem, ref b_base, b_off0)) = a0.b {
            let bstep = b_elem.bytes() as i64;
            let consecutive_b = win.iter().enumerate().all(|(i, l)| match &l.b {
                Some((_, be, bb, bo)) => {
                    *be == b_elem && bb == b_base && *bo == b_off0 + bstep * i as i64
                }
                None => false,
            });
            if !consecutive_b {
                continue;
            }
        }
        return Some(win.iter().map(|l| (*l).clone()).collect());
    }
    None
}

/// Emit vector loads (+casts) + mul + reduce before `root`; rebuild the add
/// chain over the remaining scalar terms plus the reduction result.
fn emit_reduction(
    f: &mut Function,
    bi: usize,
    root_idx: usize,
    root: ValueId,
    group: &[Lane],
    all_terms: &[Operand],
    sum_scalar: ScalarTy,
) -> u64 {
    let lane0 = &group[0];
    let elem = lane0.a_elem;
    let vload_ty = Ty::vector(elem, W as u8);
    let vwork_ty = Ty::vector(lane0.work, W as u8);
    let mut emitted = 0u64;
    let mut new_insts: Vec<Inst> = Vec::new();

    // Vector load of the a-side: address of lane with smallest offset. The
    // group's a-loads are consecutive starting at group[0] (find_group sorts).
    let a_addr = load_addr(f, bi, lane0.a_load);
    let va = f.new_value(vload_ty);
    new_insts.push(Inst::Load { dst: va, addr: a_addr });
    emitted += 1;
    let mut a_val = Operand::Value(va);
    if lane0.sexted {
        let vca = f.new_value(vwork_ty);
        new_insts.push(Inst::Cast { dst: vca, kind: CastKind::SExt, src: a_val });
        a_val = Operand::Value(vca);
        emitted += 1;
    }
    let reduced_input = if let Some((b_idx0, b_elem, ..)) = lane0.b {
        let b_addr = load_addr(f, bi, b_idx0);
        let vb = f.new_value(Ty::vector(b_elem, W as u8));
        new_insts.push(Inst::Load { dst: vb, addr: b_addr });
        emitted += 1;
        let mut b_val = Operand::Value(vb);
        if lane0.sexted {
            let vcb = f.new_value(vwork_ty);
            new_insts.push(Inst::Cast { dst: vcb, kind: CastKind::SExt, src: b_val });
            b_val = Operand::Value(vcb);
            emitted += 1;
        }
        let vm = f.new_value(vwork_ty);
        new_insts.push(Inst::Bin { dst: vm, op: BinOp::Mul, lhs: a_val, rhs: b_val });
        emitted += 1;
        Operand::Value(vm)
    } else {
        a_val
    };
    let red = f.new_value(Ty::scalar(sum_scalar));
    new_insts.push(Inst::Reduce { dst: red, op: BinOp::Add, src: reduced_input });
    emitted += 1;

    // Rebuild the chain: remaining terms + reduction.
    let grouped: HashSet<ValueId> = group.iter().map(|l| l.root).collect();
    let mut operands: Vec<Operand> = all_terms
        .iter()
        .filter(|t| match t.as_value() {
            Some(v) => !grouped.contains(&v),
            None => true,
        })
        .copied()
        .collect();
    operands.push(Operand::Value(red));
    // Left-fold into a fresh chain; the final value replaces `root`.
    let mut acc = operands[0];
    for t in &operands[1..] {
        let nv = f.new_value(Ty::scalar(sum_scalar));
        new_insts.push(Inst::Bin { dst: nv, op: BinOp::Add, lhs: acc, rhs: *t });
        acc = nv.into_operand();
    }
    // Insert before root; then retarget root's uses and let DCE collect the
    // scalar chain.
    let insert_at = root_idx;
    let blk = &mut f.blocks[bi];
    for (k, inst) in new_insts.into_iter().enumerate() {
        blk.insts.insert(insert_at + k, inst);
    }
    replace_uses(f, root, acc);
    emitted
}

trait IntoOperand {
    fn into_operand(self) -> Operand;
}
impl IntoOperand for ValueId {
    fn into_operand(self) -> Operand {
        Operand::Value(self)
    }
}

fn load_addr(f: &Function, bi: usize, load_idx: usize) -> Operand {
    match &f.blocks[bi].insts[load_idx] {
        Inst::Load { addr, .. } => *addr,
        _ => panic!("lane index does not point at a load"),
    }
}

// ---------------------------------------------------------------------------
// loop-vectorize & loop-idiom
// ---------------------------------------------------------------------------

/// The `loop-vectorize` pass: vectorise map-style self-loops with unit-stride
/// memory accesses and constant trip counts divisible by the vector width.
pub struct LoopVectorize;

impl Pass for LoopVectorize {
    fn name(&self) -> &'static str {
        "loop-vectorize"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for _ in 0..4 {
                if !vectorize_one_loop(f, false) {
                    break;
                }
                n += 1;
            }
            stats.inc("loop-vectorize", "NumVectorized", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact mirror: the transform fires iff a plan passes every screen.
        for f in &m.funcs {
            if plan_vectorize(f, false).is_some() {
                return Verdict::may(format!("{}: unit-stride map loop", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// The `loop-idiom` pass: recognise memset-style loops (store of an invariant
/// value with unit stride) and widen them — the degenerate no-load case of
/// loop vectorisation.
pub struct LoopIdiom;

impl Pass for LoopIdiom {
    fn name(&self) -> &'static str {
        "loop-idiom"
    }
    fn run(&self, m: &mut Module, stats: &mut Stats) {
        for f in &mut m.funcs {
            let mut n = 0u64;
            for _ in 0..4 {
                if !vectorize_one_loop(f, true) {
                    break;
                }
                n += 1;
            }
            stats.inc("loop-idiom", "NumIdiom", n);
        }
    }
    fn precondition(&self, m: &Module, _facts: &Facts) -> Verdict {
        // Exact mirror: the transform fires iff a plan passes every screen.
        for f in &m.funcs {
            if plan_vectorize(f, true).is_some() {
                return Verdict::may(format!("{}: memset-style loop", f.name));
            }
        }
        Verdict::CannotFire
    }
}

/// Everything the transform needs from the (read-only) screening walk: the
/// loop header, the IV increment to restep, and the vectorisable data graph.
struct VecPlan {
    h: citroen_ir::inst::BlockId,
    iv_next: ValueId,
    data: HashSet<ValueId>,
}

/// Read-only mirror of `vectorize_one_loop`'s *complete* screen set — IV
/// shape, trip divisibility, single φ, per-instruction data-graph closure
/// with unit-stride addresses, store/load base disjointness, and the
/// vector-width profitability cut. Returns the plan for the first loop that
/// passes everything, so `plan_vectorize(f, io).is_some()` is exactly "the
/// pass would fire".
fn plan_vectorize(f: &Function, idiom_only: bool) -> Option<VecPlan> {
    use super::loops::{analyze_iv, const_trip_count, find_self_loops};
    let wf = W as u64;
    for sl in find_self_loops(f) {
        let Some(iv) = analyze_iv(f, &sl) else { continue };
        if iv.step != 1 || !iv.true_continues || iv.cmp_op != CmpOp::Slt || !iv.cmp_on_next {
            continue;
        }
        let Some(trip) = const_trip_count(&iv, 1 << 20) else { continue };
        if trip % wf != 0 || trip < wf {
            continue;
        }
        let h = sl.header;
        let sites = def_sites(f);
        let in_loop: HashSet<ValueId> =
            f.blocks[h.idx()].insts.iter().filter_map(|i| i.dst()).collect();

        // Only the IV φ is allowed (map loops carry no other state).
        let phis = f.blocks[h.idx()].insts.iter().filter(|i| i.is_phi()).count();
        if phis != 1 {
            continue;
        }
        // Classify instructions: address/iv scalar backbone vs data graph.
        // Data values flow load → pure ops → store.
        let mut load_elems: Vec<ScalarTy> = Vec::new();
        let mut data: HashSet<ValueId> = HashSet::new();
        let mut store_bases: Vec<String> = Vec::new();
        let mut load_bases: Vec<String> = Vec::new();
        let mut ok = true;
        let mut has_store = false;
        for inst in &f.blocks[h.idx()].insts {
            match inst {
                Inst::Load { dst, addr } => {
                    let ty = f.ty(*dst);
                    if idiom_only || ty.lanes != 1 {
                        ok = false;
                        break;
                    }
                    match stride_of(f, &sites, addr, iv.phi, &in_loop) {
                        Some((s, base)) if s == ty.scalar.bytes() as i64 => {
                            load_bases.push(base);
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                    data.insert(*dst);
                    load_elems.push(ty.scalar);
                }
                Inst::Store { ty, val, addr } => {
                    has_store = true;
                    if ty.lanes != 1 {
                        ok = false;
                        break;
                    }
                    match stride_of(f, &sites, addr, iv.phi, &in_loop) {
                        Some((s, base)) if s == ty.scalar.bytes() as i64 => {
                            store_bases.push(base);
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                    // Stored value must be data-graph or invariant.
                    if let Some(v) = val.as_value() {
                        if in_loop.contains(&v) && !data.contains(&v) {
                            ok = false;
                            break;
                        }
                    }
                }
                Inst::Bin { dst, lhs, rhs, .. } => {
                    let uses_data = [lhs, rhs]
                        .iter()
                        .any(|o| o.as_value().map(|v| data.contains(&v)).unwrap_or(false));
                    if uses_data {
                        // All value operands must be data or invariant.
                        let mut good = true;
                        for o in [lhs, rhs] {
                            if let Some(v) = o.as_value() {
                                if in_loop.contains(&v) && !data.contains(&v) {
                                    good = false;
                                }
                            }
                        }
                        if !good {
                            ok = false;
                            break;
                        }
                        data.insert(*dst);
                    }
                }
                Inst::Cast { dst, src, .. } => {
                    if let Some(v) = src.as_value() {
                        if data.contains(&v) {
                            data.insert(*dst);
                        }
                    }
                }
                Inst::Cmp { .. } | Inst::Phi { .. } => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || !has_store {
            continue;
        }
        if idiom_only && !load_elems.is_empty() {
            continue;
        }
        // Alias safety: every load base must differ from every store base,
        // and stores must be pairwise disjoint (vector stores widen each
        // access, so nearby scalar stores would interleave differently).
        if load_bases.iter().any(|l| store_bases.iter().any(|s| l == s || overlapping(l, s))) {
            continue;
        }
        let mut stores_disjoint = true;
        for i in 0..store_bases.len() {
            for j in i + 1..store_bases.len() {
                if overlapping(&store_bases[i], &store_bases[j]) {
                    stores_disjoint = false;
                }
            }
        }
        if !stores_disjoint {
            continue;
        }
        // Profitability: widest data lane × W must fit the machine vector.
        let mut widest = 0u32;
        for inst in &f.blocks[h.idx()].insts {
            if let Some(d) = inst.dst() {
                if data.contains(&d) {
                    widest = widest.max(f.ty(d).scalar.bits());
                }
            }
            if let Inst::Store { ty, .. } = inst {
                widest = widest.max(ty.scalar.bits());
            }
        }
        if widest * W as u32 > VECTOR_BITS {
            continue;
        }
        return Some(VecPlan { h, iv_next: iv.next, data });
    }
    None
}

/// A unit-stride address inside a loop: `invariant-terms + iv * scale + off`.
fn stride_of(
    f: &Function,
    sites: &HashMap<ValueId, (citroen_ir::inst::BlockId, usize)>,
    op: &Operand,
    iv: ValueId,
    in_loop: &HashSet<ValueId>,
) -> Option<(i64, String)> {
    // Walk the add tree collecting terms.
    let mut terms: Vec<Operand> = Vec::new();
    let mut stack = vec![*op];
    let mut depth = 0;
    while let Some(t) = stack.pop() {
        depth += 1;
        if depth > 32 {
            return None;
        }
        match crate::util::def_of(f, sites, &t) {
            Some(Inst::Bin { op: BinOp::Add, lhs, rhs, .. })
                if t.as_value().map(|v| in_loop.contains(&v)).unwrap_or(false) =>
            {
                stack.push(*lhs);
                stack.push(*rhs);
            }
            _ => terms.push(t),
        }
    }
    let mut scale: Option<i64> = None;
    let mut base_desc = String::new();
    let mut konst = 0i64;
    for t in terms {
        if let Some(c) = t.as_const_int() {
            konst += c;
            continue;
        }
        if t.as_value() == Some(iv) {
            if scale.replace(1).is_some() {
                return None;
            }
            continue;
        }
        // iv * c or iv << k?
        let scaled = match crate::util::def_of(f, sites, &t) {
            Some(Inst::Bin { op: BinOp::Mul, lhs, rhs, .. }) => {
                match (lhs.as_value(), rhs.as_const_int()) {
                    (Some(l), Some(c)) if l == iv => Some(c),
                    _ => None,
                }
            }
            Some(Inst::Bin { op: BinOp::Shl, lhs, rhs, .. }) => {
                match (lhs.as_value(), rhs.as_const_int()) {
                    (Some(l), Some(k)) if l == iv && (0..32).contains(&k) => Some(1 << k),
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(c) = scaled {
            if scale.replace(c).is_some() {
                return None;
            }
            continue;
        }
        // Otherwise the term must be loop-invariant.
        if let Some(v) = t.as_value() {
            if in_loop.contains(&v) {
                return None;
            }
        }
        base_desc.push_str(&format!("{t:?};"));
    }
    scale.map(|s| (s, format!("{base_desc}+{konst}")))
}

fn vectorize_one_loop(f: &mut Function, idiom_only: bool) -> bool {
    let wf = W as u64;
    let Some(VecPlan { h, iv_next, data }) = plan_vectorize(f, idiom_only) else {
        return false;
    };
    // Transform: data values become vectors; loads/stores widen; the IV
    // steps by W; invariant operands of data ops are splatted.
    let insts: Vec<Inst> = f.blocks[h.idx()].insts.clone();
    let mut out: Vec<Inst> = Vec::new();
    let mut vec_of: HashMap<ValueId, ValueId> = HashMap::new();
    let mut splat_cache: HashMap<String, ValueId> = HashMap::new();
    for inst in &insts {
        match inst {
            Inst::Phi { .. } => out.push(inst.clone()),
            Inst::Load { dst, addr } if data.contains(dst) => {
                let ty = f.ty(*dst);
                let vd = f.new_value(Ty::vector(ty.scalar, W as u8));
                vec_of.insert(*dst, vd);
                out.push(Inst::Load { dst: vd, addr: *addr });
            }
            Inst::Store { ty, val, addr } => {
                let vty = Ty::vector(ty.scalar, W as u8);
                let vval = vector_operand(
                    f,
                    &mut out,
                    &mut splat_cache,
                    &vec_of,
                    val,
                    vty,
                );
                out.push(Inst::Store { ty: vty, val: vval, addr: *addr });
            }
            Inst::Bin { dst, op, lhs, rhs } if data.contains(dst) => {
                let ty = f.ty(*dst);
                let vty = Ty::vector(ty.scalar, W as u8);
                let vl = vector_operand(f, &mut out, &mut splat_cache, &vec_of, lhs, vty);
                let vr = vector_operand(f, &mut out, &mut splat_cache, &vec_of, rhs, vty);
                let vd = f.new_value(vty);
                vec_of.insert(*dst, vd);
                out.push(Inst::Bin { dst: vd, op: *op, lhs: vl, rhs: vr });
            }
            Inst::Cast { dst, kind, src } if data.contains(dst) => {
                let ty = f.ty(*dst);
                let vty = Ty::vector(ty.scalar, W as u8);
                let src_ty = f.operand_ty(src);
                let vsrc =
                    vector_operand(f, &mut out, &mut splat_cache, &vec_of,
                                   src, Ty::vector(src_ty.scalar, W as u8));
                let vd = f.new_value(vty);
                vec_of.insert(*dst, vd);
                out.push(Inst::Cast { dst: vd, kind: *kind, src: vsrc });
            }
            Inst::Bin { dst, op, lhs, rhs: _ } => {
                // Scalar backbone: the IV increment changes step 1 -> W.
                if *dst == iv_next {
                    out.push(Inst::Bin {
                        dst: *dst,
                        op: *op,
                        lhs: *lhs,
                        rhs: Operand::ImmI(wf as i64, f.ty(*dst).scalar),
                    });
                } else {
                    out.push(inst.clone());
                }
            }
            other => out.push(other.clone()),
        }
    }
    f.blocks[h.idx()].insts = out;
    dce_function(f);
    true
}

/// Conservative textual-base overlap check (same symbolic base description).
fn overlapping(a: &str, b: &str) -> bool {
    // Same invariant terms with offsets within one vector width apart would
    // overlap; textual equality already covers the same-array case, and
    // different globals produce different descriptions. Differing constants
    // on the same base are treated as overlapping to stay safe.
    let base = |s: &str| s.rsplit_once('+').map(|(b, _)| b.to_string()).unwrap_or_default();
    base(a) == base(b)
}

fn vector_operand(
    f: &mut Function,
    out: &mut Vec<Inst>,
    splat_cache: &mut HashMap<String, ValueId>,
    vec_of: &HashMap<ValueId, ValueId>,
    op: &Operand,
    vty: Ty,
) -> Operand {
    if let Some(v) = op.as_value() {
        if let Some(vv) = vec_of.get(&v) {
            return Operand::Value(*vv);
        }
    }
    // Invariant or constant: splat it (cached per operand+type).
    let key = format!("{op:?}@{vty}");
    if let Some(v) = splat_cache.get(&key) {
        return Operand::Value(*v);
    }
    let sv = f.new_value(vty);
    out.push(Inst::Splat { dst: sv, src: *op });
    splat_cache.insert(key, sv);
    Operand::Value(sv)
}
