//! The transformation-pass collection. `all_passes` builds the registry used
//! by the tuners (the stand-in for the paper's 76-pass LLVM 17 universe).

pub mod combine;
pub mod ipo;
pub mod loops;
pub mod mem2reg;
pub mod redundancy;
pub mod simplifycfg;
pub mod vectorize;

use crate::manager::Pass;

/// All passes in this crate, in a stable order (the registry id order).
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(mem2reg::Mem2Reg),
        Box::new(mem2reg::Sroa),
        Box::new(simplifycfg::SimplifyCfg),
        Box::new(simplifycfg::JumpThreading),
        Box::new(combine::InstCombine),
        Box::new(combine::InstSimplify),
        Box::new(combine::ConstProp),
        Box::new(combine::Reassociate),
        Box::new(combine::DivRemPairs),
        Box::new(combine::VectorCombine),
        Box::new(combine::AggressiveInstCombine),
        Box::new(redundancy::Gvn),
        Box::new(redundancy::EarlyCse),
        Box::new(redundancy::Sccp),
        Box::new(redundancy::Dce),
        Box::new(redundancy::Adce),
        Box::new(redundancy::Dse),
        Box::new(redundancy::Sink),
        Box::new(redundancy::CorrelatedPropagation),
        Box::new(loops::LoopSimplify),
        Box::new(loops::LoopRotate),
        Box::new(loops::Licm),
        Box::new(loops::IndVars),
        Box::new(loops::LoopUnroll),
        Box::new(loops::LoopDeletion),
        Box::new(loops::StrengthReduce),
        Box::new(vectorize::SlpVectorizer),
        Box::new(vectorize::LoopVectorize),
        Box::new(vectorize::LoopIdiom),
        Box::new(ipo::Inline),
        Box::new(ipo::FunctionAttrs),
        Box::new(ipo::TailCallElim),
    ]
}
