//! Autophase-style static IR features (Huang et al. 2019), reproduced as the
//! alternative feature-extraction baseline of the paper's Fig. 5.9/5.10.
//!
//! These are counts of syntactic IR properties of the *optimised* module. The
//! paper's point: such features cannot see transformations like
//! `function-attrs` and conflate distinct binaries that happen to share
//! instruction mixes, so a cost model fitted on them underperforms one fitted
//! on pass-related compilation statistics.

use citroen_ir::analysis::{Cfg, DomTree, LoopInfo};
use citroen_ir::inst::{BinOp, CastKind, Inst, Operand, Term};
use citroen_ir::module::Module;
use citroen_ir::types::ScalarTy;

/// Number of Autophase-style features.
pub const NUM_AUTOPHASE_FEATURES: usize = 40;

/// Feature names, aligned with [`autophase_features`] output.
pub const AUTOPHASE_NAMES: [&str; NUM_AUTOPHASE_FEATURES] = [
    "TotalInsts",
    "TotalBlocks",
    "TotalFuncs",
    "NumAddInst",
    "NumSubInst",
    "NumMulInst",
    "NumDivInst",
    "NumAndOrXor",
    "NumShifts",
    "NumFPArith",
    "NumCmpInst",
    "NumCastInst",
    "NumSExt",
    "NumZExt",
    "NumTrunc",
    "NumLoadInst",
    "NumStoreInst",
    "NumAllocaInst",
    "NumPhiInst",
    "NumSelectInst",
    "NumCallInst",
    "NumRetInst",
    "NumBrInst",
    "NumCondBrInst",
    "NumVectorInsts",
    "NumSplatInsts",
    "NumReduceInsts",
    "NumEdges",
    "NumCriticalEdges",
    "NumLoops",
    "MaxLoopDepth",
    "NumBlocksNoPreds",
    "NumOneSuccBlocks",
    "NumTwoSuccBlocks",
    "NumPhiArgs",
    "NumConstOperands",
    "NumGlobalOperands",
    "MaxBlockInsts",
    "NumI16Values",
    "NumI64Values",
];

/// Extract the feature vector from a module.
pub fn autophase_features(m: &Module) -> Vec<f64> {
    let mut v = [0f64; NUM_AUTOPHASE_FEATURES];
    v[2] = m.funcs.len() as f64;
    for f in &m.funcs {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let loops = LoopInfo::compute(f, &cfg, &dom);
        v[29] += loops.loops.len() as f64;
        v[30] = v[30].max(loops.loops.iter().map(|l| l.depth).max().unwrap_or(0) as f64);
        v[1] += f.blocks.len() as f64;
        for (b, blk) in f.iter_blocks() {
            v[0] += blk.insts.len() as f64;
            v[37] = v[37].max(blk.insts.len() as f64);
            if cfg.preds[b.idx()].is_empty() {
                v[31] += 1.0;
            }
            let succs = blk.term.successors();
            v[27] += succs.len() as f64;
            match succs.len() {
                1 => v[32] += 1.0,
                2 => {
                    v[33] += 1.0;
                    // critical edge: 2 succs and a succ with >1 preds
                    for s in &succs {
                        if cfg.preds[s.idx()].len() > 1 {
                            v[28] += 1.0;
                        }
                    }
                }
                _ => {}
            }
            match &blk.term {
                Term::Br(_) => v[22] += 1.0,
                Term::CondBr { .. } => v[23] += 1.0,
                Term::Ret(_) => v[21] += 1.0,
                Term::Unreachable => {}
            }
            for inst in &blk.insts {
                if let Some(d) = inst.dst() {
                    let ty = f.ty(d);
                    if ty.is_vector() {
                        v[24] += 1.0;
                    }
                    match ty.scalar {
                        ScalarTy::I16 => v[38] += 1.0,
                        ScalarTy::I64 => v[39] += 1.0,
                        _ => {}
                    }
                }
                inst.for_each_operand(|op| match op {
                    Operand::ImmI(..) | Operand::ImmF(_) => v[35] += 1.0,
                    Operand::Global(_) => v[36] += 1.0,
                    _ => {}
                });
                match inst {
                    Inst::Bin { op, .. } => match op {
                        BinOp::Add => v[3] += 1.0,
                        BinOp::Sub => v[4] += 1.0,
                        BinOp::Mul => v[5] += 1.0,
                        BinOp::SDiv | BinOp::SRem => v[6] += 1.0,
                        BinOp::And | BinOp::Or | BinOp::Xor => v[7] += 1.0,
                        BinOp::Shl | BinOp::AShr | BinOp::LShr => v[8] += 1.0,
                        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => v[9] += 1.0,
                        BinOp::SMin | BinOp::SMax => v[3] += 1.0,
                    },
                    Inst::Cmp { .. } => v[10] += 1.0,
                    Inst::Cast { kind, .. } => {
                        v[11] += 1.0;
                        match kind {
                            CastKind::SExt => v[12] += 1.0,
                            CastKind::ZExt => v[13] += 1.0,
                            CastKind::Trunc => v[14] += 1.0,
                            _ => {}
                        }
                    }
                    Inst::Load { .. } => v[15] += 1.0,
                    Inst::Store { .. } => v[16] += 1.0,
                    Inst::Alloca { .. } => v[17] += 1.0,
                    Inst::Phi { incoming, .. } => {
                        v[18] += 1.0;
                        v[34] += incoming.len() as f64;
                    }
                    Inst::Select { .. } => v[19] += 1.0,
                    Inst::Call { .. } => v[20] += 1.0,
                    Inst::Splat { .. } => v[25] += 1.0,
                    Inst::Reduce { .. } => v[26] += 1.0,
                    Inst::ExtractLane { .. } => v[24] += 1.0,
                }
            }
        }
    }
    v.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::Operand;
    use citroen_ir::types::I64;

    #[test]
    fn counts_basic_shapes() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let x = b.bin(BinOp::Add, I64, b.param(0), Operand::imm64(1));
        let y = b.bin(BinOp::Mul, I64, x, x);
        b.ret(Some(y));
        m.add_func(b.finish());
        let v = autophase_features(&m);
        assert_eq!(v.len(), NUM_AUTOPHASE_FEATURES);
        assert_eq!(v[0], 2.0); // TotalInsts
        assert_eq!(v[2], 1.0); // TotalFuncs
        assert_eq!(v[3], 1.0); // adds
        assert_eq!(v[5], 1.0); // muls
        assert_eq!(v[21], 1.0); // rets
    }

    #[test]
    fn names_align() {
        assert_eq!(AUTOPHASE_NAMES.len(), NUM_AUTOPHASE_FEATURES);
        assert_eq!(AUTOPHASE_NAMES[0], "TotalInsts");
        assert_eq!(AUTOPHASE_NAMES[39], "NumI64Values");
    }
}
