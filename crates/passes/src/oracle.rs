//! Registry-level oracle driver: per-pass verdicts for a module, and the
//! static pass-interaction graph derived from pairwise verdict flips.
//!
//! The per-pass precondition analyses live on each [`Pass`] impl; this module
//! runs them across a whole [`Registry`], computing the shared
//! [`Facts`] bundle once per module. On top of that it derives the
//! interaction graph: pass `A` *enables* pass `B` when running `A` on a
//! module flips `B`'s verdict from `CannotFire` to `MayFire` (and *disables*
//! for the reverse flip). The graph is existential over a corpus — an edge
//! means the flip was observed on at least `count` modules — which is exactly
//! the over-approximation sequence canonicalisation needs: only drop a dead
//! pass when no earlier pass is known to wake it.

use crate::manager::{Pass, PassId, Registry};
use crate::stats::Stats;
use crate::work;
use citroen_analyze::oracle::{compute_facts, Interaction, Verdict};
use citroen_ir::module::Module;

pub use citroen_analyze::oracle::{InteractionGraph, WorkModel};

/// Verdicts for every registered pass on `m`, in registry id order. The
/// dataflow fact bundle is computed once and shared across all passes.
pub fn verdicts(reg: &Registry, m: &Module) -> Vec<Verdict> {
    let facts = compute_facts(m);
    reg.ids().into_iter().map(|id| reg.pass(id).precondition(m, &facts)).collect()
}

/// `mask[p]` is true iff pass `p` is statically dead (`CannotFire`) on the
/// module the verdicts were computed for.
pub fn dead_mask(verdicts: &[Verdict]) -> Vec<bool> {
    verdicts.iter().map(Verdict::is_cannot_fire).collect()
}

/// Verdicts packed as 0/1 features, in registry id order — the optional
/// oracle augmentation of the GP feature vector (`MayFire` → 1.0).
pub fn verdict_bits(verdicts: &[Verdict]) -> Vec<f64> {
    verdicts.iter().map(|v| if v.is_cannot_fire() { 0.0 } else { 1.0 }).collect()
}

/// For each pass `A` in `reg`: run `A` once on a clone of `m` and diff the
/// verdict vector before/after. Returns `(enables, disables)` edge lists with
/// `count == 1`, suitable for accumulation by [`derive_graph`].
pub fn interactions_for_module(
    reg: &Registry,
    m: &Module,
) -> (Vec<Interaction>, Vec<Interaction>) {
    let before = verdicts(reg, m);
    let mut enables = Vec::new();
    let mut disables = Vec::new();
    for (a, id) in reg.ids().into_iter().enumerate() {
        let mut after_m = m.clone();
        let mut stats = Stats::new();
        reg.pass(id).run(&mut after_m, &mut stats);
        let after = verdicts(reg, &after_m);
        for b in 0..before.len() {
            match (before[b].is_cannot_fire(), after[b].is_cannot_fire()) {
                (true, false) => enables.push(Interaction { from: a, to: b, count: 1 }),
                (false, true) => disables.push(Interaction { from: a, to: b, count: 1 }),
                _ => {}
            }
        }
    }
    (enables, disables)
}

/// Derive the interaction graph over a module corpus: accumulate the
/// per-module edges of [`interactions_for_module`], summing observation
/// counts for repeated edges.
pub fn derive_graph(reg: &Registry, corpus: &[Module]) -> InteractionGraph {
    let mut graph = InteractionGraph {
        passes: reg.names().iter().map(|n| n.to_string()).collect(),
        enables: Vec::new(),
        disables: Vec::new(),
        modules: corpus.len() as u64,
        work: Some(work_model(reg)),
    };
    let accumulate = |edges: &mut Vec<Interaction>, observed: Vec<Interaction>| {
        for o in observed {
            match edges.iter_mut().find(|e| e.from == o.from && e.to == o.to) {
                Some(e) => e.count += o.count,
                None => edges.push(o),
            }
        }
    };
    for m in corpus {
        let (en, dis) = interactions_for_module(reg, m);
        accumulate(&mut graph.enables, en);
        accumulate(&mut graph.disables, dis);
    }
    graph.enables.sort_by_key(|e| (e.from, e.to));
    graph.disables.sort_by_key(|e| (e.from, e.to));
    graph
}

/// The registry's declared work-class model ([`crate::work`]), in the
/// serialisable form the interaction-graph JSON carries.
pub fn work_model(reg: &Registry) -> WorkModel {
    WorkModel {
        classes: work::NAMES.iter().map(|n| n.to_string()).collect(),
        fires_on: reg.fires_on(),
        clears: reg.clears(),
        produces: reg.produces(),
    }
}

/// One subsumption-edge theorem check: for a claimed edge `p → q`
/// (`fires_on(q) ⊆ clears(p)`), run `p` on a clone of `m` — then `q` must
/// leave the fingerprint unchanged and record zero statistics. Returns
/// `Some(description)` on a contradiction, `None` when the theorem holds.
/// The chain-level generalisation (the absent-set dataflow across whole
/// sequences) is exercised by the `citroen-analyze subsume` fuzz campaign.
pub fn check_subsumed(p: &dyn Pass, q: &dyn Pass, m: &Module) -> Option<String> {
    let mut after_p = m.clone();
    let mut stats = Stats::new();
    p.run(&mut after_p, &mut stats);
    let before = citroen_ir::print::fingerprint(&after_p);
    let mut after_q = after_p.clone();
    let mut qstats = Stats::new();
    q.run(&mut after_q, &mut qstats);
    if citroen_ir::print::fingerprint(&after_q) != before {
        Some(format!(
            "subsumption '{}' → '{}' violated: '{}' changed the module fingerprint",
            p.name(),
            q.name(),
            q.name()
        ))
    } else if !qstats.is_empty() {
        Some(format!(
            "subsumption '{}' → '{}' violated: '{}' recorded statistics: {}",
            p.name(),
            q.name(),
            q.name(),
            qstats.keys().join(", ")
        ))
    } else {
        None
    }
}

/// [`check_subsumed`] over every statically-claimed edge of the registry's
/// work model. Returns the first contradiction, tagged with the edge.
pub fn check_subsumption_matrix(reg: &Registry, m: &Module) -> Option<(PassId, PassId, String)> {
    let model = work_model(reg);
    for (p, q) in model.subsumed_pairs() {
        let (pid, qid) = (PassId(p as u16), PassId(q as u16));
        if let Some(d) = check_subsumed(reg.pass(pid), reg.pass(qid), m) {
            return Some((pid, qid, d));
        }
    }
    None
}

/// Re-index a persisted interaction graph onto `reg` for the tuner's
/// `SeqCanonicalizer` warm-start: per-registry-id enables masks (edges
/// naming passes absent from the registry are dropped) and, when the graph
/// carries a work model, the `(fires_on, clears, produces)` mask triple with
/// the conservative `(None, 0, ALL)` row for any pass the graph doesn't
/// know. This is what lets a daemon skip the per-task
/// `interactions_for_module` derivation entirely.
#[allow(clippy::type_complexity)]
pub fn canonicalizer_inputs(
    reg: &Registry,
    g: &InteractionGraph,
) -> (Vec<u64>, Option<(Vec<Option<u64>>, Vec<u64>, Vec<u64>)>) {
    let n = reg.len();
    // graph index for each registry id, and the reverse.
    let gid: Vec<Option<usize>> =
        reg.names().iter().map(|name| g.passes.iter().position(|p| p == name)).collect();
    let mut rid = std::collections::HashMap::new();
    for (r, gi) in gid.iter().enumerate() {
        if let Some(gi) = gi {
            rid.insert(*gi, r);
        }
    }
    let mut enables = vec![0u64; n];
    for e in &g.enables {
        if let (Some(&f), Some(&t)) = (rid.get(&e.from), rid.get(&e.to)) {
            enables[f] |= 1 << t;
        }
    }
    let work = g.work.as_ref().map(|w| {
        let mut fires: Vec<Option<u64>> = vec![None; n];
        let mut clears = vec![0u64; n];
        let mut produces = vec![u64::MAX; n];
        for (r, gi) in gid.iter().enumerate() {
            if let Some(gi) = gi {
                fires[r] = w.fires_on[*gi];
                clears[r] = w.clears[*gi];
                produces[r] = w.produces[*gi];
            }
        }
        (fires, clears, produces)
    });
    (enables, work)
}

/// One soundness check: does `pass` uphold its `CannotFire` theorem on `m`?
/// Returns `None` when the verdict is `MayFire` (nothing to check) or the
/// theorem holds; `Some(description)` on a contradiction.
pub fn check_cannot_fire(pass: &dyn Pass, m: &Module) -> Option<String> {
    let facts = compute_facts(m);
    if !pass.precondition(m, &facts).is_cannot_fire() {
        return None;
    }
    let before = citroen_ir::print::fingerprint(m);
    let mut mutated = m.clone();
    let mut stats = Stats::new();
    pass.run(&mut mutated, &mut stats);
    let after = citroen_ir::print::fingerprint(&mutated);
    if before != after {
        Some(format!("pass '{}' claimed cannot-fire but changed the module fingerprint", pass.name()))
    } else if !stats.is_empty() {
        Some(format!(
            "pass '{}' claimed cannot-fire but recorded statistics: {}",
            pass.name(),
            stats.keys().join(", ")
        ))
    } else {
        None
    }
}

/// [`check_cannot_fire`] across a whole registry. Returns the first
/// contradiction, tagged with the offending [`PassId`].
pub fn check_registry(reg: &Registry, m: &Module) -> Option<(PassId, String)> {
    reg.ids().into_iter().find_map(|id| check_cannot_fire(reg.pass(id), m).map(|d| (id, d)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::Operand;
    use citroen_ir::types::I64;

    /// `ret 1` — nothing for any pass to do.
    fn trivial_module() -> Module {
        let mut m = Module::new("trivial");
        let mut b = FunctionBuilder::new("main", vec![], Some(I64));
        b.ret(Some(Operand::imm64(1)));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn trivial_module_kills_most_passes() {
        let reg = Registry::full();
        let v = verdicts(&reg, &trivial_module());
        assert_eq!(v.len(), reg.len());
        let dead = dead_mask(&v).iter().filter(|&&d| d).count();
        // A `ret 1` module should be statically dead for the vast majority
        // of the registry; require a strong majority so regressions that
        // weaken preconditions to always-MayFire are caught.
        assert!(dead >= reg.len() * 3 / 4, "only {dead}/{} passes cannot-fire", reg.len());
    }

    #[test]
    fn verdict_bits_are_complement_of_dead_mask() {
        let reg = Registry::full();
        let v = verdicts(&reg, &crate::testing::victim_module());
        let bits = verdict_bits(&v);
        let dead = dead_mask(&v);
        assert_eq!(bits.len(), dead.len());
        for (bit, d) in bits.iter().zip(&dead) {
            assert_eq!(*bit == 0.0, *d);
        }
        // The victim module has a real loop and memory traffic: something
        // must be alive.
        assert!(bits.iter().any(|&b| b == 1.0));
    }

    #[test]
    fn cannot_fire_verdicts_hold_on_victim_module() {
        let reg = Registry::full();
        assert_eq!(check_registry(&reg, &crate::testing::victim_module()), None);
        assert_eq!(check_registry(&reg, &trivial_module()), None);
    }

    #[test]
    fn graph_indexes_match_registry_order() {
        let reg = Registry::full();
        let corpus = vec![crate::testing::victim_module(), trivial_module()];
        let g = derive_graph(&reg, &corpus);
        assert_eq!(g.passes, reg.names().iter().map(|n| n.to_string()).collect::<Vec<_>>());
        assert_eq!(g.modules, 2);
        for e in g.enables.iter().chain(&g.disables) {
            assert!(e.from < reg.len() && e.to < reg.len());
            assert!(e.count >= 1 && e.count <= 2);
        }
        // mem2reg on the victim module promotes the alloca; that must wake
        // at least one downstream pass, so the graph cannot be edge-free.
        assert!(!g.enables.is_empty(), "expected at least one enables edge");
        // The derived graph carries the registry's work model.
        let w = g.work.as_ref().expect("derive_graph attaches the work model");
        assert_eq!(w.fires_on.len(), reg.len());
        assert_eq!(w.classes.len(), crate::work::NUM_CLASSES as usize);
    }

    #[test]
    fn work_model_matrix_generalises_the_idempotence_diagonal() {
        let reg = Registry::full();
        let model = work_model(&reg);
        let pairs = model.subsumed_pairs();
        // Every self-clearing pass with a declared fire mask must subsume
        // itself (the idempotence diagonal), and the dce column must extend
        // beyond it. loop-rotate declares a mask without the diagonal: it is
        // not idempotent (rotation can re-expose rotatable shapes), so its
        // clears mask is empty by design.
        for (i, fires) in model.fires_on.iter().enumerate() {
            if let Some(fm) = fires {
                if fm & !model.clears[i] == 0 {
                    assert!(pairs.contains(&(i, i)), "missing diagonal for {}", reg.names()[i]);
                } else {
                    assert_eq!(reg.names()[i], "loop-rotate", "unexpected non-self-clearing mask");
                }
            }
        }
        let dce = reg.by_name("dce").unwrap().0 as usize;
        let dce_col = pairs.iter().filter(|(_, q)| *q == dce).count();
        assert!(dce_col >= 8, "expected a populated dce column, got {dce_col}");
        // Known off-diagonal edges from unconditional trailing dce sweeps.
        for p in ["gvn", "instcombine", "sccp", "adce"] {
            let pi = reg.by_name(p).unwrap().0 as usize;
            assert!(pairs.contains(&(pi, dce)), "missing {p} → dce edge");
        }
    }

    #[test]
    fn canonicalizer_inputs_round_trip_through_json() {
        let reg = Registry::full();
        let g = derive_graph(&reg, &[crate::testing::victim_module()]);
        let back = InteractionGraph::from_json(&g.to_json()).unwrap();
        let (enables, work) = canonicalizer_inputs(&reg, &back);
        // Same registry, same order: the remap must reproduce the graph's
        // own mask form and the registry's declared work model exactly.
        assert_eq!(enables, back.enables_mask());
        let (fires, clears, produces) = work.expect("derived graph carries a work model");
        assert_eq!(fires, reg.fires_on());
        assert_eq!(clears, reg.clears());
        assert_eq!(produces, reg.produces());
        // A reduced registry only keeps rows for passes it knows.
        let old = Registry::llvm10();
        let (en_old, work_old) = canonicalizer_inputs(&old, &back);
        assert_eq!(en_old.len(), old.len());
        let (fires_old, _, _) = work_old.unwrap();
        assert_eq!(fires_old.len(), old.len());
    }

    #[test]
    fn subsumption_matrix_holds_on_victim_and_trivial_modules() {
        let reg = Registry::full();
        assert_eq!(check_subsumption_matrix(&reg, &crate::testing::victim_module()), None);
        assert_eq!(check_subsumption_matrix(&reg, &trivial_module()), None);
    }
}
