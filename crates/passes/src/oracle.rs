//! Registry-level oracle driver: per-pass verdicts for a module, and the
//! static pass-interaction graph derived from pairwise verdict flips.
//!
//! The per-pass precondition analyses live on each [`Pass`] impl; this module
//! runs them across a whole [`Registry`], computing the shared
//! [`Facts`] bundle once per module. On top of that it derives the
//! interaction graph: pass `A` *enables* pass `B` when running `A` on a
//! module flips `B`'s verdict from `CannotFire` to `MayFire` (and *disables*
//! for the reverse flip). The graph is existential over a corpus — an edge
//! means the flip was observed on at least `count` modules — which is exactly
//! the over-approximation sequence canonicalisation needs: only drop a dead
//! pass when no earlier pass is known to wake it.

use crate::manager::{Pass, PassId, Registry};
use crate::stats::Stats;
use citroen_analyze::oracle::{compute_facts, Interaction, InteractionGraph, Verdict};
use citroen_ir::module::Module;

/// Verdicts for every registered pass on `m`, in registry id order. The
/// dataflow fact bundle is computed once and shared across all passes.
pub fn verdicts(reg: &Registry, m: &Module) -> Vec<Verdict> {
    let facts = compute_facts(m);
    reg.ids().into_iter().map(|id| reg.pass(id).precondition(m, &facts)).collect()
}

/// `mask[p]` is true iff pass `p` is statically dead (`CannotFire`) on the
/// module the verdicts were computed for.
pub fn dead_mask(verdicts: &[Verdict]) -> Vec<bool> {
    verdicts.iter().map(Verdict::is_cannot_fire).collect()
}

/// Verdicts packed as 0/1 features, in registry id order — the optional
/// oracle augmentation of the GP feature vector (`MayFire` → 1.0).
pub fn verdict_bits(verdicts: &[Verdict]) -> Vec<f64> {
    verdicts.iter().map(|v| if v.is_cannot_fire() { 0.0 } else { 1.0 }).collect()
}

/// For each pass `A` in `reg`: run `A` once on a clone of `m` and diff the
/// verdict vector before/after. Returns `(enables, disables)` edge lists with
/// `count == 1`, suitable for accumulation by [`derive_graph`].
pub fn interactions_for_module(
    reg: &Registry,
    m: &Module,
) -> (Vec<Interaction>, Vec<Interaction>) {
    let before = verdicts(reg, m);
    let mut enables = Vec::new();
    let mut disables = Vec::new();
    for (a, id) in reg.ids().into_iter().enumerate() {
        let mut after_m = m.clone();
        let mut stats = Stats::new();
        reg.pass(id).run(&mut after_m, &mut stats);
        let after = verdicts(reg, &after_m);
        for b in 0..before.len() {
            match (before[b].is_cannot_fire(), after[b].is_cannot_fire()) {
                (true, false) => enables.push(Interaction { from: a, to: b, count: 1 }),
                (false, true) => disables.push(Interaction { from: a, to: b, count: 1 }),
                _ => {}
            }
        }
    }
    (enables, disables)
}

/// Derive the interaction graph over a module corpus: accumulate the
/// per-module edges of [`interactions_for_module`], summing observation
/// counts for repeated edges.
pub fn derive_graph(reg: &Registry, corpus: &[Module]) -> InteractionGraph {
    let mut graph = InteractionGraph {
        passes: reg.names().iter().map(|n| n.to_string()).collect(),
        enables: Vec::new(),
        disables: Vec::new(),
        modules: corpus.len() as u64,
    };
    let accumulate = |edges: &mut Vec<Interaction>, observed: Vec<Interaction>| {
        for o in observed {
            match edges.iter_mut().find(|e| e.from == o.from && e.to == o.to) {
                Some(e) => e.count += o.count,
                None => edges.push(o),
            }
        }
    };
    for m in corpus {
        let (en, dis) = interactions_for_module(reg, m);
        accumulate(&mut graph.enables, en);
        accumulate(&mut graph.disables, dis);
    }
    graph.enables.sort_by_key(|e| (e.from, e.to));
    graph.disables.sort_by_key(|e| (e.from, e.to));
    graph
}

/// One soundness check: does `pass` uphold its `CannotFire` theorem on `m`?
/// Returns `None` when the verdict is `MayFire` (nothing to check) or the
/// theorem holds; `Some(description)` on a contradiction.
pub fn check_cannot_fire(pass: &dyn Pass, m: &Module) -> Option<String> {
    let facts = compute_facts(m);
    if !pass.precondition(m, &facts).is_cannot_fire() {
        return None;
    }
    let before = citroen_ir::print::fingerprint(m);
    let mut mutated = m.clone();
    let mut stats = Stats::new();
    pass.run(&mut mutated, &mut stats);
    let after = citroen_ir::print::fingerprint(&mutated);
    if before != after {
        Some(format!("pass '{}' claimed cannot-fire but changed the module fingerprint", pass.name()))
    } else if !stats.is_empty() {
        Some(format!(
            "pass '{}' claimed cannot-fire but recorded statistics: {}",
            pass.name(),
            stats.keys().join(", ")
        ))
    } else {
        None
    }
}

/// [`check_cannot_fire`] across a whole registry. Returns the first
/// contradiction, tagged with the offending [`PassId`].
pub fn check_registry(reg: &Registry, m: &Module) -> Option<(PassId, String)> {
    reg.ids().into_iter().find_map(|id| check_cannot_fire(reg.pass(id), m).map(|d| (id, d)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::Operand;
    use citroen_ir::types::I64;

    /// `ret 1` — nothing for any pass to do.
    fn trivial_module() -> Module {
        let mut m = Module::new("trivial");
        let mut b = FunctionBuilder::new("main", vec![], Some(I64));
        b.ret(Some(Operand::imm64(1)));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn trivial_module_kills_most_passes() {
        let reg = Registry::full();
        let v = verdicts(&reg, &trivial_module());
        assert_eq!(v.len(), reg.len());
        let dead = dead_mask(&v).iter().filter(|&&d| d).count();
        // A `ret 1` module should be statically dead for the vast majority
        // of the registry; require a strong majority so regressions that
        // weaken preconditions to always-MayFire are caught.
        assert!(dead >= reg.len() * 3 / 4, "only {dead}/{} passes cannot-fire", reg.len());
    }

    #[test]
    fn verdict_bits_are_complement_of_dead_mask() {
        let reg = Registry::full();
        let v = verdicts(&reg, &crate::testing::victim_module());
        let bits = verdict_bits(&v);
        let dead = dead_mask(&v);
        assert_eq!(bits.len(), dead.len());
        for (bit, d) in bits.iter().zip(&dead) {
            assert_eq!(*bit == 0.0, *d);
        }
        // The victim module has a real loop and memory traffic: something
        // must be alive.
        assert!(bits.iter().any(|&b| b == 1.0));
    }

    #[test]
    fn cannot_fire_verdicts_hold_on_victim_module() {
        let reg = Registry::full();
        assert_eq!(check_registry(&reg, &crate::testing::victim_module()), None);
        assert_eq!(check_registry(&reg, &trivial_module()), None);
    }

    #[test]
    fn graph_indexes_match_registry_order() {
        let reg = Registry::full();
        let corpus = vec![crate::testing::victim_module(), trivial_module()];
        let g = derive_graph(&reg, &corpus);
        assert_eq!(g.passes, reg.names().iter().map(|n| n.to_string()).collect::<Vec<_>>());
        assert_eq!(g.modules, 2);
        for e in g.enables.iter().chain(&g.disables) {
            assert!(e.from < reg.len() && e.to < reg.len());
            assert!(e.count >= 1 && e.count <= 2);
        }
        // mem2reg on the victim module promotes the alloca; that must wake
        // at least one downstream pass, so the graph cannot be edge-free.
        assert!(!g.enables.is_empty(), "expected at least one enables edge");
    }
}
