//! Shared rewriting utilities used by the transformation passes.

use citroen_ir::analysis::Cfg;
use citroen_ir::inst::{BinOp, BlockId, CastKind, CmpOp, Inst, Operand, Term, ValueId};
use citroen_ir::module::Function;
use citroen_ir::types::ScalarTy;
use std::collections::HashMap;

/// Replace every use of `from` (in instructions and terminators) with `to`.
pub fn replace_uses(f: &mut Function, from: ValueId, to: Operand) {
    let rewrite = |op: &mut Operand| {
        if let Operand::Value(v) = op {
            if *v == from {
                *op = to;
            }
        }
    };
    for blk in &mut f.blocks {
        for inst in &mut blk.insts {
            inst.for_each_operand_mut(rewrite);
        }
        blk.term.for_each_operand_mut(rewrite);
    }
}

/// Map from each value to the (block, index) of its defining instruction.
pub fn def_sites(f: &Function) -> HashMap<ValueId, (BlockId, usize)> {
    let mut m = HashMap::with_capacity(f.value_ty.len());
    for (b, blk) in f.iter_blocks() {
        for (i, inst) in blk.insts.iter().enumerate() {
            if let Some(d) = inst.dst() {
                m.insert(d, (b, i));
            }
        }
    }
    m
}

/// Look up the defining instruction of an operand, if it is a value defined by
/// an instruction (not a parameter).
pub fn def_of<'f>(
    f: &'f Function,
    sites: &HashMap<ValueId, (BlockId, usize)>,
    op: &Operand,
) -> Option<&'f Inst> {
    let v = op.as_value()?;
    let (b, i) = sites.get(&v)?;
    Some(&f.blocks[b.idx()].insts[*i])
}

/// Constant-fold an integer/float binary op over constant operands.
pub fn fold_bin(op: BinOp, s: ScalarTy, lhs: &Operand, rhs: &Operand) -> Option<Operand> {
    match (lhs, rhs) {
        (Operand::ImmI(a, _), Operand::ImmI(b, _)) if s.is_int() => {
            let (a, b) = (s.sext(*a), s.sext(*b));
            use BinOp::*;
            let bits = s.bits().min(64);
            let mask = (bits - 1) as i64;
            let r = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                SDiv => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                SRem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                And => a & b,
                Or => a | b,
                Xor => a ^ b,
                Shl => a.wrapping_shl((b & mask) as u32),
                AShr => a.wrapping_shr((b & mask) as u32),
                LShr => ((s.zext(a) as u64) >> ((b & mask) as u64)) as i64,
                SMin => a.min(b),
                SMax => a.max(b),
                _ => return None,
            };
            Some(Operand::ImmI(s.wrap(r), s))
        }
        (Operand::ImmF(a), Operand::ImmF(b)) => {
            use BinOp::*;
            let r = match op {
                FAdd => a + b,
                FSub => a - b,
                FMul => a * b,
                FDiv => a / b,
                SMin => a.min(*b),
                SMax => a.max(*b),
                _ => return None,
            };
            Some(Operand::ImmF(r))
        }
        _ => None,
    }
}

/// Constant-fold a comparison over constant operands; returns an `i1` immediate.
pub fn fold_cmp(op: CmpOp, lhs: &Operand, rhs: &Operand) -> Option<Operand> {
    use CmpOp::*;
    let b = match (lhs, rhs) {
        (Operand::ImmI(a, sa), Operand::ImmI(c, sc)) => {
            let (a, c) = (sa.sext(*a), sc.sext(*c));
            match op {
                Eq => a == c,
                Ne => a != c,
                Slt => a < c,
                Sle => a <= c,
                Sgt => a > c,
                Sge => a >= c,
            }
        }
        (Operand::ImmF(a), Operand::ImmF(c)) => match op {
            Eq => a == c,
            Ne => a != c,
            Slt => a < c,
            Sle => a <= c,
            Sgt => a > c,
            Sge => a >= c,
        },
        _ => return None,
    };
    Some(Operand::ImmI(if b { -1 } else { 0 }, ScalarTy::I1))
}

/// Constant-fold a cast of a constant operand.
pub fn fold_cast(kind: CastKind, from: ScalarTy, to: ScalarTy, src: &Operand) -> Option<Operand> {
    match src {
        Operand::ImmI(v, _) => {
            let v = from.sext(*v);
            Some(match kind {
                CastKind::SExt => Operand::ImmI(v, to),
                CastKind::ZExt => Operand::ImmI(from.zext(v), to),
                CastKind::Trunc => Operand::ImmI(to.wrap(v), to),
                CastKind::SiToFp => Operand::ImmF(v as f64),
                CastKind::FpToSi => return None,
            })
        }
        Operand::ImmF(x) => match kind {
            CastKind::FpToSi => {
                let v = if x.is_nan() { 0 } else { *x as i64 };
                Some(Operand::ImmI(to.wrap(v), to))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Delete blocks unreachable from the entry: rewrites φ-nodes of surviving
/// blocks to drop incoming edges from removed predecessors, compacts the block
/// list, and renumbers branch targets. Returns the number of removed blocks.
pub fn remove_unreachable_blocks(f: &mut Function) -> usize {
    let cfg = Cfg::compute(f);
    let n = f.blocks.len();
    let reachable: Vec<bool> = (0..n).map(|i| cfg.reachable(BlockId(i as u32))).collect();
    let removed = reachable.iter().filter(|r| !**r).count();
    if removed == 0 {
        return 0;
    }
    // Drop φ incomings from unreachable preds.
    for (i, blk) in f.blocks.iter_mut().enumerate() {
        if !reachable[i] {
            continue;
        }
        for inst in &mut blk.insts {
            if let Inst::Phi { incoming, .. } = inst {
                incoming.retain(|(p, _)| reachable[p.idx()]);
            }
        }
    }
    // Compact: old id -> new id.
    let mut remap = vec![BlockId(u32::MAX); n];
    let mut next = 0u32;
    for i in 0..n {
        if reachable[i] {
            remap[i] = BlockId(next);
            next += 1;
        }
    }
    let old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut blk) in old_blocks.into_iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        for inst in &mut blk.insts {
            if let Inst::Phi { incoming, .. } = inst {
                for (p, _) in incoming.iter_mut() {
                    *p = remap[p.idx()];
                }
            }
        }
        blk.term.for_each_successor_mut(|s| *s = remap[s.idx()]);
        f.blocks.push(blk);
    }
    // Degenerate single-incoming φs become copies.
    simplify_single_incoming_phis(f);
    removed
}

/// Replace φs with exactly one incoming edge by their operand.
pub fn simplify_single_incoming_phis(f: &mut Function) -> usize {
    let mut replaced = 0;
    loop {
        let mut subst: Option<(ValueId, Operand)> = None;
        'scan: for blk in &f.blocks {
            for inst in &blk.insts {
                if let Inst::Phi { dst, incoming } = inst {
                    if incoming.len() == 1 && incoming[0].1 != Operand::Value(*dst) {
                        subst = Some((*dst, incoming[0].1));
                        break 'scan;
                    }
                }
            }
        }
        match subst {
            None => break,
            Some((dst, op)) => {
                replace_uses(f, dst, op);
                for blk in &mut f.blocks {
                    blk.insts.retain(|i| i.dst() != Some(dst));
                }
                replaced += 1;
            }
        }
    }
    replaced
}

/// Read-only mirror of [`dce_function`]'s first sweep: whether it would
/// remove at least one instruction. A first sweep that removes nothing makes
/// the whole fixpoint a no-op, so `false` here proves `dce_function` cannot
/// change the function — the fact pass preconditions need, since several
/// passes run `dce_function` unconditionally as cleanup.
pub fn would_dce(f: &Function) -> bool {
    let mut uses = vec![0u32; f.value_ty.len()];
    for blk in &f.blocks {
        for inst in &blk.insts {
            inst.for_each_operand(|op| {
                if let Operand::Value(v) = op {
                    uses[v.idx()] += 1;
                }
            });
        }
        blk.term.for_each_operand(|op| {
            if let Operand::Value(v) = op {
                uses[v.idx()] += 1;
            }
        });
    }
    f.blocks.iter().flat_map(|b| &b.insts).any(|inst| match inst.dst() {
        Some(d) => !inst.has_side_effects() && !inst.reads_memory() && uses[d.idx()] == 0,
        None => false,
    })
}

/// Read-only mirror of [`simplify_single_incoming_phis`]: whether any φ
/// would be replaced by its sole incoming operand.
pub fn has_simplifiable_phi(f: &Function) -> bool {
    f.blocks.iter().flat_map(|b| &b.insts).any(|inst| {
        matches!(inst, Inst::Phi { dst, incoming }
            if incoming.len() == 1 && incoming[0].1 != Operand::Value(*dst))
    })
}

/// Whether any block is unreachable from the entry (read-only mirror of
/// [`remove_unreachable_blocks`] finding work to do).
pub fn has_unreachable_blocks(f: &Function) -> bool {
    let cfg = Cfg::compute(f);
    (0..f.blocks.len()).any(|i| !cfg.reachable(BlockId(i as u32)))
}

/// Remove pure instructions whose results are unused; iterates to a fixpoint.
/// Returns the number of instructions removed.
pub fn dce_function(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut uses = vec![0u32; f.value_ty.len()];
        for blk in &f.blocks {
            for inst in &blk.insts {
                inst.for_each_operand(|op| {
                    if let Operand::Value(v) = op {
                        uses[v.idx()] += 1;
                    }
                });
            }
            blk.term.for_each_operand(|op| {
                if let Operand::Value(v) = op {
                    uses[v.idx()] += 1;
                }
            });
        }
        let mut any = false;
        for blk in &mut f.blocks {
            let before = blk.insts.len();
            blk.insts.retain(|inst| match inst.dst() {
                Some(d) if !inst.has_side_effects() && !inst.reads_memory() => {
                    // Allocas are pure-ish: removable when unused.
                    uses[d.idx()] > 0
                }
                _ => true,
            });
            if blk.insts.len() != before {
                any = true;
                removed += before - blk.insts.len();
            }
        }
        if !any {
            break;
        }
    }
    removed
}

/// Symbolic linear address: a sorted multiset of `(atom, coefficient)` terms
/// plus a constant byte offset: `addr = Σ cᵢ·atomᵢ + offset` (a SCEV-lite
/// decomposition). Two addresses with equal term multisets differ by a known
/// constant, which is what SLP's consecutive-access detection and DSE's
/// overwrite detection need — including through `iv*2`-style scaled indexing
/// and loop-carried pointers.
#[derive(Debug, Clone, PartialEq)]
pub struct AddrExpr {
    /// Non-constant `(operand, coefficient)` terms, sorted canonically.
    /// Empty means a constant address.
    pub atoms: Vec<(Operand, i64)>,
    /// Constant byte offset.
    pub offset: i64,
}

impl AddrExpr {
    /// The single base operand, when the address is exactly `base + const`.
    pub fn single_base(&self) -> Option<Operand> {
        if self.atoms.len() == 1 && self.atoms[0].1 == 1 {
            Some(self.atoms[0].0)
        } else {
            None
        }
    }

    /// The first atom (canonical stand-in); `None` when constant.
    pub fn base(&self) -> Option<Operand> {
        self.atoms.first().map(|(a, _)| *a)
    }

    /// Stable sort/hash key for grouping.
    pub fn atoms_key(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (a, c) in &self.atoms {
            match a {
                Operand::Value(v) => {
                    let _ = write!(s, "{c}*v{};", v.0);
                }
                Operand::Global(g) => {
                    let _ = write!(s, "{c}*g{};", g.0);
                }
                Operand::ImmI(x, t) => {
                    let _ = write!(s, "{c}*i{}:{};", x, t.bits());
                }
                Operand::ImmF(x) => {
                    let _ = write!(s, "{c}*f{};", x.to_bits());
                }
            }
        }
        s
    }

    /// Coefficient of a specific atom (0 if absent).
    pub fn coeff_of(&self, op: &Operand) -> i64 {
        self.atoms.iter().find(|(a, _)| a == op).map(|(_, c)| *c).unwrap_or(0)
    }

    /// Global atoms appearing with coefficient 1 (array bases, used by alias
    /// reasoning over distinct arrays).
    pub fn globals(&self) -> Vec<citroen_ir::inst::GlobalId> {
        self.atoms
            .iter()
            .filter_map(|(a, c)| match a {
                Operand::Global(g) if *c == 1 => Some(*g),
                _ => None,
            })
            .collect()
    }
}

fn atom_rank(op: &Operand) -> (u8, u64) {
    match op {
        Operand::Value(v) => (0, v.0 as u64),
        Operand::Global(g) => (1, g.0 as u64),
        Operand::ImmI(c, _) => (2, *c as u64),
        Operand::ImmF(x) => (3, x.to_bits()),
    }
}

/// Decompose an address operand into `Σ cᵢ·atomᵢ + offset` by walking
/// `add`/`sub`/`mul-const`/`shl-const` trees (all i64 wrapping arithmetic, so
/// the decomposition is exact). Used by SLP, DSE, GVN load numbering, SROA
/// and the loop vectoriser's stride analysis.
pub fn addr_expr(
    f: &Function,
    sites: &HashMap<ValueId, (BlockId, usize)>,
    op: &Operand,
) -> AddrExpr {
    let mut atoms: Vec<(Operand, i64)> = Vec::new();
    let mut offset = 0i64;
    let mut work: Vec<(Operand, i64)> = vec![(*op, 1)];
    let mut budget = 64;
    while let Some((cur, coeff)) = work.pop() {
        budget -= 1;
        if budget == 0 || atoms.len() > 8 {
            atoms.push((cur, coeff));
            continue;
        }
        if let Some(c) = cur.as_const_int() {
            offset = offset.wrapping_add(c.wrapping_mul(coeff));
            continue;
        }
        // Only 64-bit scalar arithmetic decomposes exactly (narrower types
        // wrap at their own width).
        let ty = f.operand_ty(&cur);
        if ty.scalar != citroen_ir::types::ScalarTy::I64 || ty.lanes != 1 {
            atoms.push((cur, coeff));
            continue;
        }
        match def_of(f, sites, &cur) {
            Some(Inst::Bin { op: BinOp::Add, lhs, rhs, .. }) => {
                work.push((*lhs, coeff));
                work.push((*rhs, coeff));
            }
            Some(Inst::Bin { op: BinOp::Sub, lhs, rhs, .. }) => {
                work.push((*lhs, coeff));
                work.push((*rhs, coeff.wrapping_neg()));
            }
            Some(Inst::Bin { op: BinOp::Mul, lhs, rhs, .. }) => {
                if let Some(c) = rhs.as_const_int() {
                    work.push((*lhs, coeff.wrapping_mul(c)));
                } else if let Some(c) = lhs.as_const_int() {
                    work.push((*rhs, coeff.wrapping_mul(c)));
                } else {
                    atoms.push((cur, coeff));
                }
            }
            Some(Inst::Bin { op: BinOp::Shl, lhs, rhs, .. }) => {
                match rhs.as_const_int() {
                    Some(k) if (0..32).contains(&k) => {
                        work.push((*lhs, coeff.wrapping_mul(1i64 << k)));
                    }
                    _ => atoms.push((cur, coeff)),
                }
            }
            _ => atoms.push((cur, coeff)),
        }
    }
    // Combine like terms, drop zero coefficients, sort canonically.
    atoms.sort_by_key(|(a, _)| atom_rank(a));
    let mut combined: Vec<(Operand, i64)> = Vec::with_capacity(atoms.len());
    for (a, c) in atoms {
        match combined.last_mut() {
            Some((la, lc)) if *la == a => *lc = lc.wrapping_add(c),
            _ => combined.push((a, c)),
        }
    }
    combined.retain(|(_, c)| *c != 0);
    AddrExpr { atoms: combined, offset }
}

/// Conservative may-alias test between `[a, a+sa)` and `[b, b+sb)`.
///
/// Distinct-global reasoning assumes in-bounds accesses (the C object model):
/// an index expression on one array is assumed not to reach into another.
pub fn may_alias(a: &AddrExpr, sa: u32, b: &AddrExpr, sb: u32) -> bool {
    if a.atoms == b.atoms {
        // Same symbolic base: disjoint constant ranges don't alias.
        let (lo1, hi1) = (a.offset, a.offset + sa as i64);
        let (lo2, hi2) = (b.offset, b.offset + sb as i64);
        return lo1 < hi2 && lo2 < hi1;
    }
    // Addresses anchored at distinct single globals never alias.
    let (ga, gb) = (a.globals(), b.globals());
    if ga.len() == 1 && gb.len() == 1 && ga[0] != gb[0] {
        return false;
    }
    true
}

/// Whether the terminator of `blk` is a trivial `br` and the block is empty of
/// instructions — a forwarding block.
pub fn is_forwarding_block(f: &Function, b: BlockId) -> Option<BlockId> {
    let blk = &f.blocks[b.idx()];
    if blk.insts.is_empty() {
        if let Term::Br(t) = blk.term {
            if t != b {
                return Some(t);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::GlobalId;
    use citroen_ir::types::{I16, I64};

    #[test]
    fn fold_bin_wraps_at_width() {
        let r = fold_bin(
            BinOp::Add,
            ScalarTy::I16,
            &Operand::ImmI(32767, ScalarTy::I16),
            &Operand::ImmI(1, ScalarTy::I16),
        )
        .unwrap();
        assert_eq!(r, Operand::ImmI(-32768, ScalarTy::I16));
        // div by zero refuses to fold
        assert!(fold_bin(BinOp::SDiv, ScalarTy::I64, &Operand::imm64(1), &Operand::imm64(0))
            .is_none());
    }

    #[test]
    fn fold_cmp_and_cast() {
        assert_eq!(
            fold_cmp(CmpOp::Slt, &Operand::imm64(1), &Operand::imm64(2)),
            Some(Operand::ImmI(-1, ScalarTy::I1))
        );
        assert_eq!(
            fold_cast(CastKind::SExt, ScalarTy::I16, ScalarTy::I64, &Operand::ImmI(-1, ScalarTy::I16)),
            Some(Operand::ImmI(-1, ScalarTy::I64))
        );
        assert_eq!(
            fold_cast(CastKind::ZExt, ScalarTy::I16, ScalarTy::I64, &Operand::ImmI(-1, ScalarTy::I16)),
            Some(Operand::ImmI(65535, ScalarTy::I64))
        );
        assert_eq!(
            fold_cast(CastKind::Trunc, ScalarTy::I64, ScalarTy::I8, &Operand::imm64(257)),
            Some(Operand::ImmI(1, ScalarTy::I8))
        );
    }

    #[test]
    fn addr_expr_walks_add_chains() {
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let base = b.param(0);
        let a1 = b.bin(BinOp::Add, I64, base, Operand::imm64(8));
        let a2 = b.bin(BinOp::Add, I64, a1, Operand::imm64(4));
        let l = b.load(I64, a2);
        b.ret(Some(l));
        let f = b.finish();
        let sites = def_sites(&f);
        let e = addr_expr(&f, &sites, &a2);
        assert_eq!(e.single_base(), Some(base));
        assert_eq!(e.offset, 12);
    }

    #[test]
    fn addr_expr_multiset_atoms() {
        // addr = base + x + 4 + x2: two value atoms, const folded out.
        let mut b = FunctionBuilder::new("f", vec![I64, I64, I64], Some(I64));
        let s1 = b.bin(BinOp::Add, I64, b.param(0), b.param(1));
        let s2 = b.bin(BinOp::Add, I64, s1, Operand::imm64(4));
        let s3 = b.bin(BinOp::Add, I64, s2, b.param(2));
        let l = b.load(I64, s3);
        b.ret(Some(l));
        let f = b.finish();
        let sites = def_sites(&f);
        let e = addr_expr(&f, &sites, &s3);
        assert_eq!(e.atoms.len(), 3);
        assert_eq!(e.offset, 4);
        // Same atoms in another association compare equal.
        let e2 = {
            let mut b = FunctionBuilder::new("g", vec![I64, I64, I64], Some(I64));
            let t1 = b.bin(BinOp::Add, I64, b.param(2), b.param(0));
            let t2 = b.bin(BinOp::Add, I64, t1, b.param(1));
            let t3 = b.bin(BinOp::Add, I64, t2, Operand::imm64(4));
            let l = b.load(I64, t3);
            b.ret(Some(l));
            let f2 = b.finish();
            let sites2 = def_sites(&f2);
            addr_expr(&f2, &sites2, &t3)
        };
        assert_eq!(e.atoms, e2.atoms);
        assert_eq!(e.atoms_key(), e2.atoms_key());
    }

    fn at(op: Operand, offset: i64) -> AddrExpr {
        AddrExpr { atoms: vec![(op, 1)], offset }
    }

    #[test]
    fn alias_rules() {
        let g0 = at(Operand::Global(GlobalId(0)), 0);
        let g1 = at(Operand::Global(GlobalId(1)), 0);
        assert!(!may_alias(&g0, 8, &g1, 8));
        let g0_off8 = at(Operand::Global(GlobalId(0)), 8);
        assert!(!may_alias(&g0, 8, &g0_off8, 8));
        let g0_off4 = at(Operand::Global(GlobalId(0)), 4);
        assert!(may_alias(&g0, 8, &g0_off4, 8));
        let unk = at(Operand::Value(ValueId(0)), 0);
        assert!(may_alias(&unk, 1, &g0, 1));
        // Global + index vs a different global + the same index: disjoint arrays.
        let gx0 = AddrExpr {
            atoms: vec![(Operand::Value(ValueId(3)), 1), (Operand::Global(GlobalId(0)), 1)],
            offset: 0,
        };
        let gx1 = AddrExpr {
            atoms: vec![(Operand::Value(ValueId(3)), 1), (Operand::Global(GlobalId(1)), 1)],
            offset: 0,
        };
        assert!(!may_alias(&gx0, 8, &gx1, 8));
    }

    #[test]
    fn dce_removes_chains() {
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let x = b.bin(BinOp::Add, I64, b.param(0), Operand::imm64(1));
        let _dead = b.bin(BinOp::Mul, I64, x, Operand::imm64(3)); // unused
        let _dead2 = b.bin(BinOp::Add, I64, _dead, Operand::imm64(1)); // uses dead
        b.ret(Some(x));
        let mut f = b.finish();
        let n = dce_function(&mut f);
        assert_eq!(n, 2);
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn read_only_mirrors_agree_with_mutators() {
        // Dead chain: would_dce says yes, dce_function removes it, then no.
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let x = b.bin(BinOp::Add, I64, b.param(0), Operand::imm64(1));
        let _dead = b.bin(BinOp::Mul, I64, x, Operand::imm64(3));
        b.ret(Some(x));
        let mut f = b.finish();
        assert!(would_dce(&f));
        assert!(dce_function(&mut f) > 0);
        assert!(!would_dce(&f));
        assert_eq!(dce_function(&mut f), 0);

        // Live-only function: mirror predicts the no-op.
        let mut b = FunctionBuilder::new("g", vec![I64], Some(I64));
        let y = b.bin(BinOp::Add, I64, b.param(0), Operand::imm64(2));
        b.ret(Some(y));
        let mut g = b.finish();
        assert!(!would_dce(&g));
        assert_eq!(dce_function(&mut g), 0);
        assert!(!has_simplifiable_phi(&g));
        assert_eq!(simplify_single_incoming_phis(&mut g), 0);
        assert!(!has_unreachable_blocks(&g));
        assert_eq!(remove_unreachable_blocks(&mut g), 0);

        // Unreachable block: mirror sees it, mutator removes it, mirror clears.
        let mut b = FunctionBuilder::new("h", vec![], Some(I64));
        let dead = b.block();
        b.ret(Some(Operand::imm64(0)));
        b.switch_to(dead);
        b.ret(Some(Operand::imm64(1)));
        let mut h = b.finish();
        assert!(has_unreachable_blocks(&h));
        assert_eq!(remove_unreachable_blocks(&mut h), 1);
        assert!(!has_unreachable_blocks(&h));
    }

    #[test]
    fn narrow_fold_i16() {
        // i16 mul that overflows 16 bits must wrap
        let r = fold_bin(
            BinOp::Mul,
            ScalarTy::I16,
            &Operand::ImmI(300, ScalarTy::I16),
            &Operand::ImmI(300, ScalarTy::I16),
        )
        .unwrap();
        if let Operand::ImmI(v, _) = r {
            assert_eq!(v, ScalarTy::I16.sext(90000));
        } else {
            panic!();
        }
    }
}
