//! Regression test: `loop-unroll` must produce verifier-clean IR on the GSM
//! kernel after this optimisation prefix. Found by the seeded tuner (the
//! verifier reported `use of undefined value` in two blocks after unrolling);
//! minimised from a CITROEN run with seed 5.

use citroen_passes::{PassManager, Registry};

const PREFIX: &str = "sroa,loop-idiom,mem2reg,mem2reg,inline,loop-rotate,instsimplify,\
                      sroa,gvn,constprop,simplifycfg,instcombine,loop-unroll";

#[test]
fn unroll_after_instcombine_prefix_is_verifier_clean() {
    let bench = citroen_suite::kernels::telecom_gsm();
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    for module in &bench.modules {
        // `PassManager::compile` verifies after every pass and panics on
        // verifier errors, so reaching the end is the assertion.
        let res = pm.compile_named(module, PREFIX).unwrap();
        let errs = citroen_ir::verify::verify_module(&res.module);
        assert!(errs.is_empty(), "verifier errors: {errs:?}");
    }
}
