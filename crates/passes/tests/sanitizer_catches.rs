//! Translation-validation acceptance tests: the sanitizer must stay silent on
//! every real pass (the `-O3` pipeline and seeded random sequences over the
//! corpus), must catch the deliberately re-introduced unroll miscompile in
//! [`citroen_passes::testing::BrokenUnroll`], and the delta-debugging reducer
//! must shrink that failure to a minimal (≤2-pass, ≤3-block) reproducer.

mod common;

use citroen_analyze::{lint_module, reduce_module};
use citroen_analyze::reduce::ddmin;
use citroen_passes::manager::{o3_pipeline, CompileError, PassManager, Registry};
use citroen_passes::testing::{victim_module, victim_module_computed, BrokenUnroll};
use citroen_rt::rng::{Rng, SeedableRng, StdRng};

/// Full registry plus the broken test-only pass appended at the end.
fn poisoned_registry() -> Registry {
    let mut passes = citroen_passes::passes::all_passes();
    passes.push(Box::new(BrokenUnroll));
    Registry::from_passes(passes)
}

fn sanitizing_pm(reg: &Registry) -> PassManager<'_> {
    let mut pm = PassManager::new(reg);
    pm.verify_each = true;
    pm.sanitize = true;
    pm
}

#[test]
fn sanitizer_catches_broken_unroll_in_a_real_pipeline() {
    let reg = poisoned_registry();
    let pm = sanitizing_pm(&reg);
    let seq = reg.parse_seq("early-cse,simplifycfg,broken-unroll,dce,adce").unwrap();
    let victim = victim_module();
    match pm.compile_result(&victim, &seq) {
        Err(CompileError::Sanitize { pass, violations }) => {
            assert_eq!(pass, "broken-unroll");
            assert!(!violations.is_empty());
        }
        Err(other) => panic!("expected a sanitizer rejection, got: {other}"),
        Ok(_) => panic!("broken-unroll slipped past the sanitizer"),
    }
}

#[test]
fn sanitizer_localises_broken_unroll_to_a_value() {
    // The tentpole's value-level bar: the unroll miscompile must not merely
    // be caught, it must be pinned to a specific post-pass value id by one of
    // the S6-S8 value rules, so a reproducer points at the dangling value
    // rather than a whole function.
    let reg = poisoned_registry();
    let pm = sanitizing_pm(&reg);
    let seq = reg.parse_seq("broken-unroll").unwrap();
    match pm.compile_result(&victim_module_computed(), &seq) {
        Err(CompileError::Sanitize { pass, violations }) => {
            assert_eq!(pass, "broken-unroll");
            let value_level: Vec<_> = violations
                .iter()
                .filter(|v| matches!(v.rule, "S6" | "S7" | "S8"))
                .collect();
            assert!(
                !value_level.is_empty(),
                "no value-level rule fired; got: {}",
                violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
            );
            for v in value_level {
                assert!(
                    v.value.is_some(),
                    "value-level rule {} did not localise: {v}",
                    v.rule
                );
            }
        }
        Err(other) => panic!("expected a sanitizer rejection, got: {other}"),
        Ok(_) => panic!("broken-unroll slipped past the sanitizer"),
    }
}

#[test]
fn reducer_shrinks_broken_unroll_to_a_minimal_reproducer() {
    let reg = poisoned_registry();
    let pm = sanitizing_pm(&reg);
    let seq = reg.parse_seq("early-cse,simplifycfg,broken-unroll,dce,adce").unwrap();
    let victim = victim_module();
    let is_sanitizer_failure = |seq: &[citroen_passes::PassId], m: &citroen_ir::Module| {
        matches!(pm.compile_result(m, seq), Err(CompileError::Sanitize { .. }))
    };
    assert!(is_sanitizer_failure(&seq, &victim));

    // Phase 1: delta-debug the pass sequence.
    let min_seq = ddmin(&seq, |s| is_sanitizer_failure(s, &victim));
    assert!(
        min_seq.len() <= 2,
        "sequence not minimal: [{}]",
        reg.seq_to_string(&min_seq)
    );
    assert!(min_seq.iter().any(|&id| reg.name(id) == "broken-unroll"));

    // Phase 2: shrink the module under the minimised sequence.
    let reduced = reduce_module(&victim, |m| is_sanitizer_failure(&min_seq, m));
    assert!(is_sanitizer_failure(&min_seq, &reduced), "reduction lost the failure");
    let blocks = reduced.funcs.iter().map(|f| f.blocks.len()).max().unwrap_or(0);
    let insts: usize = reduced.funcs.iter().map(|f| f.num_insts()).sum();
    assert!(
        blocks <= 3,
        "reproducer not minimal ({blocks} blocks, {insts} insts):\n{}",
        citroen_ir::print::print_module(&reduced)
    );
    // The reproducer must round-trip through the printer as parseable IR.
    let text = citroen_ir::print::print_module(&reduced);
    assert!(text.contains("func"), "unprintable reproducer");
}

#[test]
fn sanitizer_skips_provable_noops_and_counts_both_ways() {
    // mem2reg promotes the victim's induction slot, so its first run does
    // work (sanitize check must run); the immediate repeat is a provable
    // no-op (unchanged fingerprint, zero stats), so the sanitizer must skip
    // re-deriving module facts and say so in the
    // `citroen.sanitize.{runs,skips}` counters. Telemetry is process-global
    // and other tests in this binary also compile, so the assertions are
    // one-sided (pollution only ever adds).
    let reg = Registry::full();
    let pm = sanitizing_pm(&reg);
    let seq = reg.parse_seq("mem2reg,mem2reg").unwrap();
    citroen_telemetry::enable();
    pm.compile_result(&victim_module(), &seq).expect("mem2reg is clean");
    let trace = citroen_telemetry::take_trace().expect("memory sink");
    citroen_telemetry::disable();
    let runs = trace.counters.get("citroen.sanitize.runs").copied().unwrap_or(0);
    let skips = trace.counters.get("citroen.sanitize.skips").copied().unwrap_or(0);
    assert!(runs >= 1, "first mem2reg did work, its check must run (runs={runs})");
    assert!(skips >= 1, "repeat mem2reg is a provable no-op, must be skipped (skips={skips})");
}

#[test]
fn sanitizer_is_silent_on_o3_over_the_corpus() {
    let reg = Registry::full();
    let pm = sanitizing_pm(&reg);
    let o3 = o3_pipeline(&reg);
    for prog in common::corpus() {
        if let Err(e) = pm.compile_result(&prog.module, &o3) {
            panic!("{}: false positive under -O3: {e}", prog.module.name);
        }
    }
}

#[test]
fn sanitizer_is_silent_on_100_seeded_random_sequences() {
    let reg = Registry::full();
    let pm = sanitizing_pm(&reg);
    let corpus = common::corpus();
    let mut rng = StdRng::seed_from_u64(0x5A71_71CE);
    for trial in 0..100 {
        let len = rng.gen_range(1..=16);
        let seq: Vec<_> = (0..len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
        let prog = &corpus[trial % corpus.len()];
        if let Err(e) = pm.compile_result(&prog.module, &seq) {
            panic!(
                "{} seed {trial}: false positive under [{}]: {e}",
                prog.module.name,
                reg.seq_to_string(&seq)
            );
        }
    }
}

#[test]
fn corpus_is_lint_clean_after_o3() {
    let reg = Registry::full();
    let pm = sanitizing_pm(&reg);
    let o3 = o3_pipeline(&reg);
    for prog in common::corpus() {
        let res = pm.compile(&prog.module, &o3);
        let diags = lint_module(&res.module);
        assert!(
            diags.is_empty(),
            "{}: lints after -O3: {}",
            prog.module.name,
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ")
        );
    }
}
