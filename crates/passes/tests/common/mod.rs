// Shared corpus of mini-programs for pass testing. Each program is built in
// the unoptimised (`-O0`-style) shape a C front end would produce: locals in
// allocas, while-shaped loops, no φs.
#![allow(dead_code)] // not every test binary uses every helper

use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
use citroen_ir::inst::{BinOp, CastKind, CmpOp, Operand};
use citroen_ir::interp::Value;
use citroen_ir::module::{GlobalInit, Module};
use citroen_ir::types::{I16, I32, I64};

/// A corpus entry: module, entry function name, and arguments to run with.
pub struct Program {
    pub module: Module,
    pub args: Vec<Value>,
}

/// GSM-style i16 dot product over two 8-element windows (the paper's Fig. 5.1
/// kernel shape): result += w[i] * d[i], accumulated in i32.
pub fn gsm_dot() -> Program {
    let mut m = Module::new("gsm_dot");
    let w = m.add_global(
        "w",
        GlobalInit::I16s(vec![3, -1, 4, 1, -5, 9, 2, -6, 5, 3, 5, 8, -9, 7, 9, 3]),
        false,
    );
    let d = m.add_global(
        "d",
        GlobalInit::I16s(vec![2, 7, -1, 8, 2, -8, 1, 8, 2, -8, 4, 5, 9, 0, -4, 5]),
        false,
    );
    // Fixed 16-tap window, like the real GSM long-term predictor.
    let mut b = FunctionBuilder::new("dot", vec![], Some(I32));
    let n = Operand::imm64(16);
    let acc = b.alloca(4);
    b.store(I32, Operand::imm32(0), acc);
    counted_loop_mem(&mut b, n, |b, iv| {
        let wa = b.gep(Operand::Global(w), iv, 2);
        let da = b.gep(Operand::Global(d), iv, 2);
        let wv = b.load(I16, wa);
        let dv = b.load(I16, da);
        let we = b.cast(CastKind::SExt, I32, wv);
        let de = b.cast(CastKind::SExt, I32, dv);
        let p = b.bin(BinOp::Mul, I32, we, de);
        let a0 = b.load(I32, acc);
        let a1 = b.bin(BinOp::Add, I32, a0, p);
        b.store(I32, a1, acc);
    });
    let r = b.load(I32, acc);
    b.ret(Some(r));
    m.add_func(b.finish());
    Program { module: m, args: vec![] }
}

/// Array sum with a branch inside the loop (sum positives only).
pub fn branchy_sum() -> Program {
    let mut m = Module::new("branchy_sum");
    let data: Vec<i32> = (0..64).map(|i| ((i * 37 + 11) % 41) - 20).collect();
    let g = m.add_global("a", GlobalInit::I32s(data), false);
    let mut b = FunctionBuilder::new("sum_pos", vec![I64], Some(I64));
    let n = b.param(0);
    let acc = b.alloca(8);
    b.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut b, n, |b, iv| {
        let addr = b.gep(Operand::Global(g), iv, 4);
        let x = b.load(I32, addr);
        let x64 = b.cast(CastKind::SExt, I64, x);
        let pos = b.cmp(CmpOp::Sgt, x64, Operand::imm64(0));
        let add_blk = b.block();
        let cont = b.block();
        b.cond_br(pos, add_blk, cont);
        b.switch_to(add_blk);
        let a0 = b.load(I64, acc);
        let a1 = b.bin(BinOp::Add, I64, a0, x64);
        b.store(I64, a1, acc);
        b.br(cont);
        b.switch_to(cont);
    });
    let r = b.load(I64, acc);
    b.ret(Some(r));
    m.add_func(b.finish());
    Program { module: m, args: vec![Value::I(64)] }
}

/// Nested loops writing a multiplication table into a mutable global.
pub fn nested_table() -> Program {
    let mut m = Module::new("nested_table");
    let out = m.add_global("out", GlobalInit::Zero(8 * 8 * 8), true);
    let mut b = FunctionBuilder::new("table", vec![I64], Some(I64));
    let n = b.param(0);
    counted_loop_mem(&mut b, n, |b, i| {
        let n_inner = b.param(0);
        counted_loop_mem(b, n_inner, |b, j| {
            let prod = b.bin(BinOp::Mul, I64, i, j);
            let row = b.bin(BinOp::Mul, I64, i, Operand::imm64(8));
            let idx = b.bin(BinOp::Add, I64, row, j);
            let addr = b.gep(Operand::Global(out), idx, 8);
            b.store(I64, prod, addr);
        });
    });
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    Program { module: m, args: vec![Value::I(8)] }
}

/// Call-heavy: helper functions, one pure, one writing a global.
pub fn call_chain() -> Program {
    let mut m = Module::new("call_chain");
    let g = m.add_global("counter", GlobalInit::Zero(8), true);

    // pure helper: square(x) = x*x
    let mut sq = FunctionBuilder::new("square", vec![I64], Some(I64));
    let s = sq.bin(BinOp::Mul, I64, sq.param(0), sq.param(0));
    sq.ret(Some(s));
    let square = m.add_func(sq.finish());

    // impure helper: bump() increments @counter, returns new value
    let mut bp = FunctionBuilder::new("bump", vec![], Some(I64));
    let c0 = bp.load(I64, Operand::Global(g));
    let c1 = bp.bin(BinOp::Add, I64, c0, Operand::imm64(1));
    bp.store(I64, c1, Operand::Global(g));
    bp.ret(Some(c1));
    let bump = m.add_func(bp.finish());

    let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
    let n = b.param(0);
    let acc = b.alloca(8);
    b.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut b, n, |b, iv| {
        let s = b.call(square, Some(I64), vec![iv]).unwrap();
        let t = b.call(bump, Some(I64), vec![]).unwrap();
        let a0 = b.load(I64, acc);
        let a1 = b.bin(BinOp::Add, I64, a0, s);
        let a2 = b.bin(BinOp::Add, I64, a1, t);
        b.store(I64, a2, acc);
    });
    let r = b.load(I64, acc);
    b.ret(Some(r));
    m.add_func(b.finish());
    Program { module: m, args: vec![Value::I(20)] }
}

/// Tail-recursive triangular-number computation (tailcallelim fodder).
pub fn tail_recursion() -> Program {
    let mut m = Module::new("tail_rec");
    // tri(n, acc) = n <= 0 ? acc : tri(n-1, acc+n)
    let mut f = FunctionBuilder::new("tri", vec![I64, I64], Some(I64));
    let base = f.block();
    let rec = f.block();
    let n = f.param(0);
    let acc = f.param(1);
    let done = f.cmp(CmpOp::Sle, n, Operand::imm64(0));
    f.cond_br(done, base, rec);
    f.switch_to(base);
    f.ret(Some(acc));
    f.switch_to(rec);
    let n1 = f.bin(BinOp::Sub, I64, n, Operand::imm64(1));
    let a1 = f.bin(BinOp::Add, I64, acc, n);
    // self call: FuncId 0 (tri is the first function added)
    let r = f.call(citroen_ir::inst::FuncId(0), Some(I64), vec![n1, a1]).unwrap();
    f.ret(Some(r));
    m.add_func(f.finish());
    Program { module: m, args: vec![Value::I(40), Value::I(0)] }
}

/// memset-style fill + re-read (loop-idiom fodder), with div/rem mixed in.
pub fn fill_and_sum() -> Program {
    let mut m = Module::new("fill_and_sum");
    let buf = m.add_global("buf", GlobalInit::Zero(4 * 64), true);
    let mut b = FunctionBuilder::new("go", vec![I64], Some(I64));
    let n = b.param(0);
    counted_loop_mem(&mut b, n, |b, iv| {
        let addr = b.gep(Operand::Global(buf), iv, 4);
        b.store(I32, Operand::imm32(7), addr);
        let _ = iv;
    });
    let acc = b.alloca(8);
    b.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut b, n, |b, iv| {
        let addr = b.gep(Operand::Global(buf), iv, 4);
        let x = b.load(I32, addr);
        let x64 = b.cast(CastKind::SExt, I64, x);
        let q = b.bin(BinOp::SDiv, I64, x64, Operand::imm64(3));
        let r = b.bin(BinOp::SRem, I64, x64, Operand::imm64(3));
        let a0 = b.load(I64, acc);
        let a1 = b.bin(BinOp::Add, I64, a0, q);
        let a2 = b.bin(BinOp::Add, I64, a1, r);
        b.store(I64, a2, acc);
    });
    let r = b.load(I64, acc);
    b.ret(Some(r));
    m.add_func(b.finish());
    Program { module: m, args: vec![Value::I(64)] }
}

/// Constant-heavy straight-line code with selects and narrow types
/// (constprop/sccp/instcombine fodder).
pub fn const_maze() -> Program {
    let mut m = Module::new("const_maze");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let x = b.param(0);
    let a = b.bin(BinOp::Mul, I64, Operand::imm64(6), Operand::imm64(7));
    let c = b.cmp(CmpOp::Sgt, a, Operand::imm64(40));
    let t1 = b.block();
    let t2 = b.block();
    let j = b.block();
    b.cond_br(c, t1, t2);
    b.switch_to(t1);
    let y1 = b.bin(BinOp::Add, I64, x, a);
    b.br(j);
    b.switch_to(t2);
    let y2 = b.bin(BinOp::Sub, I64, x, a);
    b.br(j);
    b.switch_to(j);
    let p = b.phi(I64, vec![(t1, y1), (t2, y2)]);
    let nar = b.cast(CastKind::Trunc, I16, p);
    let wid = b.cast(CastKind::SExt, I64, nar);
    let sh = b.bin(BinOp::Mul, I64, wid, Operand::imm64(8)); // -> shl
    let sel = b.select(I64, c, sh, Operand::imm64(0));
    b.ret(Some(sel));
    m.add_func(b.finish());
    Program { module: m, args: vec![Value::I(5)] }
}

/// i16 multiply-accumulate whose sums are sign-extended to i64 — the exact
/// chain the Fig. 5.1 instcombine widening targets.
pub fn widening_bait() -> Program {
    let mut m = Module::new("widening_bait");
    let w = m.add_global("w", GlobalInit::I16s((0..8).map(|i| 100 + i).collect()), false);
    let d = m.add_global("d", GlobalInit::I16s((0..8).map(|i| 200 - 3 * i).collect()), false);
    let mut b = FunctionBuilder::new("mac", vec![], Some(I64));
    let mut total = Operand::imm64(0);
    for i in 0..8i64 {
        let wa = b.gep(Operand::Global(w), Operand::imm64(i), 2);
        let da = b.gep(Operand::Global(d), Operand::imm64(i), 2);
        let wv = b.load(I16, wa);
        let dv = b.load(I16, da);
        let we = b.cast(CastKind::SExt, I32, wv);
        let de = b.cast(CastKind::SExt, I32, dv);
        let p = b.bin(BinOp::Mul, I32, we, de);
        let p64 = b.cast(CastKind::SExt, I64, p);
        total = b.bin(BinOp::Add, I64, total, p64);
    }
    b.ret(Some(total));
    m.add_func(b.finish());
    Program { module: m, args: vec![] }
}

/// All corpus programs.
pub fn corpus() -> Vec<Program> {
    vec![
        gsm_dot(),
        branchy_sum(),
        nested_table(),
        call_chain(),
        tail_recursion(),
        fill_and_sum(),
        const_maze(),
        widening_bait(),
    ]
}
