//! Targeted behavioural tests for individual passes and for the enabling
//! chains the paper's search space is built on — most importantly the
//! Fig. 5.1 interaction: `mem2reg,slp-vectorizer` vectorises the GSM dot
//! product, while `mem2reg,instcombine,slp-vectorizer` does not.

mod common;

use citroen_ir::inst::FuncId;
use citroen_ir::interp::{run_counting, OpClass};
use citroen_passes::manager::{PassManager, Registry};

fn steps(m: &citroen_ir::Module, args: &[citroen_ir::interp::Value]) -> u64 {
    let entry = FuncId((m.funcs.len() - 1) as u32);
    run_counting(m, entry, args).expect("trapped").0.steps
}

#[test]
fn mem2reg_promotes_and_inserts_phis() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let prog = common::gsm_dot();
    let res = pm.compile_named(&prog.module, "mem2reg").unwrap();
    assert!(res.stats.get("mem2reg", "NumPromoted") >= 2); // acc + iv slot
    assert!(res.stats.get("mem2reg", "NumPHIInsert") >= 2);
    // No allocas/loads of locals remain in the hot function.
    let f = res.module.funcs.last().unwrap();
    let allocas = f
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, citroen_ir::Inst::Alloca { .. }))
        .count();
    assert_eq!(allocas, 0);
}

#[test]
fn fig5_1_phase_order_matters_for_slp() {
    // The paper's motivating example. After full unrolling the dot-product
    // loop, SLP should vectorise when instcombine has NOT widened the
    // multiply chain, and refuse when it has.
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let prog = common::widening_bait(); // already unrolled straight-line MAC

    let good = pm
        .compile_named(&prog.module, "mem2reg,slp-vectorizer")
        .unwrap();
    assert!(
        good.stats.get("slp", "NumVectorInstructions") > 0,
        "mem2reg,slp must vectorise the MAC chain; stats: {}",
        good.stats.to_json()
    );

    let bad = pm
        .compile_named(&prog.module, "mem2reg,instcombine,slp-vectorizer")
        .unwrap();
    assert!(bad.stats.get("instcombine", "NumCombined") > 0, "instcombine must fire");
    assert_eq!(
        bad.stats.get("slp", "NumVectorInstructions"),
        0,
        "widened i64 chains must fail SLP profitability (4×i64 > 128-bit)"
    );

    // And the vectorised binary must actually be faster (fewer dynamic ops).
    let entry = FuncId(0);
    let g = run_counting(&good.module, entry, &[]).unwrap().0.steps;
    let b = run_counting(&bad.module, entry, &[]).unwrap().0.steps;
    assert!(g < b, "vectorised {g} steps !< scalar {b} steps");
}

#[test]
fn rotate_licm_unroll_slp_chain() {
    // The full enabling chain on the loopy GSM kernel: mem2reg → rotate →
    // unroll (const trip) → slp. Check each stage fires.
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let prog = common::gsm_dot();
    let res = pm
        .compile_named(
            &prog.module,
            "mem2reg,simplifycfg,loop-rotate,loop-unroll,instsimplify,slp-vectorizer",
        )
        .unwrap();
    assert!(res.stats.get("loop-rotate", "NumRotated") >= 1, "{}", res.stats.to_json());
    assert!(res.stats.get("loop-unroll", "NumUnrolled") >= 1, "{}", res.stats.to_json());
    assert!(
        res.stats.get("slp", "NumVectorInstructions") > 0,
        "unrolled dot product must SLP-vectorise: {}",
        res.stats.to_json()
    );
    // Dynamic improvement over mem2reg alone.
    let baseline = pm.compile_named(&prog.module, "mem2reg").unwrap();
    assert!(steps(&res.module, &prog.args) < steps(&baseline.module, &prog.args));
}

#[test]
fn licm_needs_rotate_for_loads() {
    // A loop summing x[0] repeatedly: the load of x[0] is invariant but can
    // only be hoisted once the loop is rotated (guaranteed-to-execute).
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::{BinOp, Operand};
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::I64;

    let mut m = Module::new("licm_demo");
    let g = m.add_global("x", GlobalInit::I64s(vec![5]), false);
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let n = b.param(0);
    let acc = b.alloca(8);
    b.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut b, n, |b, _| {
        let x = b.load(I64, Operand::Global(g));
        let a0 = b.load(I64, acc);
        let a1 = b.bin(BinOp::Add, I64, a0, x);
        b.store(I64, a1, acc);
    });
    let r = b.load(I64, acc);
    b.ret(Some(r));
    m.add_func(b.finish());

    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    // Without rotation the accumulator store blocks load hoisting anyway;
    // promote first so the loop body is store-free, then compare.
    let unrotated = pm.compile_named(&m, "mem2reg,licm").unwrap();
    let rotated = pm.compile_named(&m, "mem2reg,loop-rotate,licm").unwrap();
    assert!(
        rotated.stats.get("licm", "NumHoistedLoads")
            > unrotated.stats.get("licm", "NumHoistedLoads"),
        "rotation must enable load hoisting: rotated={} unrotated={}",
        rotated.stats.to_json(),
        unrotated.stats.to_json()
    );
}

#[test]
fn function_attrs_enable_gvn_of_calls() {
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::{BinOp, Operand};
    use citroen_ir::module::Module;
    use citroen_ir::types::I64;

    let mut m = Module::new("attrs_demo");
    let mut sq = FunctionBuilder::new("square", vec![I64], Some(I64));
    let s = sq.bin(BinOp::Mul, I64, sq.param(0), sq.param(0));
    sq.ret(Some(s));
    let square = m.add_func(sq.finish());
    let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
    let a = b.call(square, Some(I64), vec![b.param(0)]).unwrap();
    let c = b.call(square, Some(I64), vec![b.param(0)]).unwrap();
    let sum = b.bin(BinOp::Add, I64, a, c);
    b.ret(Some(sum));
    m.add_func(b.finish());

    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let no_attrs = pm.compile_named(&m, "gvn").unwrap();
    assert_eq!(no_attrs.stats.get("gvn", "NumGVNInstr"), 0);
    let with_attrs = pm.compile_named(&m, "function-attrs,gvn").unwrap();
    assert!(with_attrs.stats.get("function-attrs", "NumReadNone") >= 1);
    assert!(
        with_attrs.stats.get("gvn", "NumGVNInstr") >= 1,
        "readnone calls must value-number: {}",
        with_attrs.stats.to_json()
    );
}

#[test]
fn inline_requires_mem2reg_first() {
    // call_chain's helpers are alloca-free, but build one that isn't.
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::{BinOp, Operand};
    use citroen_ir::module::Module;
    use citroen_ir::types::I64;

    let mut m = Module::new("inline_demo");
    let mut h = FunctionBuilder::new("helper", vec![I64], Some(I64));
    let slot = h.alloca(8);
    h.store(I64, h.param(0), slot);
    let v = h.load(I64, slot);
    let r = h.bin(BinOp::Add, I64, v, Operand::imm64(1));
    h.ret(Some(r));
    let helper = m.add_func(h.finish());
    let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
    let x = b.call(helper, Some(I64), vec![b.param(0)]).unwrap();
    b.ret(Some(x));
    m.add_func(b.finish());

    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let cold = pm.compile_named(&m, "inline").unwrap();
    assert_eq!(cold.stats.get("inline", "NumInlined"), 0, "alloca callee must not inline");
    let warm = pm.compile_named(&m, "mem2reg,inline").unwrap();
    assert_eq!(warm.stats.get("inline", "NumInlined"), 1, "{}", warm.stats.to_json());
}

#[test]
fn tailcallelim_turns_recursion_into_loop() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let prog = common::tail_recursion();
    let res = pm.compile_named(&prog.module, "tailcallelim").unwrap();
    assert_eq!(res.stats.get("tailcallelim", "NumEliminated"), 1);
    // No call instructions remain.
    let calls: usize = res.module.funcs[0]
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, citroen_ir::Inst::Call { .. }))
        .count();
    assert_eq!(calls, 0);
    // Deep recursion now runs without hitting the call-depth limit.
    let deep = run_counting(&res.module, FuncId(0), &[citroen_ir::interp::Value::I(10_000), citroen_ir::interp::Value::I(0)]);
    assert_eq!(deep.unwrap().0.ret, Some(citroen_ir::interp::Value::I(50_005_000)));
}

#[test]
fn loop_vectorize_handles_map_loops() {
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::{BinOp, Operand};
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::{I32, I64};

    // c[i] = a[i] * 3 + b[i], 64 elements.
    let mut m = Module::new("saxpyish");
    let a = m.add_global("a", GlobalInit::I32s((0..64).map(|i| i - 20).collect()), false);
    let bg = m.add_global("b", GlobalInit::I32s((0..64).map(|i| 2 * i).collect()), false);
    let c = m.add_global("c", GlobalInit::Zero(4 * 64), true);
    let mut b = FunctionBuilder::new("map", vec![], Some(I64));
    counted_loop_mem(&mut b, Operand::imm64(64), |b, iv| {
        let aa = b.gep(Operand::Global(a), iv, 4);
        let ba = b.gep(Operand::Global(bg), iv, 4);
        let ca = b.gep(Operand::Global(c), iv, 4);
        let x = b.load(I32, aa);
        let y = b.load(I32, ba);
        let x3 = b.bin(BinOp::Mul, I32, x, Operand::imm32(3));
        let s = b.bin(BinOp::Add, I32, x3, y);
        b.store(I32, s, ca);
    });
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());

    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "mem2reg,loop-rotate,instsimplify,loop-vectorize").unwrap();
    assert!(
        res.stats.get("loop-vectorize", "NumVectorized") >= 1,
        "{}",
        res.stats.to_json()
    );
    // Fewer dynamic steps and vector ops present.
    let (out, sink) = run_counting(&res.module, FuncId(0), &[]).unwrap();
    assert!(sink.count(OpClass::VecLoad) > 0 && sink.count(OpClass::VecStore) > 0);
    let (base, _) = run_counting(&m, FuncId(0), &[]).unwrap();
    assert!(out.steps < base.steps);
    assert_eq!(out.mem_digest, base.mem_digest);
}

#[test]
fn sccp_folds_through_branches() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let prog = common::const_maze();
    let res = pm.compile_named(&prog.module, "sccp,simplifycfg").unwrap();
    assert!(res.stats.get("sccp", "NumInstRemoved") > 0);
    // The constant diamond collapses to (at most) straight-line code.
    let f = res.module.funcs.last().unwrap();
    assert!(f.blocks.len() <= 2, "diamond should collapse, got {} blocks", f.blocks.len());
}

#[test]
fn unroll_full_vs_partial() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    // gsm_dot has a 16-trip loop: full unroll applies after rotation.
    let prog = common::gsm_dot();
    let res =
        pm.compile_named(&prog.module, "mem2reg,loop-rotate,instsimplify,loop-unroll").unwrap();
    assert!(res.stats.get("loop-unroll", "NumFullyUnrolled") >= 1, "{}", res.stats.to_json());
    // branchy_sum's 64-trip loop is multi-block: unroll must leave it alone
    // (not a self-loop), and the module must still behave.
    let prog2 = common::branchy_sum();
    let res2 = pm.compile_named(&prog2.module, "mem2reg,loop-rotate,loop-unroll").unwrap();
    let e2 = FuncId((res2.module.funcs.len() - 1) as u32);
    let (o2, _) = run_counting(&res2.module, e2, &prog2.args).unwrap();
    let (b2, _) = run_counting(&prog2.module, e2, &prog2.args).unwrap();
    assert_eq!(o2.ret, b2.ret);
}

#[test]
fn dse_and_adce_remove_dead_work() {
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::{BinOp, Operand};
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::I64;

    let mut m = Module::new("dead_demo");
    let g = m.add_global("g", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    // dead store (overwritten), dead load, dead arithmetic
    b.store(I64, Operand::imm64(1), Operand::Global(g));
    b.store(I64, Operand::imm64(2), Operand::Global(g));
    let dead_load = b.load(I64, Operand::Global(g));
    let _dead_math = b.bin(BinOp::Mul, I64, dead_load, Operand::imm64(3));
    b.ret(Some(b.param(0)));
    m.add_func(b.finish());

    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "dse,adce").unwrap();
    assert_eq!(res.stats.get("dse", "NumFastStores"), 1);
    assert!(res.stats.get("adce", "NumRemoved") >= 2, "{}", res.stats.to_json());
    assert_eq!(res.module.funcs[0].num_insts(), 1); // only the live store
}

#[test]
fn stats_identify_the_winning_sequence() {
    // Table 5.1's premise: SLP.NumVectorInstructions correlates with speedup.
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let prog = common::widening_bait();
    let seqs = [
        "mem2reg,slp-vectorizer",
        "slp-vectorizer,mem2reg",
        "instcombine,mem2reg,slp-vectorizer",
        "mem2reg,instcombine,slp-vectorizer",
        "mem2reg,slp-vectorizer,instcombine",
    ];
    let mut rows = Vec::new();
    for s in seqs {
        let res = pm.compile_named(&prog.module, s).unwrap();
        let nvi = res.stats.get("slp", "NumVectorInstructions");
        let steps = run_counting(&res.module, FuncId(0), &[]).unwrap().0.steps;
        rows.push((s, nvi, steps));
    }
    // Every sequence with NVI>0 must beat every sequence with NVI==0.
    let best_vec = rows.iter().filter(|r| r.1 > 0).map(|r| r.2).max();
    let worst_scalar = rows.iter().filter(|r| r.1 == 0).map(|r| r.2).min();
    if let (Some(v), Some(s)) = (best_vec, worst_scalar) {
        assert!(v < s, "vectorised sequences must dominate: {rows:?}");
    } else {
        panic!("expected both vectorised and scalar outcomes: {rows:?}");
    }
}
