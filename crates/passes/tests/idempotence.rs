//! The idempotence theorem: `Pass::is_idempotent() == true` promises that
//! `run; run` always equals `run` — same module fingerprint, zero statistics
//! from the second run. Like the precondition oracle's `CannotFire`, this is
//! a checkable contract: we execute it over every benchmark module *and* over
//! fuzzed intermediate modules (random pass prefixes applied first), which is
//! exactly the population of modules the tuner's canonicalizer sees.

use citroen_ir::module::Module;
use citroen_ir::print::fingerprint;
use citroen_passes::{PassId, Registry, Stats};
use citroen_rt::rng::{Rng, SeedableRng, StdRng};

/// Benchmark source modules plus fuzzed intermediates: each source module
/// with 1–8 random passes already applied (3 variants per module).
fn corpus(reg: &Registry) -> Vec<Module> {
    let mut corpus: Vec<Module> = citroen_suite::all_benchmarks()
        .into_iter()
        .flat_map(|b| b.modules)
        .collect();
    let mut rng = StdRng::seed_from_u64(0xC17B0E);
    let base = corpus.clone();
    for m in &base {
        for _ in 0..3 {
            let mut mm = m.clone();
            for _ in 0..rng.gen_range(1..8usize) {
                let id = PassId(rng.gen_range(0..reg.len()) as u16);
                reg.pass(id).run(&mut mm, &mut Stats::new());
            }
            corpus.push(mm);
        }
    }
    corpus
}

/// `(pass name, counterexamples)` for every pass over the corpus: a
/// counterexample is a corpus module where the second back-to-back run
/// changed the fingerprint or recorded statistics.
fn survey() -> Vec<(&'static str, usize)> {
    let reg = Registry::full();
    let corpus = corpus(&reg);
    reg.ids()
        .into_iter()
        .map(|id| {
            let pass = reg.pass(id);
            let bad = corpus
                .iter()
                .filter(|m| {
                    let mut m1 = (*m).clone();
                    pass.run(&mut m1, &mut Stats::new());
                    let fp1 = fingerprint(&m1);
                    let mut s2 = Stats::new();
                    pass.run(&mut m1, &mut s2);
                    fingerprint(&m1) != fp1 || s2.total() != 0
                })
                .count();
            (pass.name(), bad)
        })
        .collect()
}

#[test]
fn declared_idempotent_passes_are_idempotent() {
    let reg = Registry::full();
    let declared: Vec<&str> = reg
        .ids()
        .into_iter()
        .filter(|&id| reg.pass(id).is_idempotent())
        .map(|id| reg.name(id))
        .collect();
    let results = survey();
    for (name, bad) in &results {
        eprintln!(
            "{name:<24} {} ({bad} counterexamples)",
            if *bad == 0 { "idempotent   " } else { "NOT idempotent" }
        );
    }
    assert!(!declared.is_empty(), "expected some opted-in idempotent passes");
    let violations: Vec<&(&str, usize)> = results
        .iter()
        .filter(|(name, bad)| declared.contains(name) && *bad > 0)
        .collect();
    assert!(
        violations.is_empty(),
        "passes declared idempotent but refuted on the corpus: {violations:?}"
    );
}
