//! Focused per-pass unit tests: each exercises one transformation's specific
//! behaviour and statistics (complementing the corpus-wide differential
//! tests in `differential.rs`).

mod common;

use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
use citroen_ir::inst::{BinOp, CastKind, CmpOp, Inst, Operand, Term};
use citroen_ir::interp::{run_counting, OpClass, Value};
use citroen_ir::module::{GlobalInit, Module};
use citroen_ir::types::{I32, I64};
use citroen_ir::FuncId;
use citroen_passes::manager::{PassManager, Registry};

fn run_ret(m: &Module, args: &[Value]) -> Value {
    let entry = FuncId((m.funcs.len() - 1) as u32);
    run_counting(m, entry, args).unwrap().0.ret.unwrap()
}

#[test]
fn constprop_folds_constant_trees() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![], Some(I64));
    let a = b.bin(BinOp::Mul, I64, Operand::imm64(6), Operand::imm64(7));
    let c = b.bin(BinOp::Add, I64, a, Operand::imm64(8));
    let d = b.bin(BinOp::Shl, I64, c, Operand::imm64(1));
    b.ret(Some(d));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "constprop").unwrap();
    assert!(res.stats.get("constprop", "NumFolded") >= 3);
    assert_eq!(res.module.funcs[0].num_insts(), 0, "everything folds to a constant");
    assert_eq!(run_ret(&res.module, &[]), Value::I(100));
}

#[test]
fn instcombine_strength_reduces_mul_to_shl() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let x = b.bin(BinOp::Mul, I64, b.param(0), Operand::imm64(16));
    b.ret(Some(x));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "instcombine").unwrap();
    let has_shl = res.module.funcs[0]
        .blocks
        .iter()
        .flat_map(|blk| &blk.insts)
        .any(|i| matches!(i, Inst::Bin { op: BinOp::Shl, .. }));
    assert!(has_shl, "mul by 16 should become shl by 4");
    assert_eq!(run_ret(&res.module, &[Value::I(5)]), Value::I(80));
}

#[test]
fn aggressive_instcombine_expands_two_bit_multipliers() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let x = b.bin(BinOp::Mul, I64, b.param(0), Operand::imm64(10)); // 8 + 2
    b.ret(Some(x));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "aggressive-instcombine").unwrap();
    assert_eq!(res.stats.get("aggressive-instcombine", "NumExpanded"), 1);
    assert_eq!(run_ret(&res.module, &[Value::I(7)]), Value::I(70));
    // x*10 → (x<<3) + (x<<1): no multiplies remain.
    let muls = res.module.funcs[0]
        .blocks
        .iter()
        .flat_map(|blk| &blk.insts)
        .filter(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
        .count();
    assert_eq!(muls, 0);
}

#[test]
fn div_rem_pairs_saves_a_division() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let q = b.bin(BinOp::SDiv, I64, b.param(0), Operand::imm64(7));
    let r = b.bin(BinOp::SRem, I64, b.param(0), Operand::imm64(7));
    let s = b.bin(BinOp::Add, I64, q, r);
    b.ret(Some(s));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "div-rem-pairs").unwrap();
    assert_eq!(res.stats.get("div-rem-pairs", "NumPairs"), 1);
    // Dynamic division count drops from 2 to 1.
    let entry = FuncId(0);
    let (_, sink) = run_counting(&res.module, entry, &[Value::I(100)]).unwrap();
    assert_eq!(sink.count(OpClass::IntDiv), 1);
    assert_eq!(run_ret(&res.module, &[Value::I(100)]), Value::I(14 + 2));
}

#[test]
fn jump_threading_bypasses_constant_phis() {
    // b0: condbr p → b1 | b2; b1/b2 feed constants into b3's φ; b3 branches
    // on that φ — threading should route b1/b2 straight to their targets.
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let b1 = b.block();
    let b2 = b.block();
    let b3 = b.block();
    let t = b.block();
    let e = b.block();
    let p = b.cmp(CmpOp::Sgt, b.param(0), Operand::imm64(0));
    b.cond_br(p, b1, b2);
    b.switch_to(b1);
    b.br(b3);
    b.switch_to(b2);
    b.br(b3);
    b.switch_to(b3);
    let phi = b.phi(citroen_ir::types::I1, vec![
        (b1, Operand::ImmI(-1, citroen_ir::ScalarTy::I1)),
        (b2, Operand::ImmI(0, citroen_ir::ScalarTy::I1)),
    ]);
    b.cond_br(phi, t, e);
    b.switch_to(t);
    b.ret(Some(Operand::imm64(10)));
    b.switch_to(e);
    b.ret(Some(Operand::imm64(20)));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "jump-threading").unwrap();
    assert!(res.stats.get("jump-threading", "NumThreads") >= 1);
    assert_eq!(run_ret(&res.module, &[Value::I(5)]), Value::I(10));
    assert_eq!(run_ret(&res.module, &[Value::I(-5)]), Value::I(20));
}

#[test]
fn correlated_propagation_specialises_on_equality() {
    // if (x == 3) return x * 100  →  return 300 on that path.
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    let t = b.block();
    let e = b.block();
    let c = b.cmp(CmpOp::Eq, b.param(0), Operand::imm64(3));
    b.cond_br(c, t, e);
    b.switch_to(t);
    let y = b.bin(BinOp::Mul, I64, b.param(0), Operand::imm64(100));
    b.ret(Some(y));
    b.switch_to(e);
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "correlated-propagation,constprop").unwrap();
    assert!(res.stats.get("correlated-propagation", "NumReplaced") >= 1);
    // After constprop, the multiply on the taken path is gone.
    let muls = res.module.funcs[0]
        .blocks
        .iter()
        .flat_map(|blk| &blk.insts)
        .filter(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
        .count();
    assert_eq!(muls, 0);
    assert_eq!(run_ret(&res.module, &[Value::I(3)]), Value::I(300));
    assert_eq!(run_ret(&res.module, &[Value::I(4)]), Value::I(0));
}

#[test]
fn loop_deletion_removes_dead_counting_loops() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![], Some(I64));
    counted_loop_mem(&mut b, Operand::imm64(100), |_, _| {});
    b.ret(Some(Operand::imm64(42)));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    // mem2reg + rotate put it in self-loop form; deletion then removes it.
    let res = pm.compile_named(&m, "mem2reg,loop-rotate,loop-deletion").unwrap();
    assert_eq!(res.stats.get("loop-deletion", "NumDeleted"), 1);
    let entry = FuncId(0);
    let (out, _) = run_counting(&res.module, entry, &[]).unwrap();
    assert_eq!(out.ret, Some(Value::I(42)));
    assert!(out.steps < 20, "loop must be gone, got {} steps", out.steps);
}

#[test]
fn strength_reduce_replaces_loop_multiplies() {
    // sum += i * 24 inside a loop: the mul becomes an incremented IV.
    let mut m = Module::new("m");
    let g = m.add_global("out", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("f", vec![], Some(I64));
    counted_loop_mem(&mut b, Operand::imm64(50), |b, iv| {
        let p = b.bin(BinOp::Mul, I64, iv, Operand::imm64(24));
        let cur = b.load(I64, Operand::Global(g));
        let nx = b.bin(BinOp::Add, I64, cur, p);
        b.store(I64, nx, Operand::Global(g));
    });
    let r = b.load(I64, Operand::Global(g));
    b.ret(Some(r));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "mem2reg,loop-rotate,strength-reduce").unwrap();
    assert_eq!(res.stats.get("strength-reduce", "NumReduced"), 1);
    let entry = FuncId(0);
    let (out, sink) = run_counting(&res.module, entry, &[]).unwrap();
    assert_eq!(out.ret, Some(Value::I((0..50).map(|i| i * 24).sum())));
    assert_eq!(sink.count(OpClass::IntMul), 0, "loop multiply must be strength-reduced");
}

#[test]
fn indvars_canonicalises_ne_to_slt() {
    // Build a rotated self-loop with an `!=` latch condition manually.
    let mut m = Module::new("m");
    let mut f = FunctionBuilder::new("f", vec![], Some(I64));
    let header = f.block();
    let exit = f.block();
    let pre = f.current();
    f.br(header);
    f.switch_to(header);
    let iv = f.phi(I64, vec![(pre, Operand::imm64(0))]);
    let next = f.bin(BinOp::Add, I64, iv, Operand::imm64(2));
    let c = f.cmp(CmpOp::Ne, next, Operand::imm64(20));
    f.cond_br(c, header, exit);
    f.switch_to(exit);
    f.ret(Some(Operand::imm64(1)));
    let mut func = f.finish();
    // Patch the back edge of the φ.
    if let Inst::Phi { incoming, .. } = &mut func.blocks[header.idx()].insts[0] {
        incoming.push((header, Operand::Value(next.as_value().unwrap())));
    }
    m.add_func(func);
    citroen_ir::verify::assert_valid(&m);
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "indvars").unwrap();
    assert_eq!(res.stats.get("indvars", "NumLFTR"), 1);
    let has_ne = res.module.funcs[0]
        .blocks
        .iter()
        .flat_map(|blk| &blk.insts)
        .any(|i| matches!(i, Inst::Cmp { op: CmpOp::Ne, .. }));
    assert!(!has_ne);
    assert_eq!(run_ret(&res.module, &[]), Value::I(1));
}

#[test]
fn sroa_splits_struct_like_allocas() {
    // A 16-byte alloca used as two independent i64 slots at offsets 0 and 8.
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
    let agg = b.alloca(16);
    let hi = b.bin(BinOp::Add, I64, agg, Operand::imm64(8));
    b.store(I64, b.param(0), agg);
    b.store(I64, b.param(1), hi);
    let x = b.load(I64, agg);
    let y = b.load(I64, hi);
    let s = b.bin(BinOp::Add, I64, x, y);
    b.ret(Some(s));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "sroa,mem2reg").unwrap();
    assert_eq!(res.stats.get("sroa", "NumReplaced"), 1);
    assert_eq!(res.stats.get("sroa", "NumSlots"), 2);
    // After sroa + mem2reg, no memory traffic remains.
    let entry = FuncId(0);
    let (out, sink) = run_counting(&res.module, entry, &[Value::I(30), Value::I(12)]).unwrap();
    assert_eq!(out.ret, Some(Value::I(42)));
    assert_eq!(sink.count(OpClass::Load) + sink.count(OpClass::Store), 0);
}

#[test]
fn sink_moves_work_off_the_untaken_path() {
    // An expensive div computed unconditionally but used on one branch only.
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
    let t = b.block();
    let e = b.block();
    let d = b.bin(BinOp::SDiv, I64, b.param(0), Operand::imm64(3));
    let c = b.cmp(CmpOp::Sgt, b.param(1), Operand::imm64(0));
    b.cond_br(c, t, e);
    b.switch_to(t);
    let u = b.bin(BinOp::Add, I64, d, Operand::imm64(1));
    b.ret(Some(u));
    b.switch_to(e);
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "sink").unwrap();
    assert_eq!(res.stats.get("sink", "NumSunk"), 1);
    // On the untaken path no division executes.
    let entry = FuncId(0);
    let (_, sink) = run_counting(&res.module, entry, &[Value::I(9), Value::I(-1)]).unwrap();
    assert_eq!(sink.count(OpClass::IntDiv), 0);
    assert_eq!(run_ret(&res.module, &[Value::I(9), Value::I(1)]), Value::I(4));
}

#[test]
fn early_cse_forwards_stores_to_loads() {
    let mut m = Module::new("m");
    let g = m.add_global("g", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
    b.store(I64, b.param(0), Operand::Global(g));
    let x = b.load(I64, Operand::Global(g)); // forwarded from the store
    let y = b.load(I64, Operand::Global(g)); // CSE'd with x
    let s = b.bin(BinOp::Add, I64, x, y);
    b.ret(Some(s));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "early-cse").unwrap();
    assert!(res.stats.get("early-cse", "NumCSE") >= 2, "{}", res.stats.to_json());
    let entry = FuncId(0);
    let (out, sink) = run_counting(&res.module, entry, &[Value::I(21)]).unwrap();
    assert_eq!(out.ret, Some(Value::I(42)));
    assert_eq!(sink.count(OpClass::Load), 0, "loads must be forwarded away");
}

#[test]
fn loop_idiom_vectorises_memset_loops() {
    let mut m = Module::new("m");
    let g = m.add_global("buf", GlobalInit::Zero(4 * 64), true);
    let mut b = FunctionBuilder::new("f", vec![], Some(I64));
    counted_loop_mem(&mut b, Operand::imm64(64), |b, iv| {
        let a = b.gep(Operand::Global(g), iv, 4);
        b.store(I32, Operand::imm32(9), a);
    });
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "mem2reg,loop-rotate,loop-idiom").unwrap();
    assert_eq!(res.stats.get("loop-idiom", "NumIdiom"), 1, "{}", res.stats.to_json());
    let entry = FuncId(0);
    let (out, sink) = run_counting(&res.module, entry, &[]).unwrap();
    assert!(sink.count(OpClass::VecStore) > 0);
    // Behaviour preserved vs the original.
    let (base, _) = run_counting(&m, entry, &[]).unwrap();
    assert_eq!(out.mem_digest, base.mem_digest);
}

#[test]
fn reassociate_improves_gvn_hit_rate() {
    // (a+b) and (b+a): after canonicalisation, GVN unifies them.
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
    let x = b.bin(BinOp::Add, I64, b.param(0), b.param(1));
    let y = b.bin(BinOp::Add, I64, b.param(1), b.param(0));
    let s = b.bin(BinOp::Mul, I64, x, y);
    b.ret(Some(s));
    m.add_func(b.finish());
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let alone = pm.compile_named(&m, "gvn").unwrap();
    let with_reassoc = pm.compile_named(&m, "reassociate,gvn").unwrap();
    // GVN already handles commutativity via canonical keys; reassociate must
    // not regress it, and the result must be a single add.
    let adds = |m: &Module| {
        m.funcs[0]
            .blocks
            .iter()
            .flat_map(|blk| &blk.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .count()
    };
    assert_eq!(adds(&alone.module), 1);
    assert_eq!(adds(&with_reassoc.module), 1);
    assert_eq!(run_ret(&with_reassoc.module, &[Value::I(3), Value::I(4)]), Value::I(49));
}

#[test]
fn simplifycfg_flattens_constant_diamonds() {
    let prog = common::const_maze();
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&prog.module, "constprop,simplifycfg").unwrap();
    let f = res.module.funcs.last().unwrap();
    assert_eq!(f.blocks.len(), 1, "constant diamond must flatten to one block");
}

#[test]
fn unreachable_code_is_removed() {
    let mut m = Module::new("m");
    let mut f = citroen_ir::Function::new("f", vec![], Some(I64));
    let dead = f.new_block();
    f.blocks[0].term = Term::Ret(Some(Operand::imm64(1)));
    f.blocks[dead.idx()].term = Term::Ret(Some(Operand::imm64(2)));
    m.add_func(f);
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let res = pm.compile_named(&m, "simplifycfg").unwrap();
    assert_eq!(res.module.funcs[0].blocks.len(), 1);
}
