//! Differential testing: every pass (alone, in pipelines, and in random
//! sequences) must preserve observable behaviour — return value and
//! mutable-global digest — on the whole corpus. This is the §5.4.1 harness
//! the paper uses to guard phase-ordering correctness.

mod common;

use citroen_ir::inst::FuncId;
use citroen_ir::interp::{run_counting, ExecOutput};
use citroen_passes::manager::{o1_pipeline, o3_pipeline, PassManager, Registry};
use citroen_rt::rng::StdRng;
use citroen_rt::rng::{Rng, SeedableRng};

fn observe(m: &citroen_ir::Module, args: &[citroen_ir::interp::Value]) -> ExecOutput {
    let entry = FuncId((m.funcs.len() - 1) as u32); // corpus entry fn is last
    let (out, _) = run_counting(m, entry, args)
        .unwrap_or_else(|t| panic!("module {} trapped: {t}", m.name));
    out
}

fn check_equiv(name: &str, seq_desc: &str, a: &ExecOutput, b: &ExecOutput) {
    assert_eq!(
        a.ret, b.ret,
        "{name}: return value changed by [{seq_desc}] ({:?} vs {:?})",
        a.ret, b.ret
    );
    assert_eq!(a.mem_digest, b.mem_digest, "{name}: memory digest changed by [{seq_desc}]");
}

#[test]
fn each_pass_alone_preserves_behaviour() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    for prog in common::corpus() {
        let base = observe(&prog.module, &prog.args);
        for id in reg.ids() {
            let res = pm.compile(&prog.module, &[id]);
            let out = observe(&res.module, &prog.args);
            check_equiv(&prog.module.name, reg.name(id), &base, &out);
        }
    }
}

#[test]
fn o1_and_o3_preserve_behaviour() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    for prog in common::corpus() {
        let base = observe(&prog.module, &prog.args);
        for (desc, seq) in [("O1", o1_pipeline(&reg)), ("O3", o3_pipeline(&reg))] {
            let res = pm.compile(&prog.module, &seq);
            let out = observe(&res.module, &prog.args);
            check_equiv(&prog.module.name, desc, &base, &out);
        }
    }
}

#[test]
fn o3_actually_optimises() {
    // -O3 must reduce the dynamic operation count on the loopy corpus
    // programs — otherwise the whole tuning premise is vacuous.
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let mut improved = 0;
    let mut total = 0;
    for prog in common::corpus() {
        let entry = FuncId((prog.module.funcs.len() - 1) as u32);
        let (base, _) = run_counting(&prog.module, entry, &prog.args).unwrap();
        let res = pm.compile(&prog.module, &o3_pipeline(&reg));
        let (opt, _) = run_counting(&res.module, entry, &prog.args).unwrap();
        total += 1;
        if opt.steps < base.steps {
            improved += 1;
        }
    }
    assert!(improved >= total - 1, "O3 sped up only {improved}/{total} corpus programs");
}

#[test]
fn random_sequences_preserve_behaviour() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let mut rng = StdRng::seed_from_u64(0xC17A0E);
    let corpus = common::corpus();
    for trial in 0..40 {
        let len = rng.gen_range(1..=24);
        let seq: Vec<_> =
            (0..len).map(|_| reg.ids()[rng.gen_range(0..reg.len())]).collect();
        let prog = &corpus[trial % corpus.len()];
        let base = observe(&prog.module, &prog.args);
        let res = pm.compile(&prog.module, &seq);
        let out = observe(&res.module, &prog.args);
        check_equiv(&prog.module.name, &reg.seq_to_string(&seq), &base, &out);
    }
}

#[test]
fn duplicate_binary_fingerprints_agree() {
    // The same sequence applied twice yields the identical fingerprint, and
    // a no-op pass on an already-clean module keeps it stable.
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let prog = common::gsm_dot();
    let seq = reg.parse_seq("mem2reg,instcombine,gvn").unwrap();
    let a = pm.compile(&prog.module, &seq);
    let b = pm.compile(&prog.module, &seq);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.stats, b.stats);
}
