//! # citroen-bo
//!
//! The Bayesian-optimisation stack of the reproduction: box [`space`]s,
//! [`acquisition`] functions (UCB/EI/PI + Monte-Carlo batch forms),
//! [`heuristics`] (GA, CMA-ES, discrete 1+λ ES), the AF [`maximizer`] with
//! its initialisation strategies, and [`aibo`] — the heuristic
//! acquisition-function-maximiser-initialisation algorithm of thesis Ch. 4
//! (Algorithm 1) that CITROEN extends to phase ordering.

#![warn(missing_docs)]

pub mod acquisition;
pub mod baselines;
pub mod aibo;
pub mod heuristics;
pub mod maximizer;
pub mod space;
pub mod transfer;

pub use acquisition::Acquisition;
pub use aibo::{run_aibo, run_heuristic, run_random_search, AiboConfig, BoResult, IterationRecord, StrategyKind};
pub use baselines::{run_hesbo, run_turbo, TurboConfig};
pub use heuristics::{AskTell, CmaEs, DiscreteOneLambda, GaOpt, RandomOpt};
pub use maximizer::{draw_mc_eps, greedy_batch, GradMaximizer};
pub use space::{Bounds, SeqCanonicalizer};
pub use transfer::{nearest, stats_distance, warm_seeds, TransferEntry};
