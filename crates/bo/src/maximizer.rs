//! Acquisition-function maximisation: the multi-start gradient-based
//! maximiser (BoTorch-style, thesis §4.3.2) and the initialisation strategies
//! compared in Ch. 4 (random top-n, Boltzmann sampling, Gaussian spray,
//! CMA-ES-on-the-AF).

use crate::acquisition::Acquisition;
use crate::heuristics::{standard_normal, CmaEs};
use crate::space::clamp_unit;
use citroen_gp::Gp;
use citroen_rt::rng::StdRng;
use citroen_rt::rng::Rng;

/// Multi-start gradient ascent on the AF (Adam + forward-difference
/// gradients, projected to the unit cube).
#[derive(Debug, Clone, Copy)]
pub struct GradMaximizer {
    /// Ascent iterations per start.
    pub iters: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for GradMaximizer {
    fn default() -> GradMaximizer {
        GradMaximizer { iters: 12, lr: 0.03 }
    }
}

impl GradMaximizer {
    /// Refine each start; returns `(point, af_value)` pairs.
    pub fn maximize(
        &self,
        gp: &Gp,
        acq: Acquisition,
        best_z: f64,
        starts: &[Vec<f64>],
    ) -> Vec<(Vec<f64>, f64)> {
        starts
            .iter()
            .map(|s| {
                let mut x = s.clone();
                let d = x.len();
                let mut m = vec![0.0; d];
                let mut v = vec![0.0; d];
                let (b1, b2, eps) = (0.9, 0.999, 1e-8);
                let mut fx = acq.eval(gp, best_z, &x);
                for t in 1..=self.iters {
                    // Forward-difference gradient.
                    let h = 1e-4;
                    let mut g = vec![0.0; d];
                    for i in 0..d {
                        let mut xp = x.clone();
                        xp[i] = (xp[i] + h).min(1.0);
                        let dh = xp[i] - x[i];
                        if dh > 0.0 {
                            g[i] = (acq.eval(gp, best_z, &xp) - fx) / dh;
                        } else {
                            let mut xm = x.clone();
                            xm[i] -= h;
                            g[i] = (fx - acq.eval(gp, best_z, &xm)) / h;
                        }
                    }
                    for i in 0..d {
                        let gi = -g[i]; // Adam minimises; we ascend
                        m[i] = b1 * m[i] + (1.0 - b1) * gi;
                        v[i] = b2 * v[i] + (1.0 - b2) * gi * gi;
                        let mh = m[i] / (1.0 - b1.powi(t as i32));
                        let vh = v[i] / (1.0 - b2.powi(t as i32));
                        x[i] -= self.lr * mh / (vh.sqrt() + eps);
                    }
                    clamp_unit(&mut x);
                    fx = acq.eval(gp, best_z, &x);
                }
                (x, fx)
            })
            .collect()
    }
}

/// Draw the fixed Monte-Carlo standard-normal matrix a greedy batch
/// construction evaluates every prefix against: `samples` rows of `q`
/// independent draws. Sharing one matrix across all `mc_eval_batch` calls of
/// a selection round makes the greedy argmax deterministic and keeps
/// prefix scores comparable (common random numbers).
pub fn draw_mc_eps(rng: &mut StdRng, samples: usize, q: usize) -> Vec<Vec<f64>> {
    (0..samples).map(|_| (0..q).map(|_| standard_normal(rng)).collect()).collect()
}

/// Sequential-greedy batch construction on top of
/// [`Acquisition::mc_eval_batch`] (thesis §2.1.2, the qEI/qUCB construction
/// CITROEN's batched loop uses): the first point is the plain analytic
/// argmax — so a batch of one reduces *exactly* to the sequential
/// acquisition step — and each further point is the candidate whose addition
/// maximises the Monte-Carlo batch AF of the grown prefix under the shared
/// `eps` draws. Returns the selected indices into `xs` in pick order
/// (deduplicated; ties break to the lowest index, so the construction is
/// deterministic).
pub fn greedy_batch(
    gp: &Gp,
    acq: Acquisition,
    best_z: f64,
    xs: &[Vec<f64>],
    q: usize,
    eps: &[Vec<f64>],
) -> Vec<usize> {
    if xs.is_empty() || q == 0 {
        return Vec::new();
    }
    let mut best_af = f64::NEG_INFINITY;
    let mut first = 0usize;
    for (i, x) in xs.iter().enumerate() {
        let af = acq.eval(gp, best_z, x);
        if af > best_af {
            best_af = af;
            first = i;
        }
    }
    let mut picked = vec![first];
    let mut batch: Vec<Vec<f64>> = vec![xs[first].clone()];
    while picked.len() < q.min(xs.len()) {
        let mut best_score = f64::NEG_INFINITY;
        let mut pick = None;
        for (i, x) in xs.iter().enumerate() {
            if picked.contains(&i) {
                continue;
            }
            batch.push(x.clone());
            let score = acq.mc_eval_batch(gp, best_z, &batch, eps);
            batch.pop();
            if score > best_score {
                best_score = score;
                pick = Some(i);
            }
        }
        match pick {
            Some(i) => {
                picked.push(i);
                batch.push(xs[i].clone());
            }
            None => break,
        }
    }
    picked
}

/// Rank raw candidates by AF and keep the best `n` as maximiser starts
/// (the "top-n" selection shared by the initialisation strategies).
pub fn top_n_by_af(
    gp: &Gp,
    acq: Acquisition,
    best_z: f64,
    mut cands: Vec<Vec<f64>>,
    n: usize,
) -> Vec<Vec<f64>> {
    let mut scored: Vec<(f64, usize)> = cands
        .iter()
        .enumerate()
        .map(|(i, c)| (acq.eval(gp, best_z, c), i))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let keep: Vec<usize> = scored.into_iter().take(n).map(|(_, i)| i).collect();
    let mut out = Vec::with_capacity(keep.len());
    // Take in descending-AF order.
    for i in keep {
        out.push(std::mem::take(&mut cands[i]));
    }
    out
}

/// Boltzmann selection of `n` starts from random candidates (the BoTorch
/// default initialisation, Fig. 4.13's `BO-boltzmann_grad`).
pub fn boltzmann_select(
    gp: &Gp,
    acq: Acquisition,
    best_z: f64,
    cands: Vec<Vec<f64>>,
    n: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let scores: Vec<f64> = cands.iter().map(|c| acq.eval(gp, best_z, c)).collect();
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let range = (max - min).max(1e-12);
    let weights: Vec<f64> = scores.iter().map(|s| ((s - min) / range * 4.0).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut u = rng.gen_range(0.0..total);
        let mut pick = 0;
        for (i, w) in weights.iter().enumerate() {
            if u <= *w {
                pick = i;
                break;
            }
            u -= w;
        }
        out.push(cands[pick].clone());
    }
    out
}

/// Gaussian spray around the incumbent best (Spearmint's initialisation,
/// Fig. 4.13's `BO-Gaussian_grad`).
pub fn gaussian_spray(best_x: &[f64], sigma: f64, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..k)
        .map(|_| {
            let mut x: Vec<f64> =
                best_x.iter().map(|&v| v + sigma * standard_normal(rng)).collect();
            clamp_unit(&mut x);
            x
        })
        .collect()
}

/// Run a fresh CMA-ES directly on the AF surface (Fig. 4.13's
/// `BO-cmaes_grad`): no black-box history is used — exactly the difference
/// AIBO's history-seeded CMA-ES is designed to expose.
pub fn cmaes_on_af(
    gp: &Gp,
    acq: Acquisition,
    best_z: f64,
    dim: usize,
    evals: usize,
    n: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    use crate::heuristics::AskTell;
    let mut es = CmaEs::new(vec![0.5; dim], 0.3);
    let mut seen: Vec<(Vec<f64>, f64)> = Vec::new();
    let mut left = evals;
    while left > 0 {
        let batch = left.min(8);
        for x in es.ask(rng, batch) {
            let af = acq.eval(gp, best_z, &x);
            es.tell(&x, -af); // CMA-ES minimises
            seen.push((x, af));
        }
        left -= batch;
    }
    seen.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    seen.into_iter().take(n).map(|(x, _)| x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_gp::{Gp, GpConfig, Mat};
    use citroen_rt::rng::SeedableRng;

    fn gp_1d() -> Gp {
        // Observations of (x-0.3)² — minimum at 0.3.
        let xs: Vec<f64> = (0..12).map(|i| i as f64 / 11.0).collect();
        let y: Vec<f64> = xs.iter().map(|&x| (x - 0.3) * (x - 0.3)).collect();
        Gp::fit(
            Mat::from_rows(xs.into_iter().map(|x| vec![x]).collect()),
            &y,
            GpConfig { yeo_johnson: false, ..Default::default() },
        )
    }

    #[test]
    fn gradient_ascent_improves_af() {
        let gp = gp_1d();
        let best = 0.0;
        let acq = Acquisition::Ucb { beta: 1.96 };
        let starts = vec![vec![0.9], vec![0.05]];
        let before: Vec<f64> = starts.iter().map(|s| acq.eval(&gp, best, s)).collect();
        let refined = GradMaximizer::default().maximize(&gp, acq, best, &starts);
        for ((_, after), b) in refined.iter().zip(before) {
            assert!(*after >= b - 1e-9, "ascent must not decrease AF: {b} -> {after}");
        }
    }

    #[test]
    fn top_n_orders_by_af() {
        let gp = gp_1d();
        let acq = Acquisition::Ei;
        let best = gp.transform().forward(0.0);
        let cands: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
        let top = top_n_by_af(&gp, acq, best, cands, 3);
        assert_eq!(top.len(), 3);
        let a0 = acq.eval(&gp, best, &top[0]);
        let a2 = acq.eval(&gp, best, &top[2]);
        assert!(a0 >= a2);
    }

    #[test]
    fn spray_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for x in gaussian_spray(&[0.02, 0.99], 0.3, 40, &mut rng) {
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn greedy_batch_of_one_is_the_analytic_argmax() {
        let gp = gp_1d();
        let acq = Acquisition::Ucb { beta: 1.96 };
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let mut scored: Vec<(f64, usize)> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| (acq.eval(&gp, 0.0, x), i))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        // No MC draws are consumed for q=1: an empty eps matrix suffices.
        let picked = greedy_batch(&gp, acq, 0.0, &xs, 1, &[]);
        assert_eq!(picked, vec![scored[0].1]);
    }

    #[test]
    fn greedy_batch_is_deterministic_and_diverse() {
        let gp = gp_1d();
        let acq = Acquisition::Ei;
        let best = gp.transform().forward(0.0);
        let xs: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 / 15.0]).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let eps = draw_mc_eps(&mut rng, 64, 4);
        let a = greedy_batch(&gp, acq, best, &xs, 4, &eps);
        let b = greedy_batch(&gp, acq, best, &xs, 4, &eps);
        assert_eq!(a, b, "same inputs must give the same batch");
        assert_eq!(a.len(), 4);
        // All distinct picks.
        let set: std::collections::HashSet<usize> = a.iter().copied().collect();
        assert_eq!(set.len(), 4, "batch must not repeat candidates: {a:?}");
    }

    #[test]
    fn greedy_batch_caps_at_candidate_count() {
        let gp = gp_1d();
        let acq = Acquisition::Ucb { beta: 1.0 };
        let xs = vec![vec![0.2], vec![0.8]];
        let mut rng = StdRng::seed_from_u64(5);
        let eps = draw_mc_eps(&mut rng, 16, 8);
        let picked = greedy_batch(&gp, acq, 0.0, &xs, 8, &eps);
        assert_eq!(picked.len(), 2);
        assert!(greedy_batch(&gp, acq, 0.0, &[], 4, &eps).is_empty());
    }

    #[test]
    fn cmaes_on_af_returns_high_af_points() {
        let gp = gp_1d();
        let acq = Acquisition::Ucb { beta: 1.96 };
        let mut rng = StdRng::seed_from_u64(8);
        let pts = cmaes_on_af(&gp, acq, 0.0, 1, 60, 2, &mut rng);
        assert_eq!(pts.len(), 2);
        // The returned point should beat a random one on average.
        let af_found = acq.eval(&gp, 0.0, &pts[0]);
        let af_rand = acq.eval(&gp, 0.0, &[0.77]);
        assert!(af_found >= af_rand - 0.5);
    }
}
